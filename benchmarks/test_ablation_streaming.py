"""Ablation: client-server vs streaming prediction, end to end (§2.3).

"The advantage of the client-server form is that it is stateless, while
the advantage of the streaming mode is that a single model fitting
operation can be amortized over multiple predictions.  The trade-offs
between the two modes are complex and both are useful in practice."

We price the trade-off through the whole stack: predictive flow queries
against the same warm deployment, with and without streaming predictors
attached to the collectors.  Client-server pays an AR fit per query;
streaming pays per-sample step costs inside the polling loop instead.
"""

from __future__ import annotations

import time

import pytest

from repro.common.units import MBPS
from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan
from repro.rps.service import RpsPredictionService

from _util import emit

N_QUERIES = 300


def _warm_deployment(streaming: bool):
    lan = build_switched_lan(8, fanout=8)
    dep = deploy_lan(lan, poll_interval_s=2.0)
    dep.modeler.prediction_service = RpsPredictionService("AR(16)")
    lan.net.flows.start_flow(lan.hosts[0], lan.hosts[7], demand_bps=30 * MBPS)
    dep.session().flow_info(lan.hosts[0], lan.hosts[7])
    if streaming:
        dep.enable_streaming_prediction("AR(16)", min_history=16)
    dep.start_monitoring()
    lan.net.engine.run_until(lan.net.now + 180.0)
    return lan, dep


def run_modes():
    out = {}
    for label, streaming in (("client-server", False), ("streaming", True)):
        lan, dep = _warm_deployment(streaming)
        t0 = time.perf_counter()
        for _ in range(N_QUERIES):
            ans = dep.session().flow_info(
                lan.hosts[0], lan.hosts[7], predict=True
            )
        per_query_us = 1e6 * (time.perf_counter() - t0) / N_QUERIES
        fits = dep.modeler.prediction_service.server.requests_served
        out[label] = (per_query_us, fits, ans.predicted_bps)
    return out


def test_ablation_streaming_vs_client_server(benchmark):
    out = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    cs_us, cs_fits, cs_pred = out["client-server"]
    st_us, st_fits, st_pred = out["streaming"]
    lines = [
        f"predictive flow query cost over {N_QUERIES} queries (wall-clock)",
        f"  client-server: {cs_us:8.1f} us/query  ({cs_fits} model fits paid)",
        f"  streaming:     {st_us:8.1f} us/query  ({st_fits} model fits paid)",
        "",
        f"both predict ~{st_pred / MBPS:.0f} Mbps available",
        "paper: streaming amortizes the fit; client-server pays it per query",
    ]
    emit("ablation_streaming", lines)

    # --- shape assertions --------------------------------------------------
    assert cs_fits == N_QUERIES, "client-server pays one fit per query"
    assert st_fits == 0, "streaming pays no fit at query time"
    assert st_us < cs_us, "amortized queries must be cheaper"
    # both modes give consistent answers
    assert st_pred == pytest.approx(cs_pred, rel=0.15)
