"""Extension bench — Remos-guided node selection vs blind placement.

§6.3: "for applications … that have to select and assign a set of
compute nodes with certain connectivity properties … Remos provides
explicit connectivity information that would be difficult and expensive
to collect otherwise."  We quantify the benefit: the worst pairwise
bandwidth a 4-node parallel job actually achieves when placed by Remos
versus by uniform random choice over the same candidates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.scheduler import JobSpec, NodeSelector
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.netsim.traffic import RandomWalkTraffic

from _util import emit

N_TRIALS = 10


def _achieved_min_pair(world, ips) -> float:
    """Ground truth: start all-pairs flows among the set, take the min."""
    from itertools import combinations

    hosts = [world.net.node_for_ip(ip) for ip in ips]
    flows = [
        world.net.flows.start_flow(a, b)
        for a, b in combinations(hosts, 2)
    ]
    worst = min(f.rate_bps for f in flows)
    for f in flows:
        world.net.flows.stop_flow(f)
    return worst


def run_selection_quality():
    rng = np.random.default_rng(11)
    remos_scores, random_scores = [], []
    for trial in range(N_TRIALS):
        world = build_multisite_wan(
            [
                SiteSpec("a", access_bps=40 * MBPS, n_hosts=5),
                SiteSpec("b", access_bps=40 * MBPS, n_hosts=5),
                SiteSpec("thin", access_bps=1.5 * MBPS, n_hosts=5),
            ]
        )
        dep = deploy_wan(world)
        RandomWalkTraffic(
            world.net, world.host("thin", 4), world.host("a", 4),
            lo_bps=0.1 * MBPS, hi_bps=1.2 * MBPS, sigma_bps=0.4 * MBPS,
            step_s=2.0, seed=100 + trial,
        ).start()
        world.net.engine.run_until(20.0)
        candidates = [world.host(s, i) for s in ("a", "b", "thin")
                      for i in range(4)]
        sel = NodeSelector(dep.modeler, candidates)
        placement = sel.select(JobSpec(n_nodes=4))
        remos_scores.append(_achieved_min_pair(world, placement.hosts))
        from repro.modeler.api import _ip_of

        pick = rng.choice(len(candidates), size=4, replace=False)
        random_ips = [_ip_of(candidates[i]) for i in pick]
        random_scores.append(_achieved_min_pair(world, random_ips))
    return remos_scores, random_scores


def test_ext_node_selection_quality(benchmark):
    remos_scores, random_scores = benchmark.pedantic(
        run_selection_quality, rounds=1, iterations=1
    )
    r_mean = np.mean(remos_scores) / MBPS
    x_mean = np.mean(random_scores) / MBPS
    lines = [
        "achieved worst pairwise bandwidth of a 4-node job (all pairs active)",
        f"  Remos-guided placement : {r_mean:6.2f} Mbps mean "
        f"(min {min(remos_scores) / MBPS:.2f})",
        f"  random placement       : {x_mean:6.2f} Mbps mean "
        f"(min {min(random_scores) / MBPS:.2f})",
        "",
        f"advantage: {r_mean / max(x_mean, 1e-9):.1f}x "
        "(random picks regularly land on the thin site)",
    ]
    emit("ext_node_selection", lines)

    # --- shape assertions ----------------------------------------------
    assert np.mean(remos_scores) > 2 * np.mean(random_scores)
    # Remos placements never land in the thin site
    assert min(remos_scores) > 1.5 * MBPS
