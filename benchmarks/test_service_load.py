"""Service plane under load: closed-loop clients, shed-to-STALE.

The paper argues a *shared* query service is the only scalable shape
for grid-wide monitoring; this benchmark measures what our service
plane does when thousands of applications actually share it.  A
closed-loop fleet (every client waits for its answer before asking
again) of 1000+ concurrent in-process clients hammers a warm service,
plus a smaller fleet over real HTTP sockets, and we record the
latency distribution, throughput, and how much traffic admission
control shed to last-known-good answers.

Hard guarantees asserted, not just measured:

* shed requests are answered ``STALE`` — never queued until timeout,
  never ``FAILED`` while an LKG exists;
* zero transport errors, zero unanswered requests;
* the service stays responsive (p95 bounded) even at 20x the
  backend's concurrency limit.

Exports ``BENCH_service_load.json`` (consumed by the CI service-smoke
job).
"""

from __future__ import annotations

import asyncio
import time

from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.service import DirectClient, RemosService, ServiceConfig
from repro.service.client import HttpServiceClient
from repro.service.http import start_server

from _util import emit, emit_json

N_CLIENTS = 1200
REQUESTS_PER_CLIENT = 4
HTTP_CLIENTS = 64
HTTP_REQUESTS_PER_CLIENT = 3


def build_service():
    w = build_multisite_wan(
        [
            SiteSpec(f"s{i:02d}", access_bps=(10 + 10 * i) * MBPS, n_hosts=3)
            for i in range(4)
        ]
    )
    dep = deploy_wan(w)
    w.net.engine.run_until(w.net.now + 30.0)
    service = RemosService.from_deployment(
        dep,
        ServiceConfig(
            rate=1e9,  # isolate admission control: no rate limiting here
            burst=1e9,
            max_inflight=64,
            lkg_entries=4096,
        ),
    )
    hosts = {f"s{i:02d}": str(w.host(f"s{i:02d}", 0).ip) for i in range(4)}
    sites = sorted(hosts)
    bodies = [
        {"src": hosts[sites[i]], "dst": hosts[sites[(i + 1) % 4]]}
        for i in range(4)
    ]
    return service, bodies


def percentile(sorted_vals: list[float], p: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(p / 100.0 * len(sorted_vals)))
    return sorted_vals[idx]


async def closed_loop_client(client, bodies, n_requests, results):
    for i in range(n_requests):
        body = bodies[i % len(bodies)]
        t0 = time.perf_counter()
        try:
            ans, served = await client.served("flow_info", body)
            results.append(
                {
                    "latency_s": time.perf_counter() - t0,
                    "served": served,
                    "status": str(ans.status),
                }
            )
        except Exception as exc:  # transport/policy error: recorded, asserted 0
            results.append(
                {
                    "latency_s": time.perf_counter() - t0,
                    "served": "error",
                    "status": getattr(exc, "code", type(exc).__name__),
                }
            )


def summarize(results, wall_s):
    lat = sorted(r["latency_s"] for r in results)
    served = [r["served"] for r in results]
    shed = [r for r in results if r["served"] == "shed_lkg"]
    return {
        "requests": len(results),
        "wall_s": wall_s,
        "throughput_rps": len(results) / wall_s if wall_s > 0 else 0.0,
        "p50_ms": percentile(lat, 50) * 1e3,
        "p95_ms": percentile(lat, 95) * 1e3,
        "p99_ms": percentile(lat, 99) * 1e3,
        "served_live": served.count("live"),
        "served_shed_lkg": served.count("shed_lkg"),
        "errors": served.count("error"),
        "shed_rate": len(shed) / len(results) if results else 0.0,
        "failed_answers": sum(1 for r in results if r["status"] == "failed"),
        "shed_non_stale": sum(1 for r in shed if r["status"] != "stale"),
    }


def test_service_load_closed_loop():
    service, bodies = build_service()

    async def run():
        # warm every query's LKG so shedding has something to serve
        warm_client = DirectClient(service, tenant="warmup")
        for body in bodies:
            ans, served = await warm_client.served("flow_info", body)
            assert served == "live" and str(ans.status) == "ok"

        results: list[dict] = []
        t0 = time.perf_counter()
        await asyncio.gather(
            *(
                closed_loop_client(
                    DirectClient(service, tenant=f"t{i:04d}"),
                    bodies,
                    REQUESTS_PER_CLIENT,
                    results,
                )
                for i in range(N_CLIENTS)
            )
        )
        return results, time.perf_counter() - t0

    results, wall_s = asyncio.run(run())
    summary = summarize(results, wall_s)
    summary["clients"] = N_CLIENTS

    # -- the load-shedding contract ------------------------------------
    assert summary["requests"] == N_CLIENTS * REQUESTS_PER_CLIENT
    assert summary["errors"] == 0, "every request must be answered"
    assert summary["failed_answers"] == 0, "no FAILED while LKG exists"
    assert summary["shed_non_stale"] == 0, "shed answers must be STALE"
    assert summary["served_shed_lkg"] > 0, "20x overload must shed"
    assert summary["served_live"] > 0, "admitted requests answer live"
    assert summary["p95_ms"] < 2000, "shedding must keep latency bounded"

    emit(
        "service_load",
        [
            f"closed-loop load: {N_CLIENTS} concurrent clients, "
            f"{summary['requests']} requests",
            f"throughput {summary['throughput_rps']:,.0f} req/s, "
            f"p50 {summary['p50_ms']:.2f} ms, p95 {summary['p95_ms']:.2f} ms, "
            f"p99 {summary['p99_ms']:.2f} ms",
            f"live {summary['served_live']}, shed-to-STALE "
            f"{summary['served_shed_lkg']} ({summary['shed_rate']:.1%}), "
            f"errors {summary['errors']}, FAILED {summary['failed_answers']}",
        ],
    )

    http_summary = _http_phase()
    emit_json(
        "service_load",
        {
            "direct": summary,
            "http": http_summary,
            "service_stats": dict(service.stats),
        },
    )


def _http_phase():
    """A smaller fleet over real TCP: same contract, socket costs in."""
    service, bodies = build_service()

    async def run():
        server = await start_server(service, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            warm = DirectClient(service, tenant="warmup")
            for body in bodies:
                await warm.served("flow_info", body)
            results: list[dict] = []
            clients = [
                HttpServiceClient("127.0.0.1", port, tenant=f"h{i:03d}")
                for i in range(HTTP_CLIENTS)
            ]
            t0 = time.perf_counter()
            await asyncio.gather(
                *(
                    closed_loop_client(
                        c, bodies, HTTP_REQUESTS_PER_CLIENT, results
                    )
                    for c in clients
                )
            )
            wall_s = time.perf_counter() - t0
            for c in clients:
                await c.close()
            return results, wall_s
        finally:
            server.close()
            await server.wait_closed()

    results, wall_s = asyncio.run(run())
    summary = summarize(results, wall_s)
    summary["clients"] = HTTP_CLIENTS
    assert summary["errors"] == 0
    assert summary["failed_answers"] == 0
    assert summary["shed_non_stale"] == 0
    emit(
        "service_load_http",
        [
            f"HTTP fleet: {HTTP_CLIENTS} keep-alive connections, "
            f"{summary['requests']} requests",
            f"throughput {summary['throughput_rps']:,.0f} req/s, "
            f"p50 {summary['p50_ms']:.2f} ms, p95 {summary['p95_ms']:.2f} ms",
            f"live {summary['served_live']}, shed {summary['served_shed_lkg']}, "
            f"errors {summary['errors']}",
        ],
    )
    return summary
