"""Ablations of Remos design choices (beyond the paper's own figures).

* **Max-min vs naive residual** for collective flow queries: the paper
  insists the Modeler run max-min calculations (§3.2); naive per-flow
  bottleneck residuals ignore contention between the requested flows
  and over-promise bandwidth.
* **Prediction model choice** for bandwidth series: the paper keeps a
  whole model zoo because "the appropriate predictive models for other
  kinds of resources (network bandwidth, for example) are unknown"
  (§5.3).  We quantify the spread between LAST / BM / AR on the
  random-walk cross-traffic our WAN experiments use.
* **SNMP polling interval** (extends Figs. 4-5): accuracy of burst
  tracking at 1/2/5/10 s.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.rps.models import parse_model

from _util import emit, fmt_row


# ---------------------------------------------------------------------------
# Ablation 1: max-min vs naive residual flow answers
# ---------------------------------------------------------------------------


def test_ablation_maxmin_vs_naive(benchmark):
    from repro.deploy import deploy_wan
    from repro.modeler.maxmin import predict_flows

    def run():
        world = build_multisite_wan(
            [
                SiteSpec("a", access_bps=10 * MBPS, n_hosts=4),
                SiteSpec("b", access_bps=100 * MBPS, n_hosts=4),
            ]
        )
        dep = deploy_wan(world)
        pairs = [(world.host("a", i), world.host("b", i)) for i in range(3)]
        answers = dep.session().flow_info_many(pairs)
        # naive: answer each pair independently, ignoring the others
        naive = [dep.session().flow_info(s, d) for s, d in pairs]
        # ground truth: actually start all three flows
        flows = [
            world.net.flows.start_flow(s, d) for s, d in pairs
        ]
        truth = [f.rate_bps for f in flows]
        return answers, naive, truth

    answers, naive, truth = benchmark.pedantic(run, rounds=1, iterations=1)
    joint_err = [abs(a.available_bps - t) / t for a, t in zip(answers, truth)]
    naive_err = [abs(n.available_bps - t) / t for n, t in zip(naive, truth)]
    lines = [
        "three simultaneous flows across one 10 Mbps access link",
        fmt_row(["flow", "truth", "max-min", "naive"], [6, 10, 10, 10]),
    ]
    for i, (t, a, n) in enumerate(zip(truth, answers, naive)):
        lines.append(
            fmt_row(
                [i, f"{t / MBPS:.2f}", f"{a.available_bps / MBPS:.2f}",
                 f"{n.available_bps / MBPS:.2f}"],
                [6, 10, 10, 10],
            )
        )
    lines.append("")
    lines.append(
        f"mean relative error: max-min {100 * np.mean(joint_err):.1f}%, "
        f"naive {100 * np.mean(naive_err):.1f}%"
    )
    emit("ablation_maxmin", lines)

    # max-min matches ground truth; naive over-promises ~3x
    assert np.mean(joint_err) < 0.1
    assert np.mean(naive_err) > 1.0
    for a, t in zip(answers, truth):
        assert a.available_bps == pytest.approx(t, rel=0.1)


# ---------------------------------------------------------------------------
# Ablation 2: predictor choice for bandwidth series
# ---------------------------------------------------------------------------


def _bandwidth_series(seed: int, n: int = 1500) -> np.ndarray:
    """The clipped-random-walk available-bandwidth signal the WAN
    experiments produce."""
    rng = np.random.default_rng(seed)
    x = np.empty(n)
    level = 2.0
    for i in range(n):
        level = min(4.0, max(0.5, level + rng.normal(0.0, 0.25)))
        x[i] = level
    return x


def test_ablation_predictor_choice(benchmark):
    specs = ["LAST", "BM(8)", "BM(32)", "AR(8)", "AR(16)", "MEAN"]

    def run():
        mses = {s: [] for s in specs}
        for seed in range(6):
            series = _bandwidth_series(seed)
            for spec in specs:
                fitted = parse_model(spec).fit(series[:600])
                errs = []
                for t in range(600, 1400):
                    fc = fitted.forecast(10)
                    errs.append(series[t + 9] - fc.values[9])
                    fitted.step(series[t])
                mses[spec].append(float(np.mean(np.square(errs))))
        return {s: float(np.mean(v)) for s, v in mses.items()}

    mses = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "10-step-ahead MSE predicting available bandwidth (random-walk signal)",
        fmt_row(["model", "MSE"], [8, 10]),
    ]
    for s in sorted(mses, key=lambda s: mses[s]):
        lines.append(fmt_row([s, f"{mses[s]:.4f}"], [8, 10]))
    emit("ablation_predictors", lines)

    # On a clipped random walk, conditional models beat the long-term
    # mean; AR should not lose badly to LAST (it subsumes it).
    assert mses["AR(16)"] < mses["MEAN"]
    assert mses["AR(16)"] < 1.3 * mses["LAST"]
    assert mses["BM(8)"] < mses["MEAN"]


# ---------------------------------------------------------------------------
# Ablation 3: polling interval sweep (extends Figs. 4-5)
# ---------------------------------------------------------------------------


def test_ablation_polling_interval(benchmark):
    import importlib

    fig45 = importlib.import_module("test_fig45_snmp_accuracy")

    def run():
        out = {}
        for interval in (1.0, 2.0, 5.0, 10.0):
            truth, observed = fig45.run_accuracy(interval)
            at, ao = fig45._align(truth, observed, interval)
            # compare against the *instantaneous* truth at sample times,
            # which penalises coarse windows at burst edges
            t_truth = truth[:, 0]
            inst = np.array(
                [truth[np.searchsorted(t_truth, t, side="right") - 1, 1]
                 for t, _ in observed]
            )
            rmse_inst = float(np.sqrt(np.mean((inst - observed[:, 1]) ** 2)))
            out[interval] = rmse_inst
        return out

    rmse = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "burst-tracking RMSE vs instantaneous truth, by polling interval",
        fmt_row(["poll[s]", "RMSE[Mbps]"], [8, 12]),
    ]
    for k in sorted(rmse):
        lines.append(fmt_row([f"{k:.0f}", f"{rmse[k] / MBPS:.2f}"], [8, 12]))
    lines.append("")
    lines.append("paper: closer tracking strains routers; 5 s is a good default")
    emit("ablation_polling", lines)

    # finer polling tracks instantaneous changes better
    assert rmse[1.0] < rmse[5.0]
    assert rmse[2.0] < rmse[10.0]
