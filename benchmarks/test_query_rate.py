"""§5.3 (text) — sustainable Remos query rate.

Paper: "we were able to run a Remos query for a single flow at about
14 Hz using the SNMP Collector, which itself typically makes SNMP
queries at a 1/5 Hz rate.  At such rates, the overhead of RPS with an
AR(16) or similar predictive model is in the noise."

We measure the *wall-clock* rate of warm-cache flow queries through the
full Modeler -> Master -> SNMP Collector stack, and compare the added
cost of predictive (RPS AR(16)) queries.
"""

from __future__ import annotations

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import build_switched_lan
from repro.deploy import deploy_lan
from repro.rps.service import RpsPredictionService

from _util import emit


@pytest.fixture(scope="module")
def warm_lan():
    lan = build_switched_lan(32, fanout=8)
    dep = deploy_lan(lan)
    dep.modeler.prediction_service = RpsPredictionService("AR(16)")
    # warm everything: discovery + monitor history
    lan.net.flows.start_flow(lan.hosts[0], lan.hosts[31], demand_bps=20 * MBPS)
    dep.modeler.flow_query(lan.hosts[0], lan.hosts[31])
    dep.start_monitoring()
    lan.net.engine.run_until(lan.net.now + 200.0)
    dep.stop()
    return lan, dep


def test_query_rate_plain(warm_lan, benchmark):
    lan, dep = warm_lan

    def one_query():
        return dep.modeler.flow_query(lan.hosts[0], lan.hosts[31])

    ans = benchmark(one_query)
    hz = 1.0 / benchmark.stats["mean"]
    emit(
        "query_rate_plain",
        [
            "warm-cache flow query rate through the full stack",
            f"paper: ~14 Hz on 2001 hardware; ours: {hz:,.0f} Hz wall-clock",
            f"answer: {ans.available_bps / MBPS:.1f} Mbps available",
        ],
    )
    assert hz > 14, "must at least match the paper's 2001-era rate"


def test_query_rate_with_prediction(warm_lan, benchmark):
    lan, dep = warm_lan

    def one_query():
        return dep.modeler.flow_query(
            lan.hosts[0], lan.hosts[31], predict=True, horizon_steps=1
        )

    ans = benchmark(one_query)
    hz = 1.0 / benchmark.stats["mean"]
    emit(
        "query_rate_predictive",
        [
            "predictive (AR(16)) flow query rate",
            f"{hz:,.0f} Hz wall-clock; predicted {0 if ans.predicted_bps is None else ans.predicted_bps / MBPS:.1f} Mbps",
            "paper: 'the overhead of RPS with an AR(16) model is in the noise'",
        ],
    )
    assert ans.predicted_bps is not None
    # prediction must not dominate the query cost (paper: in the noise
    # relative to 14 Hz; allow it to halve our much higher rate)
    assert hz > 14
