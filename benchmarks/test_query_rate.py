"""§5.3 (text) — sustainable Remos query rate.

Paper: "we were able to run a Remos query for a single flow at about
14 Hz using the SNMP Collector, which itself typically makes SNMP
queries at a 1/5 Hz rate.  At such rates, the overhead of RPS with an
AR(16) or similar predictive model is in the noise."

We measure the *wall-clock* rate of warm-cache flow queries through the
full Modeler -> Master -> SNMP Collector stack, compare the added cost
of predictive (RPS AR(16)) queries, and quantify the query-path
optimisations (concurrent Master delegation + Modeler query caching)
against an emulated pre-optimisation configuration.  Each run exports
its ``repro.obs`` registry snapshot as ``BENCH_*.json``.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro import faults, obs
from repro.common.status import QueryStatus
from repro.common.units import MBPS
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_lan, deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan
from repro.rps.service import RpsPredictionService

from _util import emit, emit_json, trace_breakdown


@pytest.fixture(scope="module")
def warm_lan():
    lan = build_switched_lan(32, fanout=8)
    dep = deploy_lan(lan)
    dep.modeler.prediction_service = RpsPredictionService("AR(16)")
    # warm everything: discovery + monitor history
    lan.net.flows.start_flow(lan.hosts[0], lan.hosts[31], demand_bps=20 * MBPS)
    dep.session().flow_info(lan.hosts[0], lan.hosts[31])
    dep.start_monitoring()
    lan.net.engine.run_until(lan.net.now + 200.0)
    dep.stop()
    return lan, dep


def test_query_rate_plain(warm_lan, benchmark):
    lan, dep = warm_lan

    def one_query():
        return dep.session().flow_info(lan.hosts[0], lan.hosts[31])

    with obs.scoped_registry() as reg:
        ans = benchmark(one_query)
        snap = obs.export.snapshot(reg)
        breakdown = trace_breakdown(reg)
    hz = 1.0 / benchmark.stats["mean"]
    emit(
        "query_rate_plain",
        [
            "warm-cache flow query rate through the full stack",
            f"paper: ~14 Hz on 2001 hardware; ours: {hz:,.0f} Hz wall-clock",
            f"answer: {ans.available_bps / MBPS:.1f} Mbps available",
        ],
    )
    emit_json(
        "query_rate_plain",
        {
            "hz_wall": hz,
            "mean_s": benchmark.stats["mean"],
            "available_mbps": ans.available_bps / MBPS,
            "breakdown": breakdown,
            "obs": snap,
        },
    )
    assert hz > 14, "must at least match the paper's 2001-era rate"


def test_query_rate_with_prediction(warm_lan, benchmark):
    lan, dep = warm_lan

    def one_query():
        return dep.session().flow_info(
            lan.hosts[0], lan.hosts[31], predict=True, horizon_steps=1
        )

    ans = benchmark(one_query)
    hz = 1.0 / benchmark.stats["mean"]
    emit(
        "query_rate_predictive",
        [
            "predictive (AR(16)) flow query rate",
            f"{hz:,.0f} Hz wall-clock; predicted {0 if ans.predicted_bps is None else ans.predicted_bps / MBPS:.1f} Mbps",
            "paper: 'the overhead of RPS with an AR(16) model is in the noise'",
        ],
    )
    assert ans.predicted_bps is not None
    # prediction must not dominate the query cost (paper: in the noise
    # relative to 14 Hz; allow it to halve our much higher rate)
    assert hz > 14


# -- query-path optimisation: batching + overlap + caching ----------------

N_SITES = 6
N_WARM_QUERIES = 40


def _build_wan():
    w = build_multisite_wan(
        [
            SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2)
            for i in range(N_SITES)
        ]
    )
    dep = deploy_wan(
        w, bench_config=BenchmarkConfig(probe_bytes=50_000, max_age_s=3600.0)
    )
    ips = [w.host(f"s{i:02d}", 0).ip for i in range(N_SITES)]
    pairs = [(ips[0], ips[i]) for i in range(1, N_SITES)]
    # collective patterns repeat pairs (striped transfers); the planner
    # must merge the duplicate instead of re-deriving its route
    pairs.append(pairs[0])
    dep.session().flow_info_many(pairs)  # cold pass: discovery + WAN stitching
    return w, dep, pairs


def _measure(w, dep, pairs, k=N_WARM_QUERIES):
    """(wall s/query, sim s/query) over k warm multi-pair flow queries."""
    t_wall = time.perf_counter()
    t_sim = w.net.now
    for _ in range(k):
        dep.session().flow_info_many(pairs)
    return (
        (time.perf_counter() - t_wall) / k,
        (w.net.now - t_sim) / k,
    )


def test_multisite_warm_query_speedup():
    """Concurrent delegation + query caching vs the serial uncached path.

    The baseline configuration emulates the stack before the query-path
    optimisations: one sub-query in flight at a time
    (``max_parallel=1``) and no Modeler response memoisation
    (``query_cache_ttl_s=0``).  The optimised configuration is the
    shipping default plus a staleness window matching the collectors'
    5 s repoll period.  Acceptance: the warm multi-site query rate
    improves by at least 2x.
    """
    w, dep, pairs = _build_wan()
    with obs.scoped_registry() as reg:
        reg.use_sim_clock(w.net.engine)
        # baseline: serial fan-out, no response cache
        dep.master.rpc.max_parallel = 1
        dep.modeler.query_cache_ttl_s = 0.0
        base_wall, base_sim = _measure(w, dep, pairs)
        # optimised: concurrent fan-out + memoised responses
        dep.master.rpc.max_parallel = 8
        dep.modeler.query_cache_ttl_s = 5.0
        opt_wall, opt_sim = _measure(w, dep, pairs)
        snap = obs.export.snapshot(reg)
        breakdown = trace_breakdown(reg)

    sim_speedup = base_sim / opt_sim
    wall_speedup = base_wall / opt_wall
    emit(
        "query_rate_multisite",
        [
            f"warm {len(pairs)}-pair flow queries across {N_SITES} WAN sites",
            f"baseline (serial, uncached): {base_sim * 1e3:.2f} sim-ms, "
            f"{1.0 / base_wall:,.0f} Hz wall",
            f"optimised (overlap+cache):   {opt_sim * 1e3:.2f} sim-ms, "
            f"{1.0 / opt_wall:,.0f} Hz wall",
            f"speedup: {sim_speedup:.1f}x sim, {wall_speedup:.1f}x wall",
        ],
    )
    emit_json(
        "query_rate",
        {
            "sites": N_SITES,
            "pairs": len(pairs),
            "warm_queries": N_WARM_QUERIES,
            "baseline": {"wall_s_per_query": base_wall, "sim_s_per_query": base_sim},
            "optimized": {"wall_s_per_query": opt_wall, "sim_s_per_query": opt_sim},
            "speedup": {"sim": sim_speedup, "wall": wall_speedup},
            "breakdown": breakdown,
            "obs": snap,
        },
    )
    assert sim_speedup >= 2.0, "query-path optimisations must buy >= 2x in sim time"
    assert wall_speedup >= 1.5, "and a real wall-clock rate improvement"


def test_multisite_query_rate_under_chaos():
    """The multi-site workload under a seeded 30% SNMP-drop storm with
    the retry budget disabled: every query completes (no unhandled
    exception), degradation is visible (``query.partial > 0``), and two
    runs with the same seed produce identical answers."""

    def run():
        w = build_multisite_wan(
            [
                SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2)
                for i in range(N_SITES)
            ]
        )
        dep = deploy_wan(
            w, bench_config=BenchmarkConfig(probe_bytes=50_000, max_age_s=3600.0)
        )
        inj = faults.install(
            dep, faults.FaultPlan(seed=7, snmp_drop_prob=0.3, snmp_retries=0)
        )
        ips = [w.host(f"s{i:02d}", 0).ip for i in range(N_SITES)]
        pairs = [(ips[0], ips[i]) for i in range(1, N_SITES)]
        with obs.scoped_registry() as reg:
            reg.use_sim_clock(w.net.engine)
            batches = [dep.session().flow_info_many(pairs) for _ in range(3)]
            snap = obs.export.snapshot(reg)
            breakdown = trace_breakdown(reg)
        return (
            [dataclasses.asdict(a) for batch in batches for a in batch],
            snap["counters"].get("query.partial", 0),
            inj.injected,
            w.net.now,
        ), breakdown, snap

    first, breakdown, snap = run()
    assert first == run()[0], "same seed must reproduce the identical run"
    answers, partial, injected, _ = first
    assert injected > 0
    assert partial > 0, "degradation must be visible in query.partial"
    assert any(a["status"] != QueryStatus.OK for a in answers)
    emit(
        "query_rate_chaos",
        [
            f"{N_SITES}-site workload, seeded 30% SNMP drop, no retry budget",
            f"faults injected: {injected}; degraded fetches: {partial}",
            f"degraded answers: {sum(a['status'] != QueryStatus.OK for a in answers)}"
            f"/{len(answers)}; zero unhandled exceptions",
        ],
    )
    emit_json(
        "query_rate_chaos",
        {
            "sites": N_SITES,
            "faults_injected": injected,
            "degraded_fetches": partial,
            "degraded_answers": sum(
                a["status"] != QueryStatus.OK for a in answers
            ),
            "answers": len(answers),
            "breakdown": breakdown,
            "obs": snap,
        },
    )
