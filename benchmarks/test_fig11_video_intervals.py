"""Fig. 11 — application-perceived bandwidth vs Remos-reported bandwidth.

Paper setup (§5.5): the same movie is downloaded from a local
high-bandwidth server and from a remote server limited to ~0.15 Mbps;
each arriving packet is timestamped, and application-perceived
bandwidth is averaged over 1, 2, and 10 second windows.

Paper results: the Remos-reported 0.15 Mbps line "corresponds well to
bandwidth measured by the application if it is averaged over a large
interval" (10 s — the interval Remos itself measures over); smaller
windows fluctuate with movie content; the local download is not
bandwidth-limited and shows pure content variation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.apps.video import VideoSession, VideoSpec
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan

from _util import emit, emit_json, fmt_row

REMOTE_BPS = 0.15 * MBPS


def run_fig11():
    with obs.scoped_registry() as reg:
        reported, local, remote = _run_fig11()
        snap = obs.export.snapshot(reg)
    return reported, local, remote, snap


def _run_fig11():
    world = build_multisite_wan(
        [
            SiteSpec("eth", access_bps=100 * MBPS, n_hosts=4),
            SiteSpec("remote", access_bps=REMOTE_BPS, n_hosts=2),
        ]
    )
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(probe_bytes=40_000, max_probe_s=8.0),
    )
    client = world.host("eth", 0)
    local_server = world.host("eth", 1)
    remote_server = world.host("remote", 0)

    reported = dep.session().flow_info(remote_server, client).available_bps

    # a movie whose content rate (~0.3 Mbps) exceeds the remote link,
    # so the remote download is bandwidth-limited while the local one
    # shows pure content variation — exactly the paper's two curves
    spec = VideoSpec(duration_s=35.0, fps=24.0, i_frame_bytes=5500.0,
                     content_swing=0.8, seed=3)
    local = VideoSession(world.net, local_server, client, spec,
                         label="video:local").run()
    remote = VideoSession(world.net, remote_server, client, spec,
                          label="video:remote").run()
    return reported, local, remote


def test_fig11_video_intervals(benchmark):
    reported, local, remote, snap = benchmark.pedantic(
        run_fig11, rounds=1, iterations=1
    )

    rows = {}
    for name, res in (("local", local), ("remote", remote)):
        for w in (1.0, 2.0, 10.0):
            t, bw = res.perceived_bandwidth(w)
            rows[(name, w)] = bw

    widths = [10, 8, 12, 12]
    lines = [
        "Application-perceived bandwidth vs averaging window",
        f"Remos-reported remote bandwidth: {reported / MBPS:.3f} Mbps "
        f"(paper: the 0.15 Mbps line)",
        "",
        fmt_row(["server", "win[s]", "mean[Mbps]", "sd[Mbps]"], widths),
    ]
    for (name, w), bw in sorted(rows.items()):
        lines.append(
            fmt_row(
                [name, f"{w:.0f}", f"{np.mean(bw) / MBPS:.3f}", f"{np.std(bw) / MBPS:.3f}"],
                widths,
            )
        )
    lines.append("")
    lines.append(
        "paper: 10 s averages match the reported line; 1-2 s windows fluctuate"
        " with movie content; the local download is content-limited"
    )
    emit("fig11_video_intervals", lines)
    emit_json(
        "fig11_video_intervals",
        {
            "reported_mbps": reported / MBPS,
            "windows": {
                f"{name}_{w:.0f}s": {
                    "mean_mbps": float(np.mean(bw)) / MBPS,
                    "sd_mbps": float(np.std(bw)) / MBPS,
                }
                for (name, w), bw in sorted(rows.items())
            },
            "local_frames": [local.frames_received, local.total_frames],
            "remote_frames": [remote.frames_received, remote.total_frames],
            "obs": snap,
        },
    )

    # --- shape assertions --------------------------------------------------
    # Remos reported the access-link rate
    assert reported == pytest.approx(REMOTE_BPS, rel=0.05)
    # the 10-second average of the remote download matches the reported line
    assert np.mean(rows[("remote", 10.0)]) == pytest.approx(reported, rel=0.15)
    # small windows fluctuate more than large ones
    assert np.std(rows[("remote", 1.0)]) > np.std(rows[("remote", 10.0)])
    assert np.std(rows[("local", 1.0)]) > np.std(rows[("local", 10.0)])
    # the local download is not limited by the reported remote rate:
    # it delivers the full content rate, well above 0.15 Mbps
    assert np.mean(rows[("local", 10.0)]) > 1.5 * reported
    # the local stream received every frame; the remote one did not
    assert local.frames_received == local.total_frames
    assert remote.frames_received < remote.total_frames
