"""Fig. 3 — LAN collector response time vs query size.

Paper setup: the CMU SCS bridged LAN; the Bridge Collector already
running; the SNMP Collector answers topology queries over 2..1280
nodes with a 5-second polling period.  Four cache scenarios: Cold
(SNMP collector just started), Part-Warm (previous query left ~1/2 of
the data), Warm-Bridge (static topology cached, dynamics cold), and
Warm (everything cached, periodic polling fresh).

Paper results: cold-cache queries cost up to ~450 s at N=1280 and grow
super-linearly; warm-cache queries are "a factor of three or more
better" and should be ~O(N).

We report *simulated* response time (every SNMP PDU and the per-pair
processing charge the simulation clock) plus PDU counts.
"""

from __future__ import annotations

import pytest

from repro.collectors.base import TopologyRequest
from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan

from _util import emit, emit_json, fmt_row

SIZES = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1280]
SCENARIOS = ["cold", "part-warm", "warm-bridge", "warm"]


@pytest.fixture(scope="module")
def lan_world():
    lan = build_switched_lan(1280, fanout=8)
    dep = deploy_lan(lan)  # bridge collector startup included
    return lan, dep


def _timed_query(lan, coll, ips):
    t0 = lan.net.now
    resp = coll.topology(TopologyRequest.of(ips))
    return lan.net.now - t0, resp.pdu_cost


def run_fig3(lan, dep):
    coll = dep.snmp_collectors["lan"]
    results: dict[str, dict[int, tuple[float, int]]] = {s: {} for s in SCENARIOS}
    for n in SIZES:
        ips = [str(h.ip) for h in lan.hosts[:n]]
        # Cold: the collector just started.
        coll.flush_caches()
        results["cold"][n] = _timed_query(lan, coll, ips)
        # Warm-bridge: static cached (from the cold query), dynamics gone.
        coll.flush_dynamics()
        results["warm-bridge"][n] = _timed_query(lan, coll, ips)
        # Part-warm: previous query left about half the data.
        coll.flush_caches(keep_fraction=0.5)
        coll.flush_dynamics()
        results["part-warm"][n] = _timed_query(lan, coll, ips)
        # Warm: everything cached, polling fresh.
        coll.poll_once()
        results["warm"][n] = _timed_query(lan, coll, ips)
    return results


def test_fig3_lan_scalability(lan_world, benchmark):
    lan, dep = lan_world
    results = benchmark.pedantic(lambda: run_fig3(lan, dep), rounds=1, iterations=1)

    widths = [6, 11, 11, 12, 11, 9, 9]
    lines = [
        "LAN collector response time (simulated seconds) vs query size",
        "paper: cold up to ~450 s at N=1280, warm >= 3x better, warm ~O(N)",
        "",
        fmt_row(["N", "cold", "part-warm", "warm-bridge", "warm",
                 "cold#PDU", "warm#PDU"], widths),
    ]
    for n in SIZES:
        lines.append(
            fmt_row(
                [
                    n,
                    f"{results['cold'][n][0]:.2f}",
                    f"{results['part-warm'][n][0]:.2f}",
                    f"{results['warm-bridge'][n][0]:.2f}",
                    f"{results['warm'][n][0]:.3f}",
                    results["cold"][n][1],
                    results["warm"][n][1],
                ],
                widths,
            )
        )
    big = SIZES[-1]
    ratio = results["cold"][big][0] / max(results["warm"][big][0], 1e-9)
    lines.append("")
    lines.append(f"cold/warm ratio at N={big}: {ratio:.1f}x (paper: >= 3x)")
    emit("fig3_lan_scalability", lines)
    emit_json(
        "fig3_lan_scalability",
        {
            "sizes": SIZES,
            "scenarios": {
                s: {
                    str(n): {"sim_s": results[s][n][0], "pdus": results[s][n][1]}
                    for n in SIZES
                }
                for s in SCENARIOS
            },
            "cold_warm_ratio_at_max": ratio,
        },
    )

    # --- shape assertions -------------------------------------------------
    for n in SIZES:
        cold_t, _ = results["cold"][n]
        warm_t, _ = results["warm"][n]
        assert warm_t <= cold_t, f"warm must not exceed cold at N={n}"
    # caching pays off by >= 3x at scale (the paper's headline claim)
    assert ratio >= 3.0
    # part-warm sits between cold and warm at scale
    assert (
        results["warm"][big][0]
        <= results["part-warm"][big][0]
        <= results["cold"][big][0] * 1.05
    )
    # cold grows steeply: 1280 costs much more than 128
    assert results["cold"][1280][0] > 5 * results["cold"][128][0]
    # warm-cache PDU cost is ~O(N): links grow linearly with hosts
    assert results["warm"][1280][1] <= 2 * 1280
