"""Extension benches: dynamic video handoff and wireless monitoring.

Both extend §5.5/§6.2 material:

* **Video handoff** — "[Remos] might similarly be used to determine
  alternate servers and routes for a dynamic video handoff."  We
  quantify the frames saved when the client may re-pick servers
  mid-stream, versus sticking with its initial choice, while the
  initial server's bandwidth collapses.
* **Wireless location monitoring** — the Bridge/Wireless collectors
  "must monitor the location of nodes on the network continuously."
  We measure handoff-detection latency as a function of the monitoring
  period: mean detection delay ~ period/2, the classic polling bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.video import HandoffVideoSession, VideoSession, VideoSpec
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.collectors.wireless_collector import WirelessCollector
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_wireless_lan
from repro.netsim.wireless import associate
from repro.snmp.agent import instrument_network

from _util import emit, fmt_row


def run_handoff_benefit(n_runs: int = 8):
    """Frames received with vs without mid-stream handoff."""
    spec = VideoSpec(duration_s=40.0, fps=24.0, i_frame_bytes=11000.0, seed=4)
    results = []
    for k in range(n_runs):
        def make_world():
            w = build_multisite_wan(
                [
                    SiteSpec("client", access_bps=100 * MBPS, n_hosts=2),
                    SiteSpec("alpha", access_bps=0.6 * MBPS, n_hosts=3),
                    SiteSpec("beta", access_bps=0.6 * MBPS, n_hosts=3),
                ]
            )
            dep = deploy_wan(
                w, bench_config=BenchmarkConfig(
                    probe_bytes=30_000, max_age_s=3.0, max_probe_s=5.0
                ),
            )
            # alpha collapses at a per-run time
            w.net.engine.at(
                w.net.now + 6.0 + k,
                lambda: w.net.flows.start_flow(
                    w.host("alpha", 1), w.host("client", 1),
                    demand_bps=0.55 * MBPS, label="crush",
                ),
            )
            return w, dep

        w, dep = make_world()
        servers = {"alpha": w.host("alpha", 0), "beta": w.host("beta", 0)}
        session = HandoffVideoSession(
            dep.modeler, w.net, w.host("client", 0), servers, spec,
            start_site="alpha",
        )
        _, with_handoff = session.run()

        w2, dep2 = make_world()
        static = VideoSession(
            w2.net, w2.host("alpha", 0), w2.host("client", 0), spec
        ).run()
        results.append(
            (with_handoff.frames_received, static.frames_received,
             len(session.handoffs))
        )
    return results, spec


def test_ext_video_handoff(benchmark):
    results, spec = benchmark.pedantic(run_handoff_benefit, rounds=1, iterations=1)
    total = int(spec.duration_s * spec.fps)
    widths = [5, 12, 10, 10]
    lines = [
        "frames received when the initial server collapses mid-stream",
        fmt_row(["run", "handoff", "static", "switches"], widths),
    ]
    for k, (ho, st, n) in enumerate(results):
        lines.append(fmt_row([k + 1, f"{ho}/{total}", f"{st}/{total}", n], widths))
    gains = [ho - st for ho, st, _ in results]
    lines.append("")
    lines.append(f"mean gain: {np.mean(gains):.0f} frames "
                 f"({100 * np.mean(gains) / total:.0f}% of the movie)")
    emit("ext_video_handoff", lines)

    # --- shape assertions ------------------------------------------------
    assert all(n >= 1 for _, _, n in results), "every run must hand off"
    assert np.mean(gains) > 0.1 * total, "handoff must save a real fraction"
    assert all(ho >= st for ho, st, _ in results)


def run_detection_latency():
    """Handoff-detection delay vs monitoring period."""
    periods = [2.0, 5.0, 10.0, 20.0]
    out = {}
    rng = np.random.default_rng(7)
    for period in periods:
        delays = []
        for trial in range(12):
            wl = build_wireless_lan(n_basestations=3, n_wireless_hosts=3)
            world = instrument_network(wl.net)
            wc = WirelessCollector(
                "wc", wl.net, world, wl.wired_hosts[0].ip,
                {bs.name: bs.management_ip for bs in wl.basestations},
            )
            wc.scan()
            detected = []
            wl.net.engine.every(period, lambda wc=wc, d=detected: (
                d.append(wl.net.now) if wc.monitor_tick() else None
            ))
            move_at = float(rng.uniform(5.0, 5.0 + period))
            h = wl.wireless_hosts[0]
            target = wl.basestations[2]
            wl.net.engine.at(move_at, lambda: (
                associate(wl.net, h, target),
                world.refresh_device(wl.basestations[0]),
                world.refresh_device(target),
            ))
            wl.net.engine.run_until(move_at + 3 * period + 1.0)
            if detected:
                delays.append(detected[0] - move_at)
        out[period] = (float(np.mean(delays)), len(delays))
    return out


def test_ext_wireless_detection_latency(benchmark):
    out = benchmark.pedantic(run_detection_latency, rounds=1, iterations=1)
    widths = [10, 14, 10]
    lines = [
        "handoff-detection latency vs monitoring period (12 trials each)",
        fmt_row(["period[s]", "mean delay[s]", "detected"], widths),
    ]
    for period, (mean_delay, n) in sorted(out.items()):
        lines.append(fmt_row([f"{period:.0f}", f"{mean_delay:.2f}", f"{n}/12"], widths))
    lines.append("")
    lines.append("polling bound: mean delay ~ period/2")
    emit("ext_wireless_detection", lines)

    # --- shape assertions -------------------------------------------------
    for period, (mean_delay, n) in out.items():
        assert n == 12, "every handoff must eventually be detected"
        assert mean_delay <= period * 1.1
    # longer periods detect slower
    assert out[20.0][0] > out[2.0][0]
    # mean ~ period/2 within a loose band
    for period, (mean_delay, _) in out.items():
        assert 0.15 * period <= mean_delay <= 0.9 * period