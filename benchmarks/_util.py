"""Shared helpers for the reproduction benchmarks.

Every benchmark prints a paper-style table to stdout *and* appends it to
``benchmarks/out/<name>.txt`` so a full run leaves a browsable record
(EXPERIMENTS.md is compiled from these).
"""

from __future__ import annotations

import json
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, lines: list[str]) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result as benchmarks/out/BENCH_<name>.json.

    The payload conventionally carries the benchmark's headline numbers
    plus an ``obs`` key holding ``repro.obs.export.snapshot(reg)`` of the
    run's registry, so regressions are diffable without re-running.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def fmt_row(cols, widths) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cols, widths))


def trace_breakdown(reg) -> dict:
    """Trace-derived attribution for a BENCH payload.

    Computed over the registry's *full* span ring (the ``obs`` snapshot
    truncates to the most recent spans): ``time_by_layer`` (self time
    per layer), ``time_by_site`` (fragment delegation per site), and
    retry/timeout tallies — so a BENCH diff shows not just that a run
    got slower but which layer or site absorbed the time.
    """
    from repro.obs import traceview

    spans = [traceview.record_to_dict(s) for s in reg.spans]
    counters = {
        (c.name if not c.labels
         else c.name + "{" + ",".join(f"{k}={v}" for k, v in c.labels) + "}"):
        c.value
        for c in reg.counters()
    }
    return traceview.breakdown(spans, counters)
