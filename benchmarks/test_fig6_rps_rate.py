"""Fig. 6 — CPU usage of the RPS host-load prediction system vs rate.

Paper setup: the streaming host-load prediction pipeline with the
appropriate AR(16) model, driven at measurement rates from 1 Hz up;
on a 500 MHz Alpha 21164 the system runs in excess of 700 Hz, saturates
around 1 kHz, and is negligible at the normal 1 Hz rate.

We time one measurement->prediction step (real process time), convert
to CPU fraction at each rate, and locate the saturation rate (where the
fraction reaches 1).  Absolute numbers differ from the Alpha; the
shape — linear growth to saturation, negligible cost at 1 Hz — must
hold.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.rps.hostload import host_load_trace
from repro.rps.predictor import StreamingPredictor

from _util import emit, fmt_row

RATES_HZ = [1, 10, 100, 500, 1000, 5000, 20000]


def measure_step_cost(n_steps: int = 2000) -> float:
    """Mean real CPU seconds per streaming observe() with AR(16)."""
    trace = host_load_trace(4000, seed=6)
    sp = StreamingPredictor("AR(16)", trace[:1000], horizon=1)
    stream = trace[1000 : 1000 + n_steps]
    t0 = time.process_time()
    for v in stream:
        sp.observe(float(v))
    return (time.process_time() - t0) / n_steps


def test_fig6_cpu_vs_rate(benchmark):
    per_step = benchmark.pedantic(measure_step_cost, rounds=3, iterations=1)
    per_step = measure_step_cost()  # use a fresh, stable measurement
    saturation_hz = 1.0 / per_step

    widths = [10, 12]
    lines = [
        "CPU usage of AR(16) host-load prediction vs measurement rate",
        "paper: >700 Hz on a 500 MHz Alpha; saturated at ~1 kHz; negligible at 1 Hz",
        "",
        fmt_row(["rate[Hz]", "CPU[%]"], widths),
    ]
    for rate in RATES_HZ:
        frac = min(1.0, per_step * rate)
        lines.append(fmt_row([rate, f"{100 * frac:.2f}"], widths))
    lines.append("")
    lines.append(f"per-step cost: {per_step * 1e6:.1f} us  ->  saturation ~{saturation_hz:,.0f} Hz")
    emit("fig6_rps_cpu_vs_rate", lines)

    # --- shape assertions ----------------------------------------------
    # negligible at the normal 1 Hz rate
    assert per_step * 1.0 < 0.01, "1 Hz must use <1% CPU"
    # the system sustains well beyond 700 Hz on modern hardware
    assert saturation_hz > 700
    # CPU fraction grows linearly with rate below saturation by
    # construction; check the measured step cost is stable enough that
    # the curve is meaningful
    again = measure_step_cost(500)
    assert again == pytest.approx(per_step, rel=1.0)


def test_fig6_latency_measurement(benchmark):
    """Paper: 'latency from measurement to prediction of 1-2 ms' on the
    Alpha.  Report ours."""
    trace = host_load_trace(2000, seed=7)
    sp = StreamingPredictor("AR(16)", trace[:1000], horizon=1)
    stream = iter(np.tile(trace[1000:], 50))

    def one_step():
        sp.observe(float(next(stream)))

    benchmark(one_step)
    emit(
        "fig6_latency",
        [
            "measurement-to-prediction latency (paper: 1-2 ms on 500 MHz Alpha)",
            f"ours: {benchmark.stats['mean'] * 1e6:.1f} us mean",
        ],
    )
    assert benchmark.stats["mean"] < 0.002, "must beat the 2 ms of 2001 hardware"
