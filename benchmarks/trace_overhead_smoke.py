"""Trace-overhead smoke check (CI gate).

Two guarantees the tracing subsystem makes, checked mechanically:

1. **Identical answers.**  A run under the default no-op registry and
   a run under a live tracing registry produce byte-identical answers
   (modulo the ``trace_id`` field, which is the point of tracing).
2. **Bounded overhead.**  Warm-cache query throughput with tracing on
   is within ``MAX_OVERHEAD`` of the no-op configuration.

The overhead estimate must survive a noisy shared CI host, where
machine-level drift (frequency scaling, neighbours, allocator state)
over a few seconds is the same order as the cost being measured.  So
the measurement is *paired*: each traced batch is divided by a no-op
batch run immediately next to it, alternating which mode goes first,
and the reported overhead is the **median** of the paired ratios.
Pairing cancels slow drift, alternation cancels ordering bias, and the
median shrugs off the occasional batch that eats a scheduler stall.
The GC is disabled (and collected) around each pair so collection
pauses land between measurements, not inside an arbitrary batch.

Run directly (exit 1 on violation)::

    PYTHONPATH=src python benchmarks/trace_overhead_smoke.py
"""

from __future__ import annotations

import dataclasses
import gc
import statistics
import sys
import time

from repro import obs
from repro.common.units import MBPS
from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan
from repro.rps.service import RpsPredictionService

#: tracing may cost at most this fraction of no-op wall time
MAX_OVERHEAD = 0.10
#: queries per measured batch / adjacent (no-op, traced) batch pairs
BATCH = 100
PAIRS = 24


def build():
    """The query-rate benchmark's warm 32-host LAN."""
    lan = build_switched_lan(32, fanout=8)
    dep = deploy_lan(lan)
    dep.modeler.prediction_service = RpsPredictionService("AR(16)")
    lan.net.flows.start_flow(lan.hosts[0], lan.hosts[31], demand_bps=20 * MBPS)
    dep.session().flow_info(lan.hosts[0], lan.hosts[31])
    dep.start_monitoring()
    lan.net.engine.run_until(lan.net.now + 200.0)
    dep.stop()
    return lan, dep


def answers_of(dep, lan, k: int) -> list[dict]:
    out = []
    for _ in range(k):
        ans = dep.session().flow_info(lan.hosts[0], lan.hosts[31])
        out.append(dataclasses.asdict(ans))
    return out


def check_identical_answers() -> int:
    """Fresh deployment per mode; answers must match except trace_id."""
    lan, dep = build()
    plain = answers_of(dep, lan, 5)
    lan, dep = build()
    with obs.scoped_registry() as reg:
        reg.use_sim_clock(lan.net.engine)
        traced = answers_of(dep, lan, 5)
    assert all(a["trace_id"] is None for a in plain)
    assert all(a["trace_id"] for a in traced)
    for a in plain + traced:
        a.pop("trace_id")
    if plain != traced:
        print("FAIL: answers differ between no-op and tracing registries")
        for i, (p, t) in enumerate(zip(plain, traced)):
            if p != t:
                print(f"  first diff at query {i}:")
                for key in p:
                    if p[key] != t[key]:
                        print(f"    {key}: {p[key]!r} != {t[key]!r}")
                break
        return 1
    print(f"OK: {len(plain)} answers identical (trace_id aside)")
    return 0


def measure_batch(dep, lan) -> float:
    t0 = time.perf_counter()
    for _ in range(BATCH):
        dep.session().flow_info(lan.hosts[0], lan.hosts[31])
    return time.perf_counter() - t0


def traced_batch(dep, lan) -> float:
    with obs.scoped_registry() as reg:
        reg.use_sim_clock(lan.net.engine)
        return measure_batch(dep, lan)


def check_overhead() -> int:
    lan, dep = build()
    # one throwaway batch per mode to warm code paths
    measure_batch(dep, lan)
    traced_batch(dep, lan)
    ratios = []
    gc.disable()
    try:
        for i in range(PAIRS):
            gc.collect()
            if i % 2 == 0:
                plain = measure_batch(dep, lan)
                traced = traced_batch(dep, lan)
            else:
                traced = traced_batch(dep, lan)
                plain = measure_batch(dep, lan)
            ratios.append(traced / plain)
    finally:
        gc.enable()
    overhead = statistics.median(ratios) - 1.0
    print(
        f"tracing overhead {overhead * 100:+.1f}% "
        f"(limit {MAX_OVERHEAD * 100:.0f}%; median of {PAIRS} paired "
        f"batches of {BATCH}, spread "
        f"{min(ratios) - 1:+.1%}..{max(ratios) - 1:+.1%})"
    )
    if overhead > MAX_OVERHEAD:
        print("FAIL: tracing overhead exceeds the budget")
        return 1
    print("OK: tracing overhead within budget")
    return 0


def main() -> int:
    return check_identical_answers() or check_overhead()


if __name__ == "__main__":
    sys.exit(main())
