"""Table 1 — per-site available bandwidth and standard deviation
measured by Remos.

Paper setup (§5.5): the video client at ETH measures available
bandwidth to five servers.  Reported (Mbps):

    ETH Zurich (local)   63.1   +- 5.61
    EPFL Lausanne         3.03  +- 0.17
    CMU                   0.50  +- 0.28
    U. Valladolid         0.37  +- 0.28
    U. Coimbra            0.18  +- 0.07

Each bandwidth tier is an order of magnitude below the previous —
that separation, and the much larger *relative* spread of the distant
sites, is what we reproduce.  The local ETH server is measured through
the SNMP-collector LAN path; the remote ones through benchmark
measurements, all via ordinary Remos flow queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.netsim.traffic import RandomWalkTraffic
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan

from _util import emit, emit_json, fmt_row

PAPER = {
    "eth-local": (63.1, 5.61),
    "epfl": (3.03, 0.17),
    "cmu": (0.50, 0.28),
    "valladolid": (0.37, 0.28),
    "coimbra": (0.18, 0.07),
}

N_SAMPLES = 80
SAMPLE_GAP_S = 30.0


def run_table1():
    with obs.scoped_registry() as reg:
        stats = _run_table1()
        snap = obs.export.snapshot(reg)
    return stats, snap


def _run_table1():
    world = build_multisite_wan(
        [
            SiteSpec("eth", access_bps=100 * MBPS, n_hosts=5, lan_bps=100 * MBPS),
            SiteSpec("epfl", access_bps=3.2 * MBPS, n_hosts=3),
            SiteSpec("cmu", access_bps=1.0 * MBPS, n_hosts=3),
            SiteSpec("valladolid", access_bps=0.9 * MBPS, n_hosts=3),
            SiteSpec("coimbra", access_bps=0.28 * MBPS, n_hosts=3),
        ]
    )
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(
            probe_bytes=100_000, max_age_s=20.0, max_probe_s=10.0
        ),
    )
    client = world.host("eth", 0)
    # the "local server" is another ETH host on the same LAN
    servers = {
        "eth-local": world.host("eth", 1),
        "epfl": world.host("epfl", 0),
        "cmu": world.host("cmu", 0),
        "valladolid": world.host("valladolid", 0),
        "coimbra": world.host("coimbra", 0),
    }
    # cross traffic: the ETH LAN carries local load (-> 63 not 100);
    # distant sites carry heavy relative load.
    gens = [
        # local load leaving the ETH server host: the measured LAN path
        # shares its uplink, giving the 63 +- 5.6 Mbps local figure
        RandomWalkTraffic(
            world.net, world.host("eth", 1), world.host("eth", 3),
            lo_bps=25 * MBPS, hi_bps=48 * MBPS, sigma_bps=8 * MBPS,
            step_s=2.0, seed=1, label="x:ethlan",
        ),
        RandomWalkTraffic(
            world.net, world.host("epfl", 1), world.host("eth", 4),
            lo_bps=0.05 * MBPS, hi_bps=0.35 * MBPS, sigma_bps=0.1 * MBPS,
            step_s=2.0, seed=2, label="x:epfl",
        ),
        RandomWalkTraffic(
            world.net, world.host("cmu", 1), world.host("eth", 4),
            lo_bps=0.05 * MBPS, hi_bps=0.95 * MBPS, sigma_bps=0.35 * MBPS,
            step_s=2.0, seed=3, label="x:cmu",
        ),
        RandomWalkTraffic(
            world.net, world.host("valladolid", 1), world.host("eth", 4),
            lo_bps=0.1 * MBPS, hi_bps=0.85 * MBPS, sigma_bps=0.35 * MBPS,
            step_s=2.0, seed=4, label="x:valladolid",
        ),
        RandomWalkTraffic(
            world.net, world.host("coimbra", 1), world.host("eth", 4),
            lo_bps=0.02 * MBPS, hi_bps=0.18 * MBPS, sigma_bps=0.06 * MBPS,
            step_s=2.0, seed=5, label="x:coimbra",
        ),
    ]
    for g in gens:
        g.start()
    world.net.engine.run_until(60.0)

    samples: dict[str, list[float]] = {s: [] for s in servers}
    for _ in range(N_SAMPLES):
        for site, server in servers.items():
            ans = dep.session().flow_info(server, client)
            samples[site].append(ans.available_bps)
        world.net.engine.run_until(world.net.now + SAMPLE_GAP_S)
    for g in gens:
        g.stop()
    return {s: (float(np.mean(v)), float(np.std(v))) for s, v in samples.items()}


def test_table1_site_bandwidth(benchmark):
    stats, snap = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    widths = [12, 12, 10, 13, 11]
    lines = [
        "Server location, available bandwidth and std-dev measured by Remos",
        "",
        fmt_row(["site", "mean[Mbps]", "sd[Mbps]", "paper[Mbps]", "paper sd"], widths),
    ]
    for site, (p_mean, p_sd) in PAPER.items():
        mean, sd = stats[site]
        lines.append(
            fmt_row(
                [site, f"{mean / MBPS:.2f}", f"{sd / MBPS:.2f}", p_mean, p_sd],
                widths,
            )
        )
    emit("table1_site_bandwidth", lines)
    emit_json(
        "table1_site_bandwidth",
        {
            "samples_per_site": N_SAMPLES,
            "sites": {
                site: {
                    "mean_mbps": mean / MBPS,
                    "sd_mbps": sd / MBPS,
                    "paper_mean_mbps": PAPER[site][0],
                    "paper_sd_mbps": PAPER[site][1],
                }
                for site, (mean, sd) in stats.items()
            },
            "obs": snap,
        },
    )

    means = {s: stats[s][0] for s in stats}
    # --- shape assertions -------------------------------------------------
    # strict ordering, matching the paper's tiers
    assert (
        means["eth-local"] > means["epfl"] > means["cmu"]
        > means["valladolid"] > means["coimbra"]
    )
    # the local server is an order of magnitude above EPFL, which is an
    # order of magnitude above the rest (the paper's observation)
    assert means["eth-local"] / means["epfl"] > 8
    assert means["epfl"] / means["cmu"] > 3
    # magnitudes in the paper's ballpark (generous factor: our WAN is
    # synthetic)
    for site, (p_mean, _) in PAPER.items():
        assert means[site] / MBPS == pytest.approx(p_mean, rel=0.8), site
    # distant sites fluctuate much more, relatively, than EPFL
    rel_epfl = stats["epfl"][1] / means["epfl"]
    rel_cmu = stats["cmu"][1] / means["cmu"]
    assert rel_cmu > 2 * rel_epfl
