"""Fig. 7 — CPU time to fit/init and step/predict RPS models.

Paper: "RPS's models vary over four orders of magnitude in their
computational costs", broken down into a fit/init cost (fitting to 600
samples) and a step/predict cost (push one new sample through, produce
one set of predictions).

We time both phases for the same model spread the paper shows —
trivial (MEAN/LAST), windowed, AR, MA, ARMA, ARIMA, ARFIMA — and check
the ordering and the orders-of-magnitude spread.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.rps.hostload import host_load_trace
from repro.rps.models import parse_model

from _util import emit, fmt_row

FIT_SAMPLES = 600  # the paper's fit size
SPECS = ["MEAN", "LAST", "BM(32)", "AR(16)", "MA(8)", "ARMA(8,8)", "ARIMA(8,1,8)", "ARFIMA(2,0)"]


def _time_us(fn, min_rounds: int = 5, max_seconds: float = 1.0) -> float:
    """Mean microseconds per call, adaptively repeated."""
    t_end = time.perf_counter() + max_seconds
    times = []
    while len(times) < min_rounds or (time.perf_counter() < t_end and len(times) < 200):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return 1e6 * float(np.median(times))


def run_model_costs():
    trace = host_load_trace(FIT_SAMPLES + 1000, seed=8)
    fit_data = trace[:FIT_SAMPLES]
    results = {}
    for spec in SPECS:
        model = parse_model(spec)
        fit_us = _time_us(lambda m=model: m.fit(fit_data))
        fitted = model.fit(fit_data)
        stream = iter(np.tile(trace[FIT_SAMPLES:], 100))

        def step_predict(f=fitted, s=stream):
            f.step(float(next(s)))
            f.forecast(1)

        step_us = _time_us(step_predict)
        results[spec] = (fit_us, step_us)
    return results


def test_fig7_model_costs(benchmark):
    results = benchmark.pedantic(run_model_costs, rounds=1, iterations=1)

    widths = [14, 14, 18]
    lines = [
        f"CPU time to fit/init ({FIT_SAMPLES} samples) and step/predict RPS models",
        "paper: costs vary over four orders of magnitude across models",
        "",
        fmt_row(["model", "fit/init[us]", "step/predict[us]"], widths),
    ]
    for spec in SPECS:
        fit_us, step_us = results[spec]
        lines.append(fmt_row([spec, f"{fit_us:.1f}", f"{step_us:.1f}"], widths))
    fits = [results[s][0] for s in SPECS]
    spread = max(fits) / max(min(fits), 1e-9)
    lines.append("")
    lines.append(f"fit-cost spread: {spread:,.0f}x (paper: ~10,000x)")
    emit("fig7_model_costs", lines)

    # --- shape assertions ----------------------------------------------
    # trivial models are the cheapest to fit
    assert results["MEAN"][0] < results["AR(16)"][0]
    assert results["LAST"][0] < results["AR(16)"][0]
    # ARMA/ARIMA (regression-based fits) cost more than pure AR
    assert results["ARMA(8,8)"][0] > results["AR(16)"][0]
    # the full spread covers >= 2 orders of magnitude (the paper's
    # Alpha showed ~4; modern numpy narrows constant factors, and
    # wall-clock micro-timings jitter run to run)
    assert spread > 150
    # step costs: trivial models beat ARMA-family stepping
    assert results["MEAN"][1] < results["ARMA(8,8)"][1]


def test_fig7_client_server_pays_fit_every_time(benchmark):
    """Paper §5.3: in the client-server interface 'the fit/init and
    step/predict costs are paid every time a query is made'."""
    from repro.rps.predictor import ClientServerPredictor

    trace = host_load_trace(FIT_SAMPLES + 10, seed=9)
    server = ClientServerPredictor("AR(16)")

    def one_request():
        server.request(trace[:FIT_SAMPLES], 1)

    benchmark(one_request)
    # a request costs at least one AR(16) fit
    model = parse_model("AR(16)")
    fit_us = _time_us(lambda: model.fit(trace[:FIT_SAMPLES]))
    assert benchmark.stats["mean"] * 1e6 > 0.5 * fit_us
