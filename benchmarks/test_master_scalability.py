"""§6.2 extension — Master Collector fan-out scalability, flat vs sharded.

"An issue that has not yet been explored is how far this architecture
scales in the performance domain — how high a rate of requests could be
satisfied."  We measure the dimensions the paper leaves open, on both
Master planes:

* **fan-out mode** — all-sites query response time vs number of sites
  involved, flat Master against a 4-shard :class:`ShardedMaster` over
  identical worlds (each site pair needs a stitched benchmark
  measurement, so all-pairs queries grow quadratically; per-site
  delegation grows linearly and is where sharding overlaps work);
* **large-topology mode** — a fixed 12-site query against seeded
  random WANs of 64/128/256 sites: query cost must depend on the
  query's scope, not on how many sites the directory holds (sublinear
  — in fact near-constant — in total site count);
* sustained warm query throughput against each plane (wall-clock).

The differential suite (``tests/collectors/test_sharding_equivalence``)
pins the two planes to byte-identical answers; this file pins their
*costs*, and ``check_perf_regression.py`` gates on the JSON emitted
here.
"""

from __future__ import annotations

import time

from repro import obs
from repro.common.units import MBPS
from repro.collectors.base import TopologyRequest
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.collectors.sharding import ShardingConfig
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_random_wan

from _util import emit, emit_json, fmt_row, trace_breakdown

SITE_COUNTS = [2, 4, 8, 12, 16]
FANOUT_SHARDS = 4
LARGE_COUNTS = [64, 128, 256]
LARGE_SHARDS = 8
LARGE_QUERY_SITES = 12

BENCH_CONFIG = BenchmarkConfig(probe_bytes=50_000, max_age_s=600.0)


def _cold_warm(w, dep, ips):
    t0 = w.net.now
    resp = dep.master.topology(TopologyRequest.of(ips))
    cold_s = w.net.now - t0
    t1 = w.net.now
    dep.master.topology(TopologyRequest.of(ips))
    warm_s = w.net.now - t1
    return cold_s, warm_s, resp.graph.num_edges()


def _one_pair_hz(dep, a, b):
    session = dep.session()
    t_wall = time.perf_counter()
    k = 0
    while time.perf_counter() - t_wall < 0.2:
        session.flow_info(a, b)
        k += 1
    return k / (time.perf_counter() - t_wall)


def run_fanout():
    """All-sites queries at growing site counts, flat vs sharded."""
    results = {}
    for n in SITE_COUNTS:
        row = {}
        for plane, sharding in (
            ("flat", None),
            ("sharded", ShardingConfig(n_shards=FANOUT_SHARDS)),
        ):
            w = build_multisite_wan(
                [SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2)
                 for i in range(n)]
            )
            dep = deploy_wan(w, bench_config=BENCH_CONFIG, sharding=sharding)
            ips = [w.host(f"s{i:02d}", 0).ip for i in range(n)]
            cold_s, warm_s, edges = _cold_warm(w, dep, ips)
            row[plane] = {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "edges": edges,
                "one_pair_hz": _one_pair_hz(
                    dep, w.host("s00", 0), w.host("s01", 0)
                ),
            }
        results[n] = row
    return results


def run_large_topology():
    """A fixed 12-site query against 64..256-site random WANs."""
    results = {}
    for n_sites in LARGE_COUNTS:
        row = {}
        for plane, sharding in (
            ("flat", None),
            ("sharded", ShardingConfig(n_shards=LARGE_SHARDS)),
        ):
            w = build_random_wan(n_sites, seed=5, hosts_per_site=(2, 2))
            dep = deploy_wan(w, bench_config=BENCH_CONFIG, sharding=sharding)
            names = sorted(w.sites)
            step = max(1, n_sites // LARGE_QUERY_SITES)
            chosen = names[::step][:LARGE_QUERY_SITES]
            ips = [str(w.sites[s].hosts[0].interfaces[0].ip) for s in chosen]
            cold_s, warm_s, edges = _cold_warm(w, dep, ips)
            row[plane] = {"cold_s": cold_s, "warm_s": warm_s, "edges": edges}
        results[n_sites] = row
    return results


def test_master_fanout_scalability(benchmark):
    with obs.scoped_registry() as reg:
        fanout, large = benchmark.pedantic(
            lambda: (run_fanout(), run_large_topology()), rounds=1, iterations=1
        )
        snap = obs.export.snapshot(reg)
        breakdown = trace_breakdown(reg)

    widths = [6, 10, 10, 10, 10, 8, 12, 12]
    lines = [
        "all-sites topology query vs site count (flat vs 4-shard master)",
        fmt_row(
            ["sites", "cold[s]", "sh cold", "warm[s]", "sh warm",
             "edges", "flat 1p Hz", "sh 1p Hz"],
            widths,
        ),
    ]
    for n in SITE_COUNTS:
        f, s = fanout[n]["flat"], fanout[n]["sharded"]
        lines.append(
            fmt_row(
                [n, f"{f['cold_s']:.2f}", f"{s['cold_s']:.2f}",
                 f"{f['warm_s']:.3f}", f"{s['warm_s']:.3f}", f["edges"],
                 f"{f['one_pair_hz']:,.0f}", f"{s['one_pair_hz']:,.0f}"],
                widths,
            )
        )
    lines += [
        "",
        f"fixed {LARGE_QUERY_SITES}-site query vs directory size "
        f"(flat vs {LARGE_SHARDS}-shard master)",
        fmt_row(["sites", "cold[s]", "sh cold", "warm[s]", "sh warm"], widths[:5]),
    ]
    for n in LARGE_COUNTS:
        f, s = large[n]["flat"], large[n]["sharded"]
        lines.append(
            fmt_row(
                [n, f"{f['cold_s']:.2f}", f"{s['cold_s']:.2f}",
                 f"{f['warm_s']:.3f}", f"{s['warm_s']:.3f}"],
                widths[:5],
            )
        )
    lines += [
        "",
        "cold cost is dominated by all-pairs benchmark probing (n(n-1)/2 "
        "WAN edges), which exactly one tier runs serially for "
        "byte-identity; sharding overlaps the per-site fan-out, and a "
        "fixed-scope query costs the same against a 256-site directory "
        "as against a 64-site one",
    ]
    emit("master_scalability", lines)
    emit_json(
        "master_scalability",
        {
            "by_sites": {
                str(n): {
                    "cold_s": fanout[n]["flat"]["cold_s"],
                    "warm_s": fanout[n]["flat"]["warm_s"],
                    "edges": fanout[n]["flat"]["edges"],
                    "one_pair_hz": fanout[n]["flat"]["one_pair_hz"],
                    "sharded_cold_s": fanout[n]["sharded"]["cold_s"],
                    "sharded_warm_s": fanout[n]["sharded"]["warm_s"],
                    "sharded_edges": fanout[n]["sharded"]["edges"],
                    "sharded_one_pair_hz": fanout[n]["sharded"]["one_pair_hz"],
                }
                for n in SITE_COUNTS
            },
            "large_topology": {
                str(n): {
                    "query_sites": LARGE_QUERY_SITES,
                    "n_shards": LARGE_SHARDS,
                    "flat": large[n]["flat"],
                    "sharded": large[n]["sharded"],
                }
                for n in LARGE_COUNTS
            },
            "breakdown": breakdown,
            "obs": snap,
        },
    )

    # --- shape assertions ------------------------------------------------
    for n in SITE_COUNTS:
        f, s = fanout[n]["flat"], fanout[n]["sharded"]
        # warm is much cheaper than cold at every scale, on both planes
        assert f["warm_s"] < f["cold_s"] / 3
        assert s["warm_s"] < s["cold_s"] / 3
        # the stitched mesh has n(n-1)/2 logical WAN edges plus site
        # detail, and sharding must not change the answer's shape
        assert f["edges"] >= n * (n - 1) / 2
        assert s["edges"] == f["edges"]
        # the sharded plane never costs meaningfully more than flat;
        # the absolute slack covers the per-shard hop RPCs, which
        # dominate relative cost only at toy site counts
        assert s["cold_s"] <= f["cold_s"] * 1.05 + 0.01
        assert s["warm_s"] <= f["warm_s"] * 1.05 + 0.01
    # flat cold grows super-linearly: 16 sites cost >4x of 4 sites
    assert fanout[16]["flat"]["cold_s"] > 4 * fanout[4]["flat"]["cold_s"]
    # single-pair queries stay fast regardless of deployment size
    assert fanout[16]["flat"]["one_pair_hz"] > 100
    assert fanout[16]["sharded"]["one_pair_hz"] > 100

    # large-topology mode: a fixed-scope query's cost is sublinear —
    # near-constant — in the directory's total site count
    for plane in ("flat", "sharded"):
        warm64 = large[64][plane]["warm_s"]
        warm256 = large[256][plane]["warm_s"]
        assert warm256 < warm64 * 1.5
        cold64 = large[64][plane]["cold_s"]
        cold256 = large[256][plane]["cold_s"]
        assert cold256 < cold64 * 2  # 4x the sites, <2x the cost
    for n in LARGE_COUNTS:
        assert (
            large[n]["sharded"]["cold_s"] <= large[n]["flat"]["cold_s"] * 1.05
        )
