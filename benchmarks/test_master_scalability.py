"""§6.2 extension — Master Collector fan-out scalability.

"An issue that has not yet been explored is how far this architecture
scales in the performance domain — how high a rate of requests could be
satisfied."  We measure two dimensions the paper leaves open:

* multi-site query response time vs number of sites involved (each
  site pair needs a stitched benchmark measurement, so all-pairs
  queries grow quadratically; per-site delegation grows linearly);
* sustained warm query throughput against one Master (wall-clock).
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.common.units import MBPS
from repro.collectors.base import TopologyRequest
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan

from _util import emit, emit_json, fmt_row, trace_breakdown

SITE_COUNTS = [2, 4, 8, 12, 16]


def run_fanout():
    results = {}
    for n in SITE_COUNTS:
        w = build_multisite_wan(
            [SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2)
             for i in range(n)]
        )
        dep = deploy_wan(
            w, bench_config=BenchmarkConfig(probe_bytes=50_000, max_age_s=600.0)
        )
        ips = [w.host(f"s{i:02d}", 0).ip for i in range(n)]
        t0 = w.net.now
        resp = dep.master.topology(TopologyRequest.of(ips))
        cold_s = w.net.now - t0
        t1 = w.net.now
        dep.master.topology(TopologyRequest.of(ips))
        warm_s = w.net.now - t1
        # wall-clock sustained rate of warm one-pair queries
        t_wall = time.perf_counter()
        k = 0
        while time.perf_counter() - t_wall < 0.2:
            dep.session().flow_info(w.host("s00", 0), w.host("s01", 0))
            k += 1
        rate_hz = k / (time.perf_counter() - t_wall)
        results[n] = (cold_s, warm_s, resp.graph.num_edges(), rate_hz)
    return results


def test_master_fanout_scalability(benchmark):
    with obs.scoped_registry() as reg:
        results = benchmark.pedantic(run_fanout, rounds=1, iterations=1)
        snap = obs.export.snapshot(reg)
        breakdown = trace_breakdown(reg)
    widths = [6, 10, 10, 8, 12]
    lines = [
        "all-sites topology query vs site count (one master)",
        fmt_row(["sites", "cold[s]", "warm[s]", "edges", "1-pair Hz"], widths),
    ]
    for n in SITE_COUNTS:
        cold, warm, edges, hz = results[n]
        lines.append(
            fmt_row([n, f"{cold:.2f}", f"{warm:.3f}", edges, f"{hz:,.0f}"], widths)
        )
    lines.append("")
    lines.append(
        "cold cost is dominated by all-pairs benchmark probing (n(n-1)/2 "
        "WAN edges); warm queries reuse cached measurements"
    )
    emit("master_scalability", lines)
    emit_json(
        "master_scalability",
        {
            "by_sites": {
                str(n): {
                    "cold_s": results[n][0],
                    "warm_s": results[n][1],
                    "edges": results[n][2],
                    "one_pair_hz": results[n][3],
                }
                for n in SITE_COUNTS
            },
            "breakdown": breakdown,
            "obs": snap,
        },
    )

    # --- shape assertions ------------------------------------------------
    # warm is much cheaper than cold at every scale
    for n in SITE_COUNTS:
        cold, warm, _, _ = results[n]
        assert warm < cold / 3
    # cold grows super-linearly: 16 sites cost >4x of 4 sites
    assert results[16][0] > 4 * results[4][0]
    # the stitched mesh has n(n-1)/2 logical WAN edges plus site detail
    for n in SITE_COUNTS:
        assert results[n][2] >= n * (n - 1) / 2
    # single-pair queries stay fast regardless of deployment size
    assert results[16][3] > 100
