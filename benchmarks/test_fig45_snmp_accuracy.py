"""Figs. 4-5 — SNMP Collector accuracy tracking traffic bursts.

Paper setup: a private testbed — two endpoints separated by two
routers; Netperf generates TCP bursts of varying lengths; the SNMP
Collector samples the octet counters every 2 s (Fig. 4) and 5 s
(Fig. 5) and its utilization estimates are compared against the
bandwidth Netperf itself reports.  Result: "a fairly good match"; the
2-second interval tracks changes more closely, the 5-second interval
is smoother; 5 s is a good default.

Here the ground truth is the fluid flow's exact rate, sampled densely;
the collector view is the counter-delta rate of the bottleneck link.
We report time series plus RMSE/correlation per sampling interval.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.units import MBPS
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.builders import build_dumbbell
from repro.netsim.traffic import BurstTraffic
from repro.snmp.agent import instrument_network
from repro.collectors.monitor import LinkMonitor, MonitorKey
from repro.snmp.client import SnmpClient

from _util import emit, fmt_row

#: Netperf-like burst schedule: (start, duration) seconds
BURSTS = [(10.0, 15.0), (40.0, 25.0), (85.0, 10.0), (110.0, 40.0), (165.0, 10.0)]
RUN_S = 190.0
DEMAND = 90 * MBPS


def run_accuracy(poll_interval: float):
    d = build_dumbbell()
    world = instrument_network(d.net)
    client = SnmpClient(world, d.h1.ip)
    burst = BurstTraffic(d.net, d.h1, d.h2, BURSTS, demand_bps=DEMAND)
    burst.start()

    # monitor r1's interface toward r2 (ifIndex 2)
    mon = LinkMonitor(MonitorKey("10.1.0.1", 2))
    truth: list[tuple[float, float]] = []
    observed: list[tuple[float, float]] = []

    def poll():
        mon.sample(client, d.net.now)
        if mon.ready:
            _, out_bps = mon.rates_bps()
            observed.append((d.net.now, out_bps))

    def sample_truth():
        truth.append((d.net.now, burst.current_rate()))

    d.net.engine.every(poll_interval, poll)
    d.net.engine.every(0.5, sample_truth)
    d.net.engine.run_until(RUN_S)
    return np.array(truth), np.array(observed)


def _align(truth: np.ndarray, observed: np.ndarray, poll_interval: float):
    """Ground truth averaged over each polling window, for fair compare."""
    t_truth, v_truth = truth[:, 0], truth[:, 1]
    avg_truth = []
    for t_end, _ in observed:
        mask = (t_truth > t_end - poll_interval) & (t_truth <= t_end)
        avg_truth.append(v_truth[mask].mean() if mask.any() else 0.0)
    return np.array(avg_truth), observed[:, 1]


@pytest.mark.parametrize("poll_interval", [2.0, 5.0])
def test_fig45_snmp_accuracy(poll_interval, benchmark):
    truth, observed = benchmark.pedantic(
        lambda: run_accuracy(poll_interval), rounds=1, iterations=1
    )
    aligned_truth, aligned_obs = _align(truth, observed, poll_interval)

    rmse = float(np.sqrt(np.mean((aligned_truth - aligned_obs) ** 2)))
    corr = float(np.corrcoef(aligned_truth, aligned_obs)[0, 1])
    mean_err = abs(aligned_truth.mean() - aligned_obs.mean())

    widths = [8, 14, 14]
    lines = [
        f"SNMP Collector vs ground truth, {poll_interval:.0f}-second interval",
        "paper: Netperf bursts between two endpoints separated by two routers;",
        "       'a fairly good match' between reported and observed bandwidth",
        "",
        fmt_row(["t[s]", "truth[Mbps]", "snmp[Mbps]"], widths),
    ]
    for (t, obs), tr in zip(observed, aligned_truth):
        lines.append(
            fmt_row([f"{t:.0f}", f"{tr / MBPS:.1f}", f"{obs / MBPS:.1f}"], widths)
        )
    lines.append("")
    lines.append(
        f"RMSE {rmse / MBPS:.2f} Mbps   corr {corr:.3f}   "
        f"mean-err {mean_err / MBPS:.2f} Mbps"
    )
    emit(f"fig45_snmp_accuracy_{int(poll_interval)}s", lines)

    # --- shape assertions ----------------------------------------------
    assert corr > 0.9, "collector must track the bursts"
    assert mean_err < 0.05 * DEMAND, "long-run averages must agree"
    # counter deltas over a full window are exact in the fluid model,
    # so errors concentrate at burst edges; RMSE stays well below the
    # burst amplitude
    assert rmse < 0.35 * DEMAND


def test_fig4_vs_fig5_tradeoff(benchmark):
    """The 2 s interval resolves burst edges better than 5 s (more
    samples near transitions); 5 s is smoother (fewer partial-window
    samples)."""

    def run_both():
        return run_accuracy(2.0), run_accuracy(5.0)

    (t2, o2), (t5, o5) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # edge resolution: count samples that land strictly inside a burst
    # transition window (+-2 s around each edge)
    edges = [t for start, dur in BURSTS for t in (start, start + dur)]

    def edge_samples(observed):
        times = observed[:, 0]
        return sum(
            ((times > e - 2.0) & (times < e + 2.0)).sum() for e in edges
        )

    assert edge_samples(o2) > edge_samples(o5)
    emit(
        "fig45_tradeoff",
        [
            f"samples near burst edges: 2s poll={edge_samples(o2)}, 5s poll={edge_samples(o5)}",
            "paper: tracking bandwidth more closely strains routers; 5 s is a good default",
        ],
    )
