"""Perf-regression gate for the warm query-rate benchmark (CI).

Re-measures the multi-site warm flow-query workload of
``test_query_rate.py`` and compares it against the committed
``benchmarks/out/BENCH_query_rate.json`` snapshot, failing (exit 1)
when warm per-query cost regresses by more than ``MAX_REGRESSION``.

Absolute wall times are meaningless across machines, so the comparison
is **machine-normalised**: each fresh optimised batch is paired with a
fresh *baseline* batch (the serial, uncached configuration the
snapshot's own baseline used) measured immediately next to it.  The
per-pair wall speedup ``baseline / optimised`` cancels host speed; the
gate takes the **median** over alternating-order pairs with the GC
disabled (and collected between pairs), the same noise discipline as
``trace_overhead_smoke.py``, and compares it to the snapshot's
committed wall speedup.  Equivalently: the fresh warm ms/query,
rescaled onto the snapshot machine via the baseline ratio, must not
exceed the committed warm ms/query by more than ``MAX_REGRESSION``.

A second gate covers the Master fan-out path, flat *and* sharded: it
re-measures the 16-site all-sites query from
``test_master_scalability.py`` in **simulated** seconds — deterministic
on any host, so no machine normalisation is needed — and compares
against the committed ``BENCH_master_scalability.json`` snapshot.  A
drift beyond ``SHARDED_TOLERANCE`` means the RPC cost model, the
overlap accounting, or the sharded delegation path changed; either fix
the regression or refresh the snapshot deliberately.

A PR that intentionally changes query-path performance must refresh the
snapshots (``PYTHONPATH=src python -m pytest benchmarks/test_query_rate.py
benchmarks/test_master_scalability.py``) and commit the new JSON
alongside the change.

Run directly (exit 1 on violation)::

    PYTHONPATH=src python benchmarks/check_perf_regression.py
"""

from __future__ import annotations

import gc
import json
import statistics
import sys
from pathlib import Path

from test_query_rate import _build_wan, _measure

#: warm cost may grow by at most this fraction vs the committed snapshot
MAX_REGRESSION = 0.20
#: adjacent (baseline, optimised) batch pairs; order alternates
PAIRS = 12
#: sim-time drift allowed on the fan-out gate; the measurement is
#: deterministic, so this only buys slack for benign cost-model tweaks
SHARDED_TOLERANCE = 0.10
#: site count the fan-out gate re-measures (the steepest committed row)
GATE_SITES = 16

SNAPSHOT = Path(__file__).resolve().parent / "out" / "BENCH_query_rate.json"
SHARDED_SNAPSHOT = (
    Path(__file__).resolve().parent / "out" / "BENCH_master_scalability.json"
)


def _baseline(dep) -> None:
    """Emulate the pre-optimisation stack: serial fan-out, no memo."""
    dep.master.rpc.max_parallel = 1
    dep.modeler.query_cache_ttl_s = 0.0


def _optimised(dep) -> None:
    dep.master.rpc.max_parallel = 8
    dep.modeler.query_cache_ttl_s = 5.0


def fresh_wall_speedup() -> float:
    w, dep, pairs = _build_wan()
    # one throwaway batch per configuration to warm code paths
    for configure in (_baseline, _optimised):
        configure(dep)
        _measure(w, dep, pairs, k=5)
    ratios = []
    gc.disable()
    try:
        for i in range(PAIRS):
            gc.collect()
            order = (_baseline, _optimised) if i % 2 == 0 else (_optimised, _baseline)
            walls = {}
            for configure in order:
                configure(dep)
                walls[configure], _ = _measure(w, dep, pairs)
            ratios.append(walls[_baseline] / walls[_optimised])
    finally:
        gc.enable()
    return statistics.median(ratios)


def sharded_fanout_gate() -> int:
    """Gate the 16-site fan-out cost, flat vs sharded, in sim seconds."""
    from repro.collectors.sharding import ShardingConfig
    from repro.common.units import MBPS
    from repro.deploy import deploy_wan
    from repro.netsim.builders import SiteSpec, build_multisite_wan

    from test_master_scalability import BENCH_CONFIG, FANOUT_SHARDS, _cold_warm

    snap = json.loads(SHARDED_SNAPSHOT.read_text())["by_sites"][str(GATE_SITES)]
    fresh = {}
    for plane, sharding in (
        ("flat", None),
        ("sharded", ShardingConfig(n_shards=FANOUT_SHARDS)),
    ):
        w = build_multisite_wan(
            [SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2)
             for i in range(GATE_SITES)]
        )
        dep = deploy_wan(w, bench_config=BENCH_CONFIG, sharding=sharding)
        ips = [w.host(f"s{i:02d}", 0).ip for i in range(GATE_SITES)]
        cold_s, warm_s, _ = _cold_warm(w, dep, ips)
        fresh[plane] = {"cold_s": cold_s, "warm_s": warm_s}

    checks = [
        ("flat cold", fresh["flat"]["cold_s"], snap["cold_s"]),
        ("flat warm", fresh["flat"]["warm_s"], snap["warm_s"]),
        ("sharded cold", fresh["sharded"]["cold_s"], snap["sharded_cold_s"]),
        ("sharded warm", fresh["sharded"]["warm_s"], snap["sharded_warm_s"]),
    ]
    rc = 0
    for label, got_s, committed_s in checks:
        limit_s = committed_s * (1.0 + SHARDED_TOLERANCE)
        if got_s > limit_s:
            print(
                f"FAIL: {GATE_SITES}-site {label} query regressed "
                f"({got_s:.4f} > {limit_s:.4f} sim-s; committed "
                f"{committed_s:.4f})"
            )
            rc = 1
        else:
            print(
                f"OK: {GATE_SITES}-site {label} {got_s:.4f} sim-s "
                f"(committed {committed_s:.4f}, +{SHARDED_TOLERANCE:.0%} budget)"
            )
    return rc


def main() -> int:
    snap = json.loads(SNAPSHOT.read_text())
    committed_speedup = snap["speedup"]["wall"]
    committed_warm_ms = snap["optimized"]["wall_s_per_query"] * 1e3
    fresh_speedup = fresh_wall_speedup()
    # the fresh warm cost, rescaled onto the snapshot machine via the
    # shared baseline workload
    normalized_warm_ms = (
        snap["baseline"]["wall_s_per_query"] * 1e3 / fresh_speedup
    )
    limit_ms = committed_warm_ms * (1.0 + MAX_REGRESSION)
    print(
        f"committed: {committed_warm_ms:.3f} ms/query warm "
        f"({committed_speedup:.1f}x over baseline)"
    )
    print(
        f"fresh:     {normalized_warm_ms:.3f} ms/query normalized "
        f"({fresh_speedup:.1f}x over baseline; median of {PAIRS} paired batches)"
    )
    rc = 0
    if normalized_warm_ms > limit_ms:
        print(
            f"FAIL: warm query cost regressed beyond the "
            f"{MAX_REGRESSION:.0%} budget ({normalized_warm_ms:.3f} > "
            f"{limit_ms:.3f} ms/query)"
        )
        rc = 1
    else:
        print(f"OK: within the {MAX_REGRESSION:.0%} regression budget")
    return rc | sharded_fanout_gate()


if __name__ == "__main__":
    sys.exit(main())
