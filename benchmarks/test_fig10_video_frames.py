"""Fig. 10 — video server selection vs correctly received frames.

Paper setup (§5.5): a video client at ETH picks the server with the
best Remos-measured bandwidth, then downloads the same movie from all
servers in decreasing bandwidth order; the adaptive server drops
low-priority frames to fit the available bandwidth, so the
correctly-received frame count is the application-level quality metric.

Paper results, with the two fast servers (ETH, EPFL) excluded because
they never drop frames: "the client-perceived quality corresponds to
the reported bandwidth in 90% of the cases"; in the 2 misses out of 21,
"the server only sent about half of the packets, probably due to a
high load on the server".

We run 21 experiments against the three distant-server analogues
(CMU / Valladolid / Coimbra tiers) and inject a 50%-efficiency server
overload into two experiments, exactly the paper's failure mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.netsim.traffic import RandomWalkTraffic
from repro.apps.video import VideoSpec, choose_and_stream
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan

from _util import emit, emit_json, fmt_row

N_EXPERIMENTS = 21
OVERLOADED_RUNS = {7, 15}  # two experiments hit an overloaded server


def run_fig10(consider_load: bool = False):
    with obs.scoped_registry() as reg:
        rows = _run_fig10(consider_load)
        snap = obs.export.snapshot(reg)
    return rows, snap


def _run_fig10(consider_load: bool):
    world = build_multisite_wan(
        [
            SiteSpec("eth", access_bps=100 * MBPS, n_hosts=4),
            SiteSpec("cmu", access_bps=1.1 * MBPS, n_hosts=3),
            SiteSpec("valladolid", access_bps=0.75 * MBPS, n_hosts=3),
            SiteSpec("coimbra", access_bps=0.28 * MBPS, n_hosts=3),
        ]
    )
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(
            probe_bytes=60_000, max_age_s=30.0, max_probe_s=8.0
        ),
    )
    client = world.host("eth", 0)
    servers = {
        "cmu": world.host("cmu", 0),
        "valladolid": world.host("valladolid", 0),
        "coimbra": world.host("coimbra", 0),
    }
    gens = []
    for i, (site, (lo, hi, sg)) in enumerate(
        {
            "cmu": (0.05 * MBPS, 0.7 * MBPS, 0.2 * MBPS),
            "valladolid": (0.1 * MBPS, 0.6 * MBPS, 0.2 * MBPS),
            "coimbra": (0.02 * MBPS, 0.18 * MBPS, 0.05 * MBPS),
        }.items()
    ):
        g = RandomWalkTraffic(
            world.net, world.host(site, 1), world.host("eth", 2),
            lo_bps=lo, hi_bps=hi, sigma_bps=sg, step_s=2.0, seed=10 + i,
            label=f"x:{site}",
        )
        g.start()
        gens.append(g)
    world.net.engine.run_until(60.0)

    # a movie that needs more than any distant server can deliver
    spec = VideoSpec(duration_s=30.0, fps=24.0, i_frame_bytes=11000.0)
    rows = []  # (picked, {site: frames})
    for k in range(N_EXPERIMENTS):
        # pre-rank to decide which server would be "overloaded"
        efficiencies = {}
        overloaded = None
        if k in OVERLOADED_RUNS:
            reported = {
                s: dep.session().flow_info(h, client).available_bps
                for s, h in servers.items()
            }
            overloaded = max(reported, key=lambda s: reported[s])
            efficiencies[overloaded] = 0.5
            servers[overloaded].load_source = lambda t: 8.0
        picked, results = choose_and_stream(
            dep.modeler, world.net, client, servers,
            VideoSpec(duration_s=30.0, fps=24.0, i_frame_bytes=11000.0, seed=k),
            efficiencies=efficiencies,
            consider_load=consider_load,
        )
        if overloaded is not None:
            servers[overloaded].load_source = None
        rows.append((picked, {s: r.frames_received for s, r in results.items()},
                     results[picked].total_frames))
        world.net.engine.run_until(world.net.now + 30.0)
    for g in gens:
        g.stop()
    return rows


def test_fig10_video_frames(benchmark):
    rows, snap = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    widths = [5, 12, 8, 12, 9, 7]
    lines = [
        "Correctly received frames per experiment; * marks the picked server",
        "paper: picked server receives the most frames in ~90% of cases;",
        "       2 of 21 misses due to an overloaded server sending half its packets",
        "",
        fmt_row(["exp", "cmu", "vallad", "coimbra", "best?", "total"], widths),
    ]
    hits = 0
    normal_hits = 0
    n_normal = len(rows) - len(OVERLOADED_RUNS)
    for k, (picked, frames, total) in enumerate(rows):
        best = max(frames, key=lambda s: frames[s])
        hit = picked == best
        hits += hit
        if k not in OVERLOADED_RUNS:
            normal_hits += hit
        cells = []
        for s in ("cmu", "valladolid", "coimbra"):
            mark = "*" if s == picked else " "
            cells.append(f"{frames[s]}{mark}")
        note = "ok" if hit else ("ovld" if k in OVERLOADED_RUNS else "MISS")
        lines.append(fmt_row([k + 1, cells[0], cells[1], cells[2], note, total], widths))
    rate = hits / len(rows)
    normal_rate = normal_hits / n_normal
    lines.append("")
    lines.append(
        f"picked server had the most frames in {100 * rate:.0f}% of runs "
        f"({100 * normal_rate:.0f}% excluding the {len(OVERLOADED_RUNS)} "
        f"overload runs; paper: ~90% with 2 overload misses)"
    )
    emit("fig10_video_frames", lines)
    emit_json(
        "fig10_video_frames",
        {
            "experiments": len(rows),
            "overload_runs": sorted(OVERLOADED_RUNS),
            "hit_rate": rate,
            "normal_hit_rate": normal_rate,
            "frames": [
                {"picked": picked, "received": frames, "total": total}
                for picked, frames, total in rows
            ],
            "obs": snap,
        },
    )

    # --- shape assertions -------------------------------------------------
    assert normal_rate >= 0.75, "bandwidth must predict frame quality"
    # the metric is discriminative: the narrowest server always drops
    # frames, and nearly every stream drops something
    streams = [(f, total) for _, frames, total in rows for f in [frames]]
    for frames, total in streams:
        assert frames["coimbra"] < 0.5 * total
    dropped = sum(
        1 for frames, total in streams for s, n in frames.items() if n < total
    )
    assert dropped >= 0.8 * 3 * len(rows)
    # overloaded experiments must show degradation on the picked server
    for k in OVERLOADED_RUNS:
        picked, frames, total = rows[k]
        assert frames[picked] < 0.85 * total


def test_fig10_load_aware_extension(benchmark):
    """§5.5's own diagnosis, applied: with node-load queries in the
    selection ('other parameters … must be taken into account'), the
    two overload misses disappear — the client dodges the swamped
    server and lands on the best healthy one."""
    rows, snap = benchmark.pedantic(
        lambda: run_fig10(consider_load=True), rounds=1, iterations=1
    )
    hits = 0
    overload_hits = 0
    for k, (picked, frames, total) in enumerate(rows):
        best = max(frames, key=lambda s: frames[s])
        hit = picked == best
        hits += hit
        if k in OVERLOADED_RUNS:
            overload_hits += hit
    rate = hits / len(rows)
    emit(
        "fig10_load_aware",
        [
            "Fig. 10 rerun with load-aware selection (node queries included)",
            f"picked server had the most frames in {100 * rate:.0f}% of runs",
            f"overload runs hit: {overload_hits}/{len(OVERLOADED_RUNS)} "
            "(bandwidth-only selection missed both)",
        ],
    )
    emit_json(
        "fig10_load_aware",
        {
            "experiments": len(rows),
            "hit_rate": rate,
            "overload_hits": overload_hits,
            "obs": snap,
        },
    )
    assert overload_hits == len(OVERLOADED_RUNS), (
        "load-aware selection must dodge the overloaded servers"
    )
    assert rate >= 0.75
