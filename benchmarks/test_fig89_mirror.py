"""Figs. 8-9 — Mirrored server experiment.

Paper setup (§5.4): an application at CMU reads a 3 MB file from a
replica chosen via Remos bandwidth queries, then from every other
replica for comparison.

* Fig. 8, well-connected sites (Harvard / ISI / NWU / ETH): averaged
  over 108 trials the achieved throughputs were 2.03 / 2.15 / 4.11 /
  1.99 Mbps, and Remos chose the fastest site 83% of the time.
* Fig. 9, poorly-connected sites (Coimbra 0.25, Valladolid 1.02, DSL
  0.08 Mbps): 72 trials, best site picked 82% of the time.

Both figures also show the *effective* bandwidth of the chosen site
(charging the Remos query time), which still beats the slower sites.

Our sites get the paper's bandwidth regimes via access-link caps plus
random-walk cross traffic; collectors cache measurements (periodic
probing + staleness window), so mispicks arise the same way they did
in the paper: the world moved between measurement and transfer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.netsim.traffic import RandomWalkTraffic
from repro.apps.mirror import MirrorClient
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan

from _util import emit, fmt_row

FILE_BYTES = 3_000_000  # the paper's 3 MB


def _run_mirror(site_caps, cross_specs, n_trials, trial_gap_s, seed0=0):
    """Generic mirror experiment: site_caps maps server site ->
    access-link capacity; cross_specs maps site -> (lo, hi, sigma) of
    its cross-traffic random walk."""
    specs = [SiteSpec("cmu", access_bps=50 * MBPS, n_hosts=4)]
    for name, cap in site_caps.items():
        specs.append(SiteSpec(name, access_bps=cap, n_hosts=4))
    world = build_multisite_wan(specs)
    # On-demand probing only: periodic all-pairs probes would saturate
    # the slow access links ("too expensive and intrusive", §6.1).
    # Probes fire inside flow queries when the cached measurement goes
    # stale, so their cost lands in the query time — which is exactly
    # what the effective-bandwidth bars charge.
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(
            probe_bytes=100_000, period_s=60.0, max_age_s=90.0, max_probe_s=10.0
        ),
    )
    # cross traffic: other hosts at each server site push toward cmu
    gens = []
    for i, (name, (lo, hi, sigma)) in enumerate(cross_specs.items()):
        g = RandomWalkTraffic(
            world.net, world.host(name, 1), world.host("cmu", 1),
            lo_bps=lo, hi_bps=hi, sigma_bps=sigma, step_s=2.0,
            seed=seed0 + i, label=f"x:{name}",
        )
        g.start()
        gens.append(g)
    world.net.engine.run_until(world.net.now + 120.0)  # let cross traffic mix

    client = MirrorClient(
        dep.modeler, world.net, world.host("cmu", 0),
        {name: world.host(name, 0) for name in site_caps},
        file_bytes=FILE_BYTES,
    )
    for _ in range(n_trials):
        client.run_trial()
        world.net.engine.run_until(world.net.now + trial_gap_s)
    dep.stop()
    for g in gens:
        g.stop()
    return client


def _report(name, client, paper_note):
    per_site: dict[str, list[float]] = {}
    for t in client.trials:
        for site, bps in t.achieved_bps.items():
            per_site.setdefault(site, []).append(bps)
    rank_avgs = client.rank_averages()
    eff = np.mean([client.effective_bandwidth(t) for t in client.trials])
    widths = [14, 12]
    lines = [paper_note, ""]
    lines.append(fmt_row(["site", "avg[Mbps]"], widths))
    for site in sorted(per_site, key=lambda s: -np.mean(per_site[s])):
        lines.append(fmt_row([site, f"{np.mean(per_site[site]) / MBPS:.2f}"], widths))
    lines.append("")
    lines.append(fmt_row(["rank", "avg[Mbps]"], widths))
    for i, avg in enumerate(rank_avgs):
        lines.append(fmt_row([f"choice #{i + 1}", f"{avg / MBPS:.2f}"], widths))
    lines.append("")
    lines.append(f"1st choice effective bandwidth (incl. query): {eff / MBPS:.2f} Mbps")
    lines.append(
        f"Remos picked the fastest site {100 * client.best_pick_rate():.0f}% "
        f"of {len(client.trials)} trials"
    )
    emit(name, lines)
    return rank_avgs, eff


def test_fig8_well_connected(benchmark):
    client = benchmark.pedantic(
        lambda: _run_mirror(
            site_caps={
                "harvard": 3.4 * MBPS,
                "isi": 3.5 * MBPS,
                "nwu": 5.6 * MBPS,
                "eth": 3.3 * MBPS,
            },
            cross_specs={
                "harvard": (0.2 * MBPS, 2.6 * MBPS, 0.9 * MBPS),
                "isi": (0.2 * MBPS, 2.6 * MBPS, 0.9 * MBPS),
                "nwu": (0.2 * MBPS, 2.8 * MBPS, 0.9 * MBPS),
                "eth": (0.2 * MBPS, 2.6 * MBPS, 0.9 * MBPS),
            },
            n_trials=108,
            trial_gap_s=20.0,
        ),
        rounds=1, iterations=1,
    )
    rank_avgs, eff = _report(
        "fig8_mirror_well_connected", client,
        "paper: Harvard 2.03, ISI 2.15, NWU 4.11, ETH 1.99 Mbps; best pick 83%",
    )
    pick = client.best_pick_rate()
    # --- shape assertions -------------------------------------------------
    assert 0.6 <= pick <= 0.98, f"pick rate {pick} out of the paper's regime"
    # ranks ordered: what Remos ranked higher achieved more on average
    assert rank_avgs[0] > rank_avgs[1] > rank_avgs[-1]
    # effective bandwidth: below the raw first choice, above choice #2
    assert eff < rank_avgs[0]
    assert eff > rank_avgs[1]


def test_fig9_poorly_connected(benchmark):
    client = benchmark.pedantic(
        lambda: _run_mirror(
            site_caps={
                "valladolid": 1.4 * MBPS,
                "coimbra": 0.5 * MBPS,
                "dsl": 0.08 * MBPS,
            },
            cross_specs={
                "valladolid": (0.05 * MBPS, 0.8 * MBPS, 0.3 * MBPS),
                "coimbra": (0.05 * MBPS, 0.4 * MBPS, 0.15 * MBPS),
            },
            n_trials=72,
            trial_gap_s=20.0,
            seed0=50,
        ),
        rounds=1, iterations=1,
    )
    rank_avgs, eff = _report(
        "fig9_mirror_poorly_connected", client,
        "paper: Valladolid 1.02, Coimbra 0.25, DSL 0.08 Mbps; best pick 82%",
    )
    pick = client.best_pick_rate()
    assert 0.6 <= pick <= 1.0
    assert rank_avgs[0] > rank_avgs[1] > rank_avgs[2]
    # the paper's point: consulting Remos beats picking a slower site
    # even on poor links
    assert eff > rank_avgs[1]
