"""Ablation: RPS refit feedback vs NWS multi-expert selection (§3.3).

"In RPS, this continuous testing (done by the evaluator) is used to
decide when the model must be refit.  In contrast, the Network Weather
Service uses similar feedback to decide which of a set of models to use
next."  Both strategies exist in this repo; this benchmark runs them
head-to-head on regime-shifting host-load signals, with a fit-once
AR(16) as the no-feedback baseline.

Expected shape: the no-feedback baseline suffers most from level
shifts; both feedback strategies recover; neither dominates everywhere
(which is why 'being able to chose between' approaches matters, §2.3).
"""

from __future__ import annotations

import numpy as np

from repro.rps.hostload import host_load_trace
from repro.rps.models import parse_model

from _util import emit, fmt_row

SPECS = {
    "fit-once": "AR(16)",
    "RPS refit": "REFIT(AR(16),150)",
    "NWS experts": "EXPERTS(AR(16)+BM(16)+LAST+MEAN)",
}
FIT, EVAL = 600, 1500
#: forecast horizon: at 10+ steps an AR model reverts toward its
#: *fitted* mean, so stale fits pay for level shifts — that is where
#: feedback earns its keep
HORIZON = 10


def run_feedback_ablation():
    mses: dict[str, list[float]] = {k: [] for k in SPECS}
    for trace_id in range(6):
        # aggressive epochs: level shifts every ~200 s stress feedback
        trace = host_load_trace(
            FIT + EVAL + HORIZON, hurst=0.8, texture_scale=0.45,
            epoch_mean_s=200.0, epoch_jump=0.8, smoothing_s=2.0,
            seed=300 + trace_id,
        )
        for label, spec in SPECS.items():
            fitted = parse_model(spec).fit(trace[:FIT])
            errs = []
            for t in range(FIT, FIT + EVAL):
                fc = fitted.forecast(HORIZON)
                errs.append(trace[t + HORIZON - 1] - float(fc.values[-1]))
                fitted.step(float(trace[t]))
            mses[label].append(float(np.mean(np.square(errs))))
    return {k: float(np.mean(v)) for k, v in mses.items()}


def test_ablation_feedback_strategies(benchmark):
    mses = benchmark.pedantic(run_feedback_ablation, rounds=1, iterations=1)
    lines = [
        f"{HORIZON}-step MSE on regime-shifting host load (6 traces)",
        fmt_row(["strategy", "MSE"], [14, 10]),
    ]
    for k in sorted(mses, key=lambda k: mses[k]):
        lines.append(fmt_row([k, f"{mses[k]:.4f}"], [14, 10]))
    lines.append("")
    lines.append(
        "paper: RPS refits on evaluator feedback; NWS re-selects among experts"
    )
    emit("ablation_feedback", lines)

    # --- shape assertions -------------------------------------------------
    # feedback beats fit-once on shifting signals
    assert mses["RPS refit"] < mses["fit-once"]
    assert mses["NWS experts"] < mses["fit-once"]
    # the two feedback designs land in the same league (within 2x)
    ratio = mses["RPS refit"] / mses["NWS experts"]
    assert 0.5 < ratio < 2.0
