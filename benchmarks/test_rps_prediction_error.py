"""§5.3 (text) — RPS prediction quality on host load.

Paper claims:

* "For host load, AR(16) predictors produce one-second-ahead error
  variances that are 70% lower than raw signal variance, and provide
  benefits out to at least 30 seconds."
* "RPS also characterizes its own prediction error, and that
  characterization is usually quite accurate regardless of the data."

We reproduce both on synthetic self-similar host-load traces (the real
CMU traces are not shippable; the generator preserves the relevant
statistics — positivity, long-range dependence, epochal level shifts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rps.evaluator import Evaluator
from repro.rps.hostload import host_load_trace
from repro.rps.models import parse_model

from _util import emit, fmt_row

HORIZONS = [1, 2, 5, 10, 20, 30]
N_TRACES = 8
FIT = 600
EVAL = 1200


def run_prediction_error():
    """Per-horizon error variance of AR(16), averaged over traces.

    The model is the periodically-refit AR(16) the RPS host-load
    pipeline actually runs (the evaluator triggers refits in
    production; here the REFIT template refits every 300 samples).
    Raw variance is the whole trace's — "raw signal variance" is a
    property of the signal, not of the evaluation window.
    """
    err_var = {h: [] for h in HORIZONS}
    raw_var = []
    calib = []
    for trace_id in range(N_TRACES):
        trace = host_load_trace(
            FIT + EVAL + max(HORIZONS), hurst=0.8, texture_scale=0.5,
            epoch_mean_s=400.0, epoch_jump=0.5, smoothing_s=2.0,
            seed=100 + trace_id,
        )
        fitted = parse_model("REFIT(AR(16),300)").fit(trace[:FIT])
        ev = Evaluator(fitted, window=EVAL)
        errors = {h: [] for h in HORIZONS}
        for t in range(FIT, FIT + EVAL):
            fc = fitted.forecast(max(HORIZONS))
            for h in HORIZONS:
                errors[h].append(trace[t + h - 1] - fc.values[h - 1])
            ev._errors.append(trace[t] - fc.values[0])
            ev._claimed.append(float(fc.variances[0]))
            fitted.step(trace[t])
        raw_var.append(float(np.var(trace)))
        for h in HORIZONS:
            err_var[h].append(float(np.mean(np.square(errors[h]))))
        calib.append(ev.report().calibration_ratio)
    mean_raw = float(np.mean(raw_var))
    mean_err = {h: float(np.mean(err_var[h])) for h in HORIZONS}
    return mean_raw, mean_err, float(np.mean(calib))


def test_rps_prediction_error(benchmark):
    raw, err, calib = benchmark.pedantic(run_prediction_error, rounds=1, iterations=1)

    widths = [12, 14, 14]
    lines = [
        f"AR(16) h-step-ahead error variance on host load ({N_TRACES} traces)",
        f"raw signal variance: {raw:.4f}",
        "",
        fmt_row(["horizon[s]", "err var", "vs raw [%]"], widths),
    ]
    for h in HORIZONS:
        lines.append(
            fmt_row([h, f"{err[h]:.4f}", f"{100 * (1 - err[h] / raw):.1f}"], widths)
        )
    lines.append("")
    lines.append(
        f"1-step reduction {100 * (1 - err[1] / raw):.0f}% (paper: ~70%); "
        f"benefit at 30 steps {100 * (1 - err[30] / raw):.0f}% (paper: >0%)"
    )
    lines.append(f"self-characterized error calibration ratio: {calib:.2f} (1 = perfect)")
    emit("rps_prediction_error", lines)

    # --- shape assertions -------------------------------------------------
    # one-step-ahead error variance at least 70% below raw variance
    assert err[1] < 0.3 * raw
    # error grows with horizon
    assert err[1] < err[5] < err[30] * 1.05
    # still a benefit at 30 steps
    assert err[30] < raw
    # the model's own error characterization is honest within ~3x
    assert 0.3 < calib < 3.0
