"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("lan", "hub", "campus", "wan", "wireless"):
            assert name in out

    def test_flow_on_hub(self, capsys):
        assert main(["flow", "hub", "hub_h0", "sw_h0"]) == 0
        out = capsys.readouterr().out
        assert "available" in out
        assert "path" in out

    def test_topology_simplified_and_raw(self, capsys):
        assert main(["topology", "hub", "hub_h0", "hub_h1"]) == 0
        simplified = capsys.readouterr().out
        assert "node" in simplified and "edge" in simplified
        assert main(["topology", "hub", "hub_h0", "hub_h1", "--raw"]) == 0
        raw = capsys.readouterr().out
        assert "vsw" in raw  # the hub shows up as a virtual switch

    def test_unknown_host_exits_with_hint(self):
        with pytest.raises(SystemExit) as exc:
            main(["flow", "hub", "nope", "sw_h0"])
        assert "hub_h0" in str(exc.value)  # the hint lists real hosts

    def test_models_table(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for spec in ("MEAN", "AR(16)", "ARFIMA", "EXPERTS"):
            assert spec in out

    def test_forecast(self, capsys):
        assert main(["forecast", "--spec", "AR(4)", "--horizon", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # header + 3 horizon rows

    def test_nodes_query(self, capsys):
        assert main(["nodes", "hub", "hub_h0", "--spec", "AR(4)"]) == 0
        out = capsys.readouterr().out
        assert "load" in out and "forecast" in out

    def test_stats_reports_every_layer(self, capsys):
        import json

        assert main(["stats", "hub", "--runtime", "40", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = set(doc["counters"]) | set(doc["gauges"]) | set(doc["histograms"])
        for layer in ("netsim.", "snmp.", "collectors.", "modeler.", "rps."):
            assert any(n.startswith(layer) for n in names), layer
        assert doc["spans"]  # span traces included

    def test_stats_prometheus_format(self, capsys):
        assert main(["stats", "hub", "--runtime", "40", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        for layer in ("netsim", "snmp", "collectors", "modeler", "rps"):
            assert f"repro_{layer}_" in out, layer

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
