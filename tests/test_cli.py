"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("lan", "hub", "campus", "wan", "wireless"):
            assert name in out

    def test_flow_on_hub(self, capsys):
        assert main(["flow", "hub", "hub_h0", "sw_h0"]) == 0
        out = capsys.readouterr().out
        assert "available" in out
        assert "path" in out

    def test_topology_simplified_and_raw(self, capsys):
        assert main(["topology", "hub", "hub_h0", "hub_h1"]) == 0
        simplified = capsys.readouterr().out
        assert "node" in simplified and "edge" in simplified
        assert main(["topology", "hub", "hub_h0", "hub_h1", "--raw"]) == 0
        raw = capsys.readouterr().out
        assert "vsw" in raw  # the hub shows up as a virtual switch

    def test_unknown_host_exits_with_hint(self):
        with pytest.raises(SystemExit) as exc:
            main(["flow", "hub", "nope", "sw_h0"])
        assert "hub_h0" in str(exc.value)  # the hint lists real hosts

    def test_models_table(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for spec in ("MEAN", "AR(16)", "ARFIMA", "EXPERTS"):
            assert spec in out

    def test_forecast(self, capsys):
        assert main(["forecast", "--spec", "AR(4)", "--horizon", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4  # header + 3 horizon rows

    def test_nodes_query(self, capsys):
        assert main(["nodes", "hub", "hub_h0", "--spec", "AR(4)"]) == 0
        out = capsys.readouterr().out
        assert "load" in out and "forecast" in out

    def test_stats_reports_every_layer(self, capsys):
        import json

        assert main(["stats", "hub", "--runtime", "40", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = set(doc["counters"]) | set(doc["gauges"]) | set(doc["histograms"])
        for layer in ("netsim.", "snmp.", "collectors.", "modeler.", "rps."):
            assert any(n.startswith(layer) for n in names), layer
        assert doc["spans"]  # span traces included

    def test_stats_prometheus_format(self, capsys):
        assert main(["stats", "hub", "--runtime", "40", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        for layer in ("netsim", "snmp", "collectors", "modeler", "rps"):
            assert f"repro_{layer}_" in out, layer

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTraceCommand:
    @pytest.fixture()
    def dump_path(self, tmp_path):
        """A real flight-recorder dump from a spanned query."""
        import json

        from repro import obs
        from repro.obs.flightrec import FlightRecorder
        from repro.obs.timebase import FixedTimebase

        clock = FixedTimebase()
        reg = obs.MetricsRegistry(clock=clock)
        with FlightRecorder(reg, out_dir=tmp_path) as rec:
            with reg.span("session.topology", detail="full"):
                with reg.span("collectors.master.delegate", site="cmu"):
                    clock.advance(0.25)
                clock.advance(0.05)
            rec.dump("answer.partial", trace_id="t0001")
        (path,) = sorted(tmp_path.glob("flightrec-*.json"))
        assert json.loads(path.read_text())["reason"] == "answer.partial"
        return path

    def test_waterfall_and_attribution_render(self, dump_path, capsys):
        assert main(["trace", str(dump_path)]) == 0
        out = capsys.readouterr().out
        assert "flight-recorder dump: answer.partial" in out
        assert "trace t0001" in out
        assert "session.topology" in out and "#" in out
        assert "time by layer" in out and "session" in out
        assert "time by site" in out and "cmu" in out

    def test_trace_id_filter_rejects_unknown(self, dump_path, capsys):
        assert main(["trace", str(dump_path), "--trace-id", "t9999"]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_chrome_export(self, dump_path, tmp_path, capsys):
        import json

        out_file = tmp_path / "chrome.json"
        assert main(["trace", str(dump_path), "--chrome", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        delegate = next(
            e for e in events if e["name"] == "collectors.master.delegate"
        )
        assert delegate["dur"] == pytest.approx(0.25e6)
        assert delegate["args"]["site"] == "cmu"

    def test_non_span_json_errors_cleanly(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"hello": "world"}')
        assert main(["trace", str(bogus)]) == 1
        assert "no span list" in capsys.readouterr().err

    def test_non_json_file_errors_cleanly(self, tmp_path, capsys):
        bogus = tmp_path / "x.toml"
        bogus.write_text("[tool]\nname = 'nope'\n")
        assert main(["trace", str(bogus)]) == 1
        assert "not JSON" in capsys.readouterr().err

    def test_missing_file_errors_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().err
