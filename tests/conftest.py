"""Shared fixtures for the whole test suite.

The centrepiece is :func:`random_wan` — a factory around
:func:`repro.netsim.builders.build_random_wan` that grows seeded random
WANs at the scale the paper never reached (hundreds of sites).  Tests
take the factory rather than a prebuilt world because most of them
mutate the network (flows, faults, mobility): every call returns a
fresh, deterministic world for its seed.
"""

from __future__ import annotations

import pytest

from repro.netsim.builders import RandomWanWorld, build_random_wan


@pytest.fixture
def random_wan():
    """Factory for seeded random large-topology worlds.

    ``random_wan(n_sites, seed=..., **kw)`` forwards to
    :func:`build_random_wan`; same arguments grow the identical world,
    down to names and addresses, so failures replay exactly.
    """

    def _build(n_sites: int, seed: int = 0, **kw: object) -> RandomWanWorld:
        return build_random_wan(n_sites, seed=seed, **kw)

    return _build
