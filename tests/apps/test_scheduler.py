"""Tests for Remos-guided compute-node selection (§6.3)."""

import pytest

from repro.common.errors import QueryError
from repro.common.units import MBPS
from repro.apps.scheduler import JobSpec, NodeSelector
from repro.deploy import deploy_wan
from repro.netsim.agents import attach_trace
from repro.netsim.builders import SiteSpec, build_multisite_wan

import numpy as np


@pytest.fixture
def grid():
    """Two well-connected sites plus a distant one behind a thin link."""
    w = build_multisite_wan(
        [
            SiteSpec("near1", access_bps=50 * MBPS, n_hosts=4),
            SiteSpec("near2", access_bps=50 * MBPS, n_hosts=4),
            SiteSpec("far", access_bps=1 * MBPS, n_hosts=4),
        ]
    )
    dep = deploy_wan(w)
    candidates = [w.host(s, i) for s in ("near1", "near2", "far") for i in (0, 1)]
    return w, dep, candidates


class TestSelection:
    def test_prefers_colocated_nodes(self, grid):
        w, dep, candidates = grid
        sel = NodeSelector(dep.modeler, candidates)
        p = sel.select(JobSpec(n_nodes=2))
        # both picked nodes sit in one site: LAN bandwidth beats WAN
        assert p.min_pair_bandwidth_bps == pytest.approx(100 * MBPS, rel=0.05)

    def test_avoids_thin_site_when_bandwidth_matters(self, grid):
        w, dep, candidates = grid
        sel = NodeSelector(dep.modeler, candidates)
        p = sel.select(JobSpec(n_nodes=4, min_pair_bandwidth_bps=10 * MBPS))
        far_ips = {str(w.host("far", i).ip) for i in (0, 1)}
        assert not (set(p.hosts) & far_ips)
        assert p.min_pair_bandwidth_bps >= 10 * MBPS

    def test_infeasible_bandwidth_raises(self, grid):
        w, dep, candidates = grid
        sel = NodeSelector(dep.modeler, candidates)
        # 5 nodes need the far site, but far can't do 10 Mbps pairs
        with pytest.raises(QueryError):
            sel.select(JobSpec(n_nodes=5, min_pair_bandwidth_bps=10 * MBPS))

    def test_load_ceiling_respected(self, grid):
        w, dep, candidates = grid
        # load up the near1 machines
        for i in (0, 1):
            w.host("near1", i).load_source = lambda t: 5.0
        sel = NodeSelector(dep.modeler, candidates)
        p = sel.select(JobSpec(n_nodes=2, max_load=2.0))
        near1_ips = {str(w.host("near1", i).ip) for i in (0, 1)}
        assert not (set(p.hosts) & near1_ips)
        assert p.max_load <= 2.0

    def test_latency_ceiling(self, grid):
        w, dep, candidates = grid
        sel = NodeSelector(dep.modeler, candidates)
        # sub-WAN latency forces a single-site set
        p = sel.select(JobSpec(n_nodes=2, max_latency_s=0.005))
        assert p.max_latency_s <= 0.005

    def test_verify_accounts_for_contention(self, grid):
        w, dep, candidates = grid
        sel = NodeSelector(dep.modeler, candidates)
        p = sel.select(JobSpec(n_nodes=4), verify=True)
        assert p.verified_joint_bps is not None
        # all-pairs flows contend: the joint figure cannot beat the
        # per-pair bottleneck
        assert p.verified_joint_bps <= p.min_pair_bandwidth_bps * 1.01

    def test_too_many_nodes_requested(self, grid):
        w, dep, candidates = grid
        sel = NodeSelector(dep.modeler, candidates)
        with pytest.raises(QueryError):
            sel.select(JobSpec(n_nodes=len(candidates) + 1))

    def test_validation(self, grid):
        w, dep, candidates = grid
        with pytest.raises(ValueError):
            JobSpec(n_nodes=1)
        with pytest.raises(ValueError):
            NodeSelector(dep.modeler, candidates[:1])
