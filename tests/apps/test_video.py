"""Tests for the adaptive video streaming application."""

import numpy as np
import pytest

from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.deploy import deploy_wan
from repro.apps.video import VideoSession, VideoSpec, choose_and_stream


@pytest.fixture
def world():
    w = build_multisite_wan(
        [
            SiteSpec("client", access_bps=100 * MBPS, n_hosts=2),
            SiteSpec("wide", access_bps=10 * MBPS, n_hosts=2),
            SiteSpec("narrow", access_bps=0.15 * MBPS, n_hosts=2),
        ]
    )
    return w, deploy_wan(w)


class TestVideoSpec:
    def test_frame_count(self):
        spec = VideoSpec(duration_s=10.0, fps=24.0)
        assert len(spec.frames()) == 240

    def test_gop_pattern(self):
        spec = VideoSpec(duration_s=1.0, fps=12.0, gop="IBBP")
        kinds = [k for _, k, _ in spec.frames()]
        assert kinds == list("IBBPIBBPIBBP")

    def test_i_frames_biggest(self):
        spec = VideoSpec(duration_s=5.0, noise_frac=0.0, content_swing=0.0)
        frames = spec.frames()
        i_sizes = [s for _, k, s in frames if k == "I"]
        b_sizes = [s for _, k, s in frames if k == "B"]
        assert min(i_sizes) > max(b_sizes)

    def test_nominal_rate_positive(self):
        assert VideoSpec().nominal_rate_bps() > 0

    def test_deterministic_by_seed(self):
        a = VideoSpec(seed=5).frames()
        b = VideoSpec(seed=5).frames()
        assert a == b


class TestVideoSession:
    def test_wide_link_receives_everything(self, world):
        w, dep = world
        spec = VideoSpec(duration_s=10.0)
        session = VideoSession(w.net, w.host("wide", 0), w.host("client", 0), spec)
        res = session.run()
        assert res.frames_received == res.total_frames

    def test_narrow_link_drops_frames(self, world):
        w, dep = world
        spec = VideoSpec(duration_s=10.0)  # nominal ~0.34 Mbps > 0.15 Mbps link
        session = VideoSession(w.net, w.host("narrow", 0), w.host("client", 0), spec)
        res = session.run()
        assert 0 < res.frames_received < res.total_frames
        # the adaptive server protects I frames: their survival rate
        # must exceed the B-frame survival rate
        kinds_recv = [f.kind for f in res.received]
        spec_kinds = [k for _, k, _ in spec.frames()]
        i_rate = kinds_recv.count("I") / spec_kinds.count("I")
        b_rate = kinds_recv.count("B") / max(spec_kinds.count("B"), 1)
        assert i_rate > b_rate

    def test_overloaded_server_receives_less(self, world):
        w, dep = world
        spec = VideoSpec(duration_s=10.0)
        good = VideoSession(
            w.net, w.host("narrow", 0), w.host("client", 0), spec
        ).run()
        bad = VideoSession(
            w.net, w.host("narrow", 0), w.host("client", 0), spec,
            server_efficiency=0.5,
        ).run()
        assert bad.frames_received < good.frames_received

    def test_bad_efficiency_rejected(self, world):
        w, dep = world
        with pytest.raises(ValueError):
            VideoSession(
                w.net, w.host("wide", 0), w.host("client", 0), VideoSpec(),
                server_efficiency=0.0,
            )

    def test_perceived_bandwidth_windows(self, world):
        w, dep = world
        spec = VideoSpec(duration_s=20.0)
        res = VideoSession(
            w.net, w.host("narrow", 0), w.host("client", 0), spec
        ).run()
        t1, bw1 = res.perceived_bandwidth(1.0)
        t10, bw10 = res.perceived_bandwidth(10.0)
        assert bw1.size > bw10.size
        # long windows sit at the link rate; short windows fluctuate more
        assert np.mean(bw10) == pytest.approx(0.15 * MBPS, rel=0.15)
        assert np.std(bw1) > np.std(bw10)


class TestChooseAndStream:
    def test_picks_widest(self, world):
        w, dep = world
        spec = VideoSpec(duration_s=5.0)
        picked, results = choose_and_stream(
            dep.modeler, w.net, w.host("client", 0),
            {"wide": w.host("wide", 0), "narrow": w.host("narrow", 0)},
            spec,
        )
        assert picked == "wide"
        assert results["wide"].frames_received >= results["narrow"].frames_received
