"""Tests for load-aware video server selection (§5.5's diagnosis)."""

import pytest

from repro.common.units import MBPS
from repro.apps.video import VideoSpec, choose_and_stream
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan


def _world():
    w = build_multisite_wan(
        [
            SiteSpec("client", access_bps=100 * MBPS, n_hosts=2),
            SiteSpec("fast", access_bps=0.8 * MBPS, n_hosts=2),
            SiteSpec("slow", access_bps=0.5 * MBPS, n_hosts=2),
        ]
    )
    return w, deploy_wan(w)


SPEC = VideoSpec(duration_s=15.0, fps=24.0, i_frame_bytes=11000.0, seed=2)


class TestLoadAwareSelection:
    def test_overloaded_best_server_demoted(self):
        w, dep = _world()
        servers = {"fast": w.host("fast", 0), "slow": w.host("slow", 0)}
        # the fast server is overloaded (load 8: swamped CPU)
        w.host("fast", 0).load_source = lambda t: 8.0
        picked_blind, _ = choose_and_stream(
            dep.modeler, w.net, w.host("client", 0), servers, SPEC,
            efficiencies={"fast": 0.4},
        )
        w2, dep2 = _world()
        servers2 = {"fast": w2.host("fast", 0), "slow": w2.host("slow", 0)}
        w2.host("fast", 0).load_source = lambda t: 8.0
        picked_aware, results = choose_and_stream(
            dep2.modeler, w2.net, w2.host("client", 0), servers2, SPEC,
            efficiencies={"fast": 0.4}, consider_load=True,
        )
        assert picked_blind == "fast"  # bandwidth alone falls for it
        assert picked_aware == "slow"  # load-aware avoids the overload
        # and the avoided pick indeed yields more frames
        assert results["slow"].frames_received > results["fast"].frames_received

    def test_healthy_servers_rank_by_bandwidth(self):
        w, dep = _world()
        servers = {"fast": w.host("fast", 0), "slow": w.host("slow", 0)}
        picked, _ = choose_and_stream(
            dep.modeler, w.net, w.host("client", 0), servers, SPEC,
            consider_load=True,
        )
        assert picked == "fast"

    def test_threshold_respected(self):
        w, dep = _world()
        servers = {"fast": w.host("fast", 0), "slow": w.host("slow", 0)}
        w.host("fast", 0).load_source = lambda t: 1.5  # busy but ok
        picked, _ = choose_and_stream(
            dep.modeler, w.net, w.host("client", 0), servers, SPEC,
            consider_load=True, load_threshold=2.0,
        )
        assert picked == "fast"
