"""Tests for dynamic video handoff (the §5.5 / ref [16] extension)."""

import pytest

from repro.common.units import MBPS
from repro.apps.video import HandoffVideoSession, VideoSession, VideoSpec
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan


def _world():
    w = build_multisite_wan(
        [
            SiteSpec("client", access_bps=100 * MBPS, n_hosts=2),
            SiteSpec("alpha", access_bps=0.6 * MBPS, n_hosts=3),
            SiteSpec("beta", access_bps=0.6 * MBPS, n_hosts=3),
        ]
    )
    dep = deploy_wan(
        w, bench_config=BenchmarkConfig(probe_bytes=30_000, max_age_s=3.0,
                                        max_probe_s=5.0)
    )
    return w, dep


SPEC = VideoSpec(duration_s=40.0, fps=24.0, i_frame_bytes=11000.0, seed=9)


class TestHandoff:
    def test_no_handoff_when_stable(self):
        w, dep = _world()
        servers = {"alpha": w.host("alpha", 0), "beta": w.host("beta", 0)}
        session = HandoffVideoSession(dep.modeler, w.net, w.host("client", 0),
                                      servers, SPEC)
        final, result = session.run()
        assert session.handoffs == []
        assert result.frames_received > 0

    def test_switches_when_server_collapses(self):
        w, dep = _world()
        servers = {"alpha": w.host("alpha", 0), "beta": w.host("beta", 0)}
        # alpha collapses 10 s in: cross traffic eats 90% of its access link
        w.net.engine.at(
            w.net.now + 10.0,
            lambda: w.net.flows.start_flow(
                w.host("alpha", 1), w.host("client", 1),
                demand_bps=0.54 * MBPS, label="crush",
            ),
        )
        session = HandoffVideoSession(
            dep.modeler, w.net, w.host("client", 0), servers, SPEC,
            start_site="alpha",
        )
        final, result = session.run()
        assert session.handoffs, "must have handed off"
        assert final == "beta"
        t, src, dst = session.handoffs[0]
        assert (src, dst) == ("alpha", "beta")

    def test_handoff_beats_sticking(self):
        """Frames received with handoff exceed staying on the
        collapsed server."""

        def run(with_handoff: bool) -> int:
            w, dep = _world()
            servers = {"alpha": w.host("alpha", 0), "beta": w.host("beta", 0)}
            w.net.engine.at(
                w.net.now + 8.0,
                lambda: w.net.flows.start_flow(
                    w.host("alpha", 1), w.host("client", 1),
                    demand_bps=0.54 * MBPS, label="crush",
                ),
            )
            if with_handoff:
                session = HandoffVideoSession(
                    dep.modeler, w.net, w.host("client", 0), servers, SPEC,
                    start_site="alpha",
                )
                _, result = session.run()
            else:
                result = VideoSession(
                    w.net, servers["alpha"], w.host("client", 0), SPEC
                ).run()
            return result.frames_received

        assert run(True) > run(False)

    def test_handoff_gap_loses_frames(self):
        """The dead air during handoff costs the frames due in the gap
        — handoff is not free."""
        w, dep = _world()
        servers = {"alpha": w.host("alpha", 0), "beta": w.host("beta", 0)}
        w.net.engine.at(
            w.net.now + 10.0,
            lambda: w.net.flows.start_flow(
                w.host("alpha", 1), w.host("client", 1),
                demand_bps=0.54 * MBPS, label="crush",
            ),
        )
        session = HandoffVideoSession(
            dep.modeler, w.net, w.host("client", 0), servers, SPEC,
            start_site="alpha", handoff_gap_s=2.0,
        )
        final, result = session.run()
        assert result.frames_received < result.total_frames

    def test_requires_servers(self):
        w, dep = _world()
        with pytest.raises(ValueError):
            HandoffVideoSession(dep.modeler, w.net, w.host("client", 0), {}, SPEC)
