"""Tests for the mirror-server selection application."""

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.deploy import deploy_wan
from repro.apps.mirror import MirrorClient


@pytest.fixture
def world():
    w = build_multisite_wan(
        [
            SiteSpec("client", access_bps=100 * MBPS, n_hosts=3),
            SiteSpec("fast", access_bps=8 * MBPS, n_hosts=3),
            SiteSpec("slow", access_bps=1 * MBPS, n_hosts=3),
        ]
    )
    return w, deploy_wan(w)


class TestMirrorClient:
    def test_ranking_orders_by_bandwidth(self, world):
        w, dep = world
        mc = MirrorClient(
            dep.modeler, w.net, w.host("client", 0),
            {"fast": w.host("fast", 0), "slow": w.host("slow", 0)},
        )
        reported, query_s = mc.rank_servers()
        assert reported["fast"] > reported["slow"]
        assert query_s > 0

    def test_trial_downloads_all(self, world):
        w, dep = world
        mc = MirrorClient(
            dep.modeler, w.net, w.host("client", 0),
            {"fast": w.host("fast", 0), "slow": w.host("slow", 0)},
            file_bytes=500_000,
        )
        r = mc.run_trial()
        assert r.chosen == "fast"
        assert r.chose_best
        assert r.achieved_bps["fast"] == pytest.approx(8 * MBPS, rel=0.05)
        assert r.achieved_bps["slow"] == pytest.approx(1 * MBPS, rel=0.05)

    def test_effective_bandwidth_below_raw(self, world):
        w, dep = world
        mc = MirrorClient(
            dep.modeler, w.net, w.host("client", 0),
            {"fast": w.host("fast", 0), "slow": w.host("slow", 0)},
            file_bytes=500_000,
        )
        r = mc.run_trial()
        eff = mc.effective_bandwidth(r)
        assert 0 < eff < r.achieved_bps[r.chosen]

    def test_aggregates(self, world):
        w, dep = world
        mc = MirrorClient(
            dep.modeler, w.net, w.host("client", 0),
            {"fast": w.host("fast", 0), "slow": w.host("slow", 0)},
            file_bytes=250_000,
        )
        for _ in range(3):
            mc.run_trial()
            w.net.engine.run_until(w.net.now + 2.0)
        assert mc.best_pick_rate() == 1.0
        avgs = mc.rank_averages()
        assert len(avgs) == 2
        assert avgs[0] > avgs[1]

    def test_no_servers_rejected(self, world):
        w, dep = world
        with pytest.raises(ValueError):
            MirrorClient(dep.modeler, w.net, w.host("client", 0), {})
