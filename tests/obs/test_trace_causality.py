"""Causal identifiers under Engine.overlap: the regression this PR pins.

``OverlapScope.task`` rewinds the sim clock so logically concurrent
fragment delegations occupy *overlapping* sim-time intervals.  Any
parent reconstruction based on names, depths, or time containment
would attach a short sibling's child to whichever longer sibling
happens to surround it; the explicit ``parent_id`` captured at span
entry must survive that.
"""

from repro.netsim.engine import Engine
from repro.obs import traceview
from repro.obs.registry import MetricsRegistry


def _overlapped_delegation(reg: MetricsRegistry, eng: Engine):
    """Two concurrent delegate spans, one slow (5s) and one fast (2s)."""
    with reg.span("collectors.master.topology"):
        with eng.overlap() as ov:
            with ov.task():
                with reg.span("collectors.master.delegate", site="slow"):
                    with reg.span("collectors.snmp.topology"):
                        eng.advance(5.0)
            with ov.task():
                with reg.span("collectors.master.delegate", site="fast"):
                    with reg.span("collectors.snmp.topology"):
                        eng.advance(2.0)


class TestOverlappedParents:
    def setup_method(self):
        self.eng = Engine()
        self.reg = MetricsRegistry()
        self.reg.use_sim_clock(self.eng)
        _overlapped_delegation(self.reg, self.eng)
        self.by_id = {s.span_id: s for s in self.reg.spans}

    def _delegate(self, site: str):
        (d,) = [
            s
            for s in self.reg.spans
            if s.name == "collectors.master.delegate" and dict(s.labels)["site"] == site
        ]
        return d

    def test_sibling_intervals_overlap_in_sim_time(self):
        slow, fast = self._delegate("slow"), self._delegate("fast")
        assert slow.start_s == fast.start_s  # rewound to a common origin
        assert fast.end_s < slow.end_s
        # the fast task's window is strictly inside the slow task's:
        # exactly the shape that breaks time-containment reconstruction
        assert slow.start_s <= fast.start_s and fast.end_s <= slow.end_s

    def test_parent_ids_are_the_entry_time_truth(self):
        root = next(s for s in self.reg.spans if s.parent_id is None)
        assert root.name == "collectors.master.topology"
        for site in ("slow", "fast"):
            d = self._delegate(site)
            assert d.parent_id == root.span_id
        # each snmp child hangs off its own delegate, not the one whose
        # interval happens to contain it
        children = [s for s in self.reg.spans if s.name == "collectors.snmp.topology"]
        assert len(children) == 2
        for c in children:
            parent = self.by_id[c.parent_id]
            assert parent.name == "collectors.master.delegate"
            assert c.duration_s == parent.duration_s

    def test_one_trace_spans_the_whole_delegation(self):
        assert len({s.trace_id for s in self.reg.spans}) == 1

    def test_span_tree_reconstructs_the_same_shape(self):
        spans = [traceview.record_to_dict(s) for s in self.reg.spans]
        (root,) = traceview.span_tree(spans)
        assert root["name"] == "collectors.master.topology"
        sites = [d["labels"]["site"] for d in root["children"]]
        assert sorted(sites) == ["fast", "slow"]
        for d in root["children"]:
            (child,) = d["children"]
            assert child["name"] == "collectors.snmp.topology"
            assert child["duration_s"] == d["duration_s"]

    def test_chrome_export_gives_overlapping_siblings_distinct_lanes(self):
        spans = [traceview.record_to_dict(s) for s in self.reg.spans]
        events = traceview.to_chrome_trace(spans)["traceEvents"]
        lanes = {
            e["args"]["site"]: e["tid"]
            for e in events
            if e["name"] == "collectors.master.delegate"
        }
        assert lanes["slow"] != lanes["fast"]


class TestFreshTracesPerRoot:
    def test_sequential_roots_get_distinct_deterministic_traces(self):
        reg = MetricsRegistry()
        for _ in range(3):
            with reg.span("session.flow_info"):
                pass
        tids = [s.trace_id for s in reg.spans]
        assert tids == ["t0001", "t0002", "t0003"]
        assert [s.span_id for s in reg.spans] == [1, 2, 3]

    def test_reset_restarts_the_id_sequences(self):
        reg = MetricsRegistry()
        with reg.span("session.flow_info"):
            pass
        reg.reset()
        with reg.span("session.flow_info"):
            pass
        (rec,) = reg.spans
        assert rec.trace_id == "t0001" and rec.span_id == 1
