"""Tests for the swappable registry and the no-op default."""

from repro import obs
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.obs.registry import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)


class TestDefaultRegistry:
    def test_default_is_noop(self):
        assert isinstance(get_registry(), NullRegistry)

    def test_null_handles_are_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a", x=1) is NULL_COUNTER
        assert reg.counter("b") is NULL_COUNTER
        assert reg.gauge("a") is NULL_GAUGE
        assert reg.histogram("a") is NULL_HISTOGRAM

    def test_module_helpers_are_safe_when_disabled(self):
        obs.counter("x").inc()
        obs.gauge("x").set(1)
        obs.histogram("x").observe(1)
        with obs.span("x"):
            pass
        assert get_registry().metric_names() == set()


class TestScopedRegistry:
    def test_installs_and_restores(self):
        prev = get_registry()
        with scoped_registry() as reg:
            assert get_registry() is reg
            obs.counter("hits").inc()
            assert reg.counter("hits").value == 1.0
        assert get_registry() is prev

    def test_restores_on_exception(self):
        prev = get_registry()
        try:
            with scoped_registry():
                raise RuntimeError
        except RuntimeError:
            pass
        assert get_registry() is prev

    def test_nested_scopes(self):
        with scoped_registry() as outer:
            obs.counter("n").inc()
            with scoped_registry() as inner:
                obs.counter("n").inc(5)
            assert get_registry() is outer
            assert inner.counter("n").value == 5.0
            assert outer.counter("n").value == 1.0

    def test_accepts_existing_registry(self):
        mine = MetricsRegistry()
        with scoped_registry(mine) as reg:
            assert reg is mine

    def test_set_registry_none_restores_default(self):
        set_registry(MetricsRegistry())
        set_registry(None)
        assert isinstance(get_registry(), NullRegistry)


class TestLiveRegistry:
    def test_handles_are_stable_per_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("a", op="get") is reg.counter("a", op="get")
        assert reg.counter("a", op="get") is not reg.counter("a", op="set")

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_introspection_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert [c.name for c in reg.counters()] == ["a", "b"]

    def test_metric_names_spans_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        assert reg.metric_names() == {"c", "g", "h"}

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        with reg.span("s"):
            pass
        reg.reset()
        assert reg.metric_names() == set()
        assert len(reg.spans) == 0
