"""Tests for span tracing: nesting, clocks, duration histograms."""

from repro.obs.registry import MetricsRegistry
from repro.obs.timebase import FixedTimebase, SimTimebase
from repro.obs.tracing import NULL_SPAN


class TestSpans:
    def test_span_records_duration_on_registry_clock(self):
        clock = FixedTimebase()
        reg = MetricsRegistry(clock=clock)
        with reg.span("op"):
            clock.advance(2.5)
        (rec,) = reg.spans
        assert rec.name == "op"
        assert rec.duration_s == 2.5
        assert rec.wall_s >= 0.0  # wall clock measured independently

    def test_nesting_depth_and_parent(self):
        reg = MetricsRegistry(clock=FixedTimebase())
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        inner, outer = reg.spans  # completed innermost-first
        assert inner.name == "inner"
        assert inner.depth == 1 and inner.parent == "outer"
        assert outer.depth == 0 and outer.parent is None

    def test_completed_span_feeds_duration_histogram(self):
        clock = FixedTimebase()
        reg = MetricsRegistry(clock=clock)
        for dt in (1.0, 3.0):
            with reg.span("query", collector="c1"):
                clock.advance(dt)
        h = reg.histogram("query.duration_s", collector="c1")
        assert h.count == 2
        assert h.sum == 4.0

    def test_span_survives_exception(self):
        reg = MetricsRegistry(clock=FixedTimebase())
        try:
            with reg.span("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert len(reg.spans) == 1
        assert not reg._span_stack  # stack unwound

    def test_span_cap_is_bounded(self):
        reg = MetricsRegistry(clock=FixedTimebase(), max_spans=4)
        for _ in range(10):
            with reg.span("op"):
                pass
        assert len(reg.spans) == 4

    def test_sim_timebase_reads_engine_like_sources(self):
        class Engine:
            now = 7.0

        assert SimTimebase(Engine()).now() == 7.0

        class Clocky:
            def now(self):
                return 3.0

        # a callable `now` works too (obs never imports netsim)
        assert SimTimebase(Clocky()).now() == 3.0

    def test_null_span_is_reentrant(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass

    def test_null_span_carries_the_id_surface(self):
        # call sites stamp span.trace_id unconditionally; the no-op
        # span must expose the same attributes, all None
        with NULL_SPAN as sp:
            assert sp.trace_id is None
            assert sp.span_id is None
            assert sp.parent_id is None

    def test_ids_link_children_to_parents(self):
        reg = MetricsRegistry(clock=FixedTimebase())
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.trace_id == "t0001"

    def test_out_of_order_exit_keeps_parents_sane(self):
        """A span closed late (generator teardown, exception unwinding)
        must remove itself from the stack, not whatever is on top."""
        reg = MetricsRegistry(clock=FixedTimebase())
        root = reg.span("root")
        child = reg.span("child")
        root.__enter__()
        child.__enter__()
        root.__exit__(None, None, None)  # out of order: root before child
        with reg.span("next_root") as nxt:
            # the still-open child must not become next_root's parent
            assert nxt.parent_id == child.span_id
        child.__exit__(None, None, None)
        assert reg._span_stack == []
