"""End-to-end: a deployed stack reports metrics from every layer."""

import time

from repro import deploy, obs
from repro.netsim import builders
from repro.netsim.agents import attach_trace
from repro.rps.hostload import host_load_trace

LAYERS = ("netsim.", "snmp.", "collectors.", "modeler.", "rps.")


def run_demo(reg):
    lan = builders.build_hub_lan()
    dep = deploy.deploy_lan(lan)
    reg.use_sim_clock(lan.net.engine)
    h0, h1 = lan.hosts[0], lan.hosts[1]
    for i, h in enumerate((h0, h1)):
        if h.load_source is None:
            attach_trace(h, host_load_trace(700, seed=i), dt=1.0)
        dep.attach_host_sensor(h, "AR(4)")
    dep.start_monitoring()
    lan.net.engine.run_until(lan.net.now + 30.0)
    session = dep.session()
    session.topology([h0, h1])
    session.flow_info(h0, h1)
    session.node_info([h0, h1], predict=True)


class TestFiveLayers:
    def test_every_layer_reports(self):
        with obs.scoped_registry() as reg:
            run_demo(reg)
        names = reg.metric_names()
        for layer in LAYERS:
            assert any(n.startswith(layer) for n in names), (
                f"no metrics from layer {layer!r}: {sorted(names)}"
            )

    def test_spans_stamped_in_sim_time(self):
        with obs.scoped_registry() as reg:
            run_demo(reg)
        polls = [s for s in reg.spans if s.name == "collectors.snmp.poll"]
        assert polls
        # sim-time stamps fall inside the 30 s the demo simulated
        assert all(0.0 <= s.start_s <= 31.0 for s in polls)
        assert all(s.wall_s < 10.0 for s in polls)

    def test_nothing_leaks_outside_the_scope(self):
        with obs.scoped_registry():
            run_demo(obs.get_registry())
        assert obs.get_registry().metric_names() == set()


class TestDisabledOverhead:
    def test_disabled_calls_are_cheap(self):
        # Not a benchmark — just a guard against the no-op path growing
        # allocations or dict lookups. 40k touches in well under a second.
        t0 = time.perf_counter()
        for _ in range(10_000):
            obs.counter("x.y", a="b").inc()
            obs.gauge("x.y").set(1.0)
            obs.histogram("x.y").observe(1.0)
            with obs.span("x.y"):
                pass
        assert time.perf_counter() - t0 < 1.0
