"""Tests for the JSON and Prometheus exporters."""

import json
import math

from repro.obs import export
from repro.obs.registry import MetricsRegistry
from repro.obs.timebase import FixedTimebase


def populated_registry() -> MetricsRegistry:
    clock = FixedTimebase()
    reg = MetricsRegistry(clock=clock)
    reg.counter("snmp.client.pdus", op="get").inc(7)
    reg.counter("snmp.client.pdus", op="getnext").inc(3)
    reg.gauge("netsim.engine.queue_depth").set(4)
    for v in (0.1, 0.2, 0.3):
        reg.histogram("rps.fit.wall_s", spec="AR(16)").observe(v)
    with reg.span("modeler.flow_query"):
        clock.advance(1.5)
    return reg


class TestSnapshot:
    def test_snapshot_structure(self):
        snap = export.snapshot(populated_registry())
        assert snap["counters"]["snmp.client.pdus{op=get}"] == 7.0
        assert snap["gauges"]["netsim.engine.queue_depth"] == 4.0
        h = snap["histograms"]["rps.fit.wall_s{spec=AR(16)}"]
        assert h["count"] == 3
        assert h["mean"] == (0.1 + 0.2 + 0.3) / 3
        (span,) = snap["spans"]
        assert span["name"] == "modeler.flow_query"
        assert span["duration_s"] == 1.5

    def test_to_json_is_valid_json(self):
        doc = json.loads(export.to_json(populated_registry()))
        assert "counters" in doc and "spans" in doc

    def test_nonfinite_values_become_null(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(math.inf)
        snap = export.snapshot(reg)
        assert snap["gauges"]["g"] is None
        json.dumps(snap)  # must not raise


class TestPrometheus:
    def test_name_sanitisation(self):
        assert export.prom_name("snmp.client.pdus") == "repro_snmp_client_pdus"

    def test_type_lines_present(self):
        text = export.to_prometheus(populated_registry())
        assert "# TYPE repro_snmp_client_pdus counter" in text
        assert "# TYPE repro_netsim_engine_queue_depth gauge" in text
        assert "# TYPE repro_rps_fit_wall_s summary" in text

    def test_round_trip(self):
        reg = populated_registry()
        samples = export.parse_prometheus(export.to_prometheus(reg))
        assert samples[("repro_snmp_client_pdus", (("op", "get"),))] == 7.0
        assert samples[("repro_netsim_engine_queue_depth", ())] == 4.0
        assert samples[
            ("repro_rps_fit_wall_s_count", (("spec", "AR(16)"),))
        ] == 3.0
        assert samples[
            ("repro_rps_fit_wall_s_sum", (("spec", "AR(16)"),))
        ] == (0.1 + 0.2 + 0.3)
        # the span's auto-histogram exports too
        assert samples[
            ("repro_modeler_flow_query_duration_s_count", ())
        ] == 1.0

    def test_round_trip_nonfinite(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(math.inf)
        reg.histogram("h")  # empty: quantiles are NaN
        samples = export.parse_prometheus(export.to_prometheus(reg))
        assert samples[("repro_g", ())] == math.inf
        assert math.isnan(samples[("repro_h", (("quantile", "0.5"),))])

    def test_label_escaping_round_trips(self):
        """Backslashes, quotes, and newlines in label values survive
        the exposition format both ways."""
        nasty = 'C:\\temp\\"quoted"\nline2'
        reg = MetricsRegistry()
        reg.counter("snmp.client.pdus", op=nasty).inc(2)
        text = export.to_prometheus(reg)
        assert "\\n" in text and '\\"' in text  # escaped on the wire
        samples = export.parse_prometheus(text)
        assert samples[("repro_snmp_client_pdus", (("op", nasty),))] == 2.0

    def test_escape_unescape_inverse(self):
        for v in ("plain", 'a"b', "a\\b", "a\nb", 'mix\\"of\nall'):
            assert export._unescape_label_value(export.escape_label_value(v)) == v


class TestEmptyRegistry:
    def test_empty_live_registry_exports_cleanly(self):
        reg = MetricsRegistry()
        snap = export.snapshot(reg)
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == []
        json.loads(export.to_json(reg))  # valid JSON
        text = export.to_prometheus(reg)
        assert export.parse_prometheus(text) == {}

    def test_null_registry_exports_cleanly(self):
        from repro.obs.registry import NullRegistry

        reg = NullRegistry()
        snap = export.snapshot(reg)
        assert snap["counters"] == {} and snap["spans"] == []
        assert export.parse_prometheus(export.to_prometheus(reg)) == {}
