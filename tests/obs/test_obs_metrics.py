"""Tests for the metric primitives (counters, gauges, histograms)."""

import math

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    labels_key,
    render_name,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_quantiles_interpolate(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        qs = h.quantiles()
        assert set(qs) == {0.5, 0.9, 0.99}

    def test_empty_quantile_is_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.quantile(0.5))
        assert all(math.isnan(v) for v in h.quantiles().values())

    def test_quantile_range_checked(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_reservoir_bounds_window_not_totals(self):
        h = Histogram("lat", reservoir=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100  # exact lifetime count
        assert h.min == 0.0 and h.max == 99.0
        # quantiles see only the last 10 observations
        assert h.quantile(0.0) == 90.0


class TestLabels:
    def test_labels_key_is_sorted_and_stringified(self):
        assert labels_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_render_name(self):
        assert render_name("pdus", ()) == "pdus"
        assert render_name("pdus", (("op", "get"),)) == "pdus{op=get}"


class TestNullTwins:
    def test_null_handles_absorb_everything(self):
        NULL_COUNTER.inc()
        NULL_GAUGE.set(3)
        NULL_GAUGE.inc()
        NULL_GAUGE.dec()
        NULL_HISTOGRAM.observe(1.0)
        assert math.isnan(NULL_HISTOGRAM.quantile(0.5))
