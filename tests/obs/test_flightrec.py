"""Flight recorder: triggers, budget, and dump round-trips."""

import json
import logging

from repro import faults, obs
from repro.common.status import QueryStatus
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.obs import traceview
from repro.obs.flightrec import FlightRecorder, load_dump
from repro.obs.registry import MetricsRegistry
from repro.obs.timebase import FixedTimebase


def _make_spans(reg: MetricsRegistry, clock: FixedTimebase) -> None:
    with reg.span("session.topology", detail="full"):
        with reg.span("collectors.master.topology"):
            clock.advance(1.0)
        clock.advance(0.5)


class TestLifecycle:
    def test_attach_registers_on_registry_and_detach_clears(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(reg)
        assert reg.flight_recorder is None
        with rec:
            assert reg.flight_recorder is rec
        assert reg.flight_recorder is None

    def test_log_tail_is_bounded_and_captured(self):
        reg = MetricsRegistry(clock=FixedTimebase(10.0))
        with FlightRecorder(reg, max_log_events=3) as rec:
            log = logging.getLogger("repro.test.flightrec")
            for i in range(5):
                log.debug("event %d", i)
            payload = rec.dump("manual")
        events = payload["events"]
        assert [e["message"] for e in events] == ["event 2", "event 3", "event 4"]
        assert all(e["t_s"] == 10.0 for e in events)

    def test_max_dumps_budget_stops_a_dump_storm(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(reg, max_dumps=2)
        assert rec.maybe_dump("fault.crash") is not None
        assert rec.maybe_dump("fault.crash") is not None
        assert rec.maybe_dump("fault.crash") is None
        assert len(rec.dumps) == 2


class TestDumpRoundTrip:
    def test_dump_load_reconstructs_an_identical_span_tree(self, tmp_path):
        clock = FixedTimebase()
        reg = MetricsRegistry(clock=clock)
        rec = FlightRecorder(reg, out_dir=tmp_path)
        _make_spans(reg, clock)
        payload = rec.dump("manual")
        (path,) = sorted(tmp_path.glob("flightrec-*.json"))
        loaded = load_dump(path)
        assert loaded["reason"] == "manual"
        assert loaded["version"] == payload["version"]
        before = traceview.span_tree(payload["spans"])
        after = traceview.span_tree(loaded["spans"])
        assert after == before

    def test_open_spans_are_captured_at_the_dump_instant(self):
        clock = FixedTimebase()
        reg = MetricsRegistry(clock=clock)
        rec = FlightRecorder(reg)
        with reg.span("session.topology"):
            clock.advance(2.0)
            payload = rec.dump("fault.crash_collector")
        (span,) = payload["spans"]
        assert span["name"] == "session.topology"
        assert span["open"] is True
        assert span["duration_s"] == 2.0

    def test_dump_filters_to_the_requested_trace(self):
        clock = FixedTimebase()
        reg = MetricsRegistry(clock=clock)
        rec = FlightRecorder(reg)
        _make_spans(reg, clock)  # t0001
        _make_spans(reg, clock)  # t0002
        payload = rec.dump("answer.partial", trace_id="t0002")
        assert payload["trace_id"] == "t0002"
        assert {s["trace_id"] for s in payload["spans"]} == {"t0002"}

    def test_load_dump_rejects_non_dumps(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"not": "a dump"}))
        try:
            load_dump(bogus)
        except ValueError as e:
            assert "flight-recorder" in str(e)
        else:
            raise AssertionError("load_dump accepted a non-dump")


class TestChaosPartialAutoDump:
    def test_partial_answer_dumps_causal_tree_across_sites(self, tmp_path):
        """The acceptance scenario: a dead site degrades a query to
        PARTIAL; the flight recorder auto-dumps, and the dump's span
        tree shows the per-site delegation fan-out with explicit
        parents."""
        w = build_multisite_wan(
            [SiteSpec(n, access_bps=10 * MBPS, n_hosts=3) for n in ("a", "b", "c")]
        )
        dep = deploy_wan(w)
        faults.install(dep, faults.FaultPlan())
        faults.crash_collector(dep.snmp_collectors["b"], 60.0)
        with obs.scoped_registry() as reg:
            reg.use_sim_clock(w.net.engine)
            with FlightRecorder(reg, out_dir=tmp_path) as rec:
                topo = dep.session().topology([w.host(x, 0) for x in "abc"])
        assert topo.status == QueryStatus.PARTIAL
        assert topo.trace_id
        dump = next(
            d for d in rec.dumps if d["reason"] == "answer.partial"
        )
        assert dump["trace_id"] == topo.trace_id
        roots = traceview.span_tree(dump["spans"])
        (root,) = [r for r in roots if r["name"] == "session.topology"]
        modeler = next(
            c for c in root["children"] if c["name"] == "modeler.topology_query"
        )
        master = next(
            c
            for c in modeler["children"]
            if c["name"] == "collectors.master.topology"
        )
        sites = {
            d["labels"]["site"]
            for d in master["children"]
            if d["name"] == "collectors.master.delegate"
        }
        assert sites == {"a", "b", "c"}
        # the dump landed on disk and renders through the CLI helpers
        assert sorted(tmp_path.glob("flightrec-*-answer-partial.json"))
        lines = traceview.waterfall_lines(dump["spans"])
        assert any("collectors.master.delegate" in ln for ln in lines)

    def test_fault_firing_triggers_a_dump(self):
        w = build_multisite_wan(
            [SiteSpec(n, access_bps=10 * MBPS, n_hosts=2) for n in ("a", "b")]
        )
        dep = deploy_wan(w)
        faults.install(dep, faults.FaultPlan())
        with obs.scoped_registry() as reg:
            reg.use_sim_clock(w.net.engine)
            with FlightRecorder(reg) as rec:
                faults.crash_collector(dep.snmp_collectors["b"], 30.0)
        assert any(d["reason"] == "fault.collector_crash" for d in rec.dumps)
        assert reg.counter("obs.flightrec.dumps", reason="fault").value == 1
