"""Tests for collector-attached streaming predictors (§2.3)."""

import pytest

from repro.common.units import MBPS
from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan
from repro.rps.service import RpsPredictionService


@pytest.fixture
def streaming_lan():
    lan = build_switched_lan(8, fanout=8)
    dep = deploy_lan(lan, poll_interval_s=2.0)
    dep.modeler.prediction_service = RpsPredictionService("AR(8)")
    lan.net.flows.start_flow(lan.hosts[0], lan.hosts[7], demand_bps=30 * MBPS)
    dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # discover
    managers = dep.enable_streaming_prediction("AR(8)", min_history=16)
    dep.start_monitoring()
    lan.net.engine.run_until(lan.net.now + 120.0)
    return lan, dep, managers


class TestStreamingManagers:
    def test_predictors_materialize_from_polling(self, streaming_lan):
        lan, dep, managers = streaming_lan
        [mgr] = managers
        assert mgr.predictors, "polling must have built predictors"
        assert mgr.samples_fed > 0

    def test_forecast_edge_answers(self, streaming_lan):
        lan, dep, managers = streaming_lan
        from repro.collectors.base import HistoryRequest

        coll = dep.snmp_collectors["lan"]
        out = coll.forecast_edge(
            HistoryRequest(str(lan.hosts[0].ip), "sw0"), horizon=5
        )
        assert out is not None
        preds, variances = out
        assert preds.shape == (5,)
        # the link carries ~30 Mbps: the forecast must be in that zone
        assert preds[-1] == pytest.approx(30 * MBPS, rel=0.2)

    def test_predictive_query_uses_streaming_not_fit(self, streaming_lan):
        lan, dep, managers = streaming_lan
        server = dep.modeler.prediction_service.server
        before = server.requests_served
        ans = dep.modeler.flow_query(
            lan.hosts[0], lan.hosts[7], predict=True
        )
        assert ans.predicted_bps is not None
        assert ans.predicted_bps == pytest.approx(70 * MBPS, rel=0.15)
        # no client-server fit was paid: the streaming path answered
        assert server.requests_served == before

    def test_fallback_without_streaming(self):
        lan = build_switched_lan(4, fanout=4)
        dep = deploy_lan(lan, poll_interval_s=2.0)
        dep.modeler.prediction_service = RpsPredictionService("AR(8)")
        dep.modeler.flow_query(lan.hosts[0], lan.hosts[3])
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 120.0)
        server = dep.modeler.prediction_service.server
        before = server.requests_served
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[3], predict=True)
        assert ans.predicted_bps is not None
        # the client-server path (fit per query) answered instead
        assert server.requests_served == before + 1

    def test_enable_idempotent(self, streaming_lan):
        lan, dep, managers = streaming_lan
        again = dep.enable_streaming_prediction("AR(8)")
        assert again == []  # already attached
