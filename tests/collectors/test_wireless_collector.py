"""Tests for the Wireless Collector."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.address import MacAddress
from repro.netsim.builders import build_wireless_lan
from repro.netsim.wireless import associate
from repro.snmp.agent import instrument_network
from repro.collectors.wireless_collector import WirelessCollector


@pytest.fixture
def wlan():
    wl = build_wireless_lan(n_basestations=3, n_wireless_hosts=6)
    world = instrument_network(wl.net)
    wc = WirelessCollector(
        "wc", wl.net, world, wl.wired_hosts[0].ip,
        {bs.name: bs.management_ip for bs in wl.basestations},
    )
    return wl, world, wc


class TestScan:
    def test_scan_finds_all_cells_and_stations(self, wlan):
        wl, world, wc = wlan
        cells = wc.scan()
        assert set(cells) == {"ap0", "ap1", "ap2"}
        assert sum(c.station_count for c in cells.values()) == 6

    def test_locate_matches_ground_truth(self, wlan):
        wl, world, wc = wlan
        wc.scan()
        for h in wl.wireless_hosts:
            mac = h.interfaces[0].mac
            truth = h.interfaces[0].peer().device.name
            assert wc.locate(mac).name == truth

    def test_locate_triggers_lazy_scan(self, wlan):
        wl, world, wc = wlan
        mac = wl.wireless_hosts[0].interfaces[0].mac
        assert wc.locate(mac).name == "ap0"

    def test_unknown_station(self, wlan):
        wl, world, wc = wlan
        wc.scan()
        with pytest.raises(TopologyError):
            wc.locate(MacAddress(0xABCDEF))

    def test_unreachable_ap_skipped(self, wlan):
        wl, world, wc = wlan
        wl.basestations[1].snmp_reachable = False
        cells = wc.scan()
        assert "ap1" not in cells
        # stations of ap1 unlocatable
        orphan = wl.wireless_hosts[1].interfaces[0].mac
        with pytest.raises(TopologyError):
            wc.locate(orphan)


class TestRoaming:
    def test_handoff_detected(self, wlan):
        wl, world, wc = wlan
        wc.scan()
        h = wl.wireless_hosts[0]
        associate(wl.net, h, wl.basestations[2])
        world.refresh_device(wl.basestations[0])
        world.refresh_device(wl.basestations[2])
        moved = wc.monitor_tick()
        assert moved == 1
        assert wc.locate(h.interfaces[0].mac).name == "ap2"

    def test_no_false_handoffs(self, wlan):
        wl, world, wc = wlan
        wc.scan()
        assert wc.monitor_tick() == 0
        assert wc.handoffs_seen == 0


class TestBandwidthEstimates:
    def test_share_divides_air_rate(self, wlan):
        wl, world, wc = wlan
        wc.scan()
        mac = wl.wireless_hosts[0].interfaces[0].mac
        # 2 stations in ap0's cell at 11 Mbps
        assert wc.expected_bandwidth(mac) == pytest.approx(11 * MBPS / 2)

    def test_expected_share_for_newcomer(self, wlan):
        wl, world, wc = wlan
        cells = wc.scan()
        assert cells["ap0"].expected_share_bps() == pytest.approx(11 * MBPS / 3)
