"""Tests for Benchmark Collector, directory, and Master Collector."""

import pytest

from repro.common.errors import QueryError, UnknownHostError
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.netsim.traffic import RandomWalkTraffic
from repro.netsim.address import IPv4Address
from repro.collectors.base import TopologyRequest
from repro.collectors.benchmark_collector import BenchmarkCollector, BenchmarkConfig
from repro.collectors.directory import CollectorDirectory
from repro.deploy import deploy_wan


@pytest.fixture
def wan():
    return build_multisite_wan(
        [
            SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("eth", access_bps=60 * MBPS, n_hosts=3),
            SiteSpec("dsl", access_bps=0.08 * MBPS, n_hosts=3),
        ]
    )


class TestBenchmarkCollector:
    def test_probe_measures_bottleneck(self, wan):
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2))
        b = BenchmarkCollector("eth", wan.net, wan.host("eth", 2))
        a.add_peer(b)
        m = a.probe("eth")
        assert m.throughput_bps == pytest.approx(10 * MBPS, rel=0.01)
        assert m.src_site == "cmu" and m.dst_site == "eth"

    def test_probe_takes_simulated_time(self, wan):
        a = BenchmarkCollector(
            "cmu", wan.net, wan.host("cmu", 2), BenchmarkConfig(probe_bytes=1_250_000)
        )
        b = BenchmarkCollector("eth", wan.net, wan.host("eth", 2))
        a.add_peer(b)
        t0 = wan.net.now
        a.probe("eth")
        # 1.25 MB at 10 Mbps = 1 s
        assert wan.net.now - t0 == pytest.approx(1.0, rel=0.01)

    def test_slow_link_probe_capped(self, wan):
        cfg = BenchmarkConfig(probe_bytes=10_000_000, max_probe_s=5.0)
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2), cfg)
        b = BenchmarkCollector("dsl", wan.net, wan.host("dsl", 2))
        a.add_peer(b)
        t0 = wan.net.now
        m = a.probe("dsl")
        assert wan.net.now - t0 == pytest.approx(5.0, rel=0.01)
        assert m.throughput_bps == pytest.approx(0.08 * MBPS, rel=0.02)

    def test_measurement_cached_until_stale(self, wan):
        cfg = BenchmarkConfig(max_age_s=100.0)
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2), cfg)
        b = BenchmarkCollector("eth", wan.net, wan.host("eth", 2))
        a.add_peer(b)
        m1 = a.probe("eth")
        m2 = a.measurement("eth")
        assert m2 is m1  # served from cache
        wan.net.engine.run_until(wan.net.now + 200.0)
        m3 = a.measurement("eth")
        assert m3 is not m1  # re-probed

    def test_measurement_stale_without_probe(self, wan):
        cfg = BenchmarkConfig(max_age_s=1.0)
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2), cfg)
        b = BenchmarkCollector("eth", wan.net, wan.host("eth", 2))
        a.add_peer(b)
        a.probe("eth")
        wan.net.engine.run_until(wan.net.now + 10.0)
        m = a.measurement("eth", allow_probe=False)
        assert m.stale

    def test_statistics(self, wan):
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2))
        b = BenchmarkCollector("eth", wan.net, wan.host("eth", 2))
        a.add_peer(b)
        for _ in range(4):
            a.probe("eth")
        mean, std, n = a.statistics("eth")
        assert n == 4
        assert mean == pytest.approx(10 * MBPS, rel=0.02)
        assert std < 0.1 * MBPS

    def test_unknown_peer_raises(self, wan):
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2))
        with pytest.raises(QueryError):
            a.probe("nowhere")
        with pytest.raises(QueryError):
            a.statistics("nowhere")

    def test_self_peer_rejected(self, wan):
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2))
        with pytest.raises(ValueError):
            a.add_peer(a)

    def test_periodic_probing(self, wan):
        cfg = BenchmarkConfig(period_s=30.0)
        a = BenchmarkCollector("cmu", wan.net, wan.host("cmu", 2), cfg)
        b = BenchmarkCollector("eth", wan.net, wan.host("eth", 2))
        a.add_peer(b)
        a.start_periodic()
        wan.net.engine.run_until(100.0)
        a.stop_periodic()
        assert a.probes_run >= 3
        assert len(a.history["eth"]) == a.probes_run


class TestDirectory:
    def test_longest_prefix_lookup(self, wan):
        dep = deploy_wan(wan)
        reg = dep.directory.lookup("10.10.0.10")
        assert reg.site == "cmu"
        with pytest.raises(UnknownHostError):
            dep.directory.lookup("172.16.0.1")

    def test_sites_listing(self, wan):
        dep = deploy_wan(wan)
        assert dep.directory.sites() == ["cmu", "dsl", "eth"]


class TestMasterCollector:
    def test_single_site_query_delegates(self, wan):
        dep = deploy_wan(wan)
        resp = dep.master.topology(
            TopologyRequest.of([wan.host("cmu", 0).ip, wan.host("cmu", 1).ip])
        )
        ids = [n.id for n in resp.graph.nodes()]
        assert str(wan.host("cmu", 0).ip) in ids
        # no WAN stitching needed within one site
        assert not any(n.kind == "cloud" for n in resp.graph.nodes())

    def test_multi_site_query_is_stitched(self, wan):
        dep = deploy_wan(wan)
        resp = dep.master.topology(
            TopologyRequest.of([wan.host("cmu", 0).ip, wan.host("eth", 0).ip])
        )
        g = resp.graph
        path = g.path(str(wan.host("cmu", 0).ip), str(wan.host("eth", 0).ip))
        assert "cmu-gw" in path and "eth-gw" in path
        e = g.edge("cmu-gw", "eth-gw")
        assert e.capacity_bps == pytest.approx(10 * MBPS, rel=0.05)

    def test_three_site_query(self, wan):
        dep = deploy_wan(wan)
        ips = [wan.host(s, 0).ip for s in ("cmu", "eth", "dsl")]
        resp = dep.master.topology(TopologyRequest.of(ips))
        g = resp.graph
        # all three logical edges present
        assert g.has_edge("cmu-gw", "eth-gw")
        assert g.has_edge("cmu-gw", "dsl-gw")
        assert g.has_edge("dsl-gw", "eth-gw")

    def test_covers(self, wan):
        dep = deploy_wan(wan)
        assert dep.master.covers(IPv4Address("10.10.0.10"))
        assert not dep.master.covers(IPv4Address("172.16.0.1"))

    def test_unresolved_propagates(self, wan):
        dep = deploy_wan(wan)
        resp = dep.master.topology(
            TopologyRequest.of([wan.host("cmu", 0).ip, "172.16.0.1"])
        )
        assert "172.16.0.1" in resp.unresolved

    def test_hierarchical_master(self, wan):
        """A master registered inside another master's directory."""
        dep = deploy_wan(wan)
        from repro.collectors.directory import CollectorDirectory
        from repro.collectors.master import MasterCollector

        top_dir = CollectorDirectory()
        top_dir.register(
            dep.master,
            ["10.0.0.0/8", "192.168.0.0/16"],
            site="everything",
            remote=True,
        )
        top = MasterCollector("top", wan.net, top_dir)
        resp = top.topology(
            TopologyRequest.of([wan.host("cmu", 0).ip, wan.host("eth", 0).ip])
        )
        path = resp.graph.path(
            str(wan.host("cmu", 0).ip), str(wan.host("eth", 0).ip)
        )
        assert "cmu-gw" in path and "eth-gw" in path
