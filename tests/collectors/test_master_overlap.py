"""Concurrent Master delegation and batched monitor polling.

The Master charges the *makespan* of its sub-queries (on
``rpc.max_parallel`` workers) rather than their sum; the SNMP
collector's polling sweep coalesces all links behind one agent into a
single multi-varbind PDU.  Both must change only costs, never answers.
"""

import pytest

from repro import obs
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan
from repro.netsim.engine import Engine
from repro.collectors.base import TopologyRequest
from repro.deploy import deploy_lan, deploy_wan
from repro.modeler.graph import TopologyGraph
from repro.snmp import oid as O
from repro.snmp.client import SnmpClient


class TestOverlapScope:
    def test_unbounded_width_charges_max(self):
        eng = Engine()
        with eng.overlap() as ov:
            for d in (0.3, 0.1, 0.2):
                with ov.task():
                    eng.advance(d)
        assert ov.serial_s == pytest.approx(0.6)
        assert ov.overlapped_s == pytest.approx(0.3)
        assert ov.saved_s == pytest.approx(0.3)
        assert eng.now == pytest.approx(0.3)

    def test_width_limits_concurrency(self):
        eng = Engine()
        with eng.overlap(width=2) as ov:
            for d in (1.0, 1.0, 1.0, 1.0):
                with ov.task():
                    eng.advance(d)
        # 4 unit tasks on 2 workers: makespan 2, not 1 and not 4
        assert ov.overlapped_s == pytest.approx(2.0)
        assert eng.now == pytest.approx(2.0)

    def test_empty_scope_is_free(self):
        eng = Engine()
        with eng.overlap() as ov:
            pass
        assert ov.saved_s == 0.0
        assert eng.now == 0.0

    def test_negative_width_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            with eng.overlap(width=-1):
                pass


@pytest.fixture
def wan4():
    w = build_multisite_wan(
        [
            SiteSpec(f"s{i}", access_bps=10 * MBPS, n_hosts=2)
            for i in range(4)
        ]
    )
    dep = deploy_wan(w)
    # model site collectors as remote peers so delegation RPC cost
    # (the thing being overlapped) dominates the warm query
    for r in dep.directory.registrations():
        r.remote = True
    ips = [w.host(f"s{i}", 0).ip for i in range(4)]
    dep.master.topology(TopologyRequest.of(ips))  # cold pass
    return w, dep, ips


class TestConcurrentDelegation:
    def _warm_query_cost(self, w, dep, ips):
        req = TopologyRequest(
            tuple(str(ip) for ip in ips), include_dynamics=False
        )
        t0 = w.net.now
        resp = dep.master.topology(req)
        return w.net.now - t0, resp

    def test_parallel_charges_makespan_not_sum(self, wan4):
        w, dep, ips = wan4
        dep.master.rpc.max_parallel = 1
        serial_cost, serial_resp = self._warm_query_cost(w, dep, ips)
        dep.master.rpc.max_parallel = 8
        with obs.scoped_registry() as reg:
            parallel_cost, parallel_resp = self._warm_query_cost(w, dep, ips)
        assert parallel_cost < serial_cost * 0.6
        saved = reg.histogram("collectors.master.overlap_saved_s")
        assert saved.count == 1 and saved.sum > 0
        # same answer either way
        assert {n.id for n in parallel_resp.graph.nodes()} == {
            n.id for n in serial_resp.graph.nodes()
        }
        assert parallel_resp.graph.num_edges() == serial_resp.graph.num_edges()

    def test_width_one_saves_nothing(self, wan4):
        w, dep, ips = wan4
        dep.master.rpc.max_parallel = 1
        with obs.scoped_registry() as reg:
            self._warm_query_cost(w, dep, ips)
        saved = reg.histogram("collectors.master.overlap_saved_s")
        assert saved.sum == pytest.approx(0.0)


class TestWanEdgeOrdering:
    def test_missing_anchor_skips_probing_entirely(self, wan4):
        """has_node is checked before any benchmark measurement, so a
        missing anchor costs neither sim time nor probe RPCs."""
        w, dep, _ = wan4
        g = TopologyGraph()
        t0 = w.net.now
        with obs.scoped_registry() as reg:
            dep.master._add_wan_edge(g, "s0", "ghost-a", "s1", "ghost-b")
        assert w.net.now == t0
        assert reg.counter("collectors.master.wan_edges").value == 0.0
        assert g.num_edges() == 0


@pytest.fixture
def monitored_lan():
    lan = build_switched_lan(8, fanout=4)  # several switches = several agents
    dep = deploy_lan(lan)
    dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # creates monitors
    coll = dep.snmp_collectors["lan"]
    assert coll.monitors
    return lan, dep, coll


class TestBatchedPolling:
    def test_one_pdu_per_agent(self, monitored_lan):
        lan, dep, coll = monitored_lan
        agents = {k.agent_ip for k in coll.monitors}
        before = coll.client.pdu_count
        with obs.scoped_registry() as reg:
            coll.poll_once()
        assert coll.client.pdu_count - before == len(agents)
        batches = reg.histogram("collectors.snmp.poll.batch_links")
        assert batches.count == len(agents)
        assert batches.sum == len(coll.monitors)

    def test_batched_values_match_direct_reads(self, monitored_lan):
        """The coalesced PDU records exactly the counters a per-link
        read would have seen (no flows running, so counters are
        static)."""
        lan, dep, coll = monitored_lan
        coll.poll_once()
        probe = SnmpClient(dep.world, lan.hosts[1].ip)
        for key, mon in coll.monitors.items():
            t, inb, outb = mon.samples[-1]
            expect_in, expect_out = probe.get_many(
                key.agent_ip,
                [O.IF_IN_OCTETS + key.ifindex, O.IF_OUT_OCTETS + key.ifindex],
            )
            assert (inb, outb) == (float(expect_in), float(expect_out))

    def test_dead_agent_fails_whole_batch_cheaply(self, monitored_lan):
        lan, dep, coll = monitored_lan
        agents = sorted({k.agent_ip for k in coll.monitors})
        assert len(agents) > 1
        victim_ip = agents[0]
        dep.world.agent_at(victim_ip).device.snmp_reachable = False
        dead_keys = {k for k in coll.monitors if k.agent_ip == victim_ip}
        timeouts_before = coll.client.timeout_count
        coll.poll_once()
        # one timeout covers every link behind the dead agent
        assert coll.client.timeout_count - timeouts_before == 1
        for k in dead_keys:
            assert coll.monitors[k].sample_failures == 1
        # monitors behind live agents still got their sample
        live = [m for k, m in coll.monitors.items() if k not in dead_keys]
        assert live and all(m.sample_failures == 0 for m in live)
