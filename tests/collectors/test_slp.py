"""Tests for the mini-SLP directory and its Master integration."""

import pytest

from repro.common.errors import UnknownHostError
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.collectors.base import TopologyRequest
from repro.collectors.master import MasterCollector
from repro.collectors.slp import (
    SERVICE_BENCHMARK,
    SERVICE_TOPOLOGY,
    DirectoryAgent,
    SlpCollectorDirectory,
)
from repro.deploy import deploy_wan


@pytest.fixture
def wan():
    w = build_multisite_wan(
        [
            SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("b", access_bps=5 * MBPS, n_hosts=3),
        ]
    )
    return w, deploy_wan(w)


class TestDirectoryAgent:
    def test_register_and_find(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "service:remos-topology://x", object())
        assert len(da.find(SERVICE_TOPOLOGY)) == 1
        assert da.find(SERVICE_BENCHMARK) == []

    def test_scope_filtering(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", object(), scopes=("campus",))
        assert da.find(SERVICE_TOPOLOGY, "default") == []
        assert len(da.find(SERVICE_TOPOLOGY, "campus")) == 1

    def test_lifetime_expiry(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", object(), lifetime_s=100.0)
        assert len(da) == 1
        w.net.engine.run_until(w.net.now + 200.0)
        assert len(da) == 0
        assert da.find(SERVICE_TOPOLOGY) == []

    def test_refresh_extends_lease(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", object(), lifetime_s=100.0)
        w.net.engine.run_until(w.net.now + 80.0)
        assert da.refresh("u1", lifetime_s=100.0)
        w.net.engine.run_until(w.net.now + 80.0)
        assert len(da) == 1

    def test_refresh_after_expiry_fails(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", object(), lifetime_s=10.0)
        w.net.engine.run_until(w.net.now + 20.0)
        assert not da.refresh("u1")

    def test_reregister_replaces(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", "first")
        da.register(SERVICE_TOPOLOGY, "u1", "second")
        assert len(da) == 1
        assert da.find(SERVICE_TOPOLOGY)[0].provider == "second"

    def test_attributes(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", object(), attributes={"k": 1})
        assert da.attributes("u1") == {"k": 1}
        with pytest.raises(UnknownHostError):
            da.attributes("nope")

    def test_deregister(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        da.register(SERVICE_TOPOLOGY, "u1", object())
        da.deregister("u1")
        da.deregister("u1")  # idempotent
        assert len(da) == 0


class TestSlpBackedMaster:
    def _slp_master(self, w, dep):
        da = DirectoryAgent(w.net)
        slp_dir = SlpCollectorDirectory(da)
        for site, coll in dep.snmp_collectors.items():
            slp_dir.register(coll, [str(p) for p in coll.config.domains], site)
        for bench in dep.benchmarks.values():
            slp_dir.register_benchmark(bench)
        borders = {s: dep.master.borders[s] for s in dep.master.borders}
        return da, MasterCollector("slp-master", w.net, slp_dir, borders)

    def test_lookup_via_slp(self, wan):
        w, dep = wan
        da, master = self._slp_master(w, dep)
        resp = master.topology(
            TopologyRequest.of([w.host("a", 0).ip, w.host("b", 0).ip])
        )
        path = resp.graph.path(str(w.host("a", 0).ip), str(w.host("b", 0).ip))
        assert "a-gw" in path and "b-gw" in path

    def test_expired_collector_disappears(self, wan):
        w, dep = wan
        da = DirectoryAgent(w.net)
        slp_dir = SlpCollectorDirectory(da)
        slp_dir.register(
            dep.snmp_collectors["a"],
            [str(p) for p in dep.snmp_collectors["a"].config.domains],
            "a",
            lifetime_s=50.0,
        )
        master = MasterCollector("m", w.net, slp_dir)
        ok = master.topology(TopologyRequest.of([w.host("a", 0).ip]))
        assert not ok.unresolved
        w.net.engine.run_until(w.net.now + 100.0)  # lease expires
        gone = master.topology(TopologyRequest.of([w.host("a", 0).ip]))
        assert str(w.host("a", 0).ip) in gone.unresolved
