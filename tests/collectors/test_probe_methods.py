"""Tests for the lightweight benchmark probe methods (§6.2)."""

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.collectors.benchmark_collector import BenchmarkCollector, BenchmarkConfig


@pytest.fixture
def wan():
    w = build_multisite_wan(
        [
            SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("b", access_bps=50 * MBPS, n_hosts=3),
        ]
    )
    return w


def _pair(w, method, **kw):
    cfg = BenchmarkConfig(method=method, **kw)
    a = BenchmarkCollector("a", w.net, w.host("a", 2), cfg)
    b = BenchmarkCollector("b", w.net, w.host("b", 2))
    a.add_peer(b)
    return a


class TestMethods:
    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(method="telepathy")

    def test_bulk_accurate(self, wan):
        a = _pair(wan, "bulk", probe_bytes=250_000)
        m = a.probe("b")
        assert m.throughput_bps == pytest.approx(10 * MBPS, rel=0.01)
        assert a.bytes_injected == pytest.approx(250_000, rel=0.01)

    def test_packet_pair_cheap_but_noisy(self, wan):
        a = _pair(wan, "packet_pair")
        samples = [a.probe("b").throughput_bps for _ in range(30)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(10 * MBPS, rel=0.15)
        spread = max(samples) - min(samples)
        assert spread > 0.05 * mean, "packet pair must be noisy"
        # ~3 KB per probe vs 250 KB for bulk: ~80x less intrusive
        per_probe = a.bytes_injected / 30
        assert per_probe < 0.02 * 250_000

    def test_packet_pair_fast(self, wan):
        a = _pair(wan, "packet_pair")
        t0 = wan.net.now
        a.probe("b")
        assert wan.net.now - t0 < 1.0

    def test_one_way_blind_to_cross_traffic(self, wan):
        # saturate half the bottleneck
        wan.net.flows.start_flow(wan.host("a", 1), wan.host("b", 1),
                                 demand_bps=5 * MBPS)
        one_way = _pair(wan, "one_way")
        bulk = _pair(wan, "bulk", probe_bytes=125_000)
        m1 = one_way.probe("b")
        m2 = bulk.probe("b")
        # single-ended sees raw capacity; bulk sees what's left
        assert m1.throughput_bps == pytest.approx(10 * MBPS, rel=0.01)
        assert m2.throughput_bps == pytest.approx(5 * MBPS, rel=0.05)

    def test_one_way_injects_least(self, wan):
        a = _pair(wan, "one_way")
        a.probe("b")
        assert a.bytes_injected <= 1_500

    def test_histories_shared_across_methods(self, wan):
        a = _pair(wan, "packet_pair")
        for _ in range(4):
            a.probe("b")
        mean, std, n = a.statistics("b")
        assert n == 4
        assert mean > 0
