"""Round-trip tests for the ASCII wire protocol."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectors.base import TopologyRequest
from repro.collectors.protocol import (
    ProtocolError,
    decode_request,
    decode_topology,
    encode_request,
    encode_topology,
)
from repro.modeler.graph import (
    CLOUD,
    HOST,
    ROUTER,
    SWITCH,
    VSWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)


def _sample_graph():
    g = TopologyGraph()
    g.add_node(TopoNode("10.0.0.1", HOST, ("10.0.0.1",)))
    g.add_node(TopoNode("gw one", ROUTER, ("10.0.0.254", "192.168.0.1")))
    g.add_node(TopoNode("vsw:10.0.0.0/24", VSWITCH))
    g.add_edge(TopoEdge("10.0.0.1", "vsw:10.0.0.0/24", math.inf, 0.0, 0.0, 0.0005))
    g.add_edge(TopoEdge("vsw:10.0.0.0/24", "gw one", 1e8, 2.5e6, 1.25e5, 0.001))
    return g


class TestTopologyCodec:
    def test_roundtrip(self):
        g = _sample_graph()
        g2 = decode_topology(encode_topology(g))
        assert sorted(n.id for n in g2.nodes()) == sorted(n.id for n in g.nodes())
        for e in g.edges():
            e2 = g2.edge(e.a, e.b)
            assert e2.capacity_bps == e.capacity_bps
            assert e2.util_ab_bps == e.util_ab_bps
            assert e2.util_ba_bps == e.util_ba_bps
            assert e2.latency_s == e.latency_s

    def test_node_with_space_in_id(self):
        g = _sample_graph()
        g2 = decode_topology(encode_topology(g))
        assert g2.has_node("gw one")

    def test_inf_capacity_roundtrip(self):
        g = _sample_graph()
        g2 = decode_topology(encode_topology(g))
        assert math.isinf(g2.edge("10.0.0.1", "vsw:10.0.0.0/24").capacity_bps)

    def test_ips_roundtrip(self):
        g2 = decode_topology(encode_topology(_sample_graph()))
        assert g2.node("gw one").ips == ("10.0.0.254", "192.168.0.1")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "GARBAGE\nEND",
            "REMOS/1 TOPOLOGY\nNODE a host",  # no END
            "REMOS/1 TOPOLOGY\nWHAT x\nEND",
            "REMOS/1 TOPOLOGY\nEDGE a b 1 2\nEND",  # short edge
            "REMOS/1 TOPOLOGY\nEDGE a b x 0 0 0\nEND",  # bad number
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode_topology(bad)

    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\n"),
                    min_size=1,
                    max_size=12,
                ),
                st.sampled_from([HOST, ROUTER, SWITCH, VSWITCH, CLOUD]),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_node_ids_roundtrip(self, nodes):
        g = TopologyGraph()
        for nid, kind in nodes:
            g.add_node(TopoNode(nid, kind))
        ids = [n.id for n in g.nodes()]
        g2 = decode_topology(encode_topology(g))
        assert sorted(n.id for n in g2.nodes()) == sorted(ids)


class TestRequestCodec:
    def test_roundtrip(self):
        req = TopologyRequest(("10.0.0.1", "10.0.0.2"), True, "10.0.0.254")
        req2 = decode_request(encode_request(req))
        assert req2 == req

    def test_static_roundtrip(self):
        req = TopologyRequest(("10.0.0.1",), include_dynamics=False)
        req2 = decode_request(encode_request(req))
        assert req2.include_dynamics is False
        assert req2.anchor_ip is None

    def test_empty_request_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request("REMOS/1 QUERY TOPOLOGY DYNAMICS\nEND")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            decode_request("HELLO\nNODEIP 1.2.3.4\nEND")
