"""Tests for the Bridge Collector and its L2 inference algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MBPS
from repro.netsim.address import MacAddress
from repro.netsim.builders import build_hub_lan, build_switched_lan
from repro.netsim.topology import Network
from repro.snmp.agent import instrument_network
from repro.collectors.bridge_collector import (
    Attachment,
    BridgeCollector,
    infer_l2_topology,
)


def _collector_for_lan(lan):
    world = instrument_network(lan.net)
    switches = getattr(lan, "switches", None) or [lan.switch]
    return BridgeCollector(
        "bc", lan.net, world, lan.hosts[0].ip,
        {sw.name: sw.management_ip for sw in switches},
    )


class TestStartupDiscovery:
    def test_all_hosts_located_correctly(self):
        lan = build_switched_lan(40, fanout=4)
        bc = _collector_for_lan(lan)
        db = bc.startup()
        for h in lan.hosts:
            iface = h.interfaces[0]
            att = db.locate(iface.mac)
            assert att.switch == iface.peer().device.name
            assert att.port == iface.peer().index

    def test_router_is_a_station(self):
        lan = build_switched_lan(8, fanout=8)
        bc = _collector_for_lan(lan)
        db = bc.startup()
        gw_iface = next(i for i in lan.router.interfaces if i.ip is not None)
        att = db.locate(gw_iface.mac)
        assert att.switch == gw_iface.peer().device.name

    def test_switch_adjacency_matches_ground_truth(self):
        lan = build_switched_lan(64, fanout=4)
        bc = _collector_for_lan(lan)
        db = bc.startup()
        # reconstruct inferred switch adjacency through segments
        inferred = set()
        for seg in db.segments.values():
            sws = [sp.switch for sp in seg.switch_ports]
            for i in range(len(sws)):
                for j in range(i + 1, len(sws)):
                    inferred.add(frozenset((sws[i], sws[j])))
        actual = set()
        for sw in lan.switches:
            for iface in sw.interfaces:
                peer = iface.peer()
                if peer is not None and peer.device in lan.switches:
                    actual.add(frozenset((sw.name, peer.device.name)))
        assert inferred == actual

    def test_hub_detected_as_shared_segment(self):
        hl = build_hub_lan(n_hub_hosts=4, n_switch_hosts=2)
        bc = _collector_for_lan(hl)
        db = bc.startup()
        shared = [s for s in db.segments.values() if len(s.stations) > 1]
        assert len(shared) == 1
        assert len(shared[0].stations) == 4  # the hub hosts

    def test_direct_hosts_not_in_segments(self):
        hl = build_hub_lan(n_hub_hosts=3, n_switch_hosts=2)
        bc = _collector_for_lan(hl)
        db = bc.startup()
        for h in hl.hosts:
            if h.name.startswith("sw_h"):
                att = db.locate(h.interfaces[0].mac)
                assert att.switch == "sw0"

    def test_unreachable_switch_skipped(self):
        lan = build_switched_lan(16, fanout=4)
        lan.switches[1].snmp_reachable = False
        bc = _collector_for_lan(lan)
        db = bc.startup()
        assert lan.switches[1].name not in db.switch_macs

    def test_path_endpoints(self):
        lan = build_switched_lan(20, fanout=4)
        bc = _collector_for_lan(lan)
        bc.startup()
        a = lan.hosts[0].interfaces[0].mac
        b = lan.hosts[19].interfaces[0].mac
        path = bc.path(a, b)
        assert path[0] == ("mac", str(a))
        assert path[-1] == ("mac", str(b))
        kinds = {n[0] for n in path[1:-1]}
        assert kinds <= {"sw", "seg"}

    def test_knows(self):
        lan = build_switched_lan(4)
        bc = _collector_for_lan(lan)
        bc.startup()
        assert bc.knows(lan.hosts[0].interfaces[0].mac)
        assert not bc.knows(MacAddress(0xDEADBEEF))

    def test_lazy_startup_on_first_query(self):
        lan = build_switched_lan(4)
        bc = _collector_for_lan(lan)
        assert bc.db is None
        bc.locate(lan.hosts[0].interfaces[0].mac)
        assert bc.db is not None


class TestLocationMonitoring:
    def test_verify_location_no_move(self):
        lan = build_switched_lan(8, fanout=8)
        bc = _collector_for_lan(lan)
        bc.startup()
        mac = lan.hosts[0].interfaces[0].mac
        assert bc.verify_location(mac) is False
        assert bc.moves_seen == 0

    def test_monitor_tick_counts(self):
        lan = build_switched_lan(8, fanout=8)
        bc = _collector_for_lan(lan)
        bc.startup()
        assert bc.monitor_tick() == 0

    def test_detects_host_move(self):
        lan = build_switched_lan(32, fanout=4)
        bc = _collector_for_lan(lan)
        bc.startup()
        h = lan.hosts[0]
        mac = h.interfaces[0].mac
        old_att = bc.locate(mac)
        # Simulate a move: rewrite the FDBs as if the host re-homed to
        # another leaf switch (wireless roaming / re-cabling).
        new_leaf = lan.hosts[31].interfaces[0].peer().device
        new_port = lan.hosts[31].interfaces[0].peer().index
        from repro.netsim.bridging import populate_fdbs

        # physically relocate: detach and re-link is not allowed after
        # freeze, so emulate at the FDB level.
        for sw in lan.switches:
            if mac in sw.fdb:
                if sw is new_leaf:
                    sw.fdb[mac] = new_port
                else:
                    # point toward new_leaf: reuse path of a host already there
                    other = lan.hosts[31].interfaces[0].mac
                    sw.fdb[mac] = sw.fdb[other]
        assert bc.verify_location(mac) is True
        assert bc.moves_seen == 1
        new_att = bc.locate(mac)
        assert new_att != old_att
        assert new_att.switch == new_leaf.name


@st.composite
def _random_tree_lan(draw):
    """A random switch tree with hosts hanging off random switches."""
    n_switches = draw(st.integers(1, 7))
    n_hosts = draw(st.integers(1, 12))
    net = Network()
    switches = [net.add_switch(f"s{i}") for i in range(n_switches)]
    for i in range(1, n_switches):
        parent = draw(st.integers(0, i - 1))
        net.link(switches[parent], switches[i], 100 * MBPS)
    hosts = []
    for j in range(n_hosts):
        h = net.add_host(f"h{j}")
        target = draw(st.integers(0, n_switches - 1))
        ln = net.link(h, switches[target], 100 * MBPS)
        net.assign_ip(ln.a, f"10.0.{j // 200}.{1 + j % 200}", "10.0.0.0/16")
        hosts.append((h, switches[target]))
    for k, sw in enumerate(switches):
        net.assign_ip(sw.interfaces[0], f"10.0.254.{k + 1}", "10.0.0.0/16")
        sw.management_ip = sw.interfaces[0].ip
    net.freeze()
    return net, switches, hosts


class TestInferenceProperty:
    @given(_random_tree_lan())
    @settings(max_examples=40, deadline=None)
    def test_inference_recovers_random_trees(self, world):
        """For any random switch tree, inference from the FDBs must
        recover every host's true attachment and the switch adjacency."""
        net, switches, hosts = world
        fdbs = {sw.name: dict(sw.fdb) for sw in switches}
        # strip self entries as the collector does
        from repro.netsim.bridging import SELF_PORT

        for name in fdbs:
            fdbs[name] = {m: p for m, p in fdbs[name].items() if p != SELF_PORT}
        mgmt = {sw.name: sw.management_mac() for sw in switches}
        db = infer_l2_topology(fdbs, mgmt)
        for h, true_sw in hosts:
            iface = h.interfaces[0]
            att = db.locate(iface.mac)
            assert att.switch == true_sw.name
            assert att.port == iface.peer().index
        # adjacency
        inferred = set()
        for seg in db.segments.values():
            sws = sorted(sp.switch for sp in seg.switch_ports)
            for i in range(len(sws)):
                for j in range(i + 1, len(sws)):
                    inferred.add(frozenset((sws[i], sws[j])))
        actual = set()
        for sw in switches:
            for iface in sw.interfaces:
                peer = iface.peer()
                if peer is not None and peer.device.kind == "switch":
                    actual.add(frozenset((sw.name, peer.device.name)))
        assert inferred == actual
