"""Tests for collector warm-restart persistence."""

import pytest

from repro.common.units import MBPS
from repro.collectors.base import TopologyRequest
from repro.collectors.bridge_collector import BridgeCollector
from repro.collectors.persistence import (
    PersistenceError,
    load_bridge_state,
    load_snmp_state,
    save_bridge_state,
    save_snmp_state,
)
from repro.collectors.snmp_collector import SnmpCollector, SnmpCollectorConfig
from repro.netsim.address import IPv4Network
from repro.netsim.builders import build_switched_lan
from repro.snmp.agent import instrument_network


def _fresh_collector(lan, world, bridges):
    gw_ip = next(i.ip for i in lan.router.interfaces if i.ip is not None)
    return SnmpCollector(
        "snmp", lan.net, world, lan.hosts[0].ip,
        SnmpCollectorConfig(
            domains=[IPv4Network(lan.subnet)],
            gateways=[(IPv4Network(lan.subnet), gw_ip)],
        ),
        bridges,
    )


@pytest.fixture(scope="module")
def warm_world():
    lan = build_switched_lan(16, fanout=4)
    world = instrument_network(lan.net)
    bc = BridgeCollector(
        "bc", lan.net, world, lan.hosts[0].ip,
        {sw.name: sw.management_ip for sw in lan.switches},
    )
    bc.startup()
    bridges = {IPv4Network(lan.subnet): bc}
    coll = _fresh_collector(lan, world, bridges)
    ips = [str(h.ip) for h in lan.hosts[:8]]
    coll.topology(TopologyRequest.of(ips))  # warm everything
    return lan, world, bc, bridges, coll, ips


class TestSnmpPersistence:
    def test_roundtrip_restores_warm_behavior(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        state = save_snmp_state(coll)
        restarted = _fresh_collector(lan, world, bridges)
        load_snmp_state(restarted, state)
        resp = restarted.topology(TopologyRequest.of(ips))
        # warm-bridge cost: only monitor bootstrapping, no rediscovery
        warm_bridge_pdus = 2 * len(restarted.monitors)
        assert resp.pdu_cost <= warm_bridge_pdus + 2
        # same answer as the original collector
        orig = coll.topology(TopologyRequest.of(ips))
        assert sorted(n.id for n in resp.graph.nodes()) == sorted(
            n.id for n in orig.graph.nodes()
        )

    def test_cold_restart_without_state_rediscovers(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        cold = _fresh_collector(lan, world, bridges)
        warm_state = save_snmp_state(coll)
        warmed = _fresh_collector(lan, world, bridges)
        load_snmp_state(warmed, warm_state)
        cold_resp = cold.topology(TopologyRequest.of(ips))
        warm_resp = warmed.topology(TopologyRequest.of(ips))
        assert warm_resp.pdu_cost < cold_resp.pdu_cost / 2

    def test_bad_state_rejected(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        fresh = _fresh_collector(lan, world, bridges)
        with pytest.raises(PersistenceError):
            load_snmp_state(fresh, "{not json")
        with pytest.raises(PersistenceError):
            load_snmp_state(fresh, '{"kind": "other", "version": 1}')

    def test_monitors_not_persisted(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        restarted = _fresh_collector(lan, world, bridges)
        load_snmp_state(restarted, save_snmp_state(coll))
        assert not restarted.monitors  # dynamics always re-bootstrap


class TestBridgePersistence:
    def test_roundtrip(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        state = save_bridge_state(bc)
        restarted = BridgeCollector(
            "bc2", lan.net, world, lan.hosts[0].ip,
            {sw.name: sw.management_ip for sw in lan.switches},
        )
        load_bridge_state(restarted, state)
        pdus_before = restarted.client.pdu_count
        for h in lan.hosts:
            mac = h.interfaces[0].mac
            assert restarted.locate(mac) == bc.locate(mac)
        # locating from the database costs zero SNMP
        assert restarted.client.pdu_count == pdus_before
        # paths identical
        a = lan.hosts[0].interfaces[0].mac
        b = lan.hosts[15].interfaces[0].mac
        assert restarted.path(a, b) == bc.path(a, b)

    def test_save_requires_database(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        empty = BridgeCollector(
            "bc3", lan.net, world, lan.hosts[0].ip, {}
        )
        with pytest.raises(PersistenceError):
            save_bridge_state(empty)

    def test_monitoring_works_after_reload(self, warm_world):
        lan, world, bc, bridges, coll, ips = warm_world
        restarted = BridgeCollector(
            "bc4", lan.net, world, lan.hosts[0].ip,
            {sw.name: sw.management_ip for sw in lan.switches},
        )
        load_bridge_state(restarted, save_bridge_state(bc))
        assert restarted.monitor_tick() == 0  # nothing moved
