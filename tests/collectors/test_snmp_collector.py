"""Tests for the SNMP Collector: discovery, caching, monitoring."""

import math

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import build_dumbbell, build_switched_lan
from repro.netsim.address import IPv4Address, IPv4Network
from repro.snmp.agent import instrument_network
from repro.collectors.base import TopologyRequest
from repro.collectors.bridge_collector import BridgeCollector
from repro.collectors.snmp_collector import SnmpCollector, SnmpCollectorConfig
from repro.modeler.graph import HOST, ROUTER, SWITCH, VSWITCH


def _dumbbell_collector():
    d = build_dumbbell()
    world = instrument_network(d.net)
    config = SnmpCollectorConfig(
        domains=[IPv4Network("10.0.0.0/8"), IPv4Network("192.168.0.0/16")],
        gateways=[
            (IPv4Network("10.1.0.0/24"), IPv4Address("10.1.0.1")),
            (IPv4Network("10.2.0.0/24"), IPv4Address("10.2.0.1")),
        ],
    )
    coll = SnmpCollector("snmp", d.net, world, d.h1.ip, config)
    return d, coll


def _lan_collector(n_hosts=16, fanout=4, with_bridge=True):
    lan = build_switched_lan(n_hosts, fanout=fanout)
    world = instrument_network(lan.net)
    gw_ip = next(i.ip for i in lan.router.interfaces if i.ip is not None)
    bridges = {}
    if with_bridge:
        bc = BridgeCollector(
            "bc", lan.net, world, lan.hosts[0].ip,
            {sw.name: sw.management_ip for sw in lan.switches},
        )
        bc.startup()
        bridges[IPv4Network(lan.subnet)] = bc
    config = SnmpCollectorConfig(
        domains=[IPv4Network(lan.subnet)],
        gateways=[(IPv4Network(lan.subnet), gw_ip)],
    )
    coll = SnmpCollector("snmp", lan.net, world, lan.hosts[0].ip, config, bridges)
    return lan, coll


class TestRoutedDiscovery:
    def test_cross_router_path(self):
        d, coll = _dumbbell_collector()
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        ids = {n.id: n.kind for n in resp.graph.nodes()}
        assert ids["10.1.0.10"] == HOST
        assert ids["10.2.0.10"] == HOST
        assert ids["r1"] == ROUTER
        assert ids["r2"] == ROUTER
        assert not resp.unresolved
        # The /24 access subnets have no bridge collector, so each is a
        # virtual switch; the routed middle link is a direct edge.
        path = resp.graph.path("10.1.0.10", "10.2.0.10")
        assert path == [
            "10.1.0.10", "vsw:10.1.0.0/24", "r1", "r2",
            "vsw:10.2.0.0/24", "10.2.0.10",
        ]

    def test_capacities_from_ifspeed(self):
        d, coll = _dumbbell_collector()
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        e = resp.graph.edge("r1", "r2")
        assert e.capacity_bps == 100 * MBPS

    def test_utilization_visible(self):
        d, coll = _dumbbell_collector()
        d.net.flows.start_flow(d.h1, d.h2, demand_bps=20 * MBPS)
        d.net.engine.run_until(5.0)
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        e = resp.graph.edge("r1", "r2")
        assert e.util_from("r1") == pytest.approx(20 * MBPS, rel=0.02)
        assert e.util_from("r2") == pytest.approx(0.0, abs=1e-3)

    def test_unknown_host_unresolved(self):
        d, coll = _dumbbell_collector()
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.99.0.1"]))
        assert "10.99.0.1" in resp.unresolved

    def test_single_host_query(self):
        d, coll = _dumbbell_collector()
        resp = coll.topology(TopologyRequest.of(["10.1.0.10"]))
        assert resp.graph.has_node("10.1.0.10")

    def test_covers(self):
        d, coll = _dumbbell_collector()
        assert coll.covers(IPv4Address("10.1.0.10"))
        assert not coll.covers(IPv4Address("172.16.0.1"))

    def test_unreachable_router_becomes_vswitch(self):
        d = build_dumbbell()
        d.r2.snmp_reachable = False
        world = instrument_network(d.net)
        config = SnmpCollectorConfig(
            domains=[IPv4Network("10.0.0.0/8"), IPv4Network("192.168.0.0/16")],
            gateways=[
                (IPv4Network("10.1.0.0/24"), IPv4Address("10.1.0.1")),
                (IPv4Network("10.2.0.0/24"), IPv4Address("10.2.0.1")),
            ],
        )
        coll = SnmpCollector("snmp", d.net, world, d.h1.ip, config)
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        kinds = {n.id: n.kind for n in resp.graph.nodes()}
        assert VSWITCH in kinds.values()
        # still connected end to end through the virtual switch
        path = resp.graph.path("10.1.0.10", "10.2.0.10")
        assert path[0] == "10.1.0.10" and path[-1] == "10.2.0.10"

    def test_anchor_query(self):
        d, coll = _dumbbell_collector()
        resp = coll.topology(
            TopologyRequest.of(["10.1.0.10"], anchor_ip="10.1.0.1")
        )
        assert resp.anchors == {"10.1.0.1": "r1"}
        assert resp.graph.has_node("r1")
        path = resp.graph.path("10.1.0.10", "r1")
        assert path[0] == "10.1.0.10" and path[-1] == "r1"


class TestLanDiscovery:
    def test_l2_path_through_switches(self):
        lan, coll = _lan_collector(16, fanout=4)
        h0, h15 = str(lan.hosts[0].ip), str(lan.hosts[15].ip)
        resp = coll.topology(TopologyRequest.of([h0, h15]))
        kinds = {n.kind for n in resp.graph.nodes()}
        assert SWITCH in kinds
        path = resp.graph.path(h0, h15)
        assert len(path) >= 4  # at least two switches between the hosts

    def test_no_bridge_collector_gives_vswitch(self):
        lan, coll = _lan_collector(8, fanout=8, with_bridge=False)
        h0, h7 = str(lan.hosts[0].ip), str(lan.hosts[7].ip)
        resp = coll.topology(TopologyRequest.of([h0, h7]))
        kinds = {n.id: n.kind for n in resp.graph.nodes()}
        assert any(k == VSWITCH for k in kinds.values())
        path = resp.graph.path(h0, h7)
        assert len(path) == 3  # host - vswitch - host

    def test_lan_utilization_on_switch_edge(self):
        lan, coll = _lan_collector(8, fanout=8)
        h0, h7 = lan.hosts[0], lan.hosts[7]
        lan.net.flows.start_flow(h0, h7, demand_bps=30 * MBPS)
        lan.net.engine.run_until(5.0)
        resp = coll.topology(TopologyRequest.of([str(h0.ip), str(h7.ip)]))
        e = resp.graph.edge(str(h0.ip), "sw0")
        assert e.util_from(str(h0.ip)) == pytest.approx(30 * MBPS, rel=0.02)


class TestCaching:
    def test_warm_query_cheaper_than_cold(self):
        lan, coll = _lan_collector(32, fanout=4)
        ips = [str(h.ip) for h in lan.hosts[:16]]
        t0 = lan.net.now
        r1 = coll.topology(TopologyRequest.of(ips))
        cold_time = lan.net.now - t0
        cold_pdus = r1.pdu_cost
        t1 = lan.net.now
        r2 = coll.topology(TopologyRequest.of(ips))
        warm_time = lan.net.now - t1
        warm_pdus = r2.pdu_cost
        assert warm_pdus < cold_pdus / 3
        assert warm_time < cold_time / 3

    def test_flush_caches_restores_cold(self):
        lan, coll = _lan_collector(16, fanout=4)
        ips = [str(h.ip) for h in lan.hosts[:8]]
        r1 = coll.topology(TopologyRequest.of(ips))
        coll.flush_caches()
        r2 = coll.topology(TopologyRequest.of(ips))
        assert r2.pdu_cost == pytest.approx(r1.pdu_cost, rel=0.1)

    def test_partial_flush_keeps_fraction(self):
        lan, coll = _lan_collector(16, fanout=4)
        ips = [str(h.ip) for h in lan.hosts[:8]]
        coll.topology(TopologyRequest.of(ips))
        n_paths = len(coll._paths)
        coll.flush_caches(keep_fraction=0.5)
        assert len(coll._paths) == n_paths // 2

    def test_same_graph_cold_and_warm(self):
        lan, coll = _lan_collector(16, fanout=4)
        ips = [str(h.ip) for h in lan.hosts[:6]]
        g1 = coll.topology(TopologyRequest.of(ips)).graph
        g2 = coll.topology(TopologyRequest.of(ips)).graph
        assert sorted(n.id for n in g1.nodes()) == sorted(n.id for n in g2.nodes())
        assert g1.num_edges() == g2.num_edges()


class TestMonitoring:
    def test_periodic_polling_updates_history(self):
        d, coll = _dumbbell_collector()
        coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        coll.start_monitoring()
        d.net.flows.start_flow(d.h1, d.h2, demand_bps=10 * MBPS)
        d.net.engine.run_until(30.0)
        coll.stop_monitoring()
        mon = next(iter(coll.monitors.values()))
        assert len(mon.samples) >= 5
        times, rates = mon.rate_history("out")
        assert len(times) == len(rates) >= 4

    def test_static_query_takes_no_samples(self):
        d, coll = _dumbbell_collector()
        t0 = d.net.now
        resp = coll.topology(
            TopologyRequest.of(["10.1.0.10", "10.2.0.10"]).__class__(
                ("10.1.0.10", "10.2.0.10"), include_dynamics=False
            )
        )
        # no cold bootstrap gap was paid
        assert d.net.now - t0 < coll.config.cold_sample_gap_s
