"""Master Collector partitioning and merging edge cases."""

import pytest

from repro import obs
from repro.common.errors import UnknownHostError
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.collectors.base import TopologyRequest
from repro.collectors.directory import CollectorDirectory
from repro.collectors.master import MasterCollector
from repro.deploy import deploy_wan


@pytest.fixture
def wan():
    return build_multisite_wan(
        [
            SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("eth", access_bps=60 * MBPS, n_hosts=3),
        ]
    )


class TestPartitioning:
    def test_single_site_query_is_one_group_no_stitching(self, wan):
        dep = deploy_wan(wan)
        with obs.scoped_registry() as reg:
            resp = dep.master.topology(
                TopologyRequest.of([wan.host("cmu", 0).ip, wan.host("cmu", 1).ip])
            )
        fanout = reg.histogram("collectors.master.fanout")
        assert fanout.count == 1 and fanout.max == 1.0
        # no benchmark probing, no fabricated WAN edge within one site
        assert reg.counter("collectors.master.wan_edges").value == 0.0
        ids = {n.id for n in resp.graph.nodes()}
        assert str(wan.host("cmu", 0).ip) in ids
        assert "eth-gw" not in ids

    def test_empty_query_rejected_at_construction(self, wan):
        with pytest.raises(ValueError):
            TopologyRequest.of([])

    def test_unknown_host_raises_in_directory(self, wan):
        dep = deploy_wan(wan)
        with pytest.raises(UnknownHostError):
            dep.directory.lookup("172.16.0.1")

    def test_all_unknown_addresses_reported_unresolved(self, wan):
        dep = deploy_wan(wan)
        with obs.scoped_registry() as reg:
            resp = dep.master.topology(
                TopologyRequest.of(["172.16.0.1", "172.16.0.2"])
            )
        assert set(resp.unresolved) == {"172.16.0.1", "172.16.0.2"}
        assert list(resp.graph.nodes()) == []
        assert reg.counter("collectors.master.unresolved_ips").value == 2.0

    def test_mixed_query_merges_known_and_reports_unknown(self, wan):
        dep = deploy_wan(wan)
        resp = dep.master.topology(
            TopologyRequest.of([wan.host("cmu", 0).ip, "172.16.0.1"])
        )
        ids = {n.id for n in resp.graph.nodes()}
        assert str(wan.host("cmu", 0).ip) in ids
        assert resp.unresolved == ("172.16.0.1",)


class TestStackedMasters:
    def _stack(self, wan, extra_prefixes=()):
        dep = deploy_wan(wan)
        top_dir = CollectorDirectory()
        top_dir.register(
            dep.master,
            ["10.0.0.0/8", "192.168.0.0/16", *extra_prefixes],
            site="everything",
            remote=True,
        )
        return dep, MasterCollector("top", wan.net, top_dir)

    def test_master_of_masters_merges_and_stitches(self, wan):
        _, top = self._stack(wan)
        with obs.scoped_registry() as reg:
            resp = top.topology(
                TopologyRequest.of([wan.host("cmu", 0).ip, wan.host("eth", 0).ip])
            )
        path = resp.graph.path(
            str(wan.host("cmu", 0).ip), str(wan.host("eth", 0).ip)
        )
        assert "cmu-gw" in path and "eth-gw" in path
        # the inner master's query span nests under the outer master's
        # per-fragment delegation span, which nests under the outer
        # query span — follow the explicit parent_id links
        by_id = {s.span_id: s for s in reg.spans}
        inner = [
            s for s in reg.spans
            if s.name == "collectors.master.topology" and s.parent_id
        ]
        assert inner
        delegate = by_id[inner[0].parent_id]
        assert delegate.name == "collectors.master.delegate"
        outer = by_id[delegate.parent_id]
        assert outer.name == "collectors.master.topology"
        assert outer.parent_id is None
        # one trace spans the whole stacked query
        assert {inner[0].trace_id} == {delegate.trace_id, outer.trace_id}

    def test_unresolved_propagates_through_stack(self, wan):
        # the top master delegates 172.16/12 down; the inner master
        # cannot resolve it either, and the miss surfaces at the top
        _, top = self._stack(wan, extra_prefixes=["172.16.0.0/12"])
        resp = top.topology(
            TopologyRequest.of([wan.host("cmu", 0).ip, "172.16.0.1"])
        )
        assert "172.16.0.1" in resp.unresolved
