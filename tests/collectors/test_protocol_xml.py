"""Round-trip tests for protocol v2 (XML over HTTP-style framing)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectors.base import HistoryRequest, HistoryResponse, TopologyRequest
from repro.collectors.protocol import ProtocolError
from repro.collectors.protocol_xml import (
    decode_history_request_xml,
    decode_history_xml,
    decode_request_xml,
    decode_topology_xml,
    encode_history_request_xml,
    encode_history_xml,
    encode_request_xml,
    encode_topology_xml,
    http_frame,
    http_unframe,
)
from repro.modeler.graph import HOST, ROUTER, VSWITCH, TopoEdge, TopoNode, TopologyGraph


def _sample_graph():
    g = TopologyGraph()
    g.add_node(TopoNode("10.0.0.1", HOST, ("10.0.0.1",)))
    g.add_node(TopoNode("gw", ROUTER, ("10.0.0.254", "192.168.0.1")))
    g.add_node(TopoNode("vsw:10.0.0.0/24", VSWITCH))
    g.add_edge(TopoEdge("10.0.0.1", "vsw:10.0.0.0/24", math.inf))
    g.add_edge(TopoEdge("vsw:10.0.0.0/24", "gw", 1e8, 2.5e6, 1.25e5, 0.001))
    return g


class TestTopologyXml:
    def test_roundtrip(self):
        g = _sample_graph()
        g2 = decode_topology_xml(encode_topology_xml(g))
        assert sorted(n.id for n in g2.nodes()) == sorted(n.id for n in g.nodes())
        e = g2.edge("vsw:10.0.0.0/24", "gw")
        assert e.capacity_bps == 1e8
        assert e.util_ab_bps == 2.5e6 or e.util_ba_bps == 2.5e6
        assert math.isinf(g2.edge("10.0.0.1", "vsw:10.0.0.0/24").capacity_bps)

    def test_ips_preserved(self):
        g2 = decode_topology_xml(encode_topology_xml(_sample_graph()))
        assert g2.node("gw").ips == ("10.0.0.254", "192.168.0.1")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<remos version='1'><topology/></remos>",
            "<remos version='2'></remos>",
            "<remos version='2'><topology><node kind='host'/></topology></remos>",
            "<remos version='2'><topology><edge a='x' b='y'/></topology></remos>",
            "not xml at all",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(ProtocolError):
            decode_topology_xml(bad)


class TestQueryXml:
    def test_roundtrip(self):
        req = TopologyRequest(("10.0.0.1", "10.0.0.2"), True, "10.0.0.254")
        req2 = decode_request_xml(encode_request_xml(req))
        assert req2 == req

    def test_static_no_anchor(self):
        req = TopologyRequest(("10.0.0.1",), include_dynamics=False)
        req2 = decode_request_xml(encode_request_xml(req))
        assert req2.include_dynamics is False
        assert req2.anchor_ip is None

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request_xml("<remos version='2'><query/></remos>")


class TestHistoryXml:
    def test_request_roundtrip(self):
        req = HistoryRequest("gw", "core", 128)
        req2 = decode_history_request_xml(encode_history_request_xml(req))
        assert req2 == req

    def test_response_roundtrip(self):
        resp = HistoryResponse("utilization", (1.0, 2.0, 3.0), (1e6, 2e6, 1.5e6))
        text = encode_history_xml(resp, "gw", "core")
        resp2, a, b = decode_history_xml(text)
        assert (a, b) == ("gw", "core")
        assert resp2.kind == "utilization"
        assert resp2.times == resp.times
        assert resp2.rates_bps == resp.rates_bps

    def test_available_kind(self):
        resp = HistoryResponse("available", (1.0,), (5e6,))
        resp2, _, _ = decode_history_xml(encode_history_xml(resp, "a", "b"))
        assert resp2.kind == "available"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            HistoryResponse("velocity", (), ())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HistoryResponse("available", (1.0,), ())

    @given(
        st.lists(
            st.tuples(st.floats(0, 1e6), st.floats(0, 1e12)),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_series_roundtrip(self, samples):
        times = tuple(t for t, _ in samples)
        rates = tuple(r for _, r in samples)
        resp = HistoryResponse("utilization", times, rates)
        resp2, _, _ = decode_history_xml(encode_history_xml(resp, "x", "y"))
        assert resp2.times == pytest.approx(times)
        assert resp2.rates_bps == pytest.approx(rates)


class TestHttpFraming:
    def test_request_roundtrip(self):
        body = encode_request_xml(TopologyRequest(("10.0.0.1",)))
        frame = http_frame("/remos/v2/topology", body)
        path, body2 = http_unframe(frame)
        assert path == "/remos/v2/topology"
        assert body2 == body

    def test_response_roundtrip(self):
        body = encode_topology_xml(_sample_graph())
        frame = http_frame("", body, status=200)
        status, body2 = http_unframe(frame)
        assert status == "200"
        assert decode_topology_xml(body2).has_node("gw")

    def test_utf8_body_length(self):
        body = "<remos version=\"2\"><topology/></remos>"
        frame = http_frame("/x", body)
        assert f"Content-Length: {len(body.encode())}".encode() in frame

    @pytest.mark.parametrize(
        "bad",
        [b"", b"GET\r\n\r\n", b"POST /x HTTP/1.0\r\n\r\nbody",
         b"POST /x HTTP/1.0\r\nContent-Length: 100\r\n\r\nshort"],
    )
    def test_malformed_frames(self, bad):
        with pytest.raises(ProtocolError):
            http_unframe(bad)


class TestEndToEndV2:
    """A full exchange over the v2 protocol: the modeler side encodes a
    query, the collector side answers, histories flow to RPS."""

    def test_query_answer_history_cycle(self):
        from repro.common.units import MBPS
        from repro.netsim.builders import build_switched_lan
        from repro.deploy import deploy_lan

        lan = build_switched_lan(8, fanout=8)
        dep = deploy_lan(lan)
        lan.net.flows.start_flow(lan.hosts[0], lan.hosts[7], demand_bps=30 * MBPS)
        dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 60.0)

        # wire trip: query
        req = TopologyRequest((str(lan.hosts[0].ip), str(lan.hosts[7].ip)))
        wire_req = http_frame("/remos/v2/topology", encode_request_xml(req))
        path, body = http_unframe(wire_req)
        served = dep.master.topology(decode_request_xml(body))
        wire_resp = http_frame("", encode_topology_xml(served.graph), status=200)
        _, body2 = http_unframe(wire_resp)
        graph = decode_topology_xml(body2)
        assert graph.has_node(str(lan.hosts[0].ip))

        # wire trip: history of the first monitored edge
        hreq = HistoryRequest(str(lan.hosts[0].ip), "sw0")
        wire_h = http_frame("/remos/v2/history", encode_history_request_xml(hreq))
        _, hbody = http_unframe(wire_h)
        resp = dep.master.history(decode_history_request_xml(hbody))
        assert resp is not None
        resp2, a, b = decode_history_xml(
            http_unframe(http_frame("", encode_history_xml(resp, hreq.edge_a, hreq.edge_b), status=200))[1]
        )
        assert len(resp2.rates_bps) >= 5
        import numpy as np

        assert np.mean(resp2.rates_bps) == pytest.approx(30 * MBPS, rel=0.1)
