"""Differential suite: ShardedMaster answers == flat Master answers.

Sharding is a *scalability* refactor, not a semantic one: for every
fault-free query the sharded plane must return the same topology, the
same per-site statuses, the same provenance, and spend the same SNMP
PDUs as the flat Master it replaces.  These tests run seeded random
topologies and query workloads through both planes and compare.

Two comparison rules keep the contract honest:

* **Aligned query times.**  Each query is issued at the same simulated
  instant in both planes (both engines run to a common time first).
  The two planes charge different amounts of RPC time per query, so
  without alignment the clocks drift apart and time-averaged dynamics
  (counter windows, data ages) measure genuinely different intervals —
  that is clock skew between two separate simulations, not a semantic
  difference in the answers.
* **Canonical floats.**  Flat and sharded runs reach the same
  benchmark probes at different absolute times, so durations computed
  as ``end - start`` can differ in the last ulp (e.g. a utilization of
  9.3e-10 bps against 0.0).  Equality is defined over a serialization
  that quantizes floats to 9 significant digits and snaps |x| < 1e-6
  to zero — one part in 1e9, far below anything the measurement
  semantics distinguish.  Structure, statuses, anchors, and PDU counts
  must match exactly.
"""

from __future__ import annotations

import math

import pytest

from repro import faults
from repro.collectors.base import TopologyRequest
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.collectors.sharding import ShardingConfig
from repro.common.rng import make_rng
from repro.common.status import QueryStatus
from repro.deploy import deploy_wan
from repro.netsim.builders import build_random_wan

N_SITES = 16

_RANK = {
    QueryStatus.OK: 0,
    QueryStatus.STALE: 1,
    QueryStatus.PARTIAL: 2,
    QueryStatus.FAILED: 3,
}


def _deploy(seed: int, sharding: ShardingConfig | None = None):
    world = build_random_wan(N_SITES, seed=seed, hosts_per_site=(2, 3))
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(probe_bytes=50_000, max_age_s=600.0),
        sharding=sharding,
    )
    return world, dep


def _workload(world, seed: int) -> list[TopologyRequest]:
    """A seeded mix of query scopes: single-site, few-site, all-site."""
    rng = make_rng(seed)
    names = sorted(world.sites)

    def ips(site_names, per_site=2):
        out = []
        for n in site_names:
            hosts = world.sites[n].hosts
            out.extend(str(h.interfaces[0].ip) for h in hosts[:per_site])
        return out

    reqs = [TopologyRequest.of(ips([names[int(rng.integers(len(names)))]]))]
    for width in (2, 5, 8):
        chosen = list(rng.choice(len(names), size=width, replace=False))
        reqs.append(TopologyRequest.of(ips([names[i] for i in chosen])))
    reqs.append(TopologyRequest.of(ips(names, per_site=1)))
    # repeat the widest mixed query: exercises the warm path
    reqs.append(reqs[2])
    return reqs


def _aligned(req, world_a, dep_a, world_b, dep_b):
    """Issue ``req`` on both planes at the same simulated instant and
    return both responses (see module docstring on alignment)."""
    t = max(world_a.net.now, world_b.net.now) + 1.0
    world_a.net.engine.run_until(t)
    world_b.net.engine.run_until(t)
    return dep_a.master.topology(req), dep_b.master.topology(req)


def _q(x: float) -> float | str:
    """Quantize one float for canonical comparison (see module doc)."""
    if math.isnan(x) or math.isinf(x):
        return repr(x)
    return 0.0 if abs(x) < 1e-6 else float(f"{x:.9g}")


def canonical(resp) -> tuple:
    """Order- and ulp-insensitive serialization of a TopologyResponse."""
    nodes = tuple(
        sorted((n.id, n.kind, tuple(sorted(n.ips))) for n in resp.graph.nodes())
    )
    edges = []
    for e in resp.graph.edges():
        if e.a <= e.b:
            row = (e.a, e.b, _q(e.util_ab_bps), _q(e.util_ba_bps))
        else:
            row = (e.b, e.a, _q(e.util_ba_bps), _q(e.util_ab_bps))
        edges.append(row + (_q(e.capacity_bps), _q(e.latency_s), _q(e.jitter_s)))
    sites = tuple(
        sorted(
            (s, st.status.name, st.detail, _q(st.data_age_s), st.attempts)
            for s, st in resp.site_status.items()
        )
    )
    return (
        nodes,
        tuple(sorted(edges)),
        resp.status.name,
        tuple(sorted(resp.unresolved)),
        tuple(sorted(resp.anchors.items())),
        sites,
        resp.pdu_cost,
        _q(resp.data_age_s),
    )


class TestFaultFreeByteIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_answers_identical_across_shard_counts(self, n_shards):
        world_f, flat = _deploy(seed=11)
        world_s, sharded = _deploy(
            seed=11, sharding=ShardingConfig(n_shards=n_shards)
        )
        for i, req in enumerate(_workload(world_s, seed=23)):
            a, b = _aligned(req, world_f, flat, world_s, sharded)
            assert canonical(a) == canonical(b), (
                f"query {i} diverged with n_shards={n_shards}"
            )

    def test_deep_hierarchy_with_replicas_identical(self):
        """Replicas and a master-of-masters tier are failover capacity;
        fault-free they must be invisible in the answers."""
        world_f, flat = _deploy(seed=5)
        world_s, sharded = _deploy(
            seed=5,
            sharding=ShardingConfig(n_shards=4, replicas=1, depth=2, group_fanout=2),
        )
        for i, req in enumerate(_workload(world_s, seed=41)):
            a, b = _aligned(req, world_f, flat, world_s, sharded)
            assert canonical(a) == canonical(b), (
                f"query {i} diverged on the deep hierarchy"
            )

    def test_identical_under_background_traffic(self):
        world_f, flat = _deploy(seed=29)
        world_s, sharded = _deploy(seed=29, sharding=ShardingConfig(n_shards=4))
        for w in (world_f, world_s):
            names = sorted(w.sites)
            w.net.flows.start_flow(
                w.host(names[0]), w.host(names[9]), demand_bps=2_000_000
            )
            w.net.engine.run_until(w.net.now + 3.0)
        for i, req in enumerate(_workload(world_s, seed=17)):
            a, b = _aligned(req, world_f, flat, world_s, sharded)
            assert canonical(a) == canonical(b), (
                f"query {i} diverged under background traffic"
            )

    def test_modeler_flow_answers_identical(self):
        """End to end through the Modeler: flow answers match too."""
        world_f, flat = _deploy(seed=13)
        world_s, sharded = _deploy(seed=13, sharding=ShardingConfig(n_shards=4))
        names = sorted(world_f.sites)
        pairs = [(names[0], names[11]), (names[3], names[14])]
        flat_session, sharded_session = flat.session(), sharded.session()
        for src, dst in pairs:
            fa = flat_session.flow_info(world_f.host(src), world_f.host(dst))
            sa = sharded_session.flow_info(world_s.host(src), world_s.host(dst))
            assert _q(fa.available_bps) == _q(sa.available_bps)
            assert _q(fa.latency_s) == _q(sa.latency_s)
            assert fa.status == sa.status


class TestFaultedNoWorse:
    """Under identical scripted faults the sharded plane's answers are
    equal-or-better: same healthy-site payloads, overall status never
    ranked worse than the flat Master's."""

    PLAN = faults.FaultPlan(fragment_timeout_s=8.0, fragment_retries=1)

    def _faulted_answer(self, sharding):
        world, dep = _deploy(seed=37, sharding=sharding)
        faults.install(dep, self.PLAN)
        names = sorted(world.sites)
        victim = names[2]
        req = TopologyRequest.of(
            [str(world.sites[n].hosts[0].interfaces[0].ip) for n in names[:6]]
        )
        dep.master.topology(req)  # warm: populates LKG for the victim
        faults.crash_collector(dep.snmp_collectors[victim], 60.0)
        resp = dep.master.topology(req)
        return names, victim, resp

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_site_crash_degrades_no_worse_than_flat(self, n_shards):
        names, victim, flat_resp = self._faulted_answer(None)
        _, _, shard_resp = self._faulted_answer(ShardingConfig(n_shards=n_shards))
        assert _RANK[shard_resp.status] <= _RANK[flat_resp.status]
        for site in names[:6]:
            f, s = flat_resp.site_status[site], shard_resp.site_status[site]
            if site == victim:
                # both planes served the quarantined site from LKG
                assert f.status == s.status == QueryStatus.STALE
                assert _RANK[s.status] <= _RANK[f.status]
            else:
                assert (s.site, s.status, s.detail) == (f.site, f.status, f.detail)
