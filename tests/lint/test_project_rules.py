"""Synthetic-project tests for the RML1xx whole-program rules.

The repo itself lints clean (tests/lint/test_self_check.py), so these
build throwaway trees under tmp_path where each rule has a known
positive — proof the analyzers actually fire — plus the suppression
and end-to-end CLI paths.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint.cli import main
from repro.lint.config import load_config
from repro.lint.project import Project, lint_project
from repro.lint.rules import make_project_rules

PYPROJECT = '[tool.remoslint]\npaths = ["src"]\nbaseline = "bl.json"\n'


def make_project(tmp_path: Path, files: dict[str, str]) -> Project:
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    for rel, src in files.items():
        f = tmp_path / rel
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(textwrap.dedent(src))
    return Project.build(tmp_path, load_config(tmp_path))


def run_rule(tmp_path: Path, code: str, files: dict[str, str]):
    project = make_project(tmp_path, files)
    return lint_project(project, make_project_rules(select=[code]))


class TestImportLayering:
    def test_upward_import_fires(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML101",
            {
                "src/repro/collectors/base.py": "def poll():\n    return 1\n",
                "src/repro/netsim/probe.py": (
                    "from repro.collectors.base import poll\n"
                ),
            },
        )
        (v,) = vs
        assert v.code == "RML101"
        assert v.path == "src/repro/netsim/probe.py"
        assert "layer 'netsim'" in v.message and "layer 'collectors'" in v.message

    def test_downward_and_same_layer_imports_clean(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML101",
            {
                "src/repro/netsim/topology.py": "X = 1\n",
                "src/repro/collectors/base.py": (
                    "from repro.netsim.topology import X\n"
                    "from repro.collectors import helper\n"
                ),
                "src/repro/collectors/helper.py": "Y = 2\n",
            },
        )
        assert vs == []

    def test_type_checking_laundering_still_fires(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML101",
            {
                "src/repro/modeler/api.py": "class Answer:\n    pass\n",
                "src/repro/snmp/agent.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.modeler.api import Answer\n"
                ),
            },
        )
        (v,) = vs
        assert "TYPE_CHECKING" in v.message

    def test_local_import_laundering_still_fires(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML101",
            {
                "src/repro/rps/sensor.py": (
                    "def tick():\n"
                    "    from repro.session import RemosSession\n"
                    "    return RemosSession\n"
                ),
                "src/repro/session.py": "class RemosSession:\n    pass\n",
            },
        )
        (v,) = vs
        assert "laundered through a local import" in v.message


class TestAsyncSafety:
    def test_transitive_blocking_call_found(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML102",
            {
                "src/repro/service/app.py": """
                    import time

                    from repro.service.util import work


                    async def handle():
                        return work()
                """,
                "src/repro/service/util.py": """
                    import time


                    def work():
                        time.sleep(0.1)
                        return 1
                """,
            },
        )
        (v,) = vs
        assert v.path == "src/repro/service/util.py"
        assert "time.sleep" in v.message and "handle" in v.message

    def test_awaited_coroutines_walked_as_their_own_entries(self, tmp_path):
        # the sleep inside the awaited coroutine is reported exactly
        # once (for the inner entry), not once per awaiting caller
        vs = run_rule(
            tmp_path,
            "RML102",
            {
                "src/repro/service/app.py": """
                    import time

                    from repro.service.inner import leaf


                    async def outer():
                        return await leaf()
                """,
                "src/repro/service/inner.py": """
                    import time


                    async def leaf():
                        time.sleep(1)
                """,
            },
        )
        (v,) = vs
        assert v.path == "src/repro/service/inner.py"

    def test_sim_stepping_attr_heuristic(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML102",
            {
                "src/repro/service/app.py": """
                    async def handle(engine):
                        engine.run_until(5.0)
                """,
            },
        )
        (v,) = vs
        assert "run_until" in v.message


class TestTransitiveClock:
    def test_entry_reaching_wall_clock_through_helper(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML103",
            {
                "src/repro/collectors/sweep.py": """
                    from repro.helpers import stamp


                    def collect():
                        return stamp()
                """,
                "src/repro/helpers.py": """
                    import time


                    def stamp():
                        return time.time()
                """,
            },
        )
        (v,) = vs
        # reported at the entry point's def line, naming the sink
        assert v.path == "src/repro/collectors/sweep.py"
        assert "time.time" in v.message and "collect" in v.message

    def test_obs_timebase_is_sanctioned(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML103",
            {
                "src/repro/collectors/sweep.py": """
                    from repro.obs.timebase import wall_now


                    def collect():
                        return wall_now()
                """,
                "src/repro/obs/timebase.py": """
                    import time


                    def wall_now():
                        return time.time()
                """,
            },
        )
        assert vs == []


class TestStatusFlow:
    # the callee reads a data field on a path that never consults
    # status, and the value doesn't escape (returning the answer — or a
    # field of it — would shift the obligation to *its* caller)
    FILES = {
        "src/repro/apps/report.py": """
            def plot(ans):
                rate = ans.available_bps
                print(rate)


            def run(session):
                ans = session.flow_info("a", "b")
                return plot(ans)
        """,
    }

    def test_unchecked_handoff_fires(self, tmp_path):
        vs = run_rule(tmp_path, "RML104", self.FILES)
        (v,) = vs
        assert v.path == "src/repro/apps/report.py"
        assert "plot" in v.message and "'ans'" in v.message

    def test_checking_in_caller_clears_it(self, tmp_path):
        files = {
            "src/repro/apps/report.py": """
                def plot(ans):
                    rate = ans.available_bps
                    print(rate)


                def run(session):
                    ans = session.flow_info("a", "b")
                    if not ans.ok:
                        return None
                    return plot(ans)
            """,
        }
        assert run_rule(tmp_path, "RML104", files) == []

    def test_checking_in_callee_clears_it(self, tmp_path):
        files = {
            "src/repro/apps/report.py": """
                def plot(ans):
                    if ans.degraded:
                        return None
                    rate = ans.available_bps
                    print(rate)


                def run(session):
                    ans = session.flow_info("a", "b")
                    return plot(ans)
            """,
        }
        assert run_rule(tmp_path, "RML104", files) == []

    def test_forwarding_chain_propagates(self, tmp_path):
        files = {
            "src/repro/apps/report.py": """
                def render(a):
                    rate = a.available_bps
                    print(rate)


                def plot(ans):
                    render(ans)


                def run(session):
                    ans = session.flow_info("a", "b")
                    return plot(ans)
            """,
        }
        (v,) = run_rule(tmp_path, "RML104", files)
        assert "plot" in v.message


class TestDeadExports:
    def test_unreferenced_public_function_fires(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML105",
            {
                "src/repro/util.py": """
                    def orphan():
                        return 1


                    def used():
                        return 2
                """,
                "tests/test_util.py": """
                    from repro.util import used


                    def test_used():
                        assert used() == 2
                """,
            },
        )
        (v,) = vs
        assert "'orphan'" in v.message

    def test_quoted_annotation_keeps_export_alive(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML105",
            {
                "src/repro/util.py": """
                    class Widget:
                        pass


                    def make(w: "Widget | None") -> int:
                        return 0
                """,
                "tests/test_util.py": """
                    from repro.util import make


                    def test_make():
                        assert make(None) == 0
                """,
            },
        )
        assert vs == []

    def test_init_reexport_does_not_count_as_use(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML105",
            {
                "src/repro/pkg/__init__.py": "from repro.pkg.mod import orphan\n",
                "src/repro/pkg/mod.py": "def orphan():\n    return 1\n",
            },
        )
        assert [v.message for v in vs if "orphan" in v.message]

    def test_pragma_suppresses(self, tmp_path):
        vs = run_rule(
            tmp_path,
            "RML105",
            {
                "src/repro/util.py": (
                    "def orphan():  # remoslint: disable=RML105\n"
                    "    return 1\n"
                ),
            },
        )
        assert vs == []


class TestProjectCli:
    def _layering_repo(self, tmp_path: Path) -> Path:
        (tmp_path / "pyproject.toml").write_text(PYPROJECT)
        pkg = tmp_path / "src" / "repro"
        (pkg / "collectors").mkdir(parents=True)
        (pkg / "netsim").mkdir(parents=True)
        (pkg / "collectors" / "base.py").write_text("def poll():\n    return 1\n")
        (pkg / "netsim" / "probe.py").write_text(
            "from repro.collectors.base import poll\n"
        )
        return tmp_path

    def test_json_report_end_to_end(self, tmp_path, capsys):
        root = self._layering_repo(tmp_path)
        assert main(
            ["--root", str(root), "--project", "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        hits = [v for v in payload["violations"] if v["code"] == "RML101"]
        assert len(hits) == 1
        assert hits[0]["path"] == "src/repro/netsim/probe.py"

    def test_project_violations_are_baselinable(self, tmp_path, capsys):
        root = self._layering_repo(tmp_path)
        assert main(["--root", str(root), "--project"]) == 1
        assert main(["--root", str(root), "--project", "--write-baseline"]) == 0
        assert main(["--root", str(root), "--project"]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_without_flag_project_rules_stay_off(self, tmp_path, capsys):
        root = self._layering_repo(tmp_path)
        assert main(["--root", str(root)]) == 0
