"""Per-rule unit tests: one true positive, one pragma suppression, and
one sanctioned (negative) case per rule, on inline fixture snippets.

``lint_source`` takes a fake repo-relative path so each rule's scoping
is exercised exactly as in a real run.
"""

from __future__ import annotations

import textwrap

from repro.lint.engine import lint_source
from repro.lint.rules import make_rules
from repro.lint.rules.rml006_oid_literals import looks_like_oid
from repro.lint.rules.rml007_metric_names import MetricNameRule
from repro.lint.rules.rml008_span_names import SpanNameRule


def run(source: str, path: str, codes: str | None = None):
    rules = make_rules(select=codes.split(",") if codes else None)
    return lint_source(textwrap.dedent(source), rules, path=path)


IN_SCOPE = "src/repro/collectors/somefile.py"


class TestRML001SimClock:
    def test_wall_clock_call_flagged(self):
        vs = run(
            """
            import time

            def poll():
                return time.time()
            """,
            IN_SCOPE,
        )
        assert [v.code for v in vs] == ["RML001"]
        assert "time.time" in vs[0].message

    def test_aliased_and_from_imports_flagged(self):
        vs = run(
            """
            import time as t
            from time import sleep

            def nap():
                t.monotonic()
                sleep(1)
            """,
            IN_SCOPE,
        )
        assert [v.code for v in vs] == ["RML001", "RML001"]

    def test_datetime_now_flagged(self):
        vs = run(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            IN_SCOPE,
        )
        assert [v.code for v in vs] == ["RML001"]

    def test_pragma_suppresses(self):
        vs = run(
            """
            import time

            def poll():
                return time.time()  # remoslint: disable=RML001
            """,
            IN_SCOPE,
        )
        assert vs == []

    def test_engine_clock_and_timebase_sanctioned(self):
        vs = run(
            """
            from repro import obs

            def poll(net):
                t0 = obs.wall_now()
                return net.engine.now, obs.wall_now() - t0
            """,
            IN_SCOPE,
        )
        assert vs == []

    def test_out_of_scope_layer_ignored(self):
        vs = run(
            "import time\nt = time.time()\n",
            "src/repro/cli.py",  # CLI may read the wall clock
            codes="RML001",
        )
        assert vs == []


class TestRML002Rng:
    def test_module_level_random_flagged(self):
        vs = run(
            """
            import random

            def jitter():
                return random.random()
            """,
            "src/repro/netsim/traffic2.py",
        )
        assert [v.code for v in vs] == ["RML002"]

    def test_unseeded_constructors_flagged(self):
        vs = run(
            """
            import random
            import numpy as np

            r1 = random.Random()
            r2 = np.random.default_rng()
            """,
            "src/repro/netsim/traffic2.py",
        )
        assert [v.code for v in vs] == ["RML002", "RML002"]

    def test_seeded_constructors_sanctioned(self):
        vs = run(
            """
            import random
            import numpy as np

            r1 = random.Random(42)
            r2 = np.random.default_rng(7)

            def gen(rng: np.random.Generator) -> float:
                return rng.random()
            """,
            "src/repro/netsim/traffic2.py",
        )
        assert vs == []

    def test_pragma_suppresses(self):
        vs = run(
            """
            import random
            x = random.random()  # remoslint: disable=RML002
            """,
            "src/repro/netsim/traffic2.py",
        )
        assert vs == []

    def test_rng_module_exempt(self):
        vs = run(
            "import numpy as np\nr = np.random.default_rng()\n",
            "src/repro/common/rng.py",
        )
        assert vs == []

    def test_local_variable_named_random_not_flagged(self):
        vs = run(
            """
            from repro.common.rng import make_rng

            random = make_rng(0)
            x = random.random()
            """,
            "src/repro/netsim/traffic2.py",
        )
        assert vs == []


class TestRML003DeprecatedApi:
    def test_shim_call_flagged(self):
        vs = run(
            """
            def probe(modeler, a, b):
                return modeler.flow_query(a, b)
            """,
            "src/repro/apps/thing.py",
        )
        assert [v.code for v in vs] == ["RML003"]
        assert "RemosSession.flow_info" in vs[0].message

    def test_all_shims_flagged(self):
        vs = run(
            """
            def probe(m, hosts):
                m.topology_query(hosts)
                m.node_query(hosts)
                m.flow_queries([])
            """,
            "src/repro/apps/thing.py",
        )
        assert [v.code for v in vs] == ["RML003"] * 3

    def test_invalidation_shim_flagged(self):
        vs = run(
            """
            def refresh(modeler, sites):
                modeler.invalidate_query_cache(sites=sites)
            """,
            "src/repro/apps/thing.py",
        )
        assert [v.code for v in vs] == ["RML003"]
        assert "Modeler.invalidate_cache" in vs[0].message

    def test_unified_invalidation_sanctioned(self):
        vs = run(
            """
            def refresh(session, sites):
                session.invalidate_cache(sites=sites)
            """,
            "src/repro/apps/thing.py",
        )
        assert vs == []

    def test_session_api_sanctioned(self):
        vs = run(
            """
            def probe(session, a, b):
                ans = session.flow_info(a, b)
                return ans if ans.ok else None
            """,
            "src/repro/apps/thing.py",
        )
        assert vs == []

    def test_pragma_suppresses(self):
        vs = run(
            """
            def probe(modeler, a, b):
                return modeler.flow_query(a, b)  # remoslint: disable=RML003
            """,
            "src/repro/apps/thing.py",
        )
        assert vs == []

    def test_defining_module_exempt(self):
        vs = run(
            "def f(m, a, b):\n    return m.flow_query(a, b)\n",
            "src/repro/modeler/api.py",
        )
        assert vs == []


class TestRML004Status:
    def test_status_drop_flagged(self):
        vs = run(
            """
            def plan(session, a, b):
                ans = session.flow_info(a, b)
                print(ans.available_bps)
            """,
            "src/repro/apps/thing.py",
        )
        assert [v.code for v in vs] == ["RML004"]

    def test_for_loop_answers_flagged(self):
        vs = run(
            """
            def plan(session, pairs):
                for ans in session.flow_info_many(pairs):
                    print(ans.available_bps)
            """,
            "src/repro/apps/thing.py",
        )
        assert [v.code for v in vs] == ["RML004"]

    def test_status_checked_sanctioned(self):
        vs = run(
            """
            def plan(session, a, b):
                ans = session.flow_info(a, b)
                if ans.ok:
                    print(ans.available_bps)
            """,
            "src/repro/apps/thing.py",
        )
        assert vs == []

    def test_escaping_answer_sanctioned(self):
        # returning/passing the answer moves the obligation to the caller
        vs = run(
            """
            def fetch(session, a, b):
                ans = session.flow_info(a, b)
                return ans

            def relay(session, a, b, sink):
                ans = session.flow_info(a, b)
                sink(ans)
            """,
            "src/repro/apps/thing.py",
        )
        assert vs == []

    def test_pragma_suppresses(self):
        vs = run(
            """
            def plan(session, a, b):
                ans = session.flow_info(a, b)  # remoslint: disable=RML004
                print(ans.available_bps)
            """,
            "src/repro/apps/thing.py",
        )
        assert vs == []


class TestRML005BlindExcept:
    def test_bare_except_flagged_with_autofix(self):
        vs = run(
            """
            def poll(agent):
                try:
                    return agent.get()
                except:
                    return None
            """,
            IN_SCOPE,
        )
        assert [v.code for v in vs] == ["RML005"]
        assert vs[0].fix is not None
        assert vs[0].fix.new == "except Exception:"

    def test_blind_except_exception_flagged(self):
        vs = run(
            """
            def poll(agent):
                try:
                    return agent.get()
                except Exception:
                    pass
            """,
            IN_SCOPE,
        )
        assert [v.code for v in vs] == ["RML005"]

    def test_containment_with_logging_sanctioned(self):
        vs = run(
            """
            def poll(agent, log):
                try:
                    return agent.get()
                except Exception as exc:
                    log.warning("agent failed: %r", exc)
                    return None
            """,
            IN_SCOPE,
        )
        assert vs == []

    def test_narrow_except_sanctioned(self):
        vs = run(
            """
            from repro.common.errors import SnmpError

            def poll(agent):
                try:
                    return agent.get()
                except SnmpError:
                    return None
            """,
            IN_SCOPE,
        )
        assert vs == []

    def test_pragma_suppresses(self):
        vs = run(
            """
            def poll(agent):
                try:
                    return agent.get()
                except Exception:  # remoslint: disable=RML005
                    pass
            """,
            IN_SCOPE,
        )
        assert vs == []

    def test_out_of_scope_layer_ignored(self):
        vs = run(
            "try:\n    pass\nexcept Exception:\n    pass\n",
            "src/repro/rps/fit.py",
            codes="RML005",
        )
        assert vs == []


class TestRML006OidLiterals:
    def test_raw_oid_flagged(self):
        vs = run(
            'TARGET = "1.3.6.1.2.1.2.2.1.10"\n',
            "src/repro/collectors/snmp_collector.py",
        )
        assert [v.code for v in vs] == ["RML006"]

    def test_oid_module_exempt(self):
        vs = run('MIB2 = "1.3.6.1.2.1"\n', "src/repro/snmp/oid.py")
        assert vs == []

    def test_ip_and_version_strings_sanctioned(self):
        vs = run(
            'ip = "10.0.0.1"\nversion = "1.2.3"\nnet = "192.168.1.0"\n',
            "src/repro/collectors/snmp_collector.py",
        )
        assert vs == []

    def test_pragma_suppresses(self):
        vs = run(
            'T = "1.3.6.1.99"  # remoslint: disable=RML006\n',
            "src/repro/collectors/snmp_collector.py",
        )
        assert vs == []

    def test_classifier(self):
        assert looks_like_oid("1.3.6.1.99")
        assert looks_like_oid("1.3.6.1.2.1.2.2.1.10.3")
        assert looks_like_oid(".1.3.6.4")
        assert not looks_like_oid("10.0.0.1")  # IPv4: 4 parts, not 1.3.6.
        assert not looks_like_oid("1.2.3")
        assert not looks_like_oid("hello")


class TestRML007MetricNames:
    def test_unregistered_name_flagged(self):
        vs = run(
            """
            from repro import obs

            obs.counter("snmp.client.tyop_pdus").inc()
            """,
            "src/repro/snmp/client2.py",
        )
        assert [v.code for v in vs] == ["RML007"]
        assert "catalogue" in vs[0].message

    def test_registered_name_sanctioned(self):
        vs = run(
            """
            from repro import obs

            obs.counter("snmp.client.pdus", op="get").inc()
            obs.histogram("rps.fit.wall_s", spec="AR(16)").observe(0.1)
            obs.gauge("netsim.engine.sim_time_s").set(1.0)
            """,
            "src/repro/snmp/client2.py",
        )
        assert vs == []

    def test_pragma_suppresses(self):
        vs = run(
            """
            from repro import obs

            obs.counter("made.up.name").inc()  # remoslint: disable=RML007
            """,
            "src/repro/snmp/client2.py",
        )
        assert vs == []

    def test_obs_layer_exempt(self):
        vs = run(
            'from repro import obs\nobs.counter("internal.name").inc()\n',
            "src/repro/obs/registry.py",
        )
        assert vs == []

    def test_dynamic_names_skipped(self):
        vs = run(
            """
            from repro import obs

            def bump(name):
                obs.counter(name).inc()
            """,
            "src/repro/snmp/client2.py",
        )
        assert vs == []

    def test_injected_catalogue(self):
        rule = MetricNameRule(catalogue=frozenset({"known.metric"}))
        vs = lint_source(
            'from repro import obs\nobs.counter("other.metric").inc()\n',
            [rule],
            path="src/repro/snmp/client2.py",
        )
        assert [v.code for v in vs] == ["RML007"]


class TestRML008SpanNames:
    def test_unregistered_span_name_flagged(self):
        vs = run(
            """
            from repro import obs

            with obs.span("session.flow_infoo"):
                pass
            """,
            "src/repro/snmp/client2.py",
        )
        assert [v.code for v in vs] == ["RML008"]
        assert "SPAN_NAMES" in vs[0].message

    def test_registered_span_names_sanctioned(self):
        vs = run(
            """
            from repro import obs

            with obs.span("session.flow_info"):
                with obs.span("collectors.master.delegate", site="cmu"):
                    pass
            """,
            "src/repro/snmp/client2.py",
        )
        assert vs == []

    def test_registry_handle_form_flagged(self):
        vs = run(
            """
            from repro.obs import MetricsRegistry

            reg = MetricsRegistry()
            with reg.span("totally.unknown"):
                pass
            """,
            "src/repro/snmp/client2.py",
        )
        assert [v.code for v in vs] == ["RML008"]

    def test_pragma_suppresses(self):
        vs = run(
            """
            from repro import obs

            with obs.span("made.up.span"):  # remoslint: disable=RML008
                pass
            """,
            "src/repro/snmp/client2.py",
        )
        assert vs == []

    def test_obs_layer_exempt(self):
        vs = run(
            'from repro import obs\nobs.span("internal.span")\n',
            "src/repro/obs/registry2.py",
        )
        assert vs == []

    def test_dynamic_names_and_unrelated_span_methods_skipped(self):
        vs = run(
            """
            from repro import obs

            def trace(name, tree):
                with obs.span(name):
                    tree.span("not.an.obs.span")
            """,
            "src/repro/snmp/client2.py",
        )
        assert vs == []

    def test_injected_catalogue(self):
        rule = SpanNameRule(catalogue=frozenset({"known.span"}))
        vs = lint_source(
            'from repro import obs\nobs.span("other.span")\n',
            [rule],
            path="src/repro/snmp/client2.py",
        )
        assert [v.code for v in vs] == ["RML008"]


class TestEveryRuleHasFixtureCoverage:
    def test_all_eight_rules_exist(self):
        codes = {r.code for r in make_rules()}
        assert codes == {f"RML00{i}" for i in range(1, 9)}
