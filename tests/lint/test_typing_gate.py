"""The strict-typing gate, testable without mypy installed.

CI runs real mypy over the strict allowlist (``[tool.mypy]`` overrides
in pyproject).  The container running the unit tests may not have mypy,
so this module enforces the cheap, high-value half of the contract with
the stdlib ``ast``: every function in the strict modules carries full
parameter and return annotations (mypy's ``disallow_untyped_defs`` /
``disallow_incomplete_defs``).  When mypy *is* importable, a final test
runs it for real.
"""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: must mirror the module= list of the strict [[tool.mypy.overrides]]
STRICT_FILES = (
    sorted((REPO_ROOT / "src" / "repro" / "common").rglob("*.py"))
    + [
        REPO_ROOT / "src" / "repro" / "collectors" / "master.py",
        REPO_ROOT / "src" / "repro" / "collectors" / "sharding.py",
        REPO_ROOT / "src" / "repro" / "faults.py",
        REPO_ROOT / "src" / "repro" / "modeler" / "graph.py",
        REPO_ROOT / "src" / "repro" / "modeler" / "maxmin.py",
        REPO_ROOT / "src" / "repro" / "modeler" / "planner.py",
        REPO_ROOT / "src" / "repro" / "netsim" / "flows.py",
        REPO_ROOT / "src" / "repro" / "service" / "admission.py",
        REPO_ROOT / "src" / "repro" / "service" / "wire.py",
    ]
    + sorted((REPO_ROOT / "src" / "repro" / "obs").rglob("*.py"))
)

STRICT_MODULES = [
    "repro.common",
    "repro.common.errors",
    "repro.common.rng",
    "repro.common.status",
    "repro.common.units",
    "repro.collectors.master",
    "repro.collectors.sharding",
    "repro.faults",
    "repro.modeler.graph",
    "repro.modeler.maxmin",
    "repro.modeler.planner",
    "repro.netsim.flows",
    "repro.service.admission",
    "repro.service.wire",
    "repro.obs",
    "repro.obs.catalog",
    "repro.obs.export",
    "repro.obs.flightrec",
    "repro.obs.log",
    "repro.obs.metrics",
    "repro.obs.registry",
    "repro.obs.timebase",
    "repro.obs.traceview",
    "repro.obs.tracing",
]


def iter_untyped_defs(tree: ast.Module, filename: str):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        where = f"{filename}:{node.lineno} def {node.name}"
        if node.returns is None:
            yield f"{where}: missing return annotation"
        args = node.args
        positional = args.posonlyargs + args.args
        for i, a in enumerate(positional + args.kwonlyargs):
            if i == 0 and a.arg in ("self", "cls"):
                continue
            if a.annotation is None:
                yield f"{where}: parameter {a.arg!r} unannotated"
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                yield f"{where}: parameter *{star.arg} unannotated"


def test_strict_modules_have_complete_annotations():
    assert STRICT_FILES, "strict allowlist resolved to no files"
    problems: list[str] = []
    for f in STRICT_FILES:
        tree = ast.parse(f.read_text())
        problems.extend(iter_untyped_defs(tree, f.relative_to(REPO_ROOT).as_posix()))
    assert problems == [], "\n".join(problems)


def test_pyproject_strict_allowlist_matches_this_test():
    """The [[tool.mypy.overrides]] module list and STRICT_MODULES must
    not drift apart, or CI and the local gate would check different
    code."""
    text = (REPO_ROOT / "pyproject.toml").read_text()
    for mod in STRICT_MODULES:
        assert f'"{mod}"' in text, f"{mod} missing from [[tool.mypy.overrides]]"


def test_mypy_strict_allowlist_passes():
    if importlib.util.find_spec("mypy") is None:
        pytest.skip("mypy not installed in this environment (CI runs it)")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"] + [str(f) for f in STRICT_FILES],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
