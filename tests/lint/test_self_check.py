"""Self-check: the committed tree must satisfy its own lint gate.

These tests pin the repo-level invariants the CI ``lint-invariants``
job enforces, so a violation shows up locally at ``pytest`` time and
not only in CI:

* ``repro lint --check-baseline`` over ``src/`` is clean;
* RML001/RML002/RML003/RML005 run at a **zero** baseline — degradation
  of the sim-clock, RNG, deprecated-API, or blind-except invariants can
  never be grandfathered in;
* the only baselined codes are the annotated RML004 app-layer entries,
  and every entry carries a review note.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.config import load_config
from repro.lint.engine import lint_paths
from repro.lint.rules import make_rules

REPO_ROOT = Path(__file__).resolve().parents[2]

ZERO_BASELINE_CODES = {"RML001", "RML002", "RML003", "RML005"}


def test_src_is_lint_clean_with_committed_baseline():
    config = load_config(REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / config.baseline)
    report = lint_paths(
        [REPO_ROOT / p for p in config.paths],
        make_rules(),
        config,
        baseline=baseline,
    )
    assert report.errors == {}
    assert report.violations == [], "\n".join(v.render() for v in report.violations)
    assert report.stale_entries == [], [e.path for e in report.stale_entries]
    assert report.files_checked > 50  # whole src tree, not a subset


def test_cli_check_baseline_exits_zero(capsys):
    assert main(["--root", str(REPO_ROOT), "--check-baseline"]) == 0
    assert "0 new violation(s)" in capsys.readouterr().out


def test_project_analysis_is_clean(capsys):
    """The whole-program RML1xx gate: layer contract, async safety,
    transitive clock purity, status dataflow, and dead exports all hold
    on the committed tree (nothing grandfathered)."""
    assert main(["--root", str(REPO_ROOT), "--project", "--check-baseline"]) == 0
    assert "0 new violation(s)" in capsys.readouterr().out


def test_zero_baseline_for_hard_invariants():
    config = load_config(REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / config.baseline)
    offending = [e for e in baseline.entries if e.code in ZERO_BASELINE_CODES]
    assert offending == [], (
        "RML001/002/003/005 must never be grandfathered: "
        + ", ".join(f"{e.code} {e.path}" for e in offending)
    )


def test_every_baseline_entry_is_annotated():
    config = load_config(REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / config.baseline)
    unannotated = [e for e in baseline.entries if not e.note.strip()]
    assert unannotated == [], (
        "baseline entries need a review note: "
        + ", ".join(f"{e.code} {e.path}" for e in unannotated)
    )
