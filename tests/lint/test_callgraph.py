"""Unit tests for the module graph + approximate call graph.

These pin the resolution semantics the RML1xx rules lean on: alias-aware
import edges, ``self.method`` dispatch, class instantiation landing on
``__init__``, callable-argument edges, and the top/lazy/TYPE_CHECKING
classification of imports.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.callgraph import CallGraph, module_name_for


def build(*files: tuple[str, str]) -> CallGraph:
    graph = CallGraph()
    for rel, src in files:
        src = textwrap.dedent(src)
        graph.add_module(rel, src, ast.parse(src))
    graph.finish()
    return graph


def callees(graph: CallGraph, qname: str) -> set[str]:
    return {e.callee for e in graph.edges_from(qname) if e.callee}


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/snmp/client.py") == "repro.snmp.client"

    def test_init_collapses_to_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_tests_tree_gets_stable_ids(self):
        assert module_name_for("tests/lint/test_cli.py") == "tests.lint.test_cli"

    def test_non_python_rejected(self):
        assert module_name_for("src/repro/py.typed") is None


class TestCallResolution:
    def test_self_method_resolves_to_enclosing_class(self):
        g = build(
            (
                "src/repro/a.py",
                """
                class C:
                    def f(self):
                        return self.g()

                    def g(self):
                        return 1
                """,
            )
        )
        assert callees(g, "repro.a.C.f") == {"repro.a.C.g"}

    def test_module_alias_attribute_call(self):
        g = build(
            ("src/repro/b.py", "def helper():\n    return 1\n"),
            (
                "src/repro/a.py",
                """
                import repro.b as bb

                def run():
                    return bb.helper()
                """,
            ),
        )
        assert callees(g, "repro.a.run") == {"repro.b.helper"}

    def test_from_import_as(self):
        g = build(
            ("src/repro/b.py", "def helper():\n    return 1\n"),
            (
                "src/repro/a.py",
                """
                from repro.b import helper as h

                def run():
                    return h()
                """,
            ),
        )
        assert callees(g, "repro.a.run") == {"repro.b.helper"}

    def test_instantiation_lands_on_init(self):
        g = build(
            (
                "src/repro/a.py",
                """
                class C:
                    def __init__(self):
                        self.x = 1

                def make():
                    return C()
                """,
            )
        )
        assert callees(g, "repro.a.make") == {"repro.a.C.__init__"}

    def test_external_call_keeps_canonical_path(self):
        g = build(
            (
                "src/repro/a.py",
                """
                import time

                def nap():
                    time.sleep(1)
                """,
            )
        )
        (edge,) = g.edges_from("repro.a.nap")
        assert edge.external == "time.sleep" and edge.callee is None

    def test_opaque_receiver_records_trailing_attr(self):
        g = build(
            (
                "src/repro/a.py",
                """
                def step(engine):
                    engine.run_until(5.0)
                """,
            )
        )
        (edge,) = g.edges_from("repro.a.step")
        assert edge.attr == "run_until" and edge.callee is None

    def test_callable_argument_edge_is_flagged(self):
        g = build(
            (
                "src/repro/a.py",
                """
                def job():
                    return 1

                def retry(fn):
                    return fn()

                def run():
                    return retry(job)
                """,
            )
        )
        arg_edges = [e for e in g.edges_from("repro.a.run") if e.via_argument]
        assert [e.callee for e in arg_edges] == ["repro.a.job"]
        # the direct call edge to retry is there too
        assert "repro.a.retry" in callees(g, "repro.a.run")

    def test_module_body_calls_tracked_separately(self):
        g = build(
            (
                "src/repro/a.py",
                """
                def setup():
                    return 1

                VALUE = setup()
                """,
            )
        )
        assert callees(g, g.module_body_id("repro.a")) == {"repro.a.setup"}

    def test_local_shadow_beats_import(self):
        # a local def named like an imported member wins lexically
        g = build(
            ("src/repro/b.py", "def helper():\n    return 1\n"),
            (
                "src/repro/a.py",
                """
                from repro.b import helper

                def run():
                    def helper():
                        return 2
                    return helper()
                """,
            ),
        )
        assert callees(g, "repro.a.run") == {"repro.a.run.helper"}


class TestImportRecords:
    def test_kinds_top_lazy_type_checking(self):
        g = build(
            (
                "src/repro/a.py",
                """
                from typing import TYPE_CHECKING

                import repro.b

                if TYPE_CHECKING:
                    from repro.c import Thing

                def run():
                    from repro import d
                    return d
                """,
            )
        )
        kinds = {
            rec.target: rec.kind for rec in g.modules["repro.a"].imports
        }
        assert kinds["repro.b"] == "top"
        assert kinds["repro.c.Thing"] == "type_checking"
        assert kinds["repro.d"] == "lazy"

    def test_relative_import_resolved_against_package(self):
        g = build(
            (
                "src/repro/pkg/__init__.py",
                "from .mod import thing\n",
            ),
            (
                "src/repro/pkg/mod.py",
                "thing = 1\n",
            ),
        )
        targets = {rec.target for rec in g.modules["repro.pkg"].imports}
        assert "repro.pkg.mod.thing" in targets
