"""Framework-level tests: pragmas, baseline semantics, config parsing,
autofix application, and CLI behaviour over a throwaway mini-repo.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cli import main
from repro.lint.config import LintConfig, _parse_minimal_toml, load_config
from repro.lint.core import Violation
from repro.lint.engine import PragmaSet, lint_paths, lint_source
from repro.lint.rules import make_rules


def viol(code="RML001", path="src/x.py", line=1, text="import time"):
    return Violation(
        code=code, path=path, line=line, col=0, message="m", line_text=text
    )


class TestPragmas:
    def test_disable_file_suppresses_everywhere(self):
        src = textwrap.dedent(
            """
            # remoslint: disable-file=RML001
            import time

            a = time.time()
            b = time.monotonic()
            """
        )
        vs = lint_source(src, make_rules(), path="src/repro/collectors/x.py")
        assert vs == []

    def test_disable_all_keyword(self):
        src = "import time\nt = time.time()  # remoslint: disable=ALL\n"
        vs = lint_source(src, make_rules(), path="src/repro/collectors/x.py")
        assert vs == []

    def test_multiple_codes_one_pragma(self):
        ps = PragmaSet.of("x = 1  # remoslint: disable=RML001, RML006\n")
        assert ps.by_line[1] == {"RML001", "RML006"}

    def test_pragma_on_decorator_line_suppresses_decorated_def(self):
        """A rule that reports at the ``def`` line of a decorated
        function must also honour a pragma sitting on any of the
        decorator lines — the decorators are part of the statement."""
        import ast

        from repro.lint.core import FileContext, Rule

        class DefRule(Rule):
            code = "RML001"

        src = textwrap.dedent(
            """
            import functools


            @functools.wraps  # remoslint: disable=RML001
            @functools.lru_cache(maxsize=4)
            async def fn():
                return 1
            """
        )
        ctx = FileContext(src, path="src/x.py")
        node = next(
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.AsyncFunctionDef)
        )
        v = ctx.violation(DefRule(), node, "m")
        assert v.line == node.lineno  # reported at the `def`
        assert set(v.pragma_lines) == set(
            range(node.decorator_list[0].lineno, node.lineno)
        )
        assert PragmaSet.of(src).suppresses(v)
        # the same violation without the decorator back-channel would
        # slip past the pragma — that was the blind spot
        bare = Violation(
            code=v.code, path=v.path, line=v.line, col=0, message="m"
        )
        assert not PragmaSet.of(src).suppresses(bare)

    def test_pragma_on_other_line_does_not_suppress(self):
        src = textwrap.dedent(
            """
            import time
            # remoslint: disable=RML001
            t = time.time()
            """
        )
        vs = lint_source(src, make_rules(), path="src/repro/collectors/x.py")
        assert [v.code for v in vs] == ["RML001"]


class TestBaseline:
    def test_partition_fresh_vs_grandfathered(self):
        bl = Baseline([BaselineEntry("RML001", "src/x.py", "import time")])
        old = viol(path="src/x.py", text="import time")
        new = viol(path="src/y.py", text="import time")
        fresh, grandfathered, stale = bl.partition([old, new])
        assert fresh == [new]
        assert grandfathered == [old]
        assert stale == []

    def test_multiset_budget(self):
        # one entry tolerates exactly one copy of an identical line
        bl = Baseline([BaselineEntry("RML001", "src/x.py", "t = time.time()")])
        v1 = viol(path="src/x.py", line=3, text="t = time.time()")
        v2 = viol(path="src/x.py", line=9, text="t = time.time()")
        fresh, grandfathered, _ = bl.partition([v1, v2])
        assert len(grandfathered) == 1 and len(fresh) == 1

    def test_line_moves_do_not_invalidate(self):
        bl = Baseline([BaselineEntry("RML001", "src/x.py", "t = time.time()")])
        moved = viol(path="src/x.py", line=99, text="t = time.time()")
        fresh, grandfathered, stale = bl.partition([moved])
        assert fresh == [] and len(grandfathered) == 1 and stale == []

    def test_stale_entries_reported(self):
        bl = Baseline([BaselineEntry("RML001", "src/gone.py", "import time")])
        fresh, grandfathered, stale = bl.partition([])
        assert [e.path for e in stale] == ["src/gone.py"]

    def test_save_load_roundtrip_preserves_notes(self, tmp_path):
        bl = Baseline(
            [BaselineEntry("RML004", "src/a.py", "ans = q()", note="reviewed")]
        )
        f = tmp_path / "baseline.json"
        bl.save(f)
        loaded = Baseline.load(f)
        assert loaded.entries == bl.entries

    def test_regenerate_carries_notes(self):
        prev = Baseline(
            [BaselineEntry("RML001", "src/x.py", "import time", note="legacy")]
        )
        regenerated = Baseline.from_violations(
            [viol(path="src/x.py", text="import time")], previous=prev
        )
        assert regenerated.entries[0].note == "legacy"

    def test_missing_file_loads_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []


class TestConfig:
    def test_minimal_toml_parser(self):
        data = _parse_minimal_toml(
            textwrap.dedent(
                """
                # comment
                [tool.remoslint]
                paths = ["src", "examples"]
                baseline = "lint-baseline.json"
                flag = true
                count = 3

                [tool.remoslint.per-rule.RML004]
                exclude = ["src/repro/cli.py"]
                """
            )
        )
        sec = data["tool"]["remoslint"]
        assert sec["paths"] == ["src", "examples"]
        assert sec["baseline"] == "lint-baseline.json"
        assert sec["flag"] is True
        assert sec["count"] == 3
        assert sec["per-rule"]["RML004"]["exclude"] == ["src/repro/cli.py"]

    def test_load_config_from_repo_pyproject(self):
        # the committed pyproject must parse and point at the baseline
        cfg = load_config(Path(__file__).resolve().parents[2])
        assert cfg.paths == ["src"]
        assert cfg.baseline == "lint-baseline.json"

    def test_load_config_missing_pyproject(self, tmp_path):
        cfg = load_config(tmp_path)
        assert cfg.paths == ["src"]

    def test_per_rule_exclude_applied(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        bad = "import time\nt = time.time()\n"
        (pkg / "a.py").write_text(bad)
        config = LintConfig(
            root=tmp_path,
            per_rule={"RML001": {"exclude": ["src/a.py"]}},
        )
        rules = make_rules(select=["RML001"])
        # widen scope so the tmp file is visible to the rule
        for r in rules:
            r.scope = ()
        report = lint_paths([pkg], rules, config)
        assert report.violations == []


def _mini_repo(tmp_path: Path) -> Path:
    """A throwaway repo root with one in-scope offending file."""
    (tmp_path / "pyproject.toml").write_text(
        '[tool.remoslint]\npaths = ["src"]\nbaseline = "bl.json"\n'
    )
    pkg = tmp_path / "src" / "repro" / "collectors"
    pkg.mkdir(parents=True)
    (pkg / "probe.py").write_text(
        textwrap.dedent(
            """
            def poll(agent, log):
                try:
                    return agent.get()
                except:
                    log.warning("agent failed")
                    return None
            """
        )
    )
    return tmp_path


class TestCli:
    def test_violations_fail_then_baseline_tolerates(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RML005" in out

        assert main(["--root", str(root), "--write-baseline"]) == 0
        assert main(["--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_check_baseline_fails_on_stale_debt(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        main(["--root", str(root), "--write-baseline"])
        # pay the debt down: the baseline entry is now stale
        probe = root / "src" / "repro" / "collectors" / "probe.py"
        probe.write_text("def poll(agent):\n    return agent.get()\n")
        capsys.readouterr()
        assert main(["--root", str(root)]) == 0  # tolerated without the flag
        assert main(["--root", str(root), "--check-baseline"]) == 1
        assert "stale baseline" in capsys.readouterr().out

    def test_fix_applies_autofix(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        assert main(["--root", str(root), "--fix"]) == 0
        probe = root / "src" / "repro" / "collectors" / "probe.py"
        assert "except Exception:" in probe.read_text()
        assert "applied 1 autofix" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        assert main(["--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violations"][0]["code"] == "RML005"
        assert payload["violations"][0]["autofixable"] is True

    def test_select_and_ignore(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        assert main(["--root", str(root), "--select", "RML001"]) == 0
        assert main(["--root", str(root), "--ignore", "RML005"]) == 0
        capsys.readouterr()

    def test_no_rules_is_usage_error(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        assert main(["--root", str(root), "--select", "NOPE"]) == 2
        capsys.readouterr()

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        assert main(["--root", str(root), str(root / "absent")]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 8):
            assert f"RML00{i}" in out

    def test_syntax_error_reported_not_crashed(self, tmp_path, capsys):
        root = _mini_repo(tmp_path)
        bad = root / "src" / "repro" / "collectors" / "broken.py"
        bad.write_text("def oops(:\n")
        assert main(["--root", str(root), "--select", "RML001"]) == 1
        assert "syntax error" in capsys.readouterr().out
