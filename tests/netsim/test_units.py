"""Unit-conversion helpers: bits/s rates vs byte sizes.

The invariants pinned here are the round trips the rest of the code
silently relies on: bytes_for and seconds_for are inverses at a fixed
rate, and both respect the bits-per-byte factor that separates SNMP
octet counters from ifSpeed.
"""

import math

import pytest

from repro.common.units import (
    BITS_PER_BYTE,
    GBPS,
    KBPS,
    MBPS,
    bytes_for,
    fmt_rate,
    mbps,
    seconds_for,
    to_mbps,
)


class TestRateConversions:
    def test_mbps_round_trip(self):
        assert to_mbps(mbps(4.11)) == pytest.approx(4.11)
        assert mbps(1.0) == MBPS

    def test_bytes_for_accounts_for_bits_per_byte(self):
        # 8 Mbit/s for one second is exactly one megabyte
        assert bytes_for(8 * MBPS, 1.0) == 1_000_000.0
        assert bytes_for(MBPS, 0.0) == 0.0

    def test_seconds_for_inverts_bytes_for(self):
        rate = 42.5 * KBPS
        nbytes = bytes_for(rate, 3.7)
        assert seconds_for(nbytes, rate) == pytest.approx(3.7)
        assert seconds_for(1_000_000.0, 8 * MBPS) == pytest.approx(1.0)
        assert seconds_for(125.0, KBPS) == pytest.approx(
            125.0 * BITS_PER_BYTE / KBPS
        )

    def test_seconds_for_zero_rate_is_infinite(self):
        assert math.isinf(seconds_for(1.0, 0.0))
        assert math.isinf(seconds_for(1.0, -5.0))


class TestFmtRate:
    def test_picks_the_natural_scale(self):
        assert fmt_rate(4.11 * MBPS) == "4.11 Mbps"
        assert fmt_rate(2.5 * GBPS) == "2.50 Gbps"
        assert fmt_rate(56 * KBPS) == "56.00 Kbps"
        assert fmt_rate(300.0) == "300 bps"
