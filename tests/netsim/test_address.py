"""Unit and property tests for IPv4/MAC addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.address import (
    IPv4Address,
    IPv4Network,
    MacAddress,
    MacAllocator,
    longest_prefix_match,
)


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        a = IPv4Address("10.1.2.3")
        assert str(a) == "10.1.2.3"
        assert a.octets() == (10, 1, 2, 3)

    def test_int_roundtrip(self):
        a = IPv4Address("192.168.0.1")
        assert IPv4Address(int(a)) == a

    def test_copy_constructor(self):
        a = IPv4Address("1.2.3.4")
        assert IPv4Address(a) == a

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert IPv4Address("9.255.255.255") < IPv4Address("10.0.0.0")

    def test_hashable(self):
        s = {IPv4Address("10.0.0.1"), IPv4Address("10.0.0.1")}
        assert len(s) == 1

    @pytest.mark.parametrize("bad", ["10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5"])
    def test_bad_strings(self, bad):
        with pytest.raises(ValueError):
            IPv4Address(bad)

    def test_bad_int(self):
        with pytest.raises(ValueError):
            IPv4Address(2**32)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            IPv4Address(1.5)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_str_roundtrip_property(self, v):
        a = IPv4Address(v)
        assert IPv4Address(str(a)).value == v

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_order_matches_int_order(self, x, y):
        assert (IPv4Address(x) < IPv4Address(y)) == (x < y)


class TestIPv4Network:
    def test_contains(self):
        n = IPv4Network("10.1.0.0/16")
        assert IPv4Address("10.1.255.255") in n
        assert IPv4Address("10.2.0.0") not in n

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv4Network("10.1.0.1/16")

    def test_bad_prefixlen(self):
        with pytest.raises(ValueError):
            IPv4Network("10.0.0.0/33")

    def test_needs_slash(self):
        with pytest.raises(ValueError):
            IPv4Network("10.0.0.0")

    def test_host_enumeration_skips_network_and_broadcast(self):
        n = IPv4Network("10.0.0.0/30")
        hosts = n.hosts()
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_host_index(self):
        n = IPv4Network("10.0.0.0/24")
        assert str(n.host(1)) == "10.0.0.1"
        with pytest.raises(ValueError):
            n.host(256)

    def test_netmask(self):
        assert str(IPv4Network("10.0.0.0/24").netmask) == "255.255.255.0"
        assert str(IPv4Network("0.0.0.0/0").netmask) == "0.0.0.0"

    def test_overlaps(self):
        a = IPv4Network("10.0.0.0/16")
        b = IPv4Network("10.0.1.0/24")
        c = IPv4Network("10.1.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_str_roundtrip(self):
        n = IPv4Network("172.16.0.0/12")
        assert IPv4Network(str(n)) == n

    def test_longest_prefix_match(self):
        prefixes = [
            IPv4Network("0.0.0.0/0"),
            IPv4Network("10.0.0.0/8"),
            IPv4Network("10.1.0.0/16"),
        ]
        assert longest_prefix_match(IPv4Address("10.1.2.3"), prefixes) == prefixes[2]
        assert longest_prefix_match(IPv4Address("10.2.0.1"), prefixes) == prefixes[1]
        assert longest_prefix_match(IPv4Address("192.0.2.1"), prefixes) == prefixes[0]
        assert longest_prefix_match(IPv4Address("192.0.2.1"), prefixes[1:]) is None

    @given(st.integers(0, 2**32 - 1), st.integers(0, 32))
    def test_network_contains_its_base(self, v, plen):
        base = v & ((0xFFFFFFFF << (32 - plen)) & 0xFFFFFFFF if plen else 0)
        n = IPv4Network(str(IPv4Address(base)), plen)
        assert IPv4Address(base) in n
        assert n.num_addresses == 1 << (32 - plen)


class TestMacAddress:
    def test_str_roundtrip(self):
        m = MacAddress("02:00:5e:00:00:01")
        assert str(m) == "02:00:5e:00:00:01"
        assert MacAddress(str(m)) == m

    def test_allocator_unique(self):
        alloc = MacAllocator()
        macs = {alloc.allocate() for _ in range(1000)}
        assert len(macs) == 1000

    def test_ordering_and_hash(self):
        a, b = MacAddress(1), MacAddress(2)
        assert a < b
        assert len({a, MacAddress(1)}) == 1

    def test_bad_values(self):
        with pytest.raises(ValueError):
            MacAddress(-1)
        with pytest.raises(ValueError):
            MacAddress("00:11:22:33:44")
        with pytest.raises(TypeError):
            MacAddress(3.14)
