"""Tests for link failure, reconvergence, and repair."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.builders import build_dumbbell, build_switched_lan
from repro.netsim.failures import fail_link, repair_link
from repro.netsim.paths import compute_path
from repro.netsim.topology import Network


class TestL2Failover:
    def _triangle(self):
        net = Network()
        s1, s2, s3 = (net.add_switch(f"s{i}") for i in range(1, 4))
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        l12 = net.link(s1, s2, 100 * MBPS)
        l23 = net.link(s2, s3, 100 * MBPS)
        l31 = net.link(s3, s1, 100 * MBPS)
        la = net.link(h1, s1, 100 * MBPS)
        lb = net.link(h2, s2, 100 * MBPS)
        net.assign_ip(la.a, "10.0.0.1", "10.0.0.0/24")
        net.assign_ip(lb.a, "10.0.0.2", "10.0.0.0/24")
        net.freeze()
        return net, h1, h2, l12, l23, l31

    def test_spanning_tree_failover(self):
        net, h1, h2, l12, l23, l31 = self._triangle()
        before = compute_path(net, h1, h2)
        # the inter-switch link the current path uses
        primary = next(
            c.link for c in before
            if c.src.device.kind == "switch" and c.dst.device.kind == "switch"
        )
        fail_link(net, primary)
        after = compute_path(net, h1, h2)
        assert after, "backup path must exist through the blocked link"
        assert primary not in {c.link for c in after}
        # longer path through the third switch
        assert len(after) > len(before)

    def test_flows_torn_and_restartable(self):
        net, h1, h2, l12, l23, l31 = self._triangle()
        f = net.flows.start_flow(h1, h2)
        primary = next(c.link for c in f.path
                       if c.src.device.kind == "switch" and c.dst.device.kind == "switch")
        broken = fail_link(net, primary)
        assert f in broken and not f.active
        f2 = net.flows.start_flow(h1, h2)
        assert f2.rate_bps == pytest.approx(100 * MBPS)

    def test_repair_restores_primary(self):
        net, h1, h2, l12, l23, l31 = self._triangle()
        before = compute_path(net, h1, h2)
        primary = next(c.link for c in before
                       if c.src.device.kind == "switch" and c.dst.device.kind == "switch")
        fail_link(net, primary)
        repair_link(net, primary)
        restored = compute_path(net, h1, h2)
        assert len(restored) == len(before)

    def test_counters_survive_failure(self):
        net, h1, h2, *_ = self._triangle()
        f = net.flows.start_flow(h1, h2, demand_bps=8 * MBPS)
        net.engine.run_until(10.0)
        first_link = f.path[0].link
        ch = f.path[0]
        ch.sync(net.now)
        bytes_before = ch.bytes_total
        assert bytes_before > 0
        fail_link(net, first_link)
        net.engine.run_until(20.0)
        repair_link(net, first_link)
        ch.sync(net.now)
        assert ch.bytes_total == pytest.approx(bytes_before)


class TestL3Failover:
    def test_partition_removes_routes(self):
        d = build_dumbbell()
        middle = next(
            ln for ln in d.net.links
            if ln.a.device.kind == "router" and ln.b.device.kind == "router"
        )
        fail_link(d.net, middle)
        # no route across the partition
        assert d.r1.lookup_route(d.h2.ip) is None
        with pytest.raises(TopologyError):
            compute_path(d.net, d.h1, d.h2)
        repair_link(d.net, middle)
        assert len(compute_path(d.net, d.h1, d.h2)) == 3

    def test_double_fail_rejected(self):
        d = build_dumbbell()
        ln = d.net.links[0]
        fail_link(d.net, ln)
        with pytest.raises(TopologyError):
            fail_link(d.net, ln)

    def test_repair_idempotent(self):
        d = build_dumbbell()
        ln = d.net.links[0]
        fail_link(d.net, ln)
        repair_link(d.net, ln)
        repair_link(d.net, ln)
        assert d.net.links.count(ln) == 1


class TestCollectorConfusion:
    def test_failure_confuses_then_recovery(self):
        """The §6.2 story for failures: cached answers go stale; after
        agent refresh + cache flush the collector sees the new world."""
        from repro.deploy import deploy_lan
        from repro.collectors.base import TopologyRequest

        lan = build_switched_lan(8, fanout=4)
        dep = deploy_lan(lan)
        coll = dep.snmp_collectors["lan"]
        h0, h7 = lan.hosts[0], lan.hosts[7]
        r1 = coll.topology(TopologyRequest.of([h0.ip, h7.ip]))
        assert r1.graph.path(str(h0.ip), str(h7.ip))
        # the host's access link dies
        access = h0.interfaces[0].link
        fail_link(lan.net, access)
        for sw in lan.switches:
            dep.world.refresh_device(sw)
        dep.world.refresh_device(lan.router)
        # stale cache still "answers" (confusion)
        r2 = coll.topology(TopologyRequest.of([h0.ip, h7.ip]))
        assert r2.graph.path(str(h0.ip), str(h7.ip))
        # after a flush + bridge rescan: the bridge database no longer
        # knows the station (its evidence is gone)...
        coll.flush_caches()
        bridge = dep.bridge_collectors["lan"]
        bridge.startup()
        assert not bridge.knows(h0.interfaces[0].mac)
        # ...so rediscovery degrades: no switch-level path to h0 — the
        # collector can only assume the host sits behind a virtual
        # switch (the SNMP collector cannot prove absence)
        r3 = coll.topology(TopologyRequest.of([h0.ip, h7.ip]))
        if r3.graph.has_node(str(h0.ip)):
            path = r3.graph.path(str(h0.ip), str(h7.ip))
            assert any(p.startswith("vsw:") for p in path)
        else:
            assert str(h0.ip) in r3.unresolved
