"""Tests for declarative topology specifications."""

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import (
    build_campus,
    build_dumbbell,
    build_hub_lan,
    build_switched_lan,
    build_wireless_lan,
)
from repro.netsim.paths import compute_path
from repro.netsim.spec import (
    SpecError,
    network_from_json,
    network_from_spec,
    network_to_json,
    spec_from_network,
)

MINIMAL = {
    "nodes": [
        {"name": "h1", "kind": "host"},
        {"name": "h2", "kind": "host"},
        {"name": "sw", "kind": "switch"},
        {"name": "gw", "kind": "router"},
    ],
    "links": [
        {"a": "h1", "b": "sw", "capacity_mbps": 100,
         "a_ip": "10.5.0.10", "subnet": "10.5.0.0/24"},
        {"a": "h2", "b": "sw", "capacity_mbps": 100,
         "a_ip": "10.5.0.11", "subnet": "10.5.0.0/24"},
        {"a": "gw", "b": "sw", "capacity_mbps": 1000,
         "a_ip": "10.5.0.1", "subnet": "10.5.0.0/24"},
    ],
    "management": [
        {"node": "sw", "ip": "10.5.0.2", "subnet": "10.5.0.0/24"}
    ],
}


class TestLoad:
    def test_minimal_network(self):
        net = network_from_spec(MINIMAL)
        assert net.frozen
        h1, h2 = net.host("h1"), net.host("h2")
        assert len(compute_path(net, h1, h2)) == 2
        sw = net.node("sw")
        assert str(sw.management_ip) == "10.5.0.2"

    def test_deployable(self):
        from repro.deploy import SiteConfig, deploy_remos

        net = network_from_spec(MINIMAL)
        dep = deploy_remos(
            net,
            [SiteConfig(
                name="s", domains=["10.5.0.0/24"],
                gateways=[("10.5.0.0/24", "10.5.0.1")],
                border_ip="10.5.0.1",
                collector_host=net.host("h1"),
                switch_ips={"sw": net.node("sw").management_ip},
            )],
        )
        ans = dep.modeler.flow_query(net.host("h1"), net.host("h2"))
        assert ans.available_bps == pytest.approx(100 * MBPS, rel=0.02)

    def test_basestation_node(self):
        spec = {
            "nodes": [
                {"name": "h", "kind": "host"},
                {"name": "sw", "kind": "switch"},
                {"name": "ap", "kind": "basestation", "air_rate_mbps": 54},
            ],
            "links": [
                {"a": "ap", "b": "sw", "capacity_mbps": 54},
                {"a": "h", "b": "ap", "capacity_mbps": 54,
                 "a_ip": "10.6.0.10", "subnet": "10.6.0.0/24"},
            ],
        }
        net = network_from_spec(spec)
        from repro.netsim.wireless import Basestation

        ap = net.node("ap")
        assert isinstance(ap, Basestation)
        assert ap.air_rate_bps == 54 * MBPS

    @pytest.mark.parametrize(
        "bad",
        [
            "not a dict",
            {"nodes": [{"name": "x", "kind": "blender"}]},
            {"nodes": [{"kind": "host"}]},
            {"nodes": [{"name": "h", "kind": "host"}],
             "links": [{"a": "h", "b": "nope", "capacity_mbps": 1}]},
            {"nodes": [{"name": "h", "kind": "host"},
                       {"name": "g", "kind": "host"}],
             "links": [{"a": "h", "b": "g", "capacity_mbps": 1,
                        "a_ip": "10.0.0.1"}]},  # ip without subnet
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(SpecError):
            network_from_spec(bad if isinstance(bad, dict) else bad)  # type: ignore[arg-type]

    def test_bad_json(self):
        with pytest.raises(SpecError):
            network_from_json("{oops")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_dumbbell().net,
            lambda: build_switched_lan(12, fanout=4).net,
            lambda: build_hub_lan().net,
            lambda: build_campus(2, 3).net,
            lambda: build_wireless_lan().net,
        ],
        ids=["dumbbell", "lan", "hub", "campus", "wireless"],
    )
    def test_builder_roundtrip(self, builder):
        """Export any built topology and rebuild it: same nodes, same
        paths between every pair of sample hosts."""
        net = builder()
        text = network_to_json(net)
        net2 = network_from_json(text)
        assert sorted(net2.nodes) == sorted(net.nodes)
        hosts = [h.name for h in net.hosts()][:4]
        for i in range(len(hosts)):
            for j in range(i + 1, len(hosts)):
                p1 = compute_path(net, hosts[i], hosts[j])
                p2 = compute_path(net2, hosts[i], hosts[j])
                assert [c.src.device.name for c in p1] == [
                    c.src.device.name for c in p2
                ]

    def test_management_preserved(self):
        lan = build_switched_lan(8, fanout=4)
        net2 = network_from_json(network_to_json(lan.net))
        for sw in lan.switches:
            sw2 = net2.node(sw.name)
            assert sw2.management_ip == sw.management_ip
