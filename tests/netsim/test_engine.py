"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_at_runs_in_order():
    eng = Engine()
    seen = []
    eng.at(2.0, lambda: seen.append("b"))
    eng.at(1.0, lambda: seen.append("a"))
    eng.at(3.0, lambda: seen.append("c"))
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 3.0


def test_same_time_fifo():
    eng = Engine()
    seen = []
    for i in range(5):
        eng.at(1.0, lambda i=i: seen.append(i))
    eng.run()
    assert seen == [0, 1, 2, 3, 4]


def test_after_is_relative():
    eng = Engine()
    seen = []
    eng.at(5.0, lambda: eng.after(2.0, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [7.0]


def test_cannot_schedule_in_past():
    eng = Engine()
    eng.at(5.0, lambda: None)
    eng.step()
    with pytest.raises(ValueError):
        eng.at(4.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Engine().after(-1.0, lambda: None)


def test_run_until_stops_exactly():
    eng = Engine()
    seen = []
    eng.at(1.0, lambda: seen.append(1))
    eng.at(10.0, lambda: seen.append(10))
    eng.run_until(5.0)
    assert seen == [1]
    assert eng.now == 5.0
    eng.run_until(20.0)
    assert seen == [1, 10]
    assert eng.now == 20.0


def test_cancel_timer():
    eng = Engine()
    seen = []
    t = eng.at(1.0, lambda: seen.append(1))
    t.cancel()
    eng.run()
    assert seen == []
    assert t.cancelled


def test_every_fixed_cadence():
    eng = Engine()
    ticks = []
    eng.every(5.0, lambda: ticks.append(eng.now))
    eng.run_until(26.0)
    assert ticks == [5.0, 10.0, 15.0, 20.0, 25.0]


def test_every_with_explicit_start():
    eng = Engine()
    ticks = []
    eng.every(5.0, lambda: ticks.append(eng.now), start=0.0)
    eng.run_until(11.0)
    assert ticks == [0.0, 5.0, 10.0]


def test_every_cancel_stops_ticks():
    eng = Engine()
    ticks = []
    timer = eng.every(1.0, lambda: ticks.append(eng.now))
    eng.at(3.5, timer.cancel)
    eng.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_advance_inside_callback_consumes_time():
    eng = Engine()
    times = []

    def busy():
        eng.advance(2.5)
        times.append(eng.now)

    eng.at(1.0, busy)
    eng.at(2.0, lambda: times.append(eng.now))
    eng.run()
    # The second event was scheduled for t=2 but runs late at t=3.5.
    assert times == [3.5, 3.5]


def test_periodic_skips_missed_ticks_after_long_callback():
    eng = Engine()
    ticks = []

    def tick():
        ticks.append(eng.now)
        if len(ticks) == 1:
            eng.advance(12.0)  # long stall spanning >2 intervals

    eng.every(5.0, tick)
    eng.run_until(30.0)
    # First tick at 5 stalls to 17; ticks at 10 and 15 are skipped.
    assert ticks == [5.0, 20.0, 25.0, 30.0]


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        Engine().advance(-0.1)


def test_run_raises_if_never_quiesces():
    eng = Engine()

    def reschedule():
        eng.after(1.0, reschedule)

    eng.after(1.0, reschedule)
    with pytest.raises(RuntimeError):
        eng.run(max_events=100)


def test_pending_counts_live_events():
    eng = Engine()
    t1 = eng.at(1.0, lambda: None)
    eng.at(2.0, lambda: None)
    assert eng.pending() == 2
    t1.cancel()
    assert eng.pending() == 1
