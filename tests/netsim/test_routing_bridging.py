"""Tests for routing tables, spanning trees, FDBs, and path computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.address import IPv4Address
from repro.netsim.bridging import SELF_PORT, discover_segments, l2_path, segment_of
from repro.netsim.builders import (
    SiteSpec,
    build_dumbbell,
    build_hub_lan,
    build_multisite_wan,
    build_switched_lan,
)
from repro.netsim.paths import compute_path, path_capacity, path_latency
from repro.netsim.topology import Network


class TestRouting:
    def test_dumbbell_routes(self):
        d = build_dumbbell()
        # r1 must know a route to h2's subnet via r2
        entry = d.r1.lookup_route(IPv4Address("10.2.0.10"))
        assert entry is not None
        prefix, next_ip, out = entry
        assert str(prefix) == "10.2.0.0/24"
        assert str(next_ip) == "192.168.0.2"

    def test_direct_route_preferred(self):
        d = build_dumbbell()
        entry = d.r1.lookup_route(IPv4Address("10.1.0.10"))
        assert entry is not None and entry[1] is None  # direct

    def test_gateway_auto_assignment(self):
        d = build_dumbbell()
        assert str(d.h1.gateway_ip) == "10.1.0.1"
        assert str(d.h2.gateway_ip) == "10.2.0.1"

    def test_longest_prefix_match_wins(self):
        net = Network()
        h = net.add_host("h")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        dst = net.add_host("dst")
        l1 = net.link(h, r1, 10 * MBPS)
        l2 = net.link(r1, r2, 10 * MBPS)
        l3 = net.link(r2, dst, 10 * MBPS)
        net.assign_ip(l1.a, "10.0.0.10", "10.0.0.0/24")
        net.assign_ip(l1.b, "10.0.0.1", "10.0.0.0/24")
        net.assign_ip(l2.a, "192.168.0.1", "192.168.0.0/30")
        net.assign_ip(l2.b, "192.168.0.2", "192.168.0.0/30")
        net.assign_ip(l3.a, "10.1.0.1", "10.1.0.0/24")
        net.assign_ip(l3.b, "10.1.0.10", "10.1.0.0/24")
        net.freeze()
        p = compute_path(net, h, dst)
        assert len(p) == 3

    def test_wan_transit_routing(self):
        w = build_multisite_wan(
            [SiteSpec("a", access_bps=10 * MBPS), SiteSpec("b", access_bps=5 * MBPS)]
        )
        p = compute_path(w.net, w.host("a"), w.host("b"))
        names = [c.src.device.name for c in p]
        assert "core" in names
        assert path_capacity(p) == 5 * MBPS


class TestBridging:
    def test_segment_discovery_counts(self):
        d = build_dumbbell()
        segs = discover_segments(d.net)
        # three segments: h1-r1, r1-r2, r2-h2
        assert len(segs) == 3

    def test_lan_single_segment(self):
        lan = build_switched_lan(20, fanout=4)
        segs = discover_segments(lan.net)
        big = max(segs, key=lambda s: len(s.links))
        assert len(big.switches) == len(lan.switches)
        # all hosts + router iface attach to the big segment
        assert len(big.edge_ifaces) == 20 + 1

    def test_fdb_has_entry_per_station(self):
        lan = build_switched_lan(12, fanout=4)
        stations = 12 + 1 + len(lan.switches)  # hosts + router + switch mgmt MACs
        for sw in lan.switches:
            assert len(sw.fdb) == stations

    def test_fdb_self_entry(self):
        lan = build_switched_lan(4, fanout=4)
        sw = lan.switches[0]
        assert sw.fdb[sw.management_mac()] == SELF_PORT

    def test_fdb_consistent_direction(self):
        """The FDB port for a host's MAC must be the first hop of the
        tree path toward that host."""
        lan = build_switched_lan(16, fanout=4)
        h = lan.hosts[0]
        mac = h.interfaces[0].mac
        for sw in lan.switches:
            port = sw.fdb[mac]
            iface = sw.iface(port)
            # Walking the l2 path from sw's port should reach the host.
            path = l2_path(lan.net, sw.interfaces[0], h.interfaces[0])
            # not empty and first channel leaves sw through some port
            assert path, "switch must reach host in its segment"

    def test_l2_path_same_switch(self):
        lan = build_switched_lan(8, fanout=8)  # all hosts on one switch
        p = l2_path(lan.net, lan.hosts[0].interfaces[0], lan.hosts[1].interfaces[0])
        assert len(p) == 2  # host->switch, switch->host

    def test_l2_path_cross_segment_raises(self):
        d = build_dumbbell()
        with pytest.raises(TopologyError):
            l2_path(d.net, d.h1.interfaces[0], d.h2.interfaces[0])

    def test_segment_of(self):
        lan = build_switched_lan(4)
        seg = segment_of(lan.net, lan.hosts[0].interfaces[0])
        assert lan.hosts[0].interfaces[0] in seg.edge_ifaces

    def test_redundant_switch_link_blocked(self):
        net = Network()
        s1 = net.add_switch("s1")
        s2 = net.add_switch("s2")
        s3 = net.add_switch("s3")
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        net.link(s1, s2, 100 * MBPS)
        net.link(s2, s3, 100 * MBPS)
        net.link(s3, s1, 100 * MBPS)  # loop!
        la = net.link(h1, s1, 100 * MBPS)
        lb = net.link(h2, s3, 100 * MBPS)
        net.assign_ip(la.a, "10.0.0.1", "10.0.0.0/24")
        net.assign_ip(lb.a, "10.0.0.2", "10.0.0.0/24")
        net.freeze()
        blocked = sum(len(sw.blocked_ports) for sw in (s1, s2, s3))
        assert blocked == 2  # one link blocked = 2 ports
        # connectivity preserved
        p = compute_path(net, h1, h2)
        assert p, "hosts must still reach each other"

    def test_pure_hub_loop_is_error(self):
        net = Network()
        h1 = net.add_host("h1")
        hub1 = net.add_hub("hub1")
        hub2 = net.add_hub("hub2")
        net.link(hub1, hub2, 1 * MBPS)
        net.link(hub1, hub2, 1 * MBPS)  # parallel hub-hub link: unbreakable loop
        net.link(h1, hub1, 1 * MBPS)
        with pytest.raises(TopologyError):
            net.freeze()

    def test_dual_homed_host_is_not_a_loop(self):
        """A host with two NICs on one hub does not forward between
        them, so it must not trip loop detection."""
        net = Network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        hub = net.add_hub("hub")
        net.link(h1, hub, 1 * MBPS)
        net.link(h1, hub, 1 * MBPS)
        net.link(h2, hub, 1 * MBPS)
        net.freeze()  # must not raise


class TestPaths:
    def test_same_host_empty_path(self):
        d = build_dumbbell()
        assert compute_path(d.net, d.h1, d.h1) == []

    def test_path_by_name(self):
        d = build_dumbbell()
        p = compute_path(d.net, "h1", "h2")
        assert len(p) == 3

    def test_path_through_lan_switches(self):
        lan = build_switched_lan(32, fanout=4)
        p = compute_path(lan.net, lan.hosts[0], lan.hosts[31])
        # both directions traverse same number of channels
        p_rev = compute_path(lan.net, lan.hosts[31], lan.hosts[0])
        assert len(p) == len(p_rev)

    def test_hub_lan_paths(self):
        hl = build_hub_lan()
        p = compute_path(hl.net, hl.hosts[0], hl.hosts[1])  # both on hub
        assert len(p) == 2
        p2 = compute_path(hl.net, hl.hosts[0], hl.hosts[-1])  # hub to switch host
        assert len(p2) == 3

    def test_path_latency_sums(self):
        d = build_dumbbell()
        p = compute_path(d.net, d.h1, d.h2)
        assert path_latency(p) == pytest.approx(3 * 0.0005)

    @given(st.integers(0, 39), st.integers(0, 39))
    @settings(max_examples=30, deadline=None)
    def test_lan_paths_symmetric_and_loop_free(self, i, j):
        lan = _LAN_CACHE[0]
        if i == j:
            return
        p = compute_path(lan.net, lan.hosts[i], lan.hosts[j])
        devices = [c.src.device.name for c in p]
        assert len(devices) == len(set(devices)), "no device repeats"
        assert p[0].src.device is lan.hosts[i]
        assert p[-1].dst.device is lan.hosts[j]


_LAN_CACHE = [build_switched_lan(40, fanout=4)]
