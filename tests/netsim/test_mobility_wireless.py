"""Tests for host mobility and the wireless substrate."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.builders import build_switched_lan, build_wireless_lan
from repro.netsim.mobility import rehome_host
from repro.netsim.paths import compute_path
from repro.netsim.wireless import (
    Basestation,
    add_basestation,
    associate,
    current_basestation,
)


class TestRehome:
    def test_move_updates_fdbs_and_paths(self):
        lan = build_switched_lan(16, fanout=4)
        h = lan.hosts[0]
        old_leaf = h.interfaces[0].peer().device
        new_leaf = lan.hosts[15].interfaces[0].peer().device
        assert old_leaf is not new_leaf
        rehome_host(lan.net, h, new_leaf)
        assert h.interfaces[0].peer().device is new_leaf
        # every switch's FDB points the right way again
        mac = h.interfaces[0].mac
        att_port = h.interfaces[0].peer().index
        assert new_leaf.fdb[mac] == att_port
        # paths still work and now share the new leaf
        p = compute_path(lan.net, h, lan.hosts[15])
        devices = [c.src.device.name for c in p]
        assert new_leaf.name in devices

    def test_move_breaks_active_flows(self):
        lan = build_switched_lan(8, fanout=4)
        h = lan.hosts[0]
        f = lan.net.flows.start_flow(h, lan.hosts[7])
        new_leaf = lan.hosts[7].interfaces[0].peer().device
        broken = rehome_host(lan.net, h, new_leaf)
        assert f in broken
        assert not f.active
        # a new flow works immediately
        f2 = lan.net.flows.start_flow(h, lan.hosts[7])
        assert f2.rate_bps > 0

    def test_move_to_same_place_is_noop(self):
        lan = build_switched_lan(8, fanout=4)
        h = lan.hosts[0]
        leaf = h.interfaces[0].peer().device
        f = lan.net.flows.start_flow(h, lan.hosts[7])
        assert rehome_host(lan.net, h, leaf) == []
        assert f.active

    def test_cannot_move_to_host(self):
        lan = build_switched_lan(4)
        with pytest.raises(TopologyError):
            rehome_host(lan.net, lan.hosts[0], lan.hosts[1])

    def test_unattached_host_rejected(self):
        lan = build_switched_lan(4)
        ghost = lan.net.nodes.get("h0")
        lan.net._frozen = False
        lonely = lan.net.add_host("lonely")
        lan.net._frozen = True
        with pytest.raises(TopologyError):
            rehome_host(lan.net, lonely, lan.switches[0])

    def test_old_port_reports_down(self):
        lan = build_switched_lan(8, fanout=4)
        h = lan.hosts[0]
        old_port = h.interfaces[0].peer()
        new_leaf = lan.hosts[7].interfaces[0].peer().device
        rehome_host(lan.net, h, new_leaf)
        assert old_port.link is None
        assert old_port.speed_bps == 0.0


class TestWireless:
    def test_builder_shapes(self):
        wl = build_wireless_lan(n_basestations=3, n_wireless_hosts=6)
        assert len(wl.basestations) == 3
        assert all(isinstance(b, Basestation) for b in wl.basestations)
        counts = [len(b.associated_stations()) for b in wl.basestations]
        assert counts == [2, 2, 2]

    def test_cell_is_shared_medium(self):
        """Two stations in one cell split the air rate."""
        wl = build_wireless_lan(n_basestations=1, n_wireless_hosts=2,
                                air_rate_bps=10 * MBPS)
        f1 = wl.net.flows.start_flow(wl.wireless_hosts[0], wl.wired_hosts[0])
        f2 = wl.net.flows.start_flow(wl.wireless_hosts[1], wl.wired_hosts[1])
        assert f1.rate_bps == pytest.approx(5 * MBPS)
        assert f2.rate_bps == pytest.approx(5 * MBPS)

    def test_handoff_moves_station(self):
        wl = build_wireless_lan()
        h = wl.wireless_hosts[0]
        src_bs = current_basestation(h)
        dst_bs = wl.basestations[-1]
        assert src_bs is not dst_bs
        associate(wl.net, h, dst_bs)
        assert current_basestation(h) is dst_bs
        assert h.interfaces[0].mac in dst_bs.associated_stations()
        assert h.interfaces[0].mac not in src_bs.associated_stations()

    def test_handoff_preserves_connectivity(self):
        wl = build_wireless_lan()
        h = wl.wireless_hosts[1]
        associate(wl.net, h, wl.basestations[0])
        p = compute_path(wl.net, h, wl.wired_hosts[0])
        assert p[0].src.device is h

    def test_associate_requires_basestation(self):
        wl = build_wireless_lan()
        with pytest.raises(TopologyError):
            associate(wl.net, wl.wireless_hosts[0], wl.switch)

    def test_repeated_association_is_noop(self):
        wl = build_wireless_lan()
        h = wl.wireless_hosts[0]
        bs = current_basestation(h)
        assert associate(wl.net, h, bs) == []
