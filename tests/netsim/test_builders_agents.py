"""Tests for topology builders and host-load instrumentation."""

import numpy as np
import pytest

from repro.common.units import MBPS
from repro.netsim.agents import LoadRecorder, TraceLoadSource, attach_trace
from repro.netsim.builders import (
    SiteSpec,
    build_hub_lan,
    build_multisite_wan,
    build_switched_lan,
)


class TestSwitchedLanBuilder:
    @pytest.mark.parametrize("n", [1, 2, 8, 9, 64, 65, 200])
    def test_all_hosts_created_and_addressed(self, n):
        lan = build_switched_lan(n, fanout=8)
        assert len(lan.hosts) == n
        ips = {str(h.ip) for h in lan.hosts}
        assert len(ips) == n

    def test_switch_tree_depth_grows(self):
        small = build_switched_lan(8, fanout=8)
        big = build_switched_lan(128, fanout=8)
        assert len(big.switches) > len(small.switches)

    def test_switches_have_management_ips(self):
        lan = build_switched_lan(16, fanout=4)
        for sw in lan.switches:
            assert sw.management_ip is not None

    def test_bad_args(self):
        with pytest.raises(ValueError):
            build_switched_lan(0)
        with pytest.raises(ValueError):
            build_switched_lan(4, fanout=1)


class TestWanBuilder:
    def test_duplicate_site_names_rejected(self):
        with pytest.raises(ValueError):
            build_multisite_wan([SiteSpec("x", 1 * MBPS), SiteSpec("x", 2 * MBPS)])

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            build_multisite_wan([])

    def test_sites_isolated_subnets(self):
        w = build_multisite_wan(
            [SiteSpec("a", 10 * MBPS), SiteSpec("b", 10 * MBPS)]
        )
        assert w.sites["a"].subnet != w.sites["b"].subnet
        assert w.host("a").ip != w.host("b").ip


class TestHubLanBuilder:
    def test_component_counts(self):
        hl = build_hub_lan(n_hub_hosts=3, n_switch_hosts=2)
        assert len(hl.hosts) == 5
        assert hl.hub.kind == "hub"


class TestLoadInstrumentation:
    def test_trace_source_piecewise_constant(self):
        src = TraceLoadSource(np.array([1.0, 2.0, 3.0]), dt=2.0)
        assert src(0.0) == 1.0
        assert src(1.99) == 1.0
        assert src(2.0) == 2.0
        assert src(5.9) == 3.0
        assert src(6.0) == 1.0  # wraps

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            TraceLoadSource(np.array([]))
        with pytest.raises(ValueError):
            TraceLoadSource(np.array([1.0]), dt=0.0)

    def test_recorder_samples_host(self):
        lan = build_switched_lan(2)
        h = lan.hosts[0]
        attach_trace(h, np.arange(100, dtype=float), dt=1.0)
        rec = LoadRecorder(lan.net, h, interval_s=1.0)
        rec.start()
        lan.net.engine.run_until(5.5)
        rec.stop()
        lan.net.engine.run_until(10.0)
        assert rec.times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert list(rec.as_array()) == [1.0, 2.0, 3.0, 4.0, 5.0]
