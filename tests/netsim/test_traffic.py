"""Tests for traffic generators."""

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import build_dumbbell
from repro.netsim.paths import compute_path
from repro.netsim.traffic import (
    BurstTraffic,
    CbrTraffic,
    FileTransfer,
    ParetoOnOffTraffic,
    RandomWalkTraffic,
)


@pytest.fixture
def dumbbell():
    return build_dumbbell()


class TestCbr:
    def test_rate_and_stop(self, dumbbell):
        d = dumbbell
        cbr = CbrTraffic(d.net, d.h1, d.h2, 7 * MBPS)
        cbr.start()
        assert cbr.current_rate() == pytest.approx(7 * MBPS)
        cbr.stop()
        assert cbr.current_rate() == 0.0
        assert not d.net.flows.active_flows()

    def test_start_idempotent(self, dumbbell):
        d = dumbbell
        cbr = CbrTraffic(d.net, d.h1, d.h2, 7 * MBPS)
        cbr.start()
        cbr.start()
        assert len(d.net.flows.active_flows()) == 1


class TestBurst:
    def test_bursts_fire_on_schedule(self, dumbbell):
        d = dumbbell
        burst = BurstTraffic(d.net, d.h1, d.h2, [(10.0, 5.0), (20.0, 5.0)])
        burst.start()
        samples = {}
        for t in (5.0, 12.0, 18.0, 22.0, 28.0):
            d.net.engine.at(t, lambda t=t: samples.update({t: burst.current_rate()}))
        d.net.engine.run_until(30.0)
        assert samples[5.0] == 0.0
        assert samples[12.0] == pytest.approx(100 * MBPS)
        assert samples[18.0] == 0.0
        assert samples[22.0] == pytest.approx(100 * MBPS)
        assert samples[28.0] == 0.0

    def test_burst_bytes_integrated(self, dumbbell):
        d = dumbbell
        burst = BurstTraffic(d.net, d.h1, d.h2, [(0.0, 10.0)], demand_bps=40 * MBPS)
        burst.start()
        d.net.engine.run_until(20.0)
        ch = compute_path(d.net, d.h1, d.h2)[1]
        ch.sync(d.net.now)
        assert ch.bytes_total == pytest.approx(40e6 * 10 / 8)


class TestRandomWalk:
    def test_stays_within_bounds(self, dumbbell):
        d = dumbbell
        rw = RandomWalkTraffic(
            d.net, d.h1, d.h2, lo_bps=1 * MBPS, hi_bps=5 * MBPS,
            sigma_bps=2 * MBPS, step_s=1.0, seed=42,
        )
        rw.start()
        observed = []
        d.net.engine.every(0.5, lambda: observed.append(rw.flow.rate_bps if rw.flow else 0.0))
        d.net.engine.run_until(60.0)
        rw.stop()
        assert observed, "must have sampled"
        assert min(observed) >= 1 * MBPS - 1e-6
        assert max(observed) <= 5 * MBPS + 1e-6
        assert len(set(round(o) for o in observed)) > 5, "demand must actually move"

    def test_bad_bounds_rejected(self, dumbbell):
        d = dumbbell
        with pytest.raises(ValueError):
            RandomWalkTraffic(d.net, d.h1, d.h2, lo_bps=5.0, hi_bps=1.0, sigma_bps=1.0)


class TestParetoOnOff:
    def test_alternates_on_off(self, dumbbell):
        d = dumbbell
        src = ParetoOnOffTraffic(
            d.net, d.h1, d.h2, rate_bps=10 * MBPS,
            mean_on_s=1.0, mean_off_s=1.0, seed=7,
        )
        src.start()
        states = []
        d.net.engine.every(0.25, lambda: states.append(src.flow is not None))
        d.net.engine.run_until(120.0)
        src.stop()
        frac_on = sum(states) / len(states)
        assert 0.2 < frac_on < 0.8, f"on-fraction {frac_on} implausible for 50% duty"

    def test_shape_must_give_finite_mean(self, dumbbell):
        d = dumbbell
        with pytest.raises(ValueError):
            ParetoOnOffTraffic(d.net, d.h1, d.h2, rate_bps=1.0, shape=1.0)


class TestFileTransfer:
    def test_transfer_throughput(self, dumbbell):
        d = dumbbell
        done = []
        xfer = FileTransfer(d.net, d.h1, d.h2, nbytes=12_500_000, on_done=lambda x: done.append(x))
        xfer.start()
        d.net.engine.run(max_events=50)
        assert xfer.complete
        assert xfer.elapsed_s == pytest.approx(1.0)  # 12.5 MB @ 100 Mbps
        assert xfer.throughput_bps == pytest.approx(100 * MBPS)
        assert done == [xfer]

    def test_incomplete_transfer_reports_zero(self, dumbbell):
        d = dumbbell
        xfer = FileTransfer(d.net, d.h1, d.h2, nbytes=1e12)
        xfer.start()
        d.net.engine.run_until(1.0)
        assert not xfer.complete
        assert xfer.throughput_bps == 0.0
