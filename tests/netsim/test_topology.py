"""Unit tests for the device/link/interface model."""

import pytest

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.topology import Network


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_host("h")
    with pytest.raises(TopologyError):
        net.add_router("h")


def test_link_assigns_interfaces_and_macs():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    ln = net.link(a, b, 10 * MBPS)
    assert ln.a.device is a and ln.b.device is b
    assert ln.a.mac is not None and ln.b.mac is not None
    assert ln.a.mac != ln.b.mac
    assert ln.a.peer() is ln.b
    assert a.interfaces[0].speed_bps == 10 * MBPS


def test_interface_cannot_be_double_linked():
    net = Network()
    a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
    ln = net.link(a, b, 1 * MBPS)
    with pytest.raises(TopologyError):
        net.link(ln.a, c.add_interface(), 1 * MBPS)


def test_zero_capacity_link_rejected():
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    with pytest.raises(TopologyError):
        net.link(a, b, 0.0)


def test_assign_ip_validates_membership():
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    ln = net.link(a, b, 1 * MBPS)
    with pytest.raises(TopologyError):
        net.assign_ip(ln.a, "10.1.0.1", "10.0.0.0/24")


def test_duplicate_ip_rejected():
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    ln = net.link(a, b, 1 * MBPS)
    net.assign_ip(ln.a, "10.0.0.1", "10.0.0.0/24")
    with pytest.raises(TopologyError):
        net.assign_ip(ln.b, "10.0.0.1", "10.0.0.0/24")


def test_ip_lookup():
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    ln = net.link(a, b, 1 * MBPS)
    net.assign_ip(ln.a, "10.0.0.1", "10.0.0.0/24")
    assert net.node_for_ip("10.0.0.1") is a
    assert net.node_for_ip("10.0.0.2") is None
    assert a.ip.value == net.iface_for_ip("10.0.0.1").ip.value


def test_host_without_ip_raises():
    net = Network()
    a = net.add_host("a")
    with pytest.raises(TopologyError):
        _ = a.ip


def test_frozen_network_rejects_changes():
    net = Network()
    net.add_host("a")
    net.freeze()
    with pytest.raises(TopologyError):
        net.add_host("b")


def test_host_lookup_type_checked():
    net = Network()
    net.add_router("r")
    with pytest.raises(TopologyError):
        net.host("r")
    with pytest.raises(TopologyError):
        net.node("missing")


def test_iface_by_ifindex():
    net = Network()
    r = net.add_router("r")
    i1 = r.add_interface()
    i2 = r.add_interface()
    assert r.iface(1) is i1
    assert r.iface(2) is i2
    assert i1.index == 1 and i2.index == 2


def test_counters_zero_when_unlinked():
    net = Network()
    r = net.add_router("r")
    i = r.add_interface()
    assert i.out_octets(5.0) == 0.0
    assert i.in_octets(5.0) == 0.0
    assert i.speed_bps == 0.0


def test_host_load_defaults_to_zero():
    net = Network()
    h = net.add_host("h")
    assert h.load(0.0) == 0.0
    h.load_source = lambda t: 1.5
    assert h.load(10.0) == 1.5


def test_neighbors():
    net = Network()
    a, b, c = net.add_host("a"), net.add_switch("s"), net.add_host("c")
    net.link(a, b, 1 * MBPS)
    net.link(b, c, 1 * MBPS)
    assert set(n.name for n in b.neighbors()) == {"a", "c"}
