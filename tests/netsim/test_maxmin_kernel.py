"""Equivalence of the numpy max-min kernel against the scalar oracle.

:func:`repro.netsim.flows.max_min_allocation` dispatches small problems
to :func:`repro.netsim.flows.max_min_allocation_reference` (the
original pure-python solver, kept verbatim as ground truth).  These
tests pin ``_KERNEL_MIN_ENTRIES`` to 0 so the vectorised kernel is
exercised at every problem size, and check agreement within 1e-9 on
randomised problems plus the documented corner cases: zero-length
paths, infinite demands, and shared-bottleneck ladders.
"""

import math
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.netsim.flows as flows_mod
from repro.netsim.flows import max_min_allocation, max_min_allocation_reference


class FakeChannel:
    def __init__(self, cap):
        self.capacity_bps = cap


def kernel(paths, demands):
    """Run the numpy kernel regardless of problem size."""
    with mock.patch.object(flows_mod, "_KERNEL_MIN_ENTRIES", 0):
        return max_min_allocation(paths, demands)


def assert_equivalent(paths, demands):
    got = kernel(paths, demands)
    want = max_min_allocation_reference(paths, demands)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        if math.isinf(w):
            assert math.isinf(g) and g > 0
        else:
            assert g == pytest.approx(w, rel=1e-9, abs=1e-9)


@st.composite
def _problem(draw):
    """Random flows over a pool of fake channels; path length 0 allowed
    (a zero-length path models src == dst within one node and must get
    its full demand)."""
    n_chan = draw(st.integers(1, 6))
    channels = [FakeChannel(draw(st.floats(1.0, 1000.0))) for _ in range(n_chan)]
    n_flows = draw(st.integers(1, 8))
    paths = []
    demands = []
    for _ in range(n_flows):
        k = draw(st.integers(0, n_chan))
        idx = draw(st.permutations(range(n_chan)))[:k]
        paths.append([channels[i] for i in idx])
        demands.append(
            draw(st.one_of(st.just(math.inf), st.floats(0.0, 500.0)))
        )
    return paths, demands


class TestKernelEquivalence:
    @given(_problem())
    @settings(max_examples=200, deadline=None)
    def test_matches_oracle(self, problem):
        paths, demands = problem
        assert_equivalent(paths, demands)

    def test_empty(self):
        assert kernel([], []) == []

    def test_all_zero_length_paths(self):
        # src == dst collapses to an empty path: full demand, and a
        # greedy (infinite-demand) flow stays infinite.
        paths = [[], [], []]
        demands = [7.0, 0.0, math.inf]
        assert kernel(paths, demands) == [7.0, 0.0, math.inf]
        assert_equivalent(paths, demands)

    def test_water_filling_example(self):
        # Classic 3-flow / 2-link example: A on link1 (cap 1), B on
        # link2 (cap 2), C on both.  Level freezes A and C at 0.5;
        # B takes the remaining 1.5.
        l1, l2 = FakeChannel(1.0), FakeChannel(2.0)
        rates = kernel([[l1], [l2], [l1, l2]], [math.inf] * 3)
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(1.5)
        assert rates[2] == pytest.approx(0.5)

    def test_shared_bottleneck_ladder(self):
        # Flow i crosses channels 0..i: every flow shares channel 0, so
        # contention nests.  A stress case for the snapshot-style
        # saturated-channel freeze.
        chans = [FakeChannel(10.0 * (i + 1)) for i in range(6)]
        paths = [chans[: i + 1] for i in range(6)]
        assert_equivalent(paths, [math.inf] * 6)
        assert_equivalent(paths, [3.0, math.inf, 1.0, math.inf, 0.0, 2.5])

    def test_infinite_demand_on_capacity_free_path(self):
        # Infinite capacities with infinite demands: the allocation is
        # legitimately unbounded in the fluid model.
        free = FakeChannel(math.inf)
        assert_equivalent([[free], [free]], [math.inf, 5.0])

    def test_demand_exactly_at_level(self):
        # A demand that binds exactly where a capacity binds exercises
        # the tie between the two freeze rules.
        ch = FakeChannel(10.0)
        assert_equivalent([[ch], [ch]], [5.0, math.inf])


class TestDispatch:
    def test_small_problem_uses_reference_solver(self):
        ch = FakeChannel(10.0)
        with mock.patch.object(
            flows_mod,
            "max_min_allocation_reference",
            wraps=max_min_allocation_reference,
        ) as ref:
            max_min_allocation([[ch], [ch]], [math.inf, math.inf])
        assert ref.called

    def test_large_problem_uses_kernel(self):
        # 65 flows x 2 channels = 130 incidence entries >= the 128-entry
        # dispatch floor: the kernel runs, and agrees with the oracle.
        a, b = FakeChannel(100.0), FakeChannel(60.0)
        paths = [[a, b] for _ in range(65)]
        demands = [math.inf if i % 3 else 0.5 for i in range(65)]
        with mock.patch.object(
            flows_mod,
            "max_min_allocation_reference",
            wraps=max_min_allocation_reference,
        ) as ref:
            got = max_min_allocation(paths, demands)
        assert not ref.called
        want = max_min_allocation_reference(paths, demands)
        for g, w in zip(got, want):
            assert g == pytest.approx(w, rel=1e-9, abs=1e-9)
