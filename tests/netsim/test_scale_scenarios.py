"""Large random topologies: determinism, mobility, and wireless at scale.

The paper's deployments topped out at a handful of sites;
:func:`repro.netsim.builders.build_random_wan` grows seeded worlds two
orders of magnitude bigger.  These tests pin the generator's contract
(same seed -> identical world) and give the mobility / wireless
scenario families their first coverage on 100+-site networks instead
of the toy LANs the unit tests use.
"""

from __future__ import annotations

import pytest

from repro.common.units import MBPS
from repro.netsim.builders import build_random_wan
from repro.netsim.mobility import rehome_host
from repro.netsim.paths import compute_path
from repro.netsim.wireless import associate, current_basestation

N_SITES = 120
SEED = 7


@pytest.fixture(scope="module")
def big_world():
    """One 120-site world shared by the read-only structure tests."""
    return build_random_wan(
        N_SITES, seed=SEED, multi_switch_fraction=0.35, wireless_fraction=0.3
    )


def _fingerprint(world):
    """Everything seed-determinism promises: names, addresses, shapes."""
    sites = []
    for name in sorted(world.sites):
        site = world.sites[name]
        extras = world.extras[name]
        sites.append(
            (
                name,
                site.subnet,
                tuple(h.name for h in site.hosts),
                tuple(str(h.interfaces[0].ip) for h in site.hosts),
                site.spec.access_bps,
                round(site.spec.access_latency_s, 12),
                extras.leaf_switch.name if extras.leaf_switch else None,
                tuple(b.name for b in extras.basestations),
                tuple(h.name for h in extras.wireless_hosts),
            )
        )
    links = tuple(
        sorted(
            (ln.a.device.name, ln.b.device.name, ln.capacity_bps, ln.latency_s)
            for ln in world.net.links
        )
    )
    return (tuple(c.name for c in world.cores), tuple(sites), links)


class TestDeterminism:
    def test_same_seed_same_world(self):
        kw = dict(multi_switch_fraction=0.4, wireless_fraction=0.3)
        a = build_random_wan(110, seed=3, **kw)
        b = build_random_wan(110, seed=3, **kw)
        assert _fingerprint(a) == _fingerprint(b)

    def test_different_seed_different_world(self):
        a = build_random_wan(60, seed=1)
        b = build_random_wan(60, seed=2)
        assert _fingerprint(a) != _fingerprint(b)

    def test_site_count_and_unique_subnets(self, big_world):
        assert len(big_world.sites) == N_SITES
        subnets = [s.subnet for s in big_world.sites.values()]
        assert len(set(subnets)) == N_SITES

    def test_rejects_absurd_scale(self):
        with pytest.raises(ValueError):
            build_random_wan(50_000)
        with pytest.raises(ValueError):
            build_random_wan(0)


class TestStructureAtScale:
    def test_fractions_materialise(self, big_world):
        leafy = [n for n, e in big_world.extras.items() if e.leaf_switch]
        wireless = [n for n, e in big_world.extras.items() if e.basestations]
        # seeded draws: the exact counts are pinned by the seed, the
        # bands just keep the assertion honest about the fractions
        assert 0.2 * N_SITES < len(leafy) < 0.5 * N_SITES
        assert 0.15 * N_SITES < len(wireless) < 0.45 * N_SITES
        for name in wireless:
            assert len(big_world.extras[name].basestations) == 2
            assert big_world.extras[name].wireless_hosts

    def test_cross_site_routing_works(self, big_world):
        names = sorted(big_world.sites)
        for src_name, dst_name in [(names[0], names[-1]), (names[31], names[97])]:
            f = big_world.net.flows.start_flow(
                big_world.host(src_name), big_world.host(dst_name)
            )
            src_cap = big_world.sites[src_name].spec.access_bps
            dst_cap = big_world.sites[dst_name].spec.access_bps
            assert f.rate_bps == pytest.approx(min(src_cap, dst_cap), rel=0.01)
            big_world.net.flows.stop_flow(f)

    def test_core_ring_present(self, big_world):
        assert len(big_world.cores) == 3  # min(8, 120 // 32)
        core_names = {c.name for c in big_world.cores}
        ring = [
            ln
            for ln in big_world.net.links
            if ln.a.device.name in core_names and ln.b.device.name in core_names
        ]
        assert len(ring) == len(big_world.cores)


class TestMobilityAtScale:
    def test_rehome_to_leaf_switch(self, random_wan):
        w = random_wan(N_SITES, seed=SEED, multi_switch_fraction=0.35)
        name = next(n for n in sorted(w.sites) if w.extras[n].leaf_switch)
        site, extras = w.sites[name], w.extras[name]
        mover = site.hosts[0]
        assert mover not in extras.leaf_hosts
        far = w.host(sorted(w.sites)[-1])
        flow = w.net.flows.start_flow(mover, far)

        broken = rehome_host(w.net, mover, extras.leaf_switch)

        assert flow in broken  # the handoff severed the active flow
        assert mover.interfaces[0].peer().device is extras.leaf_switch
        mac = mover.interfaces[0].mac
        port = mover.interfaces[0].peer().index
        assert extras.leaf_switch.fdb[mac] == port
        # still routable across the WAN after the move
        p = compute_path(w.net, mover, far)
        assert extras.leaf_switch.name in [c.src.device.name for c in p]
        f2 = w.net.flows.start_flow(mover, far)
        assert f2.rate_bps > 0

    def test_rehome_is_deterministic_across_rebuilds(self, random_wan):
        rates = []
        for _ in range(2):
            w = random_wan(N_SITES, seed=SEED, multi_switch_fraction=0.35)
            name = next(n for n in sorted(w.sites) if w.extras[n].leaf_switch)
            mover = w.sites[name].hosts[0]
            rehome_host(w.net, mover, w.extras[name].leaf_switch)
            f = w.net.flows.start_flow(mover, w.host(sorted(w.sites)[-1]))
            rates.append((name, mover.name, f.rate_bps))
        assert rates[0] == rates[1]


class TestWirelessAtScale:
    def test_roam_between_basestations(self, random_wan):
        w = random_wan(N_SITES, seed=SEED, wireless_fraction=0.3)
        name = next(n for n in sorted(w.sites) if w.extras[n].basestations)
        extras = w.extras[name]
        station = extras.wireless_hosts[0]
        home = current_basestation(station)
        assert home in extras.basestations
        other = next(b for b in extras.basestations if b is not home)
        mac = station.interfaces[0].mac
        assert mac in home.associated_stations()

        associate(w.net, station, other)

        assert current_basestation(station) is other
        assert mac in other.associated_stations()
        assert mac not in home.associated_stations()

    def test_wireless_flow_capped_by_air_rate(self, random_wan):
        w = random_wan(N_SITES, seed=SEED, wireless_fraction=0.3)
        name = next(n for n in sorted(w.sites) if w.extras[n].basestations)
        station = w.extras[name].wireless_hosts[0]
        wired_far = w.host(sorted(w.sites)[-1])
        f = w.net.flows.start_flow(station, wired_far)
        assert 0 < f.rate_bps <= 11 * MBPS
