"""Unit and property tests for max-min fair fluid flows."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.common.units import MBPS
from repro.netsim.builders import build_dumbbell, build_multisite_wan, SiteSpec
from repro.netsim.flows import max_min_allocation
from repro.netsim.paths import compute_path
from repro.netsim.topology import Network


def _chain_network(n_links: int, capacities):
    """A linear chain h0 - r1 - r2 - ... - h_end with given capacities."""
    net = Network()
    h0 = net.add_host("h0")
    hN = net.add_host("hN")
    routers = [net.add_router(f"r{i}") for i in range(n_links - 1)]
    seq = [h0] + routers + [hN]
    links = []
    for i, (a, b) in enumerate(zip(seq, seq[1:])):
        links.append(net.link(a, b, capacities[i]))
    # address each link as its own /30-ish subnet
    for i, ln in enumerate(links):
        subnet = f"10.{i}.0.0/24"
        net.assign_ip(ln.a, f"10.{i}.0.1", subnet)
        net.assign_ip(ln.b, f"10.{i}.0.2", subnet)
    net.freeze()
    return net, h0, hN, links


class TestMaxMinAllocation:
    def test_single_greedy_flow_gets_bottleneck(self):
        net, h0, hN, links = _chain_network(3, [100 * MBPS, 10 * MBPS, 100 * MBPS])
        f = net.flows.start_flow(h0, hN)
        assert f.rate_bps == pytest.approx(10 * MBPS)

    def test_two_greedy_flows_split_fairly(self):
        d = build_dumbbell()
        f1 = d.net.flows.start_flow(d.h1, d.h2)
        f2 = d.net.flows.start_flow(d.h1, d.h2)
        assert f1.rate_bps == pytest.approx(50 * MBPS)
        assert f2.rate_bps == pytest.approx(50 * MBPS)

    def test_demand_capped_flow_leaves_rest(self):
        d = build_dumbbell()
        f1 = d.net.flows.start_flow(d.h1, d.h2, demand_bps=20 * MBPS)
        f2 = d.net.flows.start_flow(d.h1, d.h2)
        assert f1.rate_bps == pytest.approx(20 * MBPS)
        assert f2.rate_bps == pytest.approx(80 * MBPS)

    def test_stop_flow_rebalances(self):
        d = build_dumbbell()
        f1 = d.net.flows.start_flow(d.h1, d.h2)
        f2 = d.net.flows.start_flow(d.h1, d.h2)
        d.net.flows.stop_flow(f1)
        assert f2.rate_bps == pytest.approx(100 * MBPS)
        assert not f1.active

    def test_stop_is_idempotent(self):
        d = build_dumbbell()
        f1 = d.net.flows.start_flow(d.h1, d.h2)
        d.net.flows.stop_flow(f1)
        d.net.flows.stop_flow(f1)
        assert f1.rate_bps == 0.0

    def test_set_demand_rebalances(self):
        d = build_dumbbell()
        f1 = d.net.flows.start_flow(d.h1, d.h2)
        f2 = d.net.flows.start_flow(d.h1, d.h2)
        d.net.flows.set_demand(f1, 10 * MBPS)
        assert f1.rate_bps == pytest.approx(10 * MBPS)
        assert f2.rate_bps == pytest.approx(90 * MBPS)

    def test_self_flow_rejected(self):
        d = build_dumbbell()
        with pytest.raises(Exception):
            d.net.flows.start_flow(d.h1, d.h1)

    def test_water_filling_example(self):
        # Classic: 3 flows, 2 links. Flow A uses link1, B uses link2,
        # C uses both. link1 cap 1, link2 cap 2 (scaled by Mbps).
        net, h0, hN, links = _chain_network(3, [1 * MBPS, 1000 * MBPS, 2 * MBPS])
        # C spans the chain; A only bottlenecked at link0; B at link2.
        # Emulate with demands via partial-path flows between routers is
        # complex here; instead test the raw allocator:
        chans1 = [links[0].channels()[0]]
        chans2 = [links[2].channels()[0]]
        both = [links[0].channels()[0], links[2].channels()[0]]
        rates = max_min_allocation(
            [chans1, chans2, both], [math.inf, math.inf, math.inf]
        )
        # Level grows to 0.5 on link0 (A and C freeze at 0.5);
        # B then takes 2 - 0.5 = 1.5.
        assert rates[0] == pytest.approx(0.5 * MBPS)
        assert rates[2] == pytest.approx(0.5 * MBPS)
        assert rates[1] == pytest.approx(1.5 * MBPS)

    def test_empty_allocation(self):
        assert max_min_allocation([], []) == []

    def test_zero_demand_flow(self):
        d = build_dumbbell()
        f = d.net.flows.start_flow(d.h1, d.h2, demand_bps=0.0)
        assert f.rate_bps == 0.0


@st.composite
def _allocation_problem(draw):
    """Random flows over a pool of fake channels."""

    class FakeChannel:
        def __init__(self, cap):
            self.capacity_bps = cap

    n_chan = draw(st.integers(1, 6))
    channels = [FakeChannel(draw(st.floats(1.0, 1000.0))) for _ in range(n_chan)]
    n_flows = draw(st.integers(1, 8))
    paths = []
    demands = []
    for _ in range(n_flows):
        k = draw(st.integers(1, n_chan))
        idx = draw(st.permutations(range(n_chan)))[:k]
        paths.append([channels[i] for i in idx])
        demands.append(
            draw(st.one_of(st.just(math.inf), st.floats(0.0, 500.0)))
        )
    return channels, paths, demands


class TestMaxMinProperties:
    @given(_allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_feasible_and_demand_respected(self, problem):
        channels, paths, demands = problem
        rates = max_min_allocation(paths, demands)
        # demands respected
        for r, d in zip(rates, demands):
            assert r <= d + 1e-6
            assert r >= 0
        # capacities respected
        for ch in channels:
            load = sum(r for r, p in zip(rates, paths) if ch in p)
            assert load <= ch.capacity_bps * (1 + 1e-9) + 1e-6

    @given(_allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_maxmin_bottleneck_condition(self, problem):
        """Every flow is either at its demand or crosses a saturated
        channel where it has a maximal rate — the defining property of
        max-min fairness."""
        channels, paths, demands = problem
        rates = max_min_allocation(paths, demands)
        for i, (r, d, p) in enumerate(zip(rates, demands, paths)):
            if math.isfinite(d) and r >= d - 1e-6:
                continue  # demand-bound
            bottlenecked = False
            for ch in p:
                load = sum(rj for rj, pj in zip(rates, paths) if ch in pj)
                if load >= ch.capacity_bps - 1e-6:
                    # flow i must have (weakly) maximal rate on this channel
                    others = [rj for j, (rj, pj) in enumerate(zip(rates, paths)) if ch in pj and j != i]
                    if all(r >= rj - 1e-6 for rj in others):
                        bottlenecked = True
                        break
            assert bottlenecked, f"flow {i} neither demand- nor bottleneck-bound"


class TestCounters:
    def test_counter_integration_exact(self):
        d = build_dumbbell()
        f = d.net.flows.start_flow(d.h1, d.h2, demand_bps=8 * MBPS)
        d.net.engine.run_until(10.0)
        path = f.path
        ch = path[0]
        ch.sync(d.net.now)
        assert ch.bytes_total == pytest.approx(8e6 * 10 / 8)

    def test_counter_integrates_across_rate_changes(self):
        d = build_dumbbell()
        f1 = d.net.flows.start_flow(d.h1, d.h2)  # 100 Mbps alone
        d.net.engine.at(5.0, lambda: d.net.flows.start_flow(d.h1, d.h2))
        d.net.engine.run_until(10.0)
        ch = compute_path(d.net, d.h1, d.h2)[1]
        ch.sync(d.net.now)
        # 5s at 100 Mbps + 5s at 100 Mbps (two flows at 50 each)
        assert ch.bytes_total == pytest.approx(100e6 * 10 / 8, rel=1e-9)

    def test_utilization_reading(self):
        d = build_dumbbell()
        d.net.flows.start_flow(d.h1, d.h2, demand_bps=25 * MBPS)
        ch = compute_path(d.net, d.h1, d.h2)[1]
        assert ch.utilization() == pytest.approx(0.25)


class TestFiniteTransfers:
    def test_completion_time_constant_rate(self):
        d = build_dumbbell()
        done = []
        d.net.flows.start_flow(
            d.h1, d.h2, total_bytes=125_000_000, on_complete=lambda f: done.append(d.net.now)
        )
        d.net.engine.run(max_events=100)
        # 125 MB at 100 Mbps = 10 s
        assert done == [pytest.approx(10.0)]

    def test_completion_reschedules_on_rate_change(self):
        d = build_dumbbell()
        done = []
        d.net.flows.start_flow(
            d.h1, d.h2, total_bytes=125_000_000, on_complete=lambda f: done.append(d.net.now)
        )
        # at t=5 a competitor arrives: remaining 62.5MB now moves at 50 Mbps -> 10 more s
        competitor = []
        d.net.engine.at(5.0, lambda: competitor.append(d.net.flows.start_flow(d.h1, d.h2)))
        d.net.engine.run_until(30.0)
        assert done == [pytest.approx(15.0)]

    def test_flow_bytes_done_tracks(self):
        d = build_dumbbell()
        f = d.net.flows.start_flow(d.h1, d.h2, demand_bps=8 * MBPS)
        d.net.engine.run_until(3.0)
        d.net.flows.stop_flow(f)
        assert f.bytes_done == pytest.approx(8e6 * 3 / 8)


class TestIncrementalReallocation:
    """Re-applying an allocation walks only the channels it touches —
    never every channel in the network (the old O(all-links) sweep).
    ``netsim.flows.realloc_channels_touched`` counts synced channels and
    is the recompute-cost witness."""

    @staticmethod
    def _wan():
        w = build_multisite_wan(
            [
                SiteSpec(f"s{i}", access_bps=10 * MBPS, n_hosts=2)
                for i in range(6)
            ]
        )
        return w, 2 * len(w.net.links)  # every link is two directed channels

    def test_start_touches_only_path_channels(self):
        w, total_channels = self._wan()
        with obs.scoped_registry() as reg:
            f = w.net.flows.start_flow(w.host("s0", 0), w.host("s1", 0))
            snap = obs.export.snapshot(reg)
        touched = snap["counters"]["netsim.flows.realloc_channels_touched"]
        assert touched == len(f.path)
        assert touched < total_channels, "sweep must not visit idle channels"

    def test_stop_zeroes_only_path_channels(self):
        w, total_channels = self._wan()
        f = w.net.flows.start_flow(w.host("s0", 0), w.host("s1", 0))
        with obs.scoped_registry() as reg:
            w.net.flows.stop_flow(f)
            snap = obs.export.snapshot(reg)
        touched = snap["counters"]["netsim.flows.realloc_channels_touched"]
        assert touched == len(f.path)
        assert touched < total_channels
        assert all(ch.rate_sum == 0.0 for ch in f.path)

    def test_disjoint_flow_does_not_touch_other_paths(self):
        # A recompute triggered by a flow on s2<->s3 re-syncs its own
        # path; the established s0<->s1 flow's rate is unchanged, so its
        # channels are not written again.
        w, _ = self._wan()
        f1 = w.net.flows.start_flow(w.host("s0", 0), w.host("s1", 0))
        with obs.scoped_registry() as reg:
            f2 = w.net.flows.start_flow(w.host("s2", 0), w.host("s3", 0))
            snap = obs.export.snapshot(reg)
        touched = snap["counters"]["netsim.flows.realloc_channels_touched"]
        assert touched == len(set(map(id, f2.path)) - set(map(id, f1.path)))


class TestWanSharing:
    def test_cross_site_flows_share_access_link(self):
        w = build_multisite_wan(
            [
                SiteSpec("a", access_bps=10 * MBPS),
                SiteSpec("b", access_bps=100 * MBPS),
                SiteSpec("c", access_bps=100 * MBPS),
            ]
        )
        # two flows out of site a to different sites share a's access link
        f1 = w.net.flows.start_flow(w.host("a", 0), w.host("b", 0))
        f2 = w.net.flows.start_flow(w.host("a", 1), w.host("c", 0))
        assert f1.rate_bps == pytest.approx(5 * MBPS)
        assert f2.rate_bps == pytest.approx(5 * MBPS)
