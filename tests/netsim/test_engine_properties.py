"""Property tests for the simulation engine and topology graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Engine
from repro.modeler.graph import HOST, SWITCH, TopoEdge, TopoNode, TopologyGraph


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_events_dispatch_in_time_order(self, times):
        eng = Engine()
        seen = []
        for t in times:
            eng.at(t, lambda t=t: seen.append(t))
        eng.run()
        assert seen == sorted(times)
        assert eng.now == max(times)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
        st.floats(0.0, 200.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_run_until_is_a_clean_cut(self, times, t_cut):
        eng = Engine()
        seen = []
        for t in times:
            eng.at(t, lambda t=t: seen.append(t))
        eng.run_until(t_cut)
        assert seen == sorted(t for t in times if t <= t_cut)
        assert eng.now >= min(t_cut, max(times) if times else 0.0)

    @given(st.floats(0.1, 10.0), st.floats(10.0, 200.0))
    @settings(max_examples=60, deadline=None)
    def test_periodic_tick_count(self, interval, horizon):
        eng = Engine()
        ticks = []
        eng.every(interval, lambda: ticks.append(eng.now))
        eng.run_until(horizon)
        expected = int(horizon / interval)
        assert abs(len(ticks) - expected) <= 1

    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_advance_accumulates(self, advances):
        eng = Engine()

        def busy():
            for dt in advances:
                eng.advance(dt)

        eng.at(1.0, busy)
        eng.run()
        assert eng.now == pytest.approx(1.0 + sum(advances))


@st.composite
def _random_graph(draw):
    n = draw(st.integers(2, 8))
    g = TopologyGraph()
    for i in range(n):
        g.add_node(TopoNode(f"n{i}", HOST if i < 2 else SWITCH))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                      st.floats(1e6, 1e9)),
            min_size=1,
            max_size=12,
        )
    )
    for a, b, cap in edges:
        if a != b:
            g.add_edge(TopoEdge(f"n{a}", f"n{b}", cap))
    return g


class TestGraphProperties:
    @given(_random_graph(), _random_graph())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_idempotent_and_monotone(self, g1, g2):
        m = g1.copy()
        m.merge(g2)
        # merging again changes nothing
        m2 = m.copy()
        m2.merge(g2)
        assert sorted(n.id for n in m2.nodes()) == sorted(n.id for n in m.nodes())
        assert m2.num_edges() == m.num_edges()
        # everything from both inputs is present
        for g in (g1, g2):
            for node in g.nodes():
                assert m.has_node(node.id)
            for e in g.edges():
                assert m.has_edge(e.a, e.b)

    @given(_random_graph())
    @settings(max_examples=60, deadline=None)
    def test_copy_independent(self, g):
        c = g.copy()
        for n in list(c.nodes()):
            c.remove_node(n.id)
        assert len(g) > 0
        assert len(c) == 0

    @given(_random_graph())
    @settings(max_examples=60, deadline=None)
    def test_bottleneck_never_exceeds_any_edge(self, g):
        from repro.common.errors import TopologyError

        nodes = [n.id for n in g.nodes()]
        for a in nodes[:3]:
            for b in nodes[:3]:
                if a == b:
                    continue
                try:
                    avail = g.bottleneck_available(a, b)
                except TopologyError:
                    continue
                for e in g.path_edges(a, b):
                    assert avail <= e.capacity_bps + 1e-9
