"""Tests for evaluator, predictors, host-load generation, and sensors."""

import numpy as np
import pytest

from repro.common.errors import PredictionError
from repro.common.units import MBPS
from repro.netsim.agents import attach_trace
from repro.netsim.builders import build_switched_lan
from repro.rps.evaluator import Evaluator
from repro.rps.hostload import ar_trace, fgn, host_load_trace
from repro.rps.models import parse_model
from repro.rps.predictor import ClientServerPredictor, StreamingPredictor
from repro.rps.sensors import FlowBandwidthSensor, HostLoadSensor
from repro.rps.service import RpsPredictionService
from repro.deploy import deploy_lan


class TestEvaluator:
    def test_errors_tracked_out_of_sample(self):
        x = ar_trace(2000, [0.7], seed=20)
        f = parse_model("AR(4)").fit(x[:1000])
        ev = Evaluator(f)
        for v in x[1000:1500]:
            ev.observe(v)
        rep = ev.report()
        assert rep.n == 128  # window
        assert 0 < rep.mse < np.var(x)
        # claimed variance should be roughly honest on stationary data
        assert 0.5 < rep.calibration_ratio < 2.0

    def test_no_refit_when_calibrated(self):
        x = ar_trace(3000, [0.6], seed=21)
        f = parse_model("AR(4)").fit(x[:1500])
        ev = Evaluator(f)
        for v in x[1500:2500]:
            ev.observe(v)
        assert not ev.needs_refit()

    def test_refit_flagged_on_regime_change(self):
        x = ar_trace(1500, [0.6], seed=22)
        f = parse_model("AR(4)").fit(x)
        ev = Evaluator(f, min_samples=16)
        shifted = ar_trace(100, [0.6], seed=23) * 6.0 + 10.0
        for v in shifted:
            ev.observe(v)
        assert ev.needs_refit()

    def test_min_samples_respected(self):
        x = ar_trace(1000, [0.6], seed=24)
        f = parse_model("AR(4)").fit(x)
        ev = Evaluator(f, min_samples=50)
        for v in (x[:30] * 100 + 100):
            ev.observe(v)
        assert not ev.needs_refit()


class TestClientServerPredictor:
    def test_stateless_requests(self):
        x = ar_trace(1000, [0.7], seed=25)
        server = ClientServerPredictor()
        r1 = server.request(x, 5)
        r2 = server.request(x, 5)
        assert np.allclose(r1.forecast.values, r2.forecast.values)
        assert server.requests_served == 2

    def test_spec_override(self):
        x = ar_trace(1000, [0.7], seed=26)
        server = ClientServerPredictor("AR(16)")
        r = server.request(x, 3, spec="LAST")
        assert r.spec == "LAST"
        assert np.all(r.forecast.values == x[-1])


class TestStreamingPredictor:
    def test_streams_and_forecasts(self):
        x = ar_trace(2000, [0.7], seed=27)
        sp = StreamingPredictor("AR(8)", x[:1000], horizon=3)
        fc = None
        for v in x[1000:1200]:
            fc = sp.observe(v)
        assert fc is not None and fc.values.shape == (3,)
        assert sp.samples_seen == 200

    def test_refits_when_miscalibrated(self):
        x = ar_trace(1200, [0.6], seed=28)
        sp = StreamingPredictor("AR(8)", x, refit_tolerance=1.5)
        # jump the level hard: evaluator must trigger at least one refit
        for v in ar_trace(600, [0.6], seed=29) + 30.0:
            sp.observe(v)
        assert sp.refits >= 1
        assert sp.forecast().values[0] == pytest.approx(30.0, abs=5.0)

    def test_needs_history(self):
        with pytest.raises(PredictionError):
            StreamingPredictor("AR(4)", np.array([1.0]))


class TestHostLoad:
    def test_fgn_variance_and_persistence(self):
        x = fgn(4096, 0.8, seed=30)
        assert np.var(x) == pytest.approx(1.0, rel=0.2)
        # persistent: lag-1 autocorrelation = 2^(2H-1) - 1 ≈ 0.52
        rho1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert rho1 == pytest.approx(2 ** (2 * 0.8 - 1) - 1, abs=0.08)

    def test_fgn_h_half_is_white(self):
        x = fgn(4096, 0.5, seed=31)
        rho1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(rho1) < 0.06

    def test_fgn_validation(self):
        with pytest.raises(ValueError):
            fgn(10, 1.5)
        with pytest.raises(ValueError):
            fgn(0, 0.5)

    def test_host_load_positive_and_reproducible(self):
        a = host_load_trace(500, seed=7)
        b = host_load_trace(500, seed=7)
        assert np.array_equal(a, b)
        assert np.all(a >= 0)

    def test_ar_trace_stationary(self):
        x = ar_trace(5000, [0.9], seed=32)
        # variance of AR(1): sigma2/(1-phi^2) ≈ 5.26
        assert np.var(x) == pytest.approx(1 / (1 - 0.81), rel=0.25)


class TestSensors:
    def test_host_load_sensor_streams(self):
        lan = build_switched_lan(2)
        h = lan.hosts[0]
        trace = host_load_trace(2000, seed=33)
        attach_trace(h, trace, dt=1.0)
        sp = StreamingPredictor("AR(8)", trace[:600])
        sensor = HostLoadSensor(lan.net, h, sp, rate_hz=1.0)
        sensor.start()
        lan.net.engine.run_until(100.0)
        sensor.stop()
        assert sensor.stats.samples == 100
        assert sensor.stats.cpu_seconds > 0
        assert 0 <= sensor.cpu_fraction() < 1.0

    def test_flow_bandwidth_sensor_is_remos_app(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        sensor = FlowBandwidthSensor(
            dep.session(), lan.hosts[0], lan.hosts[3], period_s=10.0
        )
        sensor.start()
        lan.net.engine.run_until(lan.net.now + 60.0)
        sensor.stop()
        assert sensor.stats.samples >= 5
        series = sensor.series()
        assert np.all(series == pytest.approx(100 * MBPS, rel=0.05))

    def test_flow_bandwidth_sensor_rejects_non_session(self):
        # the sensor takes the session facade, not a Modeler or a
        # deployment — the error must say where to get one
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        with pytest.raises(TypeError, match="session"):
            FlowBandwidthSensor(dep.modeler, lan.hosts[0], lan.hosts[3])

    def test_flow_bandwidth_sensor_uses_session_api(self):
        # the sensor was migrated off the deprecated Modeler.flow_query
        # shim; its ticks must be DeprecationWarning-free
        import warnings

        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        sensor = FlowBandwidthSensor(
            dep.session(), lan.hosts[0], lan.hosts[3], period_s=10.0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sensor.start()
            lan.net.engine.run_until(lan.net.now + 30.0)
            sensor.stop()
        assert sensor.stats.samples >= 2

    def test_bad_rate(self):
        lan = build_switched_lan(2)
        sp = StreamingPredictor("LAST", np.arange(10, dtype=float))
        with pytest.raises(ValueError):
            HostLoadSensor(lan.net, lan.hosts[0], sp, rate_hz=0)


class TestPredictionService:
    def test_predicts_with_preferred_model(self):
        x = ar_trace(1000, [0.7], seed=34)
        svc = RpsPredictionService("AR(16)")
        preds, variances = svc.predict_series(x, 3)
        assert preds.shape == (3,)
        assert np.all(variances >= 0)

    def test_falls_back_on_short_history(self):
        svc = RpsPredictionService("AR(16)")
        preds, _ = svc.predict_series(np.array([5.0, 5.0, 5.0]), 2)
        assert preds == pytest.approx([5.0, 5.0])

    def test_last_resort_constant(self):
        svc = RpsPredictionService("AR(16)", fallbacks=())
        preds, variances = svc.predict_series(np.array([2.0]), 2)
        assert np.all(preds == 2.0)
        assert np.all(variances == 0.0)


class TestModelerPredictionIntegration:
    def test_predictive_flow_query(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        dep.modeler.prediction_service = RpsPredictionService("AR(4)")
        # build up utilization history via periodic polling
        lan.net.flows.start_flow(lan.hosts[0], lan.hosts[3], demand_bps=40 * MBPS)
        session = dep.session()
        session.flow_info(lan.hosts[0], lan.hosts[3])  # discover + monitor
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 120.0)
        ans = session.flow_info(
            lan.hosts[0], lan.hosts[3], predict=True, horizon_steps=1
        )
        assert ans.predicted_bps is not None
        assert ans.predicted_bps == pytest.approx(60 * MBPS, rel=0.1)
