"""Tests for NWS-style multi-expert model selection."""

import numpy as np
import pytest

from repro.common.errors import ModelFitError, PredictionError
from repro.rps.hostload import ar_trace, host_load_trace
from repro.rps.models import ArModel, LastModel, MeanModel, parse_model
from repro.rps.models.experts import MultiExpertModel


class TestConstruction:
    def test_parse_spec(self):
        m = parse_model("EXPERTS(AR(8)+BM(8)+LAST)")
        assert m.spec == "EXPERTS(AR(8)+BM(8)+LAST)"

    def test_empty_experts_rejected(self):
        with pytest.raises(PredictionError):
            parse_model("EXPERTS()")
        with pytest.raises(ModelFitError):
            MultiExpertModel([])

    def test_bad_decay(self):
        with pytest.raises(ModelFitError):
            MultiExpertModel([MeanModel()], decay=1.5)

    def test_unfittable_expert_sits_out(self):
        # AR(50) can't fit 20 points, MEAN can
        m = MultiExpertModel([ArModel(50), MeanModel()])
        f = m.fit(np.arange(20, dtype=float))
        assert len(f._experts) == 1

    def test_no_expert_fits(self):
        m = MultiExpertModel([ArModel(50)])
        with pytest.raises(ModelFitError):
            m.fit(np.arange(10, dtype=float))


class TestSelection:
    def test_picks_ar_on_ar_data(self):
        x = ar_trace(4000, [0.8], seed=40)
        f = parse_model("EXPERTS(AR(4)+MEAN)").fit(x[:2000])
        for v in x[2000:3000]:
            f.step(float(v))
        # on strongly autocorrelated data the AR expert must win
        best = f._experts[f.best_index()].spec
        assert best == "AR(4)"

    def test_picks_mean_on_white_noise(self):
        rng = np.random.default_rng(41)
        x = rng.normal(5.0, 1.0, 3000)
        f = parse_model("EXPERTS(LAST+MEAN)").fit(x[:1500])
        for v in x[1500:2500]:
            f.step(float(v))
        # LAST doubles the error variance on white noise; MEAN wins
        assert f._experts[f.best_index()].spec == "MEAN"

    def test_adapts_after_regime_change(self):
        """A level shift makes the long-term MEAN terrible; the expert
        pool switches to a conditional model."""
        x1 = ar_trace(1500, [0.5], seed=42)
        f = parse_model("EXPERTS(BM(8)+MEAN)").fit(x1)
        shifted = ar_trace(400, [0.5], seed=43) + 15.0
        for v in shifted:
            f.step(float(v))
        assert f._experts[f.best_index()].spec == "BM(8)"
        # and the forecast reflects the new level
        assert f.forecast(1).values[0] == pytest.approx(15.0, abs=3.0)

    def test_forecast_shape(self):
        load = host_load_trace(1500, seed=44)
        f = parse_model("EXPERTS(AR(8)+LAST+MEAN)").fit(load[:1000])
        fc = f.forecast(7)
        assert fc.values.shape == (7,)
        assert np.all(fc.variances >= 0)

    def test_win_accounting(self):
        load = host_load_trace(1200, seed=45)
        f = parse_model("EXPERTS(AR(8)+MEAN)").fit(load[:800])
        for v in load[800:900]:
            f.step(float(v))
            f.forecast(1)
        assert f.wins.sum() == 100
