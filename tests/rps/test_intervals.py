"""Tests for forecast prediction intervals (variance characterization)."""

import numpy as np
import pytest

from repro.common.errors import PredictionError
from repro.rps.hostload import ar_trace
from repro.rps.models import parse_model
from repro.rps.models.base import Forecast


class TestIntervalMath:
    def test_symmetric_around_values(self):
        fc = Forecast(np.array([1.0, 2.0]), np.array([0.25, 1.0]))
        lo, hi = fc.interval(0.95)
        assert np.allclose((lo + hi) / 2, fc.values)
        # 95% -> z ~ 1.96
        assert hi[0] - fc.values[0] == pytest.approx(1.96 * 0.5, abs=0.01)
        assert hi[1] - fc.values[1] == pytest.approx(1.96 * 1.0, abs=0.01)

    def test_wider_at_higher_confidence(self):
        fc = Forecast(np.array([0.0]), np.array([1.0]))
        lo68, hi68 = fc.interval(0.68)
        lo99, hi99 = fc.interval(0.99)
        assert hi99[0] > hi68[0]

    def test_bad_confidence(self):
        fc = Forecast(np.array([0.0]), np.array([1.0]))
        with pytest.raises(PredictionError):
            fc.interval(0.0)
        with pytest.raises(PredictionError):
            fc.interval(1.5)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(PredictionError):
            Forecast(np.array([1.0]), np.array([1.0, 2.0]))


class TestEmpiricalCoverage:
    def test_ar_interval_covers_stated_fraction(self):
        """On stationary AR data, the 90% one-step band must actually
        contain ~90% of outcomes — the paper's claim that RPS's error
        characterization 'is usually quite accurate'."""
        x = ar_trace(6000, [0.7, -0.2], seed=60)
        fitted = parse_model("AR(8)").fit(x[:3000])
        hits = 0
        n = 2000
        for t in range(3000, 3000 + n):
            fc = fitted.forecast(1)
            lo, hi = fc.interval(0.90)
            if lo[0] <= x[t] <= hi[0]:
                hits += 1
            fitted.step(float(x[t]))
        coverage = hits / n
        assert 0.85 <= coverage <= 0.95
