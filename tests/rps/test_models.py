"""Tests for the RPS model family: fit, stream, forecast semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ModelFitError, PredictionError
from repro.rps.hostload import ar_trace, host_load_trace
from repro.rps.models import (
    ArimaModel,
    ArmaModel,
    ArModel,
    FarimaModel,
    LastModel,
    MaModel,
    MeanModel,
    RefittingModel,
    WindowModel,
    parse_model,
)

ALL_SPECS = [
    "MEAN", "LAST", "BM(8)", "AR(16)", "MA(8)",
    "ARMA(4,4)", "ARIMA(2,1,2)", "ARFIMA(2,0)", "REFIT(AR(8),64)",
]


@pytest.fixture(scope="module")
def load():
    return host_load_trace(3000, seed=42)


class TestParseModel:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_roundtrip_spec(self, spec):
        m = parse_model(spec)
        assert m.spec.replace(" ", "") == spec.replace(" ", "")

    def test_case_insensitive(self):
        assert parse_model("ar(4)").spec == "AR(4)"

    @pytest.mark.parametrize("bad", ["XX", "AR", "AR(1,2)", "ARIMA(1,1)", "REFIT(AR(4))"])
    def test_bad_specs(self, bad):
        with pytest.raises(PredictionError):
            parse_model(bad)


class TestCommonContract:
    """Every model family must honour the same fit/step/forecast contract."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_forecast_shape_and_finiteness(self, spec, load):
        f = parse_model(spec).fit(load[:800])
        fc = f.forecast(10)
        assert fc.values.shape == (10,)
        assert fc.variances.shape == (10,)
        assert np.all(np.isfinite(fc.values))
        assert np.all(fc.variances >= 0)

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_streaming_updates_forecast(self, spec, load):
        f = parse_model(spec).fit(load[:800])
        before = f.forecast(1).values[0]
        # feed a large excursion; the forecast must respond (except MEAN,
        # which moves slowly by design)
        for _ in range(50):
            f.step(10.0)
        after = f.forecast(1).values[0]
        if spec != "MEAN":
            assert abs(after - before) > 0.5
        else:
            assert after > before

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_variances_nondecreasing_short_horizon(self, spec, load):
        """Forecast uncertainty must not shrink with the horizon."""
        f = parse_model(spec).fit(load[:800])
        fc = f.forecast(8)
        assert all(
            fc.variances[i + 1] >= fc.variances[i] - 1e-9 for i in range(7)
        )

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_step_many(self, spec, load):
        f = parse_model(spec).fit(load[:500])
        f.step_many(load[500:600])
        assert np.isfinite(f.forecast(1).values[0])


class TestMeanLast:
    def test_mean_tracks_average(self):
        f = MeanModel().fit(np.array([1.0, 2.0, 3.0]))
        assert f.forecast(1).values[0] == pytest.approx(2.0)
        f.step(6.0)
        assert f.forecast(1).values[0] == pytest.approx(3.0)

    def test_last_is_last(self):
        f = LastModel().fit(np.array([1.0, 5.0]))
        assert f.forecast(3).values[2] == 5.0
        f.step(7.0)
        assert f.forecast(1).values[0] == 7.0

    def test_last_variance_grows_linearly(self):
        f = LastModel().fit(np.array([0.0, 1.0, 0.0, 1.0]))
        v = f.forecast(4).variances
        assert v[3] == pytest.approx(4 * v[0])

    def test_empty_fit_rejected(self):
        with pytest.raises(ModelFitError):
            MeanModel().fit(np.array([]))


class TestWindow:
    def test_window_mean(self):
        f = WindowModel(2).fit(np.array([1.0, 2.0, 3.0, 4.0]))
        assert f.forecast(1).values[0] == pytest.approx(3.5)
        f.step(10.0)
        assert f.forecast(1).values[0] == pytest.approx(7.0)

    def test_bad_window(self):
        with pytest.raises(ModelFitError):
            WindowModel(0)


class TestAr:
    def test_ar_beats_mean_on_ar_data(self):
        x = ar_trace(4000, [0.8], seed=11)
        ar = ArModel(1).fit(x[:2000])
        mean = MeanModel().fit(x[:2000])
        ar_se = mean_se = 0.0
        for v in x[2000:3000]:
            ar_se += (v - ar.forecast(1).values[0]) ** 2
            mean_se += (v - mean.forecast(1).values[0]) ** 2
            ar.step(v)
            mean.step(v)
        assert ar_se < 0.55 * mean_se  # theory: (1-phi^2) = 0.36 ratio

    def test_ar_long_horizon_reverts_to_mean(self):
        x = ar_trace(3000, [0.5], seed=12) + 5.0
        f = ArModel(1).fit(x)
        fc = f.forecast(50)
        assert fc.values[-1] == pytest.approx(np.mean(x), abs=0.2)

    def test_variance_approaches_signal_variance(self):
        x = ar_trace(6000, [0.7], seed=13)
        f = ArModel(1).fit(x)
        fc = f.forecast(60)
        assert fc.variances[-1] == pytest.approx(np.var(x), rel=0.15)

    def test_order_too_large_for_data(self):
        with pytest.raises(ModelFitError):
            ArModel(50).fit(np.arange(20, dtype=float))

    def test_bad_order(self):
        with pytest.raises(ModelFitError):
            ArModel(0)


class TestArima:
    def test_tracks_trend(self):
        rng = np.random.default_rng(14)
        x = np.cumsum(1.0 + rng.normal(0, 0.1, 1000))  # slope-1 random walk
        f = ArimaModel(1, 1, 0).fit(x)
        fc = f.forecast(10)
        # forecast keeps climbing roughly 1/step
        assert fc.values[9] - x[-1] == pytest.approx(10.0, rel=0.3)

    def test_d0_equals_arma(self, load):
        a = ArimaModel(2, 0, 0).fit(load[:900])
        b = ArmaModel(2, 0).fit(load[:900])
        assert a.forecast(3).values == pytest.approx(b.forecast(3).values, rel=1e-9)

    def test_negative_d_rejected(self):
        with pytest.raises(ModelFitError):
            ArimaModel(1, -1, 0)


class TestFarima:
    def test_needs_data(self):
        with pytest.raises(ModelFitError):
            FarimaModel(1, 0).fit(np.arange(32, dtype=float))

    def test_captures_long_memory(self):
        from repro.rps.hostload import fgn

        x = fgn(4096, 0.85, seed=15)
        f = FarimaModel(1, 0).fit(x[:3000])
        assert 0.1 < f.d < 0.49  # d estimated in the persistent range


class TestRefitting:
    def test_refits_on_schedule(self, load):
        f = RefittingModel(ArModel(4), refit_interval=50).fit(load[:500])
        for v in load[500:700]:
            f.step(v)
        assert f.refits == 4

    def test_adapts_to_regime_change(self):
        x1 = ar_trace(800, [0.5], seed=16) + 1.0
        x2 = ar_trace(800, [0.5], seed=17) + 25.0
        f = RefittingModel(ArModel(4), refit_interval=100, window=200).fit(x1)
        for v in x2:
            f.step(v)
        assert f.forecast(1).values[0] == pytest.approx(25.0, abs=3.0)

    def test_bad_interval(self):
        with pytest.raises(ModelFitError):
            RefittingModel(ArModel(1), 0)
