"""Tests for fitting algorithms: Levinson-Durbin, innovations,
Hannan-Rissanen, GPH, and psi weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import solve_toeplitz

from repro.common.errors import ModelFitError
from repro.rps.acf import (
    acf,
    acvf,
    difference,
    difference_levels,
    fractional_diff_weights,
    fractional_difference,
    undifference_forecasts,
)
from repro.rps.fit import (
    fit_ma_innovations,
    gph_estimate,
    hannan_rissanen,
    innovations,
    levinson_durbin,
    psi_weights,
    yule_walker,
)
from repro.rps.hostload import ar_trace, fgn


class TestAcvf:
    def test_lag_zero_is_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        g = acvf(x, 10)
        assert g[0] == pytest.approx(np.var(x), rel=1e-9)

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        g = acvf(x, 5)
        xc = x - x.mean()
        for k in range(6):
            direct = np.dot(xc[: 200 - k], xc[k:]) / 200
            assert g[k] == pytest.approx(direct, abs=1e-10)

    def test_white_noise_acf_small(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=20000)
        rho = acf(x, 5)
        assert rho[0] == 1.0
        assert np.abs(rho[1:]).max() < 0.05

    def test_too_short_series(self):
        with pytest.raises(ModelFitError):
            acvf(np.array([1.0]), 0)
        with pytest.raises(ModelFitError):
            acvf(np.array([1.0, 2.0]), 5)


class TestDifferencing:
    def test_difference_roundtrip(self):
        x = np.array([1.0, 3.0, 6.0, 10.0, 15.0])
        d1 = difference(x, 1)
        assert list(d1) == [2.0, 3.0, 4.0, 5.0]
        assert list(difference(x, 2)) == [1.0, 1.0, 1.0]

    def test_difference_levels_and_integrate(self):
        x = np.cumsum(np.cumsum(np.arange(10, dtype=float)))
        w, lasts = difference_levels(x, 2)
        # forecast "the next 3 second differences" as the true ones
        true_next = np.array([10.0, 11.0, 12.0])
        integrated = undifference_forecasts(true_next, lasts, 2)
        # reconstruct ground truth by extending the original recursion
        full = np.cumsum(np.cumsum(np.arange(13, dtype=float)))
        assert np.allclose(integrated, full[10:])

    def test_fractional_weights_d1_matches_first_difference(self):
        w = fractional_diff_weights(1.0, 5)
        assert np.allclose(w, [1.0, -1.0, 0.0, 0.0, 0.0])

    def test_fractional_weights_d0_identity(self):
        w = fractional_diff_weights(0.0, 4)
        assert np.allclose(w, [1.0, 0.0, 0.0, 0.0])

    def test_fractional_difference_invertible(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=100)
        d = 0.3
        y = fractional_difference(x, d)
        x_back = fractional_difference(y, -d)
        # truncation makes this approximate at the tail, exact early
        assert np.allclose(x_back[:50], x[:50], atol=1e-8)


class TestLevinsonDurbin:
    def test_matches_toeplitz_solve(self):
        x = ar_trace(3000, [0.5, -0.3, 0.1], seed=4)
        g = acvf(x, 8)
        phi, sigma2 = levinson_durbin(g)
        direct = solve_toeplitz(g[:8], g[1:9])
        assert np.allclose(phi, direct, atol=1e-10)
        assert sigma2 > 0

    @given(st.integers(1, 12), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_direct_solve(self, p, seed):
        x = np.random.default_rng(seed).normal(size=400)
        g = acvf(x, p)
        phi, sigma2 = levinson_durbin(g)
        direct = solve_toeplitz(g[:p], g[1 : p + 1])
        assert np.allclose(phi, direct, atol=1e-8)
        assert 0 <= sigma2 <= g[0] + 1e-12

    def test_recovers_ar_coefficients(self):
        true_phi = [0.6, -0.25]
        x = ar_trace(50000, true_phi, seed=5)
        phi, _, _ = yule_walker(x, 2)
        assert np.allclose(phi, true_phi, atol=0.03)

    def test_degenerate_input(self):
        with pytest.raises(ModelFitError):
            levinson_durbin(np.array([0.0, 0.0]))
        with pytest.raises(ModelFitError):
            levinson_durbin(np.array([1.0]))

    def test_constant_series(self):
        phi, sigma2, mu = yule_walker(np.full(100, 3.0), 4)
        assert np.allclose(phi, 0.0)
        assert sigma2 == 0.0
        assert mu == 3.0


class TestInnovations:
    def test_ma1_theta_recovered(self):
        rng = np.random.default_rng(6)
        e = rng.normal(size=50000)
        theta_true = 0.6
        x = e[1:] + theta_true * e[:-1]
        theta, sigma2, mu = fit_ma_innovations(x, 1)
        assert theta[0] == pytest.approx(theta_true, abs=0.05)
        assert sigma2 == pytest.approx(1.0, abs=0.08)

    def test_innovations_variances_decreasing(self):
        x = ar_trace(2000, [0.7], seed=7)
        g = acvf(x, 20)
        _, v = innovations(g, 20)
        assert v[0] == pytest.approx(g[0])
        assert all(v[i + 1] <= v[i] + 1e-12 for i in range(20))


class TestHannanRissanen:
    def test_arma11_recovered(self):
        rng = np.random.default_rng(8)
        n = 60000
        e = rng.normal(size=n + 1)
        x = np.zeros(n)
        phi_t, theta_t = 0.7, 0.4
        for t in range(1, n):
            x[t] = phi_t * x[t - 1] + e[t] + theta_t * e[t - 1]
        phi, theta, sigma2, mu = hannan_rissanen(x, 1, 1)
        assert phi[0] == pytest.approx(phi_t, abs=0.05)
        assert theta[0] == pytest.approx(theta_t, abs=0.07)
        assert sigma2 == pytest.approx(1.0, rel=0.1)

    def test_too_short_raises(self):
        with pytest.raises(ModelFitError):
            hannan_rissanen(np.arange(10, dtype=float), 2, 2)


class TestGph:
    def test_long_memory_detected(self):
        x = fgn(8192, 0.8, seed=9)
        d = gph_estimate(x)
        # fGn with H=0.8 has d = H - 0.5 = 0.3
        assert d == pytest.approx(0.3, abs=0.12)

    def test_white_noise_d_zero(self):
        x = np.random.default_rng(10).normal(size=8192)
        assert abs(gph_estimate(x)) < 0.1

    def test_short_series_raises(self):
        with pytest.raises(ModelFitError):
            gph_estimate(np.arange(10, dtype=float))


class TestPsiWeights:
    def test_ar1_psi_geometric(self):
        psi = psi_weights(np.array([0.5]), np.zeros(0), 6)
        assert np.allclose(psi, 0.5 ** np.arange(6))

    def test_ma_psi_is_theta(self):
        theta = np.array([0.3, -0.2])
        psi = psi_weights(np.zeros(0), theta, 5)
        assert np.allclose(psi, [1.0, 0.3, -0.2, 0.0, 0.0])

    def test_arma11_recursion(self):
        psi = psi_weights(np.array([0.5]), np.array([0.2]), 4)
        # psi_1 = theta_1 + phi_1 = 0.7; psi_2 = phi*psi_1 = 0.35
        assert np.allclose(psi, [1.0, 0.7, 0.35, 0.175])
