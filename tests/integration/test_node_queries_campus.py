"""Tests for node (compute) queries and the campus deployment."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.units import MBPS
from repro.deploy import deploy_campus, deploy_lan
from repro.netsim.agents import attach_trace
from repro.netsim.builders import build_campus, build_switched_lan
from repro.rps.hostload import host_load_trace


class TestNodeQueries:
    def test_current_load(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        h = lan.hosts[0]
        attach_trace(h, host_load_trace(2000, seed=1), dt=1.0)
        lan.net.engine.run_until(50.0)
        [ans] = dep.modeler.node_query([h])
        assert ans.ip == str(h.ip)
        assert ans.load == pytest.approx(h.load(lan.net.now))
        assert ans.predicted_load is None

    def test_predictive_node_query_needs_sensor(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        h = lan.hosts[0]
        attach_trace(h, host_load_trace(2000, seed=2), dt=1.0)
        [plain] = dep.modeler.node_query([h], predict=True)
        assert plain.predicted_load is None  # no sensor attached
        dep.attach_host_sensor(h, "AR(8)", rate_hz=1.0)
        lan.net.engine.run_until(lan.net.now + 120.0)
        [ans] = dep.modeler.node_query([h], predict=True, horizon_steps=5)
        assert ans.predicted_load is not None
        assert ans.predicted_var is not None and ans.predicted_var >= 0
        # the forecast is in the trace's ballpark
        assert ans.predicted_load == pytest.approx(h.load(lan.net.now), abs=2.0)

    def test_unknown_host_reports_none(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        [ans] = dep.modeler.node_query(["10.1.0.99"])
        assert ans.load is None

    def test_no_provider_raises(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        dep.modeler.node_info_provider = None
        with pytest.raises(QueryError):
            dep.modeler.node_query([lan.hosts[0]])

    def test_multiple_hosts(self):
        lan = build_switched_lan(4)
        dep = deploy_lan(lan)
        for i, h in enumerate(lan.hosts):
            attach_trace(h, host_load_trace(500, mean=float(i + 1), seed=i), dt=1.0)
        lan.net.engine.run_until(20.0)
        answers = dep.modeler.node_query(lan.hosts)
        assert len(answers) == 4
        loads = [a.load for a in answers]
        assert all(l is not None for l in loads)


class TestCampus:
    def test_builder_shape(self):
        c = build_campus(3, 4)
        assert len(c.subnets) == 3
        assert len(c.routers) == 3
        assert all(len(s.hosts) == 4 for s in c.subnets)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            build_campus(0)

    def test_cross_subnet_discovery_has_switch_detail(self):
        c = build_campus(2, 3)
        dep = deploy_campus(c)
        g = dep.modeler.topology_query([c.host(0, 0), c.host(1, 2)], simplified=False)
        path = g.path(str(c.host(0, 0).ip), str(c.host(1, 2).ip))
        # host - csw0 - r0 - bb - r1 - csw1 - host: switch detail at
        # both ends, routed backbone in the middle
        assert "csw0" in path and "csw1" in path
        assert "bb" in path

    def test_one_collector_covers_whole_domain(self):
        c = build_campus(3, 2)
        dep = deploy_campus(c)
        assert len(dep.snmp_collectors) == 1
        coll = dep.snmp_collectors["campus"]
        for s in c.subnets:
            assert coll.covers(s.hosts[0].ip)
        # three bridge collectors feed it
        assert len(coll.bridges) == 3

    def test_intra_and_inter_subnet_flows(self):
        c = build_campus(2, 3)
        dep = deploy_campus(c)
        intra = dep.modeler.flow_query(c.host(0, 0), c.host(0, 1))
        inter = dep.modeler.flow_query(c.host(0, 0), c.host(1, 0))
        assert intra.available_bps == pytest.approx(100 * MBPS, rel=0.02)
        assert inter.available_bps == pytest.approx(100 * MBPS, rel=0.02)

    def test_backbone_contention_visible(self):
        c = build_campus(2, 3)
        dep = deploy_campus(c)
        # saturate a host pair crossing the backbone, then ask
        c.net.flows.start_flow(c.host(0, 1), c.host(1, 1), demand_bps=60 * MBPS)
        c.net.engine.run_until(10.0)
        ans = dep.modeler.flow_query(c.host(0, 1), c.host(1, 2))
        # shared 100 Mbps host link of the source limits to 40
        assert ans.available_bps == pytest.approx(40 * MBPS, rel=0.05)
