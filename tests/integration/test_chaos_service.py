"""Chaos at the service plane: fault points, breaker, shed-to-STALE.

Extends the repro.faults contracts to the query service:

* **zero-overhead default** — service fault probabilities at zero leave
  wire answers byte-identical to a run without any plan;
* **graceful degradation** — with the backend failing, clients keep
  receiving answers (STALE from the LKG store), never FAILED data and
  never an unbounded retry storm: the circuit breaker opens and the
  retry budget caps amplification;
* **determinism** — the same plan seed produces the same sequence of
  served statuses.
"""

import asyncio

import pytest

from repro import faults, obs
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.service import DirectClient, RemosService, ServiceConfig
from repro.service.client import ServiceError
from repro.service.wire import canonical_json


def build_service(config=None, plan=None):
    w = build_multisite_wan(
        [
            SiteSpec("aaa", access_bps=10 * MBPS, n_hosts=2),
            SiteSpec("bbb", access_bps=20 * MBPS, n_hosts=2),
        ]
    )
    dep = deploy_wan(w)
    w.net.engine.run_until(w.net.now + 30.0)
    if plan is not None:
        faults.install(dep, plan)
    service = RemosService.from_deployment(dep, config or ServiceConfig())
    pair = (str(w.host("aaa", 0).ip), str(w.host("bbb", 0).ip))
    return w, dep, service, pair


class TestZeroOverhead:
    def test_benign_plan_leaves_wire_answers_identical(self):
        async def run(with_plan):
            plan = faults.FaultPlan() if with_plan else None
            _, _, service, pair = build_service(plan=plan)
            if plan is not None:
                assert not plan.injects_anything
            ans = await DirectClient(service).flow_info(*pair)
            return canonical_json(ans.to_dict())

        assert asyncio.run(run(False)) == asyncio.run(run(True))


class TestBackendFaults:
    def test_total_backend_failure_sheds_stale_never_failed(self):
        """Warm LKG, then 100% backend faults: every subsequent answer
        is STALE LKG data — no FAILED answers, no error escapes while
        the store holds a good answer — and the breaker opens instead
        of hammering the dead backend."""

        async def run():
            w, dep, service, pair = build_service(
                config=ServiceConfig(
                    breaker_min_calls=3,
                    breaker_threshold=0.5,
                    retry_deposit_ratio=0.0,
                    retry_max_attempts=2,
                ),
                plan=faults.FaultPlan(),  # armed, nothing fires yet
            )
            client = DirectClient(service)
            live = await client.flow_info(*pair)
            assert live.ok

            dep.net.faults.plan.service_error_prob = 1.0
            body = {"src": pair[0], "dst": pair[1]}
            outcomes = []
            for _ in range(8):
                ans, served = await client.served("flow_info", body)
                outcomes.append((str(ans.status), served))
            return live, outcomes, dict(service.stats), service.breaker.state

        live, outcomes, stats, breaker_state = asyncio.run(run())
        # every response is the warm answer served STALE
        assert all(o == ("stale", "shed_lkg") for o in outcomes)
        assert stats["shed_lkg"] == 8
        assert stats["backend_error"] == 0  # LKG absorbed every failure
        # the breaker opened: later sheds never reached the backend
        assert breaker_state == "open"
        assert stats["retries"] > 0

    def test_no_lkg_surfaces_backend_error(self):
        async def run():
            w, dep, service, pair = build_service(
                config=ServiceConfig(retry_deposit_ratio=0.0, retry_max_attempts=1),
                plan=faults.FaultPlan(service_error_prob=1.0),
            )
            client = DirectClient(service)
            with pytest.raises(ServiceError) as exc:
                await client.flow_info(*pair)
            return exc.value.code, dict(service.stats)

        code, stats = asyncio.run(run())
        assert code == "backend_error"
        assert stats["backend_error"] == 1

    def test_retry_budget_absorbs_flaky_backend(self):
        """50% seeded faults with retries: far more answers served live
        than the raw failure rate would allow, and every injected fault
        is visible in the faults counter."""

        async def run():
            w, dep, service, pair = build_service(
                config=ServiceConfig(
                    retry_deposit_ratio=2.0,
                    retry_max_attempts=4,
                    breaker_min_calls=10_000,  # never trips: isolate retries
                ),
                plan=faults.FaultPlan(seed=3, service_error_prob=0.5),
            )
            client = DirectClient(service)
            body = {"src": pair[0], "dst": pair[1]}
            served_live = 0
            with obs.scoped_registry() as reg:
                for _ in range(20):
                    try:
                        _, served = await client.served("flow_info", body)
                        served_live += served == "live"
                    except ServiceError:
                        pass
                snap = obs.export.snapshot(reg)
            return served_live, dict(service.stats), snap["counters"]

        served_live, stats, counters = asyncio.run(run())
        assert served_live >= 15  # retries recovered most faults
        assert stats["retries"] > 0
        # every injected fault is accounted for: absorbed by a retry or
        # surfaced as a terminal failure (shed to LKG / backend_error)
        assert counters["faults.injected{kind=service_error}"] == (
            stats["retries"] + stats["shed_lkg"] + stats["backend_error"]
        )

    def test_breaker_recovers_after_reset(self):
        async def run():
            w, dep, service, pair = build_service(
                config=ServiceConfig(
                    breaker_min_calls=2,
                    breaker_reset_s=0.05,
                    retry_deposit_ratio=0.0,
                    retry_max_attempts=1,
                ),
                plan=faults.FaultPlan(service_error_prob=1.0),
            )
            client = DirectClient(service)
            body = {"src": pair[0], "dst": pair[1]}
            for _ in range(4):
                try:
                    await client.served("flow_info", body)
                except ServiceError:
                    pass
            assert service.breaker.state == "open"
            dep.net.faults.plan.service_error_prob = 0.0  # backend heals
            await asyncio.sleep(0.06)  # past the reset window
            ans, served = await client.served("flow_info", body)
            return str(ans.status), served, service.breaker.state

        status, served, state = asyncio.run(run())
        assert (status, served) == ("ok", "live")  # half-open probe succeeded
        assert state == "closed"


class TestServiceDelay:
    def test_delay_fault_stalls_but_answers(self):
        async def run():
            w, dep, service, pair = build_service(
                plan=faults.FaultPlan(
                    service_delay_prob=1.0, service_delay_s=0.01
                ),
            )
            client = DirectClient(service)
            with obs.scoped_registry() as reg:
                ans = await client.flow_info(*pair)
                snap = obs.export.snapshot(reg)
            return ans, snap["counters"]

        ans, counters = asyncio.run(run())
        assert ans.ok
        assert counters["faults.injected{kind=service_delay}"] == 1


class TestDeterminism:
    def test_same_seed_same_served_sequence(self):
        async def run():
            w, dep, service, pair = build_service(
                config=ServiceConfig(retry_deposit_ratio=0.0, retry_max_attempts=1),
                plan=faults.FaultPlan(seed=11, service_error_prob=0.4),
            )
            client = DirectClient(service)
            try:
                await client.flow_info(*pair)  # warms LKG when it lands
            except ServiceError:
                pass
            body = {"src": pair[0], "dst": pair[1]}
            seq = []
            for _ in range(12):
                try:
                    ans, served = await client.served("flow_info", body)
                    seq.append((str(ans.status), served))
                except ServiceError as err:
                    seq.append(("error", err.code))
            return seq

        assert asyncio.run(run()) == asyncio.run(run())
