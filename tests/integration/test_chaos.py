"""Chaos: fault injection, survival machinery, and graceful degradation.

The three contracts of repro.faults (see its module docstring):

* **zero-overhead default** — a plan that injects nothing leaves every
  answer and the simulation clock byte-identical to a run without the
  module;
* **graceful degradation** — under injected faults multi-site queries
  come back PARTIAL/STALE with the healthy sites' numbers unchanged and
  zero unhandled exceptions;
* **determinism** — same seed, same fault sequence, same answers.
"""

import dataclasses

import pytest

from repro import faults, obs
from repro.common.errors import AgentUnreachableError
from repro.common.status import QueryStatus
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import (
    SiteSpec,
    build_dumbbell,
    build_multisite_wan,
    build_switched_lan,
)
from repro.snmp import oid as O
from repro.snmp.agent import instrument_network
from repro.snmp.client import SnmpClient, SnmpCostModel


def _wan(n_sites: int = 2):
    w = build_multisite_wan(
        [
            SiteSpec(name, access_bps=10 * MBPS, n_hosts=3)
            for name in ("a", "b", "c")[:n_sites]
        ]
    )
    return w, deploy_wan(w)


def _cross_pairs(w, n_sites: int = 2):
    sites = ("a", "b", "c")[:n_sites]
    return [
        (w.host(sites[i % n_sites], i), w.host(sites[(i + 1) % n_sites], i))
        for i in range(3)
    ]


class TestZeroOverheadDefault:
    def test_benign_plan_changes_nothing(self):
        """Installing a plan with every probability at zero must leave
        answers AND the simulated clock byte-identical."""

        def run(with_plan: bool):
            w, dep = _wan()
            if with_plan:
                inj = faults.install(dep, faults.FaultPlan())
                assert not inj.plan.injects_anything
            s = dep.session()
            answers = s.flow_info_many(_cross_pairs(w))
            topo = s.topology([w.host("a", 0), w.host("b", 0)])
            return (
                [dataclasses.asdict(a) for a in answers],
                topo.status,
                sorted(n.id for n in topo.graph.nodes()),
                w.net.now,
            )

        assert run(False) == run(True)

    def test_uninstall_restores_fail_fast(self):
        w, dep = _wan()
        faults.install(dep, faults.FaultPlan())
        faults.uninstall(dep)
        assert dep.net.faults is None
        assert dep.master.rpc.fragment_timeout_s == 0.0
        assert all(c.cost.retries == 0 for c in faults._clients(dep))


class TestRetryBackoff:
    def test_charged_on_sim_clock_and_bounded(self):
        """A 100% drop storm: the client retries exactly `retries`
        times, charges each timeout and exponential backoff to the
        simulation clock, then gives up with the original error."""
        lan = build_switched_lan(4, fanout=4)
        world = instrument_network(lan.net)
        net = lan.net
        net.faults = faults.FaultInjector(faults.FaultPlan(snmp_drop_prob=1.0))
        ip = str(lan.router.interfaces[0].ip)  # a device with an agent
        cost = SnmpCostModel(retries=2, backoff_base_s=0.25, backoff_mult=2.0)
        client = SnmpClient(world, ip, cost=cost)
        t0 = net.now
        with obs.scoped_registry() as reg:
            with pytest.raises(AgentUnreachableError):
                client.get(ip, [O.SYS_DESCR])
            snap = obs.export.snapshot(reg)
        # 3 attempts x timeout, plus backoffs 0.25 and 0.5 between them
        assert net.now - t0 == pytest.approx(3 * cost.timeout_s + 0.25 + 0.5)
        assert client.retry_count == 2
        assert snap["counters"]["snmp.retries{op=get}"] == 2
        assert snap["counters"]["faults.injected{kind=snmp_drop}"] == 3

    def test_retries_absorb_a_30_percent_storm(self):
        """With the default retry budget a 30% drop rate is fully
        absorbed: every answer OK, bandwidths identical to fault-free."""
        w0, dep0 = _wan()
        baseline = dep0.session().flow_info_many(_cross_pairs(w0))

        w, dep = _wan()
        faults.install(dep, faults.FaultPlan(seed=1, snmp_drop_prob=0.3))
        with obs.scoped_registry() as reg:
            answers = dep.session().flow_info_many(_cross_pairs(w))
            snap = obs.export.snapshot(reg)
        assert sum(
            v for k, v in snap["counters"].items() if k.startswith("snmp.retries")
        ) > 0
        assert snap["counters"]["faults.injected{kind=snmp_drop}"] > 0
        for got, want in zip(answers, baseline):
            assert got.status == QueryStatus.OK
            assert got.available_bps == pytest.approx(want.available_bps)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_same_seed_same_world(self, seed):
        def run():
            w, dep = _wan()
            inj = faults.install(
                dep, faults.FaultPlan(seed=seed, snmp_drop_prob=0.3)
            )
            answers = dep.session().flow_info_many(_cross_pairs(w))
            return (
                [dataclasses.asdict(a) for a in answers],
                inj.injected,
                w.net.now,
            )

        assert run() == run()


class TestPartialResults:
    def test_dead_site_degrades_to_partial(self):
        """A site whose collector is down before any query ever reached
        it (no last-known-good): pairs through it FAIL with 0 bps,
        cross-healthy pairs keep their fault-free bandwidth but are
        flagged PARTIAL, and query.partial counts every degraded fetch."""
        w0, dep0 = _wan(3)
        base = dep0.session().flow_info(w0.host("a", 1), w0.host("c", 0))

        w, dep = _wan(3)
        faults.install(dep, faults.FaultPlan())
        faults.crash_collector(dep.snmp_collectors["b"], 60.0)
        s = dep.session()
        pairs = [
            (w.host("a", 0), w.host("b", 0)),  # through the dead site
            (w.host("a", 1), w.host("c", 0)),  # healthy
        ]
        with obs.scoped_registry() as reg:
            dead, healthy = s.flow_info_many(pairs)
            topo = s.topology([w.host(x, 0) for x in "abc"])
            snap = obs.export.snapshot(reg)

        assert dead.status == QueryStatus.FAILED
        assert dead.available_bps == 0.0 and dead.path == ()
        assert healthy.status == QueryStatus.PARTIAL
        assert healthy.available_bps == pytest.approx(base.available_bps)

        assert topo.status == QueryStatus.PARTIAL
        assert topo.site_status["b"].status == QueryStatus.FAILED
        assert topo.site_status["a"].status == QueryStatus.OK
        assert str(w.host("b", 0).ip) in topo.unresolved
        assert snap["counters"]["query.partial"] == 2
        # second failed delegation hit the quarantine fast path
        assert snap["counters"]["collectors.master.quarantine_skips"] >= 1

    def test_crash_after_warmup_serves_stale_lkg(self):
        """Once a site has answered, a crash downgrades to STALE: the
        Master serves the last-known-good fragment with its data age."""
        w, dep = _wan()
        faults.install(dep, faults.FaultPlan())
        s = dep.session()
        hosts = [w.host("a", 0), w.host("b", 0)]
        warm = s.topology(hosts)
        assert warm.status == QueryStatus.OK

        faults.crash_collector(dep.snmp_collectors["b"], 40.0)
        with obs.scoped_registry() as reg:
            stale = s.topology(hosts)
            flow = s.flow_info(*hosts)
            snap = obs.export.snapshot(reg)
        assert stale.status == QueryStatus.STALE
        assert stale.site_status["b"].status == QueryStatus.STALE
        assert stale.site_status["b"].data_age_s > 0
        assert flow.status == QueryStatus.STALE
        assert flow.available_bps > 0  # answered from the cached fragment
        assert snap["counters"]["collectors.master.lkg_served"] >= 1

        # restart + quarantine expiry: fully healthy again
        w.net.engine.run_until(w.net.now + 80.0)
        assert s.topology(hosts).status == QueryStatus.OK

    def test_degraded_responses_never_poison_the_query_cache(self):
        """The bugfix pinned: with the TTL cache on, a PARTIAL response
        must not be memoized, so recovery is visible immediately
        instead of replaying the outage for a full TTL."""
        w, dep = _wan()
        dep.modeler.query_cache_ttl_s = 300.0
        faults.install(dep, faults.FaultPlan())
        faults.crash_collector(dep.snmp_collectors["b"], 30.0)
        s = dep.session()
        hosts = [w.host("a", 0), w.host("b", 0)]
        with obs.scoped_registry() as reg:
            assert s.topology(hosts).status == QueryStatus.PARTIAL
            w.net.engine.run_until(w.net.now + 60.0)  # collector restarts
            assert s.topology(hosts).status == QueryStatus.OK
            assert s.topology(hosts).status == QueryStatus.OK
            snap = obs.export.snapshot(reg)
        # the PARTIAL fetch was not cached (miss, miss), the OK one was (hit)
        assert snap["counters"]["modeler.query_cache{result=miss}"] == 2
        assert snap["counters"]["modeler.query_cache{result=hit}"] == 1


class TestCounterPathologies:
    def test_wrap32_and_resets_do_not_corrupt_rates(self):
        """32-bit wraps and injected counter resets must never produce
        negative (or absurdly huge) rate estimates."""
        lan = build_switched_lan(8, fanout=4)
        from repro.deploy import deploy_lan

        dep = deploy_lan(lan)
        faults.install(
            dep,
            faults.FaultPlan(seed=5, counter_reset_prob=0.01, counter_wrap32=True),
        )
        s = dep.session()
        s.flow_info(lan.hosts[0], lan.hosts[7])  # warm discovery
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 120.0)
        coll = dep.snmp_collectors["lan"]
        for mon in coll.monitors.values():
            for rate in mon.rates_bps():
                assert 0.0 <= rate < 1e12
        ans = s.flow_info(lan.hosts[0], lan.hosts[7])
        assert ans.available_bps >= 0.0


class TestProbeFaults:
    def test_wan_probe_failures_fall_back_to_history(self):
        """Failed benchmark probes burn their timeout, count a failure,
        and measurement() serves the last good result flagged stale."""
        w, dep = _wan()
        s = dep.session()
        s.topology([w.host("a", 0), w.host("b", 0)])  # seeds WAN probing
        bench = dep.benchmarks["a"]
        good = bench.probe("b")
        assert good.throughput_bps > 0

        faults.install(dep, faults.FaultPlan(probe_fail_prob=1.0))
        # age the cached result past the freshness window, so the query
        # has to attempt a probe — which now fails
        w.net.engine.run_until(w.net.now + bench.config.max_age_s + 1.0)
        with obs.scoped_registry() as reg:
            t0 = w.net.now
            meas = bench.measurement("b", allow_probe=True)
            snap = obs.export.snapshot(reg)
        assert meas.stale
        assert meas.throughput_bps == pytest.approx(good.throughput_bps)
        assert snap["counters"]["collectors.benchmark.probe_failures"] >= 1
        assert w.net.now - t0 >= dep.net.faults.plan.probe_timeout_s


class TestTargetedFaults:
    """The scalpel helpers: take down one named agent or one link,
    deterministically, instead of rolling probabilistic dice."""

    def test_crash_agent_blackholes_then_restores(self):
        lan = build_switched_lan(4, fanout=4)
        world = instrument_network(lan.net)
        client = SnmpClient(world, lan.hosts[0].ip)
        ip = lan.switches[0].management_ip
        name = client.get(ip, O.SYS_NAME)
        with obs.scoped_registry() as reg:
            faults.crash_agent(world, ip, down_s=30.0)
            with pytest.raises(AgentUnreachableError):
                client.get(ip, O.SYS_NAME)
            snap = obs.export.snapshot(reg)
        assert snap["counters"]["faults.injected{kind=agent_crash}"] == 1
        lan.net.engine.run_until(lan.net.now + 60.0)
        assert client.get(ip, O.SYS_NAME) == name

    def test_crash_agent_rejects_unknown_ip(self):
        lan = build_switched_lan(4)
        world = instrument_network(lan.net)
        with pytest.raises(ValueError):
            faults.crash_agent(world, "10.99.99.99")

    def test_latency_spike_reverts_on_schedule(self):
        d = build_dumbbell()
        link = d.h1.interfaces[0].link
        base = link.latency_s
        faults.spike_link_latency(d.net, link, 0.25, duration_s=15.0)
        assert link.latency_s == pytest.approx(base + 0.25)
        d.net.engine.run_until(d.net.now + 20.0)
        assert link.latency_s == pytest.approx(base)

    def test_degrade_link_rebalances_live_flows(self):
        d = build_dumbbell()
        f = d.net.flows.start_flow(d.h1, d.h2)
        assert f.rate_bps == pytest.approx(100 * MBPS)
        link = d.h1.interfaces[0].link
        faults.degrade_link(d.net, link, 0.4, duration_s=10.0)
        assert f.rate_bps == pytest.approx(40 * MBPS)
        assert link.capacity_bps == pytest.approx(40 * MBPS)
        d.net.engine.run_until(d.net.now + 20.0)
        assert f.rate_bps == pytest.approx(100 * MBPS)

    def test_degrade_link_validates_factor(self):
        d = build_dumbbell()
        link = d.h1.interfaces[0].link
        with pytest.raises(ValueError):
            faults.degrade_link(d.net, link, 0.0)
        with pytest.raises(ValueError):
            faults.degrade_link(d.net, link, 1.5)
