"""Chaos for the sharded Master plane: crashes, promotion, shard LKG.

Extends the flat-plane chaos contracts (``test_chaos.py``) one tier up:

* a crashed shard *primary* is invisible — a replica is promoted and
  answers **fresh**, because it re-queries the still-alive site
  collectors;
* with every replica of a shard down, the shard's sites are served
  STALE from the shard-level last-known-good cache, with a truthful,
  monotonically growing ``data_age_s`` — never FAILED while any other
  shard still answers;
* the whole circus is deterministic: same seeds, same fault script,
  same answers.
"""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.collectors.base import TopologyRequest
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.collectors.sharding import ShardingConfig
from repro.common.status import QueryStatus
from repro.deploy import deploy_wan
from repro.netsim.builders import build_random_wan

N_SITES = 12
PLAN = faults.FaultPlan(
    fragment_timeout_s=8.0, fragment_retries=1, quarantine_s=30.0
)


def _stack(replicas: int = 1, seed: int = 19):
    world = build_random_wan(N_SITES, seed=seed, hosts_per_site=(2, 3))
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(probe_bytes=50_000, max_age_s=3600.0),
        sharding=ShardingConfig(n_shards=4, replicas=replicas),
    )
    faults.install(dep, PLAN)
    return world, dep


def _request(world, dep):
    """A query spanning every shard, so one shard's fate is visible
    against healthy neighbours."""
    names = sorted(world.sites)
    ips = [str(world.sites[n].hosts[0].interfaces[0].ip) for n in names]
    return names, TopologyRequest.of(ips)


def _victim_shard(dep):
    """The shard with the most sites (always non-empty)."""
    return max(dep.master.shards, key=lambda s: len(s.sites))


class TestReplicaPromotion:
    def test_primary_crash_is_invisible(self):
        world, dep = _stack(replicas=1)
        names, req = _request(world, dep)
        victim = _victim_shard(dep)
        with obs.scoped_registry() as reg:
            assert dep.master.topology(req).status == QueryStatus.OK

            faults.crash_shard(dep.master, victim.index, 60.0,
                               include_replicas=False)
            resp = dep.master.topology(req)

            # the replica re-queried the live site collectors: the
            # answer is fresh and complete, not a stale LKG serve
            assert resp.status == QueryStatus.OK
            assert all(
                resp.site_status[s].status == QueryStatus.OK for s in names
            )
            assert reg.counter("collectors.sharded.replica_promotions").value >= 1
            assert reg.counter("collectors.sharded.lkg_served").value == 0

    def test_primary_recovers_after_downtime(self):
        world, dep = _stack(replicas=1)
        _, req = _request(world, dep)
        victim = _victim_shard(dep)
        faults.crash_shard(dep.master, victim.index, 60.0,
                           include_replicas=False)
        assert dep.master.topology(req).status == QueryStatus.OK
        world.net.engine.run_until(world.net.now + 120.0)
        assert victim.masters[0].crashed_until is None
        with obs.scoped_registry() as reg:
            assert dep.master.topology(req).status == QueryStatus.OK
            assert reg.counter("collectors.sharded.replica_promotions").value == 0


class TestShardLkgFailover:
    def test_whole_shard_down_serves_stale_with_growing_age(self):
        world, dep = _stack(replicas=1)
        names, req = _request(world, dep)
        victim = _victim_shard(dep)
        assert dep.master.topology(req).status == QueryStatus.OK  # fills LKG

        faults.crash_shard(dep.master, victim.index, 600.0)
        ages = []
        with obs.scoped_registry() as reg:
            for _ in range(3):
                world.net.engine.run_until(world.net.now + 20.0)
                resp = dep.master.topology(req)
                # degraded, never FAILED: the other shards still answer
                assert resp.status == QueryStatus.STALE
                for site in names:
                    st = resp.site_status[site]
                    if site in victim.sites:
                        assert st.status == QueryStatus.STALE
                        assert st.detail == "shard last-known-good"
                        assert st.data_age_s > 0.0
                    else:
                        assert st.status == QueryStatus.OK
                ages.append(
                    max(resp.site_status[s].data_age_s for s in victim.sites)
                )
            assert reg.counter("collectors.sharded.lkg_served").value == 3
            # once quarantined, later queries skip the dead replica chain
            assert reg.counter("collectors.master.quarantine_skips").value >= 1
        assert ages == sorted(ages) and ages[0] < ages[-1]

    def test_shard_recovers_fresh_after_restart(self):
        world, dep = _stack(replicas=1)
        _, req = _request(world, dep)
        victim = _victim_shard(dep)
        dep.master.topology(req)
        faults.crash_shard(dep.master, victim.index, 60.0)
        world.net.engine.run_until(world.net.now + 10.0)
        assert dep.master.topology(req).status == QueryStatus.STALE
        # outlive both the crash and the quarantine window
        world.net.engine.run_until(world.net.now + 120.0)
        resp = dep.master.topology(req)
        assert resp.status == QueryStatus.OK
        assert all(
            s.detail != "shard last-known-good" for s in resp.site_status.values()
        )

    def test_no_lkg_means_partial_not_failed(self):
        world, dep = _stack(replicas=0)
        names, req = _request(world, dep)
        victim = _victim_shard(dep)
        # cold crash: no prior query, so no LKG to fall back on
        faults.crash_shard(dep.master, victim.index, 600.0)
        resp = dep.master.topology(req)
        assert resp.status == QueryStatus.PARTIAL
        for site in names:
            if site in victim.sites:
                assert site not in resp.site_status or (
                    resp.site_status[site].status == QueryStatus.FAILED
                )
            else:
                assert resp.site_status[site].status == QueryStatus.OK
        # the healthy sites' fragments are all present in the answer
        healthy_switches = {f"{s}-sw" for s in names if s not in victim.sites}
        node_ids = {n.id for n in resp.graph.nodes()}
        assert healthy_switches <= node_ids


class TestDeterministicReplay:
    @staticmethod
    def _scenario():
        world, dep = _stack(replicas=1)
        names, req = _request(world, dep)
        victim = _victim_shard(dep)
        trace = []
        with obs.scoped_registry() as reg:
            for step in range(4):
                if step == 1:
                    faults.crash_shard(dep.master, victim.index, 45.0,
                                       include_replicas=False)
                if step == 2:
                    faults.crash_shard(dep.master, victim.index, 90.0)
                resp = dep.master.topology(req)
                trace.append(
                    (
                        round(world.net.now, 9),
                        resp.status.name,
                        tuple(
                            (s, st.status.name, round(st.data_age_s, 9), st.attempts)
                            for s, st in sorted(resp.site_status.items())
                        ),
                        len(resp.graph.nodes()),
                        len(resp.graph.edges()),
                    )
                )
                world.net.engine.run_until(world.net.now + 15.0)
            injected = reg.counter("faults.injected", kind="shard_crash").value
        return trace, injected

    def test_same_seed_same_fault_script_same_answers(self):
        first = self._scenario()
        second = self._scenario()
        assert first == second
        assert first[1] == 2.0  # both scripted crashes fired, exactly once


@pytest.mark.parametrize("depth", [1, 2])
def test_hierarchy_depth_survives_primary_crash(depth):
    """Promotion works under a master-of-masters tier too."""
    world = build_random_wan(N_SITES, seed=23, hosts_per_site=(2, 3))
    dep = deploy_wan(
        world,
        bench_config=BenchmarkConfig(probe_bytes=50_000, max_age_s=3600.0),
        sharding=ShardingConfig(
            n_shards=4, replicas=1, depth=depth, group_fanout=2
        ),
    )
    faults.install(dep, PLAN)
    names, req = _request(world, dep)
    assert dep.master.topology(req).status == QueryStatus.OK
    # crash one leaf shard's primary, wherever the hierarchy put it
    leaf = next(
        m for m in dep.master.iter_masters()
        if not hasattr(m, "shards") and m.name.endswith("-s0")
    )
    leaf.crashed_until = world.net.engine.now + 60.0
    resp = dep.master.topology(req)
    assert resp.status == QueryStatus.OK
    assert all(st.status == QueryStatus.OK for st in resp.site_status.values())
