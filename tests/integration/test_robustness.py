"""Failure injection and robustness across the full stack.

§6.2: "Problems range from: network features that we had not
encountered before ..., and network elements that were misconfigured or
have non-standard features (e.g. non-standard SNMP implementations) ...
Remos currently assumes a fairly static environment, so network
failures and host movement can confuse Remos."

These tests inject exactly those faults and check the system degrades
the way the paper prescribes (virtual switches for what it cannot see,
stale-but-served answers, graceful skips) rather than falling over.
"""

import pytest

from repro.common.errors import QueryError, SnmpError
from repro.common.units import MBPS
from repro.collectors.base import TopologyRequest
from repro.deploy import deploy_lan, deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan
from repro.netsim.mobility import rehome_host
from repro.snmp import oid as O


class TestAgentFailuresMidRun:
    def test_polling_survives_dead_agent(self):
        lan = build_switched_lan(8, fanout=8)
        dep = deploy_lan(lan)
        dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 30.0)
        # the switch agent dies
        lan.switches[0].snmp_reachable = False
        lan.net.engine.run_until(lan.net.now + 30.0)
        coll = dep.snmp_collectors["lan"]
        failures = sum(m.sample_failures for m in coll.monitors.values())
        assert failures > 0, "poller must have hit the dead agent"
        # queries still answered from the last known data
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        assert ans.available_bps > 0

    def test_dead_router_mid_run_degrades_new_discovery(self):
        w = build_multisite_wan(
            [
                SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
                SiteSpec("b", access_bps=10 * MBPS, n_hosts=3),
            ]
        )
        dep = deploy_wan(w)
        # warm the a-site collector
        dep.modeler.flow_query(w.host("a", 0), w.host("a", 1))
        # now the a gateway stops answering SNMP
        w.sites["a"].router.snmp_reachable = False
        # cached paths still answer
        ans = dep.modeler.flow_query(w.host("a", 0), w.host("a", 1))
        assert ans.available_bps > 0
        # brand-new discovery that needs the dead gateway cannot resolve
        coll = dep.snmp_collectors["a"]
        coll.flush_caches()
        resp = coll.topology(
            TopologyRequest.of([w.host("a", 0).ip, w.host("a", 2).ip])
        )
        assert resp.unresolved, "nothing reachable without the gateway"


class TestNonStandardMibs:
    def test_switch_missing_fdb_status_column(self):
        """A vendor that never implemented dot1dTpFdbStatus: the bridge
        collector treats rows as learned entries and carries on."""
        from repro.snmp.agent import instrument_network
        from repro.collectors.bridge_collector import BridgeCollector

        lan = build_switched_lan(8, fanout=4)
        world = instrument_network(lan.net)
        # strip the status column from one switch's MIB
        broken = lan.switches[1]
        agent = world.agent_for(broken.name)
        for mac in list(broken.fdb):
            agent.mib.remove(O.DOT1D_TP_FDB_STATUS + mac.octets())
        bc = BridgeCollector(
            "bc", lan.net, world, lan.hosts[0].ip,
            {sw.name: sw.management_ip for sw in lan.switches},
        )
        db = bc.startup()
        # all hosts still located (the broken switch's self entry now
        # looks like a station, which the inference tolerates)
        for h in lan.hosts:
            assert db.locate(h.interfaces[0].mac) is not None

    def test_router_missing_arp_rows_falls_back_to_vswitch(self):
        """No ipNetToMedia support: L2 expansion cannot resolve MACs,
        so the subnet is represented as a virtual switch."""
        from repro.snmp.agent import instrument_network
        from repro.collectors.snmp_collector import SnmpCollector, SnmpCollectorConfig
        from repro.netsim.address import IPv4Address, IPv4Network

        lan = build_switched_lan(6, fanout=8)
        world = instrument_network(lan.net)
        gw_ip = next(i.ip for i in lan.router.interfaces if i.ip is not None)
        agent = world.agent_for("gw")
        # strip the whole ARP table
        doomed = [o for o in list(agent.mib._oids) if o.starts_with(O.IP_NET_TO_MEDIA_TABLE)]
        for o in doomed:
            agent.mib.remove(o)
        coll = SnmpCollector(
            "snmp", lan.net, world, lan.hosts[0].ip,
            SnmpCollectorConfig(
                domains=[IPv4Network(lan.subnet)],
                gateways=[(IPv4Network(lan.subnet), gw_ip)],
            ),
        )
        resp = coll.topology(
            TopologyRequest.of([lan.hosts[0].ip, lan.hosts[5].ip])
        )
        assert not resp.unresolved
        kinds = {n.kind for n in resp.graph.nodes()}
        assert "vswitch" in kinds
        # still connected
        path = resp.graph.path(str(lan.hosts[0].ip), str(lan.hosts[5].ip))
        assert len(path) == 3  # host - vswitch - host


class TestHostMovementConfusion:
    def test_stale_cache_then_recovery(self):
        """The §6.2 confusion and its remedy: after a host moves, the
        SNMP collector's cached path is stale; the bridge collector's
        location monitoring notices, and a cache flush re-discovers the
        true path."""
        lan = build_switched_lan(16, fanout=4)
        dep = deploy_lan(lan)
        coll = dep.snmp_collectors["lan"]
        bridge = dep.bridge_collectors["lan"]
        h = lan.hosts[0]
        mac = h.interfaces[0].mac
        r1 = coll.topology(TopologyRequest.of([h.ip, lan.hosts[15].ip]))
        old_path = r1.graph.path(str(h.ip), str(lan.hosts[15].ip))

        # the host moves to the far leaf switch
        new_leaf = lan.hosts[15].interfaces[0].peer().device
        rehome_host(lan.net, h, new_leaf)
        dep.world.refresh_device(new_leaf)
        for sw in lan.switches:
            dep.world.refresh_device(sw)

        # Remos is confused: the cached answer still shows the old path
        r2 = coll.topology(TopologyRequest.of([h.ip, lan.hosts[15].ip]))
        assert r2.graph.path(str(h.ip), str(lan.hosts[15].ip)) == old_path

        # the bridge collector's monitoring notices the move...
        assert bridge.verify_location(mac) is True
        # ...and after a flush the collector discovers the new reality
        coll.flush_caches()
        r3 = coll.topology(TopologyRequest.of([h.ip, lan.hosts[15].ip]))
        new_path = r3.graph.path(str(h.ip), str(lan.hosts[15].ip))
        assert new_path != old_path
        assert new_leaf.name in new_path


class TestOverlappingDomains:
    def test_longest_prefix_wins_in_directory(self):
        w = build_multisite_wan(
            [
                SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
                SiteSpec("b", access_bps=10 * MBPS, n_hosts=3),
            ]
        )
        dep = deploy_wan(w)
        # register a bogus catch-all collector; real sites are more specific
        bogus = dep.snmp_collectors["b"]
        dep.directory.register(bogus, ["10.0.0.0/8"], site="catchall")
        reg = dep.directory.lookup(w.host("a", 0).ip)
        assert reg.site == "a", "the /16 must beat the /8"


class TestBenchmarkFailureModes:
    def test_unstitched_sites_raise_clean_query_error(self):
        """Without benchmark endpoints the WAN edge cannot be built;
        flow queries across sites fail with a QueryError, not a crash."""
        w = build_multisite_wan(
            [
                SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
                SiteSpec("b", access_bps=10 * MBPS, n_hosts=3),
            ]
        )
        dep = deploy_wan(w)
        # remove benchmark endpoints
        dep.directory._benchmarks.clear()
        with pytest.raises(QueryError):
            dep.modeler.flow_query(w.host("a", 0), w.host("b", 0))
        # intra-site queries unaffected
        ans = dep.modeler.flow_query(w.host("a", 0), w.host("a", 1))
        assert ans.available_bps > 0
