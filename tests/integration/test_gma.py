"""Tests for the GMA compatibility layer."""

import pytest

from repro.common.errors import QueryError
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.gma import (
    EVENT_FLOW,
    EVENT_HISTORY,
    EVENT_TOPOLOGY,
    CollectingConsumer,
    CollectorProducer,
    GmaDirectory,
    ModelerProducer,
)
from repro.netsim.builders import SiteSpec, build_multisite_wan


@pytest.fixture
def stack():
    w = build_multisite_wan(
        [
            SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("b", access_bps=5 * MBPS, n_hosts=3),
        ]
    )
    dep = deploy_wan(w)
    return w, dep


class TestProducers:
    def test_master_is_joint_consumer_producer(self, stack):
        w, dep = stack
        producer = CollectorProducer(dep.master)
        ev = producer.query(
            EVENT_TOPOLOGY,
            node_ips=[w.host("a", 0).ip, w.host("b", 0).ip],
        )
        assert ev.type == EVENT_TOPOLOGY
        assert ev.source == "gma:master"
        assert ev.payload.graph.has_node(str(w.host("a", 0).ip))
        # the query consumed from the site collectors underneath
        assert any(c.queries_served > 0 for c in dep.snmp_collectors.values())

    def test_site_collector_as_producer(self, stack):
        w, dep = stack
        producer = CollectorProducer(dep.snmp_collectors["a"])
        ev = producer.query(EVENT_TOPOLOGY, node_ips=[w.host("a", 0).ip, w.host("a", 1).ip])
        assert ev.payload.graph.has_node(str(w.host("a", 1).ip))

    def test_history_events(self, stack):
        w, dep = stack
        # create history first
        dep.modeler.flow_query(w.host("a", 0), w.host("a", 1))
        dep.start_monitoring()
        w.net.engine.run_until(w.net.now + 60.0)
        producer = CollectorProducer(dep.snmp_collectors["a"])
        ev = producer.query(EVENT_HISTORY, edge_a=str(w.host("a", 0).ip), edge_b="a-sw")
        assert ev.type == EVENT_HISTORY
        assert len(ev.payload.rates_bps) > 3

    def test_missing_params_rejected(self, stack):
        w, dep = stack
        producer = CollectorProducer(dep.master)
        with pytest.raises(QueryError):
            producer.query(EVENT_TOPOLOGY)
        with pytest.raises(QueryError):
            producer.query(EVENT_HISTORY, edge_a="x")
        with pytest.raises(QueryError):
            producer.query("remos.unknown")

    def test_modeler_producer_flow_events(self, stack):
        w, dep = stack
        producer = ModelerProducer(dep.modeler)
        ev = producer.query(EVENT_FLOW, src=w.host("a", 0), dst=w.host("b", 0))
        assert ev.type == EVENT_FLOW
        assert ev.payload.available_bps == pytest.approx(5 * MBPS, rel=0.1)


class TestDirectory:
    def test_find_by_event_type(self, stack):
        w, dep = stack
        d = GmaDirectory()
        cp = CollectorProducer(dep.master)
        mp = ModelerProducer(dep.modeler)
        d.register(cp)
        d.register(mp)
        assert d.find(EVENT_TOPOLOGY) == [cp]
        assert d.find(EVENT_FLOW) == [mp]
        assert d.find("nope") == []
        assert EVENT_HISTORY in d.event_types()

    def test_unregister(self, stack):
        w, dep = stack
        d = GmaDirectory()
        cp = CollectorProducer(dep.master)
        d.register(cp)
        d.unregister(cp)
        assert d.find(EVENT_TOPOLOGY) == []

    def test_double_register_no_dup(self, stack):
        w, dep = stack
        d = GmaDirectory()
        cp = CollectorProducer(dep.master)
        d.register(cp)
        d.register(cp)
        assert d.find(EVENT_TOPOLOGY) == [cp]


class TestSubscriptions:
    def test_periodic_delivery(self, stack):
        w, dep = stack
        producer = ModelerProducer(dep.modeler)
        consumer = CollectingConsumer()
        sub = producer.subscribe(
            EVENT_FLOW, consumer, period_s=30.0,
            src=w.host("a", 0), dst=w.host("b", 0),
        )
        w.net.engine.run_until(w.net.now + 100.0)
        assert len(consumer.events) == 3
        assert all(e.type == EVENT_FLOW for e in consumer.events)
        sub.cancel()
        n = len(consumer.events)
        w.net.engine.run_until(w.net.now + 100.0)
        assert len(consumer.events) == n
        assert not sub.active

    def test_subscribe_unknown_type_rejected(self, stack):
        w, dep = stack
        producer = ModelerProducer(dep.modeler)
        with pytest.raises(QueryError):
            producer.subscribe("remos.nope", CollectingConsumer(), 10.0)
