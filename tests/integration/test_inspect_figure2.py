"""Tests for deployment inspection and the Figure-2 multi-master shape."""

import pytest

from repro.common.units import MBPS
from repro.collectors.base import RpcCostModel
from repro.collectors.directory import CollectorDirectory
from repro.collectors.master import MasterCollector
from repro.deploy import deploy_lan, deploy_wan
from repro.inspect import deployment_report, deployment_stats
from repro.modeler.api import Modeler
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan


class TestInspection:
    def test_stats_reflect_activity(self):
        lan = build_switched_lan(8, fanout=8)
        dep = deploy_lan(lan)
        dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 30.0)
        s = deployment_stats(dep)
        [coll] = s.collectors
        assert coll.queries_served >= 1
        assert coll.pdu_count > 0
        assert coll.monitors_ready == coll.monitors > 0
        assert coll.polls_done >= 5
        # stations = hosts + router iface (a single switch's own mgmt
        # MAC is a self entry, not a tracked station)
        assert s.bridge_stations["lan"] == 8 + 1
        assert s.modeler_queries == 1

    def test_report_renders(self):
        w = build_multisite_wan(
            [SiteSpec("a", access_bps=10 * MBPS, n_hosts=2),
             SiteSpec("b", access_bps=5 * MBPS, n_hosts=2)]
        )
        dep = deploy_wan(w)
        dep.modeler.flow_query(w.host("a", 0), w.host("b", 0))
        text = deployment_report(dep)
        assert "SNMP collectors" in text
        assert "benchmark collectors" in text
        assert "snmp-a" in text and "snmp-b" in text
        assert "MB injected" in text


class TestFigure2Shape:
    def test_two_masters_share_collectors(self):
        """Per the paper's Fig. 2: independent masters at the two
        application sites, one set of collectors underneath."""
        world = build_multisite_wan(
            [
                SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
                SiteSpec("eth", access_bps=8 * MBPS, n_hosts=3),
                SiteSpec("bbn", access_bps=5 * MBPS, n_hosts=3),
            ]
        )
        base = deploy_wan(world)

        def modeler_for(site):
            directory = CollectorDirectory()
            for reg in base.directory.registrations():
                directory.register(
                    reg.collector, [str(p) for p in reg.prefixes], reg.site,
                    remote=(reg.site != site),
                )
            for bench in base.benchmarks.values():
                directory.register_benchmark(bench)
            master = MasterCollector(
                f"master-{site}", world.net, directory, base.master.borders,
                RpcCostModel(),
            )
            return Modeler(master, world.net)

        cmu, eth = modeler_for("cmu"), modeler_for("eth")
        a1 = cmu.flow_query(world.host("cmu", 0), world.host("bbn", 0))
        a2 = eth.flow_query(world.host("eth", 0), world.host("bbn", 1))
        assert a1.available_bps == pytest.approx(5 * MBPS, rel=0.05)
        assert a2.available_bps == pytest.approx(5 * MBPS, rel=0.05)
        # the shared BBN collector served both masters
        assert base.snmp_collectors["bbn"].queries_served == 2
        # benchmark measurements were shared, not duplicated per master
        total_probes = sum(b.probes_run for b in base.benchmarks.values())
        assert total_probes <= 4
