"""Tests for auto_deploy and spec-file-driven deployments."""

import json

import pytest

from repro.common.units import MBPS
from repro.deploy import auto_deploy
from repro.netsim.builders import build_campus, build_switched_lan
from repro.netsim.spec import network_from_json, network_to_json
from repro.netsim.topology import Network


class TestAutoDeploy:
    def test_lan_auto(self):
        lan = build_switched_lan(8, fanout=8)
        dep = auto_deploy(lan.net)
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        assert ans.available_bps == pytest.approx(100 * MBPS, rel=0.02)
        # the switched subnet got a bridge collector
        assert dep.bridge_collectors

    def test_campus_auto(self):
        c = build_campus(2, 3)
        dep = auto_deploy(c.net)
        ans = dep.modeler.flow_query(c.host(0, 0), c.host(1, 1))
        assert ans.available_bps == pytest.approx(100 * MBPS, rel=0.02)
        coll = next(iter(dep.snmp_collectors.values()))
        assert len(coll.bridges) == 2  # one bridge collector per subnet

    def test_spec_roundtrip_deployable(self):
        lan = build_switched_lan(6, fanout=8)
        rebuilt = network_from_json(network_to_json(lan.net))
        dep = auto_deploy(rebuilt)
        h = sorted(h.name for h in rebuilt.hosts())
        ans = dep.modeler.flow_query(
            rebuilt.host(h[0]), rebuilt.host(h[-1])
        )
        assert ans.available_bps == pytest.approx(100 * MBPS, rel=0.02)

    def test_requires_router(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        ln = net.link(a, b, 1 * MBPS)
        net.assign_ip(ln.a, "10.0.0.1", "10.0.0.0/24")
        net.assign_ip(ln.b, "10.0.0.2", "10.0.0.0/24")
        net.freeze()
        with pytest.raises(ValueError):
            auto_deploy(net)


class TestCliSpecFile:
    def test_flow_from_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        lan = build_switched_lan(4, fanout=4)
        spec_file = tmp_path / "topo.json"
        spec_file.write_text(network_to_json(lan.net))
        assert main(["flow", str(spec_file), "h0", "h3"]) == 0
        out = capsys.readouterr().out
        assert "available : 100.00 Mbps" in out
