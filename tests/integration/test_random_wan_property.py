"""Property test: Remos answers match fluid reality on random WANs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MBPS
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan


@st.composite
def _wan_spec(draw):
    n_sites = draw(st.integers(2, 5))
    caps = [
        draw(st.floats(0.2, 50.0)) * MBPS  # access capacities, Mbps
        for _ in range(n_sites)
    ]
    src = draw(st.integers(0, n_sites - 1))
    dst = draw(st.integers(0, n_sites - 1).filter(lambda d: d != src))
    bg_demand = draw(st.floats(0.0, 10.0)) * MBPS
    return caps, src, dst, bg_demand


class TestRandomWan:
    @given(_wan_spec())
    @settings(max_examples=25, deadline=None)
    def test_flow_answer_matches_reality(self, spec):
        caps, src_i, dst_i, bg_demand = spec
        sites = [
            SiteSpec(f"s{i}", access_bps=cap, n_hosts=3)
            for i, cap in enumerate(caps)
        ]
        w = build_multisite_wan(sites)
        dep = deploy_wan(
            w,
            bench_config=BenchmarkConfig(probe_bytes=50_000, max_probe_s=10.0),
        )
        src, dst = f"s{src_i}", f"s{dst_i}"
        # background traffic in the opposite direction: must not affect
        # the measured forward bandwidth (full duplex links)
        if bg_demand > 0:
            w.net.flows.start_flow(
                w.host(dst, 1), w.host(src, 1), demand_bps=bg_demand
            )
            w.net.engine.run_until(w.net.now + 5.0)
        ans = dep.modeler.flow_query(w.host(src, 0), w.host(dst, 0))
        actual = w.net.flows.start_flow(w.host(src, 0), w.host(dst, 0))
        # prediction within 10% of ground truth, and never an
        # over-promise beyond measurement noise
        assert ans.available_bps == pytest.approx(actual.rate_bps, rel=0.1)
        assert ans.available_bps <= actual.rate_bps * 1.1
        # the answer is bottlenecked by the slower access link
        expected = min(caps[src_i], caps[dst_i])
        assert actual.rate_bps == pytest.approx(expected, rel=0.01)
