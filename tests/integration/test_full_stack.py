"""Full-stack integration: Remos answers vs. fluid ground truth.

The deepest invariant of the reproduction: when measurements are fresh,
what the Modeler *predicts* a flow will get must equal what the fluid
substrate *actually gives* a flow started right after the query —
discovery, counters, max-min math, and WAN stitching all have to agree
for that to hold.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import MBPS
from repro.deploy import deploy_lan, deploy_wan
from repro.netsim.builders import (
    SiteSpec,
    build_hub_lan,
    build_multisite_wan,
    build_switched_lan,
)


class TestPredictionMatchesReality:
    def test_lan_idle(self):
        lan = build_switched_lan(12, fanout=4)
        dep = deploy_lan(lan)
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[11])
        actual = lan.net.flows.start_flow(lan.hosts[0], lan.hosts[11])
        assert ans.available_bps == pytest.approx(actual.rate_bps, rel=0.02)

    def test_lan_with_background_load(self):
        lan = build_switched_lan(12, fanout=4)
        dep = deploy_lan(lan)
        lan.net.flows.start_flow(lan.hosts[1], lan.hosts[11], demand_bps=40 * MBPS)
        lan.net.engine.run_until(10.0)
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[11])
        actual = lan.net.flows.start_flow(lan.hosts[0], lan.hosts[11])
        # measured residual vs max-min reality: the new greedy flow
        # actually pushes the 40 Mbps flow's share down on the shared
        # host link, so prediction (residual) <= actual but close on
        # the bottleneck structure
        assert ans.available_bps == pytest.approx(60 * MBPS, rel=0.05)
        assert actual.rate_bps >= ans.available_bps * 0.99

    def test_hub_lan_shared_medium(self):
        hl = build_hub_lan(n_hub_hosts=3, n_switch_hosts=1)
        dep = deploy_lan(hl)
        ans = dep.modeler.flow_query(hl.hosts[0], hl.hosts[-1])
        actual = hl.net.flows.start_flow(hl.hosts[0], hl.hosts[-1])
        assert ans.available_bps == pytest.approx(actual.rate_bps, rel=0.02)

    def test_wan_cross_site(self):
        w = build_multisite_wan(
            [
                SiteSpec("a", access_bps=7 * MBPS, n_hosts=3),
                SiteSpec("b", access_bps=40 * MBPS, n_hosts=3),
            ]
        )
        dep = deploy_wan(w)
        ans = dep.modeler.flow_query(w.host("a", 0), w.host("b", 0))
        actual = w.net.flows.start_flow(w.host("a", 0), w.host("b", 0))
        assert ans.available_bps == pytest.approx(actual.rate_bps, rel=0.05)

    @given(
        st.integers(2, 30),
        st.integers(0, 11),
        st.integers(0, 11),
    )
    @settings(max_examples=25, deadline=None)
    def test_lan_any_pair_property(self, demand_mbps, i, j):
        """For any background demand and any host pair, prediction is
        within 5% of reality on a freshly deployed LAN."""
        if i == j:
            return
        lan = build_switched_lan(12, fanout=4)
        dep = deploy_lan(lan)
        other = (j + 1) % 12
        if other != i and other != j:
            lan.net.flows.start_flow(
                lan.hosts[j], lan.hosts[other], demand_bps=demand_mbps * MBPS
            )
        lan.net.engine.run_until(8.0)
        ans = dep.modeler.flow_query(lan.hosts[i], lan.hosts[j])
        actual = lan.net.flows.start_flow(lan.hosts[i], lan.hosts[j])
        assert actual.rate_bps >= ans.available_bps * 0.95


class TestTopologyFidelity:
    def test_raw_topology_matches_ground_truth_structure(self):
        """Every device on the true path appears in the unsimplified
        discovered topology, in order."""
        from repro.netsim.paths import compute_path

        lan = build_switched_lan(16, fanout=4)
        dep = deploy_lan(lan)
        h0, h15 = lan.hosts[0], lan.hosts[15]
        g = dep.modeler.topology_query([h0, h15], simplified=False)
        discovered = g.path(str(h0.ip), str(h15.ip))
        true_channels = compute_path(lan.net, h0, h15)
        true_devices = [str(h0.ip)] + [
            c.dst.device.name for c in true_channels[:-1]
        ] + [str(h15.ip)]
        assert discovered == true_devices

    def test_capacities_match_ifspeed(self):
        lan = build_switched_lan(8, fanout=8)
        dep = deploy_lan(lan)
        g = dep.modeler.topology_query([lan.hosts[0], lan.hosts[7]], simplified=False)
        for e in g.edges():
            if math.isfinite(e.capacity_bps):
                assert e.capacity_bps in (100 * MBPS, 1000 * MBPS, 155 * MBPS)

    def test_monitoring_keeps_answers_current(self):
        """Start load *after* discovery; periodic polling must fold it
        into later answers without rediscovery."""
        lan = build_switched_lan(8, fanout=8)
        dep = deploy_lan(lan)
        dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        dep.start_monitoring()
        lan.net.flows.start_flow(lan.hosts[0], lan.hosts[7], demand_bps=25 * MBPS)
        lan.net.engine.run_until(lan.net.now + 30.0)
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        assert ans.available_bps == pytest.approx(75 * MBPS, rel=0.05)


class TestDeploymentShapes:
    def test_deploy_lan_handles_hub_lan(self):
        hl = build_hub_lan()
        dep = deploy_lan(hl)
        assert "lan" in dep.bridge_collectors
        ans = dep.modeler.flow_query(hl.hosts[0], hl.hosts[1])
        assert ans.available_bps > 0

    def test_wan_deployment_full_mesh_benchmarks(self):
        w = build_multisite_wan(
            [SiteSpec(s, access_bps=10 * MBPS, n_hosts=2) for s in ("a", "b", "c")]
        )
        dep = deploy_wan(w)
        for site, bench in dep.benchmarks.items():
            assert set(bench.peers) == {"a", "b", "c"} - {site}

    def test_stop_cancels_all_timers(self):
        w = build_multisite_wan(
            [SiteSpec(s, access_bps=10 * MBPS, n_hosts=2) for s in ("a", "b")]
        )
        dep = deploy_wan(w)
        dep.start_monitoring()
        dep.start_benchmarks()
        w.net.engine.run_until(w.net.now + 120.0)
        dep.stop()
        pending_before = w.net.engine.pending()
        w.net.engine.run_until(w.net.now + 600.0)
        # no periodic activity left: probes and polls stopped
        assert all(b._timer is None for b in dep.benchmarks.values())
        assert all(c._poll_timer is None for c in dep.snmp_collectors.values())
