"""Over-the-wire answers are canonically identical to in-process calls.

The acceptance contract of the service plane: for the same world state,
a query through the service (in-process dispatch or real HTTP) returns
*the same Answer* as calling :class:`RemosSession` directly — same
status, same bandwidths, same provenance — compared on canonical JSON
bytes, not approximate fields.  Because a query advances the sim clock
(RPC latencies), "same world state" means *twin worlds*: two
deployments built from identical specs, one queried in-process, one
through the service, step for step.

The degraded cases matter most — STALE/PARTIAL answers under a crashed
collector must survive serialization with their site_status breakdown
and grown data_age_s intact.
"""

import asyncio

from repro import faults
from repro.common.status import QueryStatus
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.service import DirectClient, RemosService, ServiceConfig
from repro.service.http import start_server
from repro.service.client import HttpServiceClient
from repro.service.wire import canonical_json


def build_world():
    """One deterministic 3-site WAN, warmed so measurements exist."""
    w = build_multisite_wan(
        [
            SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("eth", access_bps=60 * MBPS, n_hosts=3),
            SiteSpec("coi", access_bps=0.3 * MBPS, n_hosts=3),
        ]
    )
    dep = deploy_wan(w)
    w.net.engine.run_until(w.net.now + 30.0)
    return w, dep


def hosts(w):
    return {
        "src": str(w.host("cmu", 0).ip),
        "dst": str(w.host("eth", 0).ip),
        "far": str(w.host("coi", 0).ip),
    }


def wire_bytes(ans) -> str:
    if isinstance(ans, list):
        return canonical_json([a.to_dict() for a in ans])
    return canonical_json(ans.to_dict())


def via_service(coro_fn):
    """Run a client interaction against a fresh twin-world service.

    The twin world is built *before* the event loop starts: deploying
    and warming a WAN is seconds of synchronous sim work, and doing it
    inside a coroutine would block the loop — exactly what the asyncio
    debug smoke (``REPRO_ASYNCIO_DEBUG=1``, see conftest) exists to
    catch.  Only the client interaction itself runs under the loop.
    """
    w, dep = build_world()
    service = RemosService.from_deployment(dep, ServiceConfig())

    async def run():
        return await coro_fn(DirectClient(service), w)

    return asyncio.run(run())


class TestHealthyEquivalence:
    def test_flow_info(self):
        w, dep = build_world()
        h = hosts(w)
        direct = dep.session().flow_info(h["src"], h["dst"])

        remote = via_service(
            lambda c, w2: c.flow_info(hosts(w2)["src"], hosts(w2)["dst"])
        )
        assert remote.ok
        assert wire_bytes(remote) == wire_bytes(direct)

    def test_flow_info_many(self):
        w, dep = build_world()
        h = hosts(w)
        pairs = [(h["src"], h["dst"]), (h["dst"], h["far"])]
        direct = dep.session().flow_info_many(pairs)

        def pairs_of(w2):
            h2 = hosts(w2)
            return [(h2["src"], h2["dst"]), (h2["dst"], h2["far"])]

        remote = via_service(lambda c, w2: c.flow_info_many(pairs_of(w2)))
        assert wire_bytes(remote) == wire_bytes(direct)

    def test_topology(self):
        w, dep = build_world()
        h = hosts(w)
        direct = dep.session().topology([h["src"], h["dst"], h["far"]])

        remote = via_service(
            lambda c, w2: c.topology(list(hosts(w2).values()))
        )
        assert remote.status == direct.status
        assert wire_bytes(remote) == wire_bytes(direct)

    def test_node_info(self):
        w, dep = build_world()
        h = hosts(w)
        direct = dep.session().node_info([h["src"], h["far"]])

        remote = via_service(
            lambda c, w2: c.node_info([hosts(w2)["src"], hosts(w2)["far"]])
        )
        assert wire_bytes(remote) == wire_bytes(direct)


class TestDegradedEquivalence:
    """STALE/PARTIAL answers cross the wire unchanged."""

    PLAN = faults.FaultPlan(seed=7)

    def degrade(self, w, dep):
        """Warm the Master's LKG, then crash the eth site's collector."""
        faults.install(dep, self.PLAN)
        h = hosts(w)
        warm = dep.session().topology([h["src"], h["dst"]])
        assert warm.status == QueryStatus.OK
        faults.crash_collector(dep.snmp_collectors["eth"], 300.0)

    def test_stale_flow_crosses_the_wire(self):
        w, dep = build_world()
        self.degrade(w, dep)
        h = hosts(w)
        direct = dep.session().flow_info(h["src"], h["dst"])
        assert direct.degraded  # the crashed site forces LKG data

        # twin world, same degradation, queried through the service
        # (world built and degraded before the loop starts)
        w2, dep2 = build_world()
        self.degrade(w2, dep2)
        service = RemosService.from_deployment(dep2, ServiceConfig())
        h2 = hosts(w2)

        async def twin():
            return await DirectClient(service).flow_info(h2["src"], h2["dst"])

        remote = asyncio.run(twin())
        assert remote.status == direct.status
        assert remote.status in (QueryStatus.STALE, QueryStatus.PARTIAL)
        assert wire_bytes(remote) == wire_bytes(direct)

    def test_degraded_topology_site_status_survives(self):
        w, dep = build_world()
        self.degrade(w, dep)
        h = hosts(w)
        direct = dep.session().topology([h["src"], h["dst"]])
        assert direct.degraded

        w2, dep2 = build_world()
        self.degrade(w2, dep2)
        service = RemosService.from_deployment(dep2, ServiceConfig())
        h2 = hosts(w2)

        async def twin():
            return await DirectClient(service).topology([h2["src"], h2["dst"]])

        remote = asyncio.run(twin())
        assert remote.site_status == direct.site_status
        assert wire_bytes(remote) == wire_bytes(direct)


class TestHttpEquivalence:
    """The same bytes arrive over a real TCP connection."""

    def test_flow_info_over_http(self):
        w, dep = build_world()
        h = hosts(w)
        direct = dep.session().flow_info(h["src"], h["dst"])

        w2, dep2 = build_world()
        service = RemosService.from_deployment(dep2, ServiceConfig())

        async def over_http():
            server = await start_server(service, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with HttpServiceClient("127.0.0.1", port) as client:
                    h2 = hosts(w2)
                    return await client.flow_info(h2["src"], h2["dst"])
            finally:
                server.close()
                await server.wait_closed()

        remote = asyncio.run(over_http())
        assert remote.ok
        assert wire_bytes(remote) == wire_bytes(direct)
