"""Wire schema v1: lossless round-trip, byte-identical re-serialization.

The service's equivalence guarantee ("the wire returns the same Answer
as an in-process call") rests on two properties of the
``to_dict``/``from_dict`` family, proven here over generated answers:

* **lossless** — ``from_dict(to_dict(a))`` reconstructs an equal
  answer (same dataclass, same field values, tuples stay tuples);
* **canonical** — serializing an answer, reconstructing it, and
  serializing again yields *byte-identical* JSON under
  ``canonical_json``, so responses can be compared and cached as raw
  bytes.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.status import QueryStatus, SiteStatus
from repro.modeler.api import FlowAnswer, NodeAnswer, TopologyAnswer, Answer
from repro.modeler.graph import (
    CLOUD,
    HOST,
    ROUTER,
    SWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)
from repro.service.wire import canonical_json

# -- strategies --------------------------------------------------------

names = st.text(alphabet="abcdefgh0123", min_size=1, max_size=8)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
nonneg = st.floats(min_value=0.0, allow_nan=False, allow_infinity=False, width=64)
capacity = st.one_of(st.just(math.inf), nonneg)
statuses = st.sampled_from(list(QueryStatus))
opt_float = st.one_of(st.none(), finite)
trace_ids = st.one_of(st.none(), st.from_regex(r"t[0-9]{4}", fullmatch=True))
provenances = st.lists(names, max_size=4, unique=True).map(tuple)


site_statuses = st.builds(
    SiteStatus,
    site=names,
    status=statuses,
    detail=st.text(max_size=20),
    data_age_s=nonneg,
    attempts=st.integers(min_value=1, max_value=5),
)

flow_answers = st.builds(
    FlowAnswer,
    src=names,
    dst=names,
    available_bps=nonneg,
    bottleneck_bps=nonneg,
    capacity_bps=capacity,
    latency_s=nonneg,
    jitter_s=nonneg,
    path=st.lists(names, max_size=5).map(tuple),
    predicted_bps=opt_float,
    predicted_var=opt_float,
    status=statuses,
    data_age_s=nonneg,
    provenance=provenances,
    trace_id=trace_ids,
)

node_answers = st.builds(
    NodeAnswer,
    ip=names,
    load=opt_float,
    predicted_load=opt_float,
    predicted_var=opt_float,
    status=statuses,
    data_age_s=nonneg,
    provenance=provenances,
    trace_id=trace_ids,
)


@st.composite
def topology_graphs(draw):
    graph = TopologyGraph()
    node_ids = draw(st.lists(names, min_size=1, max_size=6, unique=True))
    kinds = st.sampled_from([HOST, ROUTER, SWITCH, CLOUD])
    for nid in node_ids:
        ips = tuple(draw(st.lists(names, max_size=2, unique=True)))
        graph.add_node(TopoNode(nid, draw(kinds), ips))
    pairs = [
        (a, b) for i, a in enumerate(node_ids) for b in node_ids[i + 1 :]
    ]
    for a, b in draw(st.lists(st.sampled_from(pairs), max_size=6, unique=True)) if pairs else []:
        graph.add_edge(
            TopoEdge(
                a,
                b,
                capacity_bps=draw(capacity),
                util_ab_bps=draw(nonneg),
                util_ba_bps=draw(nonneg),
                latency_s=draw(nonneg),
                jitter_s=draw(nonneg),
            )
        )
    return graph


topology_answers = st.builds(
    TopologyAnswer,
    graph=topology_graphs(),
    unresolved=st.lists(names, max_size=3, unique=True).map(tuple),
    site_status=st.dictionaries(names, site_statuses, max_size=3),
    status=statuses,
    data_age_s=nonneg,
    provenance=provenances,
    trace_id=trace_ids,
)

answers = st.one_of(flow_answers, node_answers, topology_answers)


# -- the two load-bearing properties -----------------------------------


class TestLosslessRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(answers)
    def test_from_dict_inverts_to_dict(self, ans):
        back = Answer.from_dict(ans.to_dict())
        assert type(back) is type(ans)
        if isinstance(ans, TopologyAnswer):
            # graphs compare by content, not identity
            assert back.graph.to_dict() == ans.graph.to_dict()
            assert back.unresolved == ans.unresolved
            assert back.site_status == ans.site_status
            assert (back.status, back.data_age_s) == (ans.status, ans.data_age_s)
            assert (back.provenance, back.trace_id) == (ans.provenance, ans.trace_id)
        else:
            assert back == ans

    @settings(max_examples=150, deadline=None)
    @given(answers)
    def test_tuples_stay_tuples(self, ans):
        back = Answer.from_dict(ans.to_dict())
        assert isinstance(back.provenance, tuple)
        if isinstance(back, FlowAnswer):
            assert isinstance(back.path, tuple)
        if isinstance(back, TopologyAnswer):
            assert isinstance(back.unresolved, tuple)


class TestByteIdenticalReserialization:
    @settings(max_examples=150, deadline=None)
    @given(answers)
    def test_canonical_bytes_survive_round_trip(self, ans):
        first = canonical_json(ans.to_dict())
        again = canonical_json(Answer.from_dict(ans.to_dict()).to_dict())
        assert first == again

    @settings(max_examples=50, deadline=None)
    @given(answers)
    def test_serialization_is_deterministic(self, ans):
        assert canonical_json(ans.to_dict()) == canonical_json(ans.to_dict())


class TestScalarWireForms:
    @given(statuses)
    def test_query_status_round_trips(self, status):
        assert QueryStatus.from_dict(status.to_dict()) is status

    @settings(deadline=None)
    @given(site_statuses)
    def test_site_status_round_trips(self, ss):
        assert SiteStatus.from_dict(ss.to_dict()) == ss

    @settings(deadline=None)
    @given(topology_graphs())
    def test_graph_round_trips_bytes(self, graph):
        d = graph.to_dict()
        assert TopologyGraph.from_dict(d).to_dict() == d
        assert canonical_json(TopologyGraph.from_dict(d).to_dict()) == canonical_json(d)


class TestSchemaDiscipline:
    def test_unknown_schema_rejected(self):
        d = FlowAnswer(src="a", dst="b", available_bps=1.0, bottleneck_bps=1.0,
                       capacity_bps=1.0, latency_s=0.0, jitter_s=0.0, path=()).to_dict()
        d["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            Answer.from_dict(d)

    def test_unknown_kind_rejected(self):
        d = NodeAnswer(ip="a", load=None).to_dict()
        d["kind"] = "martian"
        with pytest.raises(ValueError, match="kind"):
            Answer.from_dict(d)

    def test_kind_discriminators_are_stable(self):
        # wire compatibility: these strings are the v1 contract
        assert FlowAnswer.KIND == "flow"
        assert NodeAnswer.KIND == "node"
        assert TopologyAnswer.KIND == "topology"
        assert Answer.from_dict(NodeAnswer(ip="x", load=2.5).to_dict()).load == 2.5

    def test_infinite_capacity_survives_the_wire(self):
        import json

        ans = FlowAnswer(src="a", dst="b", available_bps=1.0, bottleneck_bps=1.0,
                         capacity_bps=math.inf, latency_s=0.0, jitter_s=0.0, path=())
        over_wire = json.loads(canonical_json(ans.to_dict()))
        assert Answer.from_dict(over_wire).capacity_bps == math.inf
