"""Subscription semantics: deterministic delivery, shed-to-STALE.

Two contracts from the issue:

* long-poll updates arrive in a *deterministic* order under the sim
  clock — the FlowWatcher sweeps watched pairs in sorted order and the
  hub stamps a global sequence, so twin worlds produce byte-identical
  event streams;
* under injected overload, query requests are shed to the last-known-
  good answer served STALE — never queued until timeout, never FAILED
  while an LKG exists.
"""

import asyncio

import pytest

from repro.common.status import QueryStatus
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim.builders import SiteSpec, build_multisite_wan
from repro.service import DirectClient, RemosService, ServiceConfig
from repro.service.client import ServiceError
from repro.service.subs import FlowWatcher, SubscriptionHub, flow_channel
from repro.service.wire import canonical_json


def build_world():
    w = build_multisite_wan(
        [
            SiteSpec("aaa", access_bps=10 * MBPS, n_hosts=2),
            SiteSpec("bbb", access_bps=20 * MBPS, n_hosts=2),
        ]
    )
    dep = deploy_wan(w)
    w.net.engine.run_until(w.net.now + 30.0)
    return w, dep


def watched_pairs(w):
    a0, a1 = w.host("aaa", 0), w.host("aaa", 1)
    b0, b1 = w.host("bbb", 0), w.host("bbb", 1)
    return [
        (str(a0.ip), str(b0.ip)),
        (str(a1.ip), str(b1.ip)),
        (str(b0.ip), str(a1.ip)),
    ]


def run_watch_scenario(w, dep):
    """Watch three pairs, perturb the network between ticks."""
    hub = SubscriptionHub()
    watcher = FlowWatcher(dep.session(), epsilon_bps=1.0)
    for src, dst in watched_pairs(w):
        watcher.watch(src, dst)

    events = []
    watcher.tick(hub)  # initial sweep: every pair publishes once
    events.extend(hub.events_since(None, 0))

    # competing traffic changes the answers; two poll cycles must
    # elapse before the collectors' counter deltas show it
    f = w.net.flows.start_flow(w.host("aaa", 0), w.host("bbb", 0), demand_bps=8 * MBPS)
    w.net.engine.run_until(w.net.now + 120.0)
    before = hub.seq
    watcher.tick(hub)
    events.extend(hub.events_since(None, before))

    w.net.flows.stop_flow(f)
    w.net.engine.run_until(w.net.now + 120.0)
    before = hub.seq
    watcher.tick(hub)
    events.extend(hub.events_since(None, before))
    return events


class TestDeterministicDelivery:
    def test_initial_sweep_is_sorted_pair_order(self):
        w, dep = build_world()
        hub = SubscriptionHub()
        watcher = FlowWatcher(dep.session())
        pairs = watched_pairs(w)
        for src, dst in pairs:
            watcher.watch(src, dst)
        published = watcher.tick(hub)
        assert published == len(pairs)
        got = [e["channel"] for e in hub.events_since(None, 0)]
        assert got == [flow_channel(s, d) for s, d in sorted(pairs)]
        assert [e["seq"] for e in hub.events_since(None, 0)] == [1, 2, 3]

    def test_twin_worlds_emit_identical_streams(self):
        def stream():
            w, dep = build_world()
            return canonical_json(run_watch_scenario(w, dep))

        assert stream() == stream()

    def test_quiet_network_publishes_nothing(self):
        w, dep = build_world()
        hub = SubscriptionHub()
        watcher = FlowWatcher(dep.session(), epsilon_bps=1.0)
        for src, dst in watched_pairs(w):
            watcher.watch(src, dst)
        watcher.tick(hub)
        # nothing changed: the second sweep is silent
        assert watcher.tick(hub) == 0

    def test_perturbation_reaches_subscribers(self):
        w, dep = build_world()
        events = run_watch_scenario(w, dep)
        # at least one pair saw its bandwidth move when the flow started
        changed = [e for e in events if e["seq"] > 3]
        assert changed
        assert all(e["payload"]["kind"] == "flow" for e in events)

    def test_ring_buffer_reports_lost_resume_points(self):
        hub = SubscriptionHub(capacity=4)
        for i in range(10):
            hub.publish("a->b", {"n": i})
        assert hub.oldest_seq == 7
        assert hub.resume_lost(2)
        assert not hub.resume_lost(hub.seq)
        assert not hub.resume_lost(0)  # fresh subscriber: no gap


class TestLongPollEndpoint:
    def test_subscribe_round_trip(self):
        async def go():
            w, dep = build_world()
            service = RemosService.from_deployment(dep, ServiceConfig())
            client = DirectClient(service)
            pairs = watched_pairs(w)[:2]
            first = await client.subscribe(pairs)  # registers the watch
            assert first["events"] == [] and first["seq"] == 0
            service.tick_subscriptions()
            second = await client.subscribe(pairs, since=first["seq"])
            return second

        second = asyncio.run(go())
        assert len(second["events"]) == 2
        assert second["resume_lost"] is False
        statuses = {e["payload"]["status"] for e in second["events"]}
        assert statuses == {"ok"}

    def test_long_poll_parks_until_tick(self):
        async def go():
            w, dep = build_world()
            service = RemosService.from_deployment(dep, ServiceConfig())
            client = DirectClient(service)
            pairs = watched_pairs(w)[:1]
            await client.subscribe(pairs)  # register

            async def tick_later():
                await asyncio.sleep(0.02)
                service.tick_subscriptions()

            task = asyncio.get_running_loop().create_task(tick_later())
            result = await client.subscribe(pairs, since=0, timeout_s=5.0)
            await task
            return result

        result = asyncio.run(go())
        assert len(result["events"]) == 1


class TestShedToStale:
    def make_overloaded(self):
        """A service with every backend slot occupied and a warm LKG."""
        w, dep = build_world()
        service = RemosService.from_deployment(dep, ServiceConfig(max_inflight=2))
        return w, service

    def test_overload_serves_stale_lkg(self):
        async def go():
            w, service = self.make_overloaded()
            client = DirectClient(service)
            pair = watched_pairs(w)[0]
            live = await client.flow_info(*pair)  # warm the LKG
            assert live.ok
            # deterministically occupy every backend slot
            while service.admission.try_admit():
                pass
            shed, served = await client.served(
                "flow_info", {"src": pair[0], "dst": pair[1]}
            )
            return live, shed, served, dict(service.stats)

        live, shed, served, stats = asyncio.run(go())
        assert served == "shed_lkg"
        assert shed.status == QueryStatus.STALE
        assert shed.available_bps == live.available_bps  # same data, older
        assert shed.data_age_s >= live.data_age_s
        assert stats["shed_lkg"] == 1
        assert stats["overloaded"] == 0  # nobody saw an error

    def test_overload_without_lkg_is_an_error_not_a_queue(self):
        async def go():
            w, service = self.make_overloaded()
            client = DirectClient(service)
            pair = watched_pairs(w)[0]
            while service.admission.try_admit():
                pass
            with pytest.raises(ServiceError) as exc:
                await client.flow_info(*pair)
            return exc.value, dict(service.stats)

        err, stats = asyncio.run(go())
        assert err.code == "overloaded"
        assert err.retry_after_s > 0  # reject-with-hint, not queue
        assert stats["overloaded"] == 1

    def test_recovery_after_release(self):
        async def go():
            w, service = self.make_overloaded()
            client = DirectClient(service)
            pair = watched_pairs(w)[0]
            while service.admission.try_admit():
                pass
            service.admission.release()
            ans, served = await client.served(
                "flow_info", {"src": pair[0], "dst": pair[1]}
            )
            return ans, served

        ans, served = asyncio.run(go())
        assert served == "live" and ans.ok
