"""The service hardening primitives, driven by a deterministic clock.

Each primitive is tested in isolation with a
:class:`~repro.obs.timebase.FixedTimebase` standing in for the wall
clock, so refill rates, breaker reset windows, and LKG shelf ages are
exact — no sleeps, no flakiness.
"""

import asyncio

import pytest

from repro.obs.timebase import FixedTimebase
from repro.service.admission import AdmissionController, LastKnownGoodStore
from repro.service.breaker import CircuitBreaker
from repro.service.ratelimit import TenantRateLimiter, TokenBucket
from repro.service.retrypolicy import RetryBudget, call_with_retry
from repro.service.wire import WireError


@pytest.fixture
def clock():
    return FixedTimebase()


class TestTokenBucket:
    def test_burst_then_deny(self, clock):
        b = TokenBucket(rate=1.0, burst=3.0, clock=clock.now)
        assert [b.try_take() for _ in range(4)] == [True, True, True, False]

    def test_refill_at_rate(self, clock):
        b = TokenBucket(rate=2.0, burst=2.0, clock=clock.now)
        b.try_take(2.0)
        assert not b.try_take()
        clock.advance(0.5)  # 1 token back
        assert b.try_take()
        assert not b.try_take()

    def test_retry_after_names_the_deficit(self, clock):
        b = TokenBucket(rate=4.0, burst=1.0, clock=clock.now)
        b.try_take()
        assert b.retry_after_s() == pytest.approx(0.25)

    def test_never_exceeds_burst(self, clock):
        b = TokenBucket(rate=100.0, burst=5.0, clock=clock.now)
        clock.advance(60.0)
        assert b.tokens == pytest.approx(5.0)


class TestTenantRateLimiter:
    def test_tenants_are_isolated(self, clock):
        rl = TenantRateLimiter(rate=1.0, burst=1.0, clock=clock.now)
        rl.admit("alice")
        with pytest.raises(WireError) as exc:
            rl.admit("alice")
        assert exc.value.code == "rate_limited"
        assert exc.value.retry_after_s > 0
        rl.admit("bob")  # unaffected by alice's exhaustion

    def test_anonymous_flood_shares_one_bucket(self, clock):
        rl = TenantRateLimiter(rate=1.0, burst=2.0, clock=clock.now)
        rl.admit("")
        rl.admit("anonymous")
        with pytest.raises(WireError):
            rl.admit("")

    def test_tenant_cardinality_capped(self, clock):
        rl = TenantRateLimiter(rate=1.0, burst=1.0, clock=clock.now, max_tenants=2)
        rl.admit("t1")
        rl.admit("t2")
        rl.admit("overflow-a")  # lands in the anonymous bucket
        with pytest.raises(WireError):
            rl.admit("overflow-b")  # same shared bucket: empty


class TestCircuitBreaker:
    def make(self, clock, **kw):
        kw.setdefault("window", 10)
        kw.setdefault("failure_threshold", 0.5)
        kw.setdefault("min_calls", 4)
        kw.setdefault("reset_s", 5.0)
        return CircuitBreaker(clock=clock.now, **kw)

    def test_trips_past_threshold(self, clock):
        br = self.make(clock)
        for ok in (True, False, False, False):
            br.before_call()
            br.record(ok)
        assert br.state == "open"
        with pytest.raises(WireError) as exc:
            br.before_call()
        assert exc.value.code == "breaker_open"

    def test_stays_closed_below_min_calls(self, clock):
        br = self.make(clock)
        for _ in range(3):
            br.record(False)
        assert br.state == "closed"

    def test_half_open_probe_closes_on_success(self, clock):
        br = self.make(clock)
        for _ in range(4):
            br.record(False)
        assert br.state == "open"
        clock.advance(5.0)
        assert br.state == "half_open"
        br.before_call()
        br.record(True)
        assert br.state == "closed"

    def test_half_open_failure_reopens(self, clock):
        br = self.make(clock)
        for _ in range(4):
            br.record(False)
        clock.advance(5.0)
        br.before_call()
        br.record(False)
        assert br.state == "open"
        with pytest.raises(WireError):
            br.before_call()

    def test_half_open_quota_bounds_probes(self, clock):
        br = self.make(clock, half_open_probes=1)
        for _ in range(4):
            br.record(False)
        clock.advance(5.0)
        br.before_call()  # the one probe
        with pytest.raises(WireError):
            br.before_call()


class TestRetryBudget:
    def test_budget_bounds_total_retries(self):
        budget = RetryBudget(deposit_ratio=0.0, max_tokens=2.0, max_attempts=10)
        calls = 0

        def flaky():
            nonlocal calls
            calls += 1
            raise RuntimeError("down")

        with pytest.raises(RuntimeError):
            call_with_retry(flaky, budget)
        # 1 original + 2 budgeted retries, then the budget is dry
        assert calls == 3
        calls = 0
        with pytest.raises(RuntimeError):
            call_with_retry(flaky, budget)
        assert calls == 1  # no tokens left: fail fast, no retry storm

    def test_deposits_refund_the_budget(self):
        budget = RetryBudget(deposit_ratio=0.5, max_tokens=10.0, max_attempts=2)
        budget._tokens = 0.0
        for _ in range(2):  # two successful requests deposit 1.0 total
            call_with_retry(lambda: "ok", budget)
        assert budget.tokens == pytest.approx(1.0)

    def test_success_after_retry(self):
        budget = RetryBudget(deposit_ratio=0.0, max_tokens=5.0, max_attempts=3)
        attempts = []

        def once_flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("transient")
            return "ok"

        assert call_with_retry(once_flaky, budget) == "ok"
        assert len(attempts) == 2

    def test_wire_errors_never_retried(self):
        budget = RetryBudget(deposit_ratio=1.0, max_tokens=10.0, max_attempts=5)
        calls = 0

        def rejected():
            nonlocal calls
            calls += 1
            raise WireError("rate_limited", "no")

        with pytest.raises(WireError):
            call_with_retry(rejected, budget)
        assert calls == 1


class TestLastKnownGoodStore:
    def test_serves_stale_with_grown_age(self, clock):
        store = LastKnownGoodStore(clock=clock.now)
        store.store("k", {"status": "ok", "data_age_s": 2.0, "provenance": ["s1"]})
        clock.advance(7.0)
        shed = store.serve_stale("k")
        assert shed["status"] == "stale"
        assert shed["data_age_s"] == pytest.approx(9.0)

    def test_degraded_entries_keep_their_status(self, clock):
        store = LastKnownGoodStore(clock=clock.now)
        store.store("k", {"status": "partial", "data_age_s": 0.0, "provenance": []})
        assert store.serve_stale("k")["status"] == "partial"

    def test_failed_answers_never_stored(self, clock):
        store = LastKnownGoodStore(clock=clock.now)
        assert not store.store("k", [{"status": "ok"}, {"status": "failed"}])
        assert store.serve_stale("k") is None

    def test_lru_eviction(self, clock):
        store = LastKnownGoodStore(max_entries=2, clock=clock.now)
        store.store("a", {"status": "ok"})
        store.store("b", {"status": "ok"})
        store.serve_stale("a")  # refresh a
        store.store("c", {"status": "ok"})  # evicts b
        assert store.serve_stale("b") is None
        assert store.serve_stale("a") is not None

    def test_site_scoped_invalidation(self, clock):
        store = LastKnownGoodStore(clock=clock.now)
        store.store("a", {"status": "ok", "provenance": ["s1", "s2"]})
        store.store("b", [{"status": "ok", "provenance": ["s3"]}])
        assert store.invalidate(["s2"]) == 1
        assert store.serve_stale("a") is None
        assert store.serve_stale("b") is not None
        assert store.invalidate(None) == 1

    def test_store_isolates_from_caller_mutation(self, clock):
        store = LastKnownGoodStore(clock=clock.now)
        payload = {"status": "ok", "data_age_s": 0.0}
        store.store("k", payload)
        shed = store.serve_stale("k")
        shed["data_age_s"] = 999.0
        assert store.serve_stale("k")["data_age_s"] == pytest.approx(0.0)


class TestAdmissionController:
    def test_admit_until_full_then_shed(self, clock):
        adm = AdmissionController(max_inflight=2)
        store = LastKnownGoodStore(clock=clock.now)
        assert adm.try_admit() and adm.try_admit()
        assert not adm.try_admit()
        with pytest.raises(WireError) as exc:
            adm.shed(store, "k")  # no LKG yet
        assert exc.value.code == "overloaded"
        store.store("k", {"status": "ok", "data_age_s": 0.0})
        assert adm.shed(store, "k")["status"] == "stale"
        adm.release()
        assert adm.try_admit()

    def test_release_never_goes_negative(self):
        adm = AdmissionController(max_inflight=1)
        adm.release()
        assert adm.inflight == 0
        assert adm.try_admit()


class TestSubscriptionHubWaiting:
    """Long-poll mechanics that need a live event loop."""

    def test_wait_returns_immediately_when_events_exist(self):
        from repro.service.subs import SubscriptionHub

        async def run():
            hub = SubscriptionHub()
            hub.publish("a->b", {"n": 1})
            return await hub.wait(["a->b"], since=0, timeout_s=5.0)

        events = asyncio.run(run())
        assert [e["seq"] for e in events] == [1]

    def test_wait_wakes_on_publish(self):
        from repro.service.subs import SubscriptionHub

        async def run():
            hub = SubscriptionHub()

            async def publish_later():
                await asyncio.sleep(0.01)
                hub.publish("a->b", {"n": 1})

            task = asyncio.get_running_loop().create_task(publish_later())
            events = await hub.wait(["a->b"], since=0, timeout_s=5.0)
            await task
            return events

        events = asyncio.run(run())
        assert len(events) == 1 and events[0]["channel"] == "a->b"

    def test_wait_times_out_empty(self):
        from repro.service.subs import SubscriptionHub

        async def run():
            hub = SubscriptionHub()
            return await hub.wait(["a->b"], since=0, timeout_s=0.01)

        assert asyncio.run(run()) == []

    def test_unrelated_channels_do_not_wake(self):
        from repro.service.subs import SubscriptionHub

        async def run():
            hub = SubscriptionHub()
            hub.publish("x->y", {"n": 1})
            return await hub.wait(["a->b"], since=0, timeout_s=0.01)

        assert asyncio.run(run()) == []
