"""The HTTP edge: routing, error mapping, keep-alive, tenancy.

Boots the real asyncio server on an ephemeral port against a small
deployed world and speaks to it over TCP — both through
:class:`HttpServiceClient` and through hand-written raw requests for
the malformed cases a well-behaved client never sends.
"""

import asyncio
import json

import pytest

from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan
from repro.service import RemosService, ServiceConfig
from repro.service.client import HttpServiceClient, ServiceError
from repro.service.http import start_server


def make_service(config=None):
    lan = build_switched_lan(8, fanout=4)
    dep = deploy_lan(lan)
    lan.net.engine.run_until(lan.net.now + 10.0)
    hosts = [str(h.ip) for h in lan.hosts]
    return RemosService.from_deployment(dep, config or ServiceConfig()), hosts


def with_server(coro_fn, config=None):
    """Run ``coro_fn(port, hosts, service)`` against a live server."""

    async def run():
        service, hosts = make_service(config)
        server = await start_server(service, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await coro_fn(port, hosts, service)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(run())


async def raw_request(port: int, payload: bytes) -> tuple[int, dict]:
    """Send raw bytes, read one response; returns (status, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = json.loads(await reader.readexactly(length)) if length else {}
        return status, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionResetError:
            pass


def post(path: str, body: dict) -> bytes:
    payload = json.dumps(body).encode()
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode() + payload


class TestRouting:
    def test_flow_info_round_trip(self):
        async def go(port, hosts, service):
            async with HttpServiceClient("127.0.0.1", port) as client:
                return await client.flow_info(hosts[0], hosts[5])

        ans = with_server(go)
        assert ans.ok and ans.available_bps > 0

    def test_health_and_metrics_get(self):
        async def go(port, hosts, service):
            return await raw_request(
                port, b"GET /v1/health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )

        status, body = with_server(go)
        assert status == 200
        assert body["result"]["status"] == "ok"
        assert body["result"]["backend"]["kind"] == "master"

    def test_unknown_endpoint_404(self):
        async def go(port, hosts, service):
            return await raw_request(port, post("/v1/teleport", {}))

        status, body = with_server(go)
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unversioned_path_404(self):
        async def go(port, hosts, service):
            return await raw_request(port, post("/flow_info", {}))

        status, body = with_server(go)
        assert status == 404
        assert "/v1" in body["error"]["message"]

    def test_wrong_method_405(self):
        async def go(port, hosts, service):
            return await raw_request(
                port,
                b"GET /v1/flow_info HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )

        status, body = with_server(go)
        assert status == 405
        assert body["error"]["code"] == "bad_request"


class TestBadInput:
    def test_junk_json_400(self):
        async def go(port, hosts, service):
            raw = b"not json {"
            head = (
                f"POST /v1/flow_info HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(raw)}\r\nConnection: close\r\n\r\n"
            ).encode()
            return await raw_request(port, head + raw)

        status, body = with_server(go)
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_missing_arguments_400(self):
        async def go(port, hosts, service):
            return await raw_request(port, post("/v1/flow_info", {"src": "only"}))

        status, body = with_server(go)
        assert status == 400

    def test_unknown_host_answers_failed_not_error(self):
        """Uncovered pairs are data, not errors: the session's FAILED
        answer crosses the wire as a 200 — and must never enter the
        LKG store (a later shed may not replay a failure)."""

        async def go(port, hosts, service):
            status, body = await raw_request(
                port, post("/v1/flow_info", {"src": "10.99.0.1", "dst": "10.99.0.2"})
            )
            return status, body, len(service.lkg)

        status, body, lkg_entries = with_server(go)
        assert status == 200
        assert body["ok"] is True
        assert body["result"]["status"] == "failed"
        assert lkg_entries == 0


class TestKeepAlive:
    def test_many_requests_one_connection(self):
        async def go(port, hosts, service):
            async with HttpServiceClient("127.0.0.1", port) as client:
                answers = []
                for i in range(5):
                    answers.append(await client.flow_info(hosts[0], hosts[i + 1]))
                return answers

        answers = with_server(go)
        assert len(answers) == 5 and all(a.ok for a in answers)


class TestTenancy:
    def test_rate_limit_maps_to_429(self):
        config = ServiceConfig(rate=1.0, burst=2.0)

        async def go(port, hosts, service):
            async with HttpServiceClient(
                "127.0.0.1", port, tenant="greedy"
            ) as client:
                statuses = []
                for _ in range(4):
                    try:
                        await client.health()
                        statuses.append(200)
                    except ServiceError as err:
                        statuses.append(err.code)
                return statuses

        statuses = with_server(go, config)
        assert statuses[:2] == [200, 200]
        assert "rate_limited" in statuses[2:]

    def test_tenants_do_not_share_buckets(self):
        config = ServiceConfig(rate=1.0, burst=1.0)

        async def go(port, hosts, service):
            async with HttpServiceClient("127.0.0.1", port, tenant="a") as ca:
                await ca.health()
                with pytest.raises(ServiceError):
                    await ca.health()
            async with HttpServiceClient("127.0.0.1", port, tenant="b") as cb:
                return await cb.health()

        assert (with_server(go, config))["status"] == "ok"
