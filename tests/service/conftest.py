"""Asyncio hygiene smoke for the service suite.

Set ``REPRO_ASYNCIO_DEBUG=1`` (CI's service smoke step does) and every
``asyncio.run`` in this suite executes under event-loop debug mode with
an aggressive slow-callback threshold.  Debug mode surfaces un-awaited
coroutines and cross-loop misuse; the slow-callback log catches
synchronous sim work (world builds, warmups) smuggled inside a
coroutine, which would stall a real server's loop for every tenant.

The service intentionally executes *queries* synchronously on the loop
(the sim engine is single-threaded and a query is milliseconds of wall
time), so the threshold defaults to a full second — tight enough to
trip on a multi-second deploy-and-warm, loose enough for dispatch.
Tune with ``REPRO_SLOW_CALLBACK_S``.
"""

from __future__ import annotations

import asyncio
import logging
import os

import pytest


class _SlowCallbackTrap(logging.Handler):
    """Collects asyncio's 'Executing ... took N seconds' warnings."""

    def __init__(self) -> None:
        super().__init__(level=logging.WARNING)
        self.hits: list[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        msg = record.getMessage()
        if "Executing" in msg and "took" in msg:
            self.hits.append(msg)


@pytest.fixture(autouse=True)
def asyncio_debug_smoke(monkeypatch):
    """Env-gated: run the suite's event loops in debug mode and fail
    the test if any callback blocked the loop past the threshold."""
    if os.environ.get("REPRO_ASYNCIO_DEBUG") != "1":
        yield
        return

    slow_s = float(os.environ.get("REPRO_SLOW_CALLBACK_S", "1.0"))
    trap = _SlowCallbackTrap()
    asyncio_log = logging.getLogger("asyncio")
    asyncio_log.addHandler(trap)
    # the warning is dropped before reaching handlers if the logger's
    # effective level is above WARNING
    old_level = asyncio_log.level
    if asyncio_log.getEffectiveLevel() > logging.WARNING:
        asyncio_log.setLevel(logging.WARNING)

    real_run = asyncio.run

    def debug_run(main, **kwargs):
        loop = asyncio.new_event_loop()
        loop.set_debug(True)
        loop.slow_callback_duration = slow_s
        try:
            return loop.run_until_complete(main)
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()

    monkeypatch.setattr(asyncio, "run", debug_run)
    try:
        yield
    finally:
        asyncio_log.removeHandler(trap)
        asyncio_log.setLevel(old_level)
        monkeypatch.setattr(asyncio, "run", real_run)
    assert not trap.hits, (
        "event loop blocked past "
        f"{slow_s:.2f}s — move the synchronous work out of the coroutine:\n"
        + "\n".join(trap.hits)
    )
