"""GetBulk and bulk walks: equivalence with GETNEXT, at fewer PDUs.

The batching contract: ``bulk_walk`` returns *byte-identical* varbinds
to ``walk`` over the same subtree — same OIDs, same values, same order
— while charging roughly ``1/max_repetitions`` of the PDUs.  Hypothesis
drives the equivalence over arbitrary MIB layouts via a raw agent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AgentUnreachableError
from repro.netsim.builders import build_dumbbell, build_switched_lan
from repro.snmp import oid as O
from repro.snmp.agent import instrument_network
from repro.snmp.client import SnmpClient, SnmpCostModel
from repro.snmp.mib import MibStore
from repro.snmp.oid import Oid


@pytest.fixture
def snmp_dumbbell():
    d = build_dumbbell()
    world = instrument_network(d.net)
    client = SnmpClient(world, d.h1.ip)
    return d, world, client


class TestAgentGetBulk:
    def test_returns_up_to_max_repetitions(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        agent = world.agent_at("10.1.0.1")
        chunk = agent.get_bulk(Oid(O.IP_ROUTE_NEXT_HOP), 2)
        assert len(chunk) == 2
        # continues exactly where GETNEXT would
        nxt, val = agent.get_next(chunk[-1][0])
        more = agent.get_bulk(chunk[-1][0], 1)
        assert more == [(nxt, val)]

    def test_truncates_at_end_of_mib(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        agent = world.agent_at("10.1.0.1")
        # a huge repetition count stops at the end of the MIB, no error
        chunk = agent.get_bulk(Oid("1"), 10_000)
        assert 0 < len(chunk) < 10_000


class TestBulkWalkEquivalence:
    def test_route_table_identical(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        assert client.bulk_walk("10.1.0.1", O.IP_ROUTE_NEXT_HOP) == client.walk(
            "10.1.0.1", O.IP_ROUTE_NEXT_HOP
        )

    def test_fdb_table_identical(self):
        lan = build_switched_lan(16, fanout=16)
        world = instrument_network(lan.net)
        client = SnmpClient(world, lan.hosts[0].ip)
        ip = lan.switches[0].management_ip
        assert client.bulk_walk(ip, O.DOT1D_TP_FDB_PORT) == client.walk(
            ip, O.DOT1D_TP_FDB_PORT
        )

    @given(
        oid_lists=st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=4),
            min_size=0,
            max_size=40,
            unique_by=tuple,
        ),
        prefix=st.lists(st.integers(0, 9), min_size=0, max_size=2),
        max_rep=st.integers(1, 7),
    )
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_mibs_identical(self, oid_lists, prefix, max_rep):
        """Over any MIB layout, any subtree, any batch size: the bulk
        walk yields exactly the iterated-GETNEXT varbind sequence."""
        store = MibStore()
        for parts in oid_lists:
            store.put(Oid(parts), tuple(parts))
        root = Oid(prefix)
        # reference: iterated GETNEXT bounded to the subtree
        expected = []
        cur = root
        while True:
            try:
                cur, value = store.get_next(cur)
            except Exception:
                break
            if not cur.starts_with(root):
                break
            expected.append((cur, value))
        # bulk: chunked GETNEXT with the same bound
        got = []
        cur = root
        done = False
        while not done:
            chunk = []
            probe = cur
            for _ in range(max_rep):
                try:
                    probe, value = store.get_next(probe)
                except Exception:
                    break
                chunk.append((probe, value))
            for nxt, value in chunk:
                if not nxt.starts_with(root):
                    done = True
                    break
                got.append((nxt, value))
            else:
                if len(chunk) == max_rep:
                    cur = chunk[-1][0]
                    continue
                done = True
        assert got == expected


class TestBulkWalkCost:
    def test_pdu_count_divided_by_batch(self):
        lan = build_switched_lan(16, fanout=16)
        world = instrument_network(lan.net)
        ip = lan.switches[0].management_ip
        plain = SnmpClient(world, lan.hosts[0].ip)
        rows = plain.walk(ip, O.DOT1D_TP_FDB_PORT)
        plain_pdus = plain.pdu_count
        bulk = SnmpClient(
            world, lan.hosts[0].ip, cost=SnmpCostModel(bulk_max_repetitions=16)
        )
        assert bulk.bulk_walk(ip, O.DOT1D_TP_FDB_PORT) == rows
        assert bulk.pdu_count < plain_pdus / 4

    def test_sim_time_cheaper(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        t0 = d.net.now
        client.walk("10.1.0.1", O.IP_ROUTE_NEXT_HOP)
        walk_cost = d.net.now - t0
        t1 = d.net.now
        client.bulk_walk("10.1.0.1", O.IP_ROUTE_NEXT_HOP)
        bulk_cost = d.net.now - t1
        assert bulk_cost < walk_cost

    def test_unreachable_agent_times_out(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        with pytest.raises(AgentUnreachableError):
            client.bulk_walk("10.99.0.1", O.IP_ROUTE_NEXT_HOP)
        assert client.timeout_count == 1
