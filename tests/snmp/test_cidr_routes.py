"""Tests for ipCidrRouteTable support and legacy fallback."""

import pytest

from repro.common.units import MBPS
from repro.collectors.base import TopologyRequest
from repro.collectors.snmp_collector import SnmpCollector, SnmpCollectorConfig
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.builders import build_dumbbell
from repro.snmp import oid as O
from repro.snmp.agent import instrument_network
from repro.snmp.client import SnmpClient


def _collector(d, world):
    config = SnmpCollectorConfig(
        domains=[IPv4Network("10.0.0.0/8"), IPv4Network("192.168.0.0/16")],
        gateways=[
            (IPv4Network("10.1.0.0/24"), IPv4Address("10.1.0.1")),
            (IPv4Network("10.2.0.0/24"), IPv4Address("10.2.0.1")),
        ],
    )
    return SnmpCollector("snmp", d.net, world, d.h1.ip, config)


class TestCidrMib:
    def test_cidr_rows_present_by_default(self):
        d = build_dumbbell()
        world = instrument_network(d.net)
        client = SnmpClient(world, d.h1.ip)
        rows = client.table_column("10.1.0.1", O.IP_CIDR_ROUTE_IF_INDEX)
        assert len(rows) == 3  # two direct + one via r2
        # index carries dest + mask + tos + next hop = 13 sub-ids
        assert all(len(s) == 13 for s in rows)

    def test_cidr_disabled_removes_rows(self):
        d = build_dumbbell()
        d.r1.supports_cidr_mib = False
        world = instrument_network(d.net)
        client = SnmpClient(world, d.h1.ip)
        assert client.table_column("10.1.0.1", O.IP_CIDR_ROUTE_IF_INDEX) == {}
        # legacy table still there
        assert len(client.table_column("10.1.0.1", O.IP_ROUTE_NEXT_HOP)) == 3


class TestCollectorPreference:
    def test_discovery_works_via_cidr(self):
        d = build_dumbbell()
        world = instrument_network(d.net)
        coll = _collector(d, world)
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        assert not resp.unresolved
        assert resp.graph.has_edge("r1", "r2")

    def test_discovery_falls_back_to_legacy(self):
        d = build_dumbbell()
        d.r1.supports_cidr_mib = False
        d.r2.supports_cidr_mib = False
        world = instrument_network(d.net)
        coll = _collector(d, world)
        resp = coll.topology(TopologyRequest.of(["10.1.0.10", "10.2.0.10"]))
        assert not resp.unresolved
        assert resp.graph.has_edge("r1", "r2")

    def test_same_entries_either_way(self):
        d1 = build_dumbbell()
        w1 = instrument_network(d1.net)
        c1 = _collector(d1, w1)
        cidr = {(str(e.prefix), str(e.next_hop), e.ifindex)
                for e in c1._route_table("10.1.0.1")}

        d2 = build_dumbbell()
        d2.r1.supports_cidr_mib = False
        w2 = instrument_network(d2.net)
        c2 = _collector(d2, w2)
        legacy = {(str(e.prefix), str(e.next_hop), e.ifindex)
                  for e in c2._route_table("10.1.0.1")}
        # direct routes differ in next-hop representation (own address
        # vs None is normalised to None in both); compare prefixes/ifaces
        assert {(p, i) for p, _, i in cidr} == {(p, i) for p, _, i in legacy}


class TestOverlappingPrefixes:
    def test_cidr_preserves_same_base_prefixes(self):
        """Two routes whose prefixes share a network address: only the
        CIDR table can expose both; the legacy table loses one."""
        from repro.netsim.topology import Network

        net = Network()
        h1 = net.add_host("h1")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        far = net.add_host("far")
        near = net.add_host("near")
        l1 = net.link(h1, r1, 100 * MBPS)
        l2 = net.link(r1, r2, 100 * MBPS)
        l3 = net.link(r2, far, 100 * MBPS)
        l4 = net.link(r2, near, 100 * MBPS)
        net.assign_ip(l1.a, "172.16.0.10", "172.16.0.0/24")
        net.assign_ip(l1.b, "172.16.0.1", "172.16.0.0/24")
        net.assign_ip(l2.a, "192.168.0.1", "192.168.0.0/30")
        net.assign_ip(l2.b, "192.168.0.2", "192.168.0.0/30")
        # overlapping prefixes with the same base: 10.0.0.0/8 and /16
        net.assign_ip(l3.a, "10.0.255.1", "10.0.0.0/8")
        net.assign_ip(l3.b, "10.0.255.10", "10.0.0.0/8")
        net.assign_ip(l4.a, "10.0.0.1", "10.0.0.0/16")
        net.assign_ip(l4.b, "10.0.0.10", "10.0.0.0/16")
        net.freeze()
        world = instrument_network(net)
        client = SnmpClient(world, h1.ip)
        # r1's CIDR table holds both 10/8 and 10.0/16 routes
        rows = client.table_column("172.16.0.1", O.IP_CIDR_ROUTE_IF_INDEX)
        prefixes = set()
        for suffix in rows:
            dest = ".".join(str(x) for x in suffix[0:4])
            masklen = bin(IPv4Address(
                ".".join(str(x) for x in suffix[4:8])).value).count("1")
            prefixes.add(f"{dest}/{masklen}")
        assert "10.0.0.0/8" in prefixes
        assert "10.0.0.0/16" in prefixes
        # the legacy table, indexed by dest alone, collapsed them
        legacy = client.table_column("172.16.0.1", O.IP_ROUTE_NEXT_HOP)
        dests = [s for s in legacy]
        assert len([s for s in dests if s == (10, 0, 0, 0)]) == 1
