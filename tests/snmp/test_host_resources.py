"""Tests for Host Resources MIB agents and the SNMP host-load sensor."""

import numpy as np
import pytest

from repro.common.errors import AgentUnreachableError
from repro.netsim.agents import attach_trace
from repro.netsim.builders import build_switched_lan
from repro.rps.hostload import host_load_trace
from repro.rps.predictor import StreamingPredictor
from repro.rps.sensors import SnmpHostLoadSensor
from repro.snmp import oid as O
from repro.snmp.agent import instrument_hosts, instrument_network
from repro.snmp.client import SnmpClient


@pytest.fixture
def lan_world():
    lan = build_switched_lan(4, fanout=4)
    world = instrument_network(lan.net)
    n = instrument_hosts(world)
    assert n == 4
    client = SnmpClient(world, lan.hosts[1].ip)
    return lan, world, client


class TestHostMib:
    def test_processor_load_reflects_host(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        h.load_source = lambda t: 0.37
        pct = client.get(h.ip, O.HR_PROCESSOR_LOAD + 1)
        assert pct == 37

    def test_load_clamped_at_100(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        h.load_source = lambda t: 7.5
        assert client.get(h.ip, O.HR_PROCESSOR_LOAD + 1) == 100

    def test_idle_host_zero(self, lan_world):
        lan, world, client = lan_world
        assert client.get(lan.hosts[2].ip, O.HR_PROCESSOR_LOAD + 1) == 0

    def test_host_iftable_present(self, lan_world):
        lan, world, client = lan_world
        speeds = client.table_column(lan.hosts[0].ip, O.IF_SPEED)
        assert len(speeds) == 1

    def test_sys_object_id_encodes_device_kind(self, lan_world):
        lan, world, client = lan_world
        assert client.get(lan.hosts[0].ip, O.SYS_OBJECT_ID) == str(
            O.SYS_OBJECT_ID_BASE + 1
        )
        assert client.get(lan.switches[0].management_ip, O.SYS_OBJECT_ID) == str(
            O.SYS_OBJECT_ID_BASE + 3
        )

    def test_hr_system_scalars_track_load(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        assert client.get(h.ip, O.HR_SYSTEM_NUM_USERS) == 1
        h.load_source = lambda t: 0.0
        assert client.get(h.ip, O.HR_SYSTEM_PROCESSES) == 40
        h.load_source = lambda t: 0.8
        assert client.get(h.ip, O.HR_SYSTEM_PROCESSES) == 48

    def test_opt_in_subset(self):
        lan = build_switched_lan(4)
        world = instrument_network(lan.net)
        n = instrument_hosts(world, hosts=[lan.hosts[0]])
        assert n == 1
        client = SnmpClient(world, lan.hosts[1].ip)
        assert client.get(lan.hosts[0].ip, O.HR_PROCESSOR_LOAD + 1) == 0
        with pytest.raises(AgentUnreachableError):
            client.get(lan.hosts[1].ip, O.HR_PROCESSOR_LOAD + 1)


class TestSnmpHostLoadSensor:
    def test_samples_quantised_load(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        trace = host_load_trace(3000, seed=50)
        attach_trace(h, trace, dt=1.0)
        sensor = SnmpHostLoadSensor(client, h.ip, rate_hz=1.0)
        sensor.start()
        lan.net.engine.run_until(60.0)
        sensor.stop()
        assert sensor.stats.samples == pytest.approx(60, abs=2)
        loads = np.array([v for _, v in sensor.samples])
        # quantised to integer percent
        assert np.allclose(loads * 100, np.round(loads * 100))
        # tracks the true load within the quantisation step
        truth = np.array([min(1.0, h.load(t)) for t, _ in sensor.samples])
        assert np.max(np.abs(loads - truth)) <= 0.01 + 1e-9

    def test_costs_pdus(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        attach_trace(h, host_load_trace(1000, seed=51), dt=1.0)
        before = client.pdu_count
        sensor = SnmpHostLoadSensor(client, h.ip, rate_hz=1.0)
        sensor.start()
        lan.net.engine.run_until(30.0)
        sensor.stop()
        assert client.pdu_count - before >= 25

    def test_feeds_predictor(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        trace = host_load_trace(3000, mean=0.5, seed=52)
        attach_trace(h, trace, dt=1.0)
        sp = StreamingPredictor("AR(8)", np.minimum(1.0, trace[:600]))
        sensor = SnmpHostLoadSensor(client, h.ip, predictor=sp, rate_hz=1.0)
        sensor.start()
        lan.net.engine.run_until(120.0)
        sensor.stop()
        assert sensor.stats.last_forecast is not None

    def test_dead_agent_skips_sample(self, lan_world):
        lan, world, client = lan_world
        h = lan.hosts[0]
        attach_trace(h, host_load_trace(500, seed=53), dt=1.0)
        sensor = SnmpHostLoadSensor(client, h.ip, rate_hz=1.0)
        sensor.start()
        lan.net.engine.run_until(10.0)
        n1 = sensor.stats.samples
        world.agent_for(h.name).reachable = False
        lan.net.engine.run_until(20.0)
        sensor.stop()
        assert sensor.stats.samples == n1

    def test_bad_rate(self, lan_world):
        lan, world, client = lan_world
        with pytest.raises(ValueError):
            SnmpHostLoadSensor(client, lan.hosts[0].ip, rate_hz=0)
