"""Unit and property tests for OIDs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.snmp import oid as O
from repro.snmp.oid import Oid


class TestOid:
    def test_parse_str(self):
        o = Oid("1.3.6.1.2.1")
        assert o.parts == (1, 3, 6, 1, 2, 1)
        assert str(o) == "1.3.6.1.2.1"

    def test_leading_dot_ok(self):
        assert Oid(".1.3.6") == Oid("1.3.6")

    def test_empty(self):
        assert len(Oid("")) == 0
        assert Oid(()).parts == ()

    def test_from_iterable_and_copy(self):
        assert Oid([1, 3, 6]) == Oid("1.3.6")
        o = Oid("1.2.3")
        assert Oid(o) == o

    def test_bad_strings(self):
        with pytest.raises(ValueError):
            Oid("1.a.3")
        with pytest.raises(ValueError):
            Oid((-1, 2))

    def test_concat(self):
        assert O.IF_SPEED + 3 == Oid("1.3.6.1.2.1.2.2.1.5.3")
        assert Oid("1.3") + "6.1" == Oid("1.3.6.1")
        assert Oid("1.3") + (6, 1) == Oid("1.3.6.1")

    def test_prefix_tests(self):
        assert Oid("1.3.6.1.5").starts_with(Oid("1.3.6"))
        assert not Oid("1.3.7").starts_with(Oid("1.3.6"))
        assert Oid("1.3.6.1.5").suffix_after(Oid("1.3.6")) == (1, 5)
        with pytest.raises(ValueError):
            Oid("1.4").suffix_after(Oid("1.3"))

    def test_snmp_order(self):
        # shorter prefix sorts before its extensions
        assert Oid("1.3.6") < Oid("1.3.6.0")
        assert Oid("1.3.6.2") < Oid("1.3.10")
        assert Oid("1.3.6.9") < Oid("1.3.6.10")

    def test_hashable(self):
        assert len({Oid("1.2"), Oid("1.2")}) == 1

    @given(st.lists(st.integers(0, 2**16), max_size=10))
    def test_str_roundtrip(self, parts):
        o = Oid(parts)
        assert Oid(str(o)) == o

    @given(
        st.lists(st.integers(0, 100), max_size=6),
        st.lists(st.integers(0, 100), max_size=6),
    )
    def test_order_matches_tuple_order(self, a, b):
        assert (Oid(a) < Oid(b)) == (tuple(a) < tuple(b))

    def test_well_known_constants(self):
        assert str(O.IF_IN_OCTETS) == "1.3.6.1.2.1.2.2.1.10"
        assert str(O.IP_ROUTE_NEXT_HOP) == "1.3.6.1.2.1.4.21.1.7"
        assert str(O.DOT1D_TP_FDB_PORT) == "1.3.6.1.2.1.17.4.3.1.2"
