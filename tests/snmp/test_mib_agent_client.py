"""Tests for MIB stores, device MIBs, agents, and the client."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    AgentUnreachableError,
    AuthorizationError,
    NoSuchObjectError,
)
from repro.common.units import MBPS
from repro.netsim.address import IPv4Network
from repro.netsim.builders import build_dumbbell, build_switched_lan
from repro.snmp import oid as O
from repro.snmp.agent import instrument_network
from repro.snmp.client import SnmpClient, SnmpCostModel
from repro.snmp.mib import MibStore
from repro.snmp.oid import Oid


class TestMibStore:
    def test_get_exact(self):
        s = MibStore()
        s.put(Oid("1.2.3"), 42)
        assert s.get(Oid("1.2.3")) == 42

    def test_get_missing_raises(self):
        with pytest.raises(NoSuchObjectError):
            MibStore().get(Oid("1.2.3"))

    def test_callable_provider_evaluated(self):
        s = MibStore()
        box = [1]
        s.put(Oid("1"), lambda: box[0])
        assert s.get(Oid("1")) == 1
        box[0] = 7
        assert s.get(Oid("1")) == 7

    def test_get_next_order(self):
        s = MibStore()
        s.put(Oid("1.3.6.2"), "b")
        s.put(Oid("1.3.6.1"), "a")
        s.put(Oid("1.3.10"), "c")
        oid, v = s.get_next(Oid("1.3"))
        assert (str(oid), v) == ("1.3.6.1", "a")
        oid, v = s.get_next(oid)
        assert (str(oid), v) == ("1.3.6.2", "b")
        oid, v = s.get_next(oid)
        assert (str(oid), v) == ("1.3.10", "c")
        with pytest.raises(NoSuchObjectError):
            s.get_next(oid)

    def test_replace_does_not_duplicate(self):
        s = MibStore()
        s.put(Oid("1"), 1)
        s.put(Oid("1"), 2)
        assert len(s) == 1
        assert s.get(Oid("1")) == 2

    def test_remove(self):
        s = MibStore()
        s.put(Oid("1"), 1)
        s.remove(Oid("1"))
        assert Oid("1") not in s
        s.remove(Oid("1"))  # idempotent

    @given(st.lists(st.lists(st.integers(0, 20), min_size=1, max_size=4), min_size=1, max_size=30, unique_by=tuple))
    @settings(max_examples=100, deadline=None)
    def test_walk_via_getnext_visits_sorted(self, oid_lists):
        s = MibStore()
        for parts in oid_lists:
            s.put(Oid(parts), tuple(parts))
        seen = []
        cur = Oid("")
        while True:
            try:
                cur, _ = s.get_next(cur)
            except NoSuchObjectError:
                break
            seen.append(cur)
        assert seen == sorted(seen)
        assert len(seen) == len({tuple(p) for p in oid_lists})


@pytest.fixture
def snmp_dumbbell():
    d = build_dumbbell()
    world = instrument_network(d.net)
    client = SnmpClient(world, d.h1.ip)
    return d, world, client


class TestDeviceMibs:
    def test_router_system_group(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        assert client.get("10.1.0.1", O.SYS_NAME) == "r1"
        assert client.get("10.1.0.1", O.IP_FORWARDING) == 1

    def test_router_answers_on_all_addresses(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        assert client.get("192.168.0.1", O.SYS_NAME) == "r1"

    def test_if_speed(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        speeds = client.table_column("10.1.0.1", O.IF_SPEED)
        assert set(speeds.values()) == {int(100 * MBPS)}

    def test_octet_counters_live(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        f = d.net.flows.start_flow(d.h1, d.h2, demand_bps=8 * MBPS)
        d.net.engine.run_until(10.0)
        # r1's interface toward r2 is eth1 (ifIndex 2)
        out1 = client.get("10.1.0.1", O.IF_OUT_OCTETS + 2)
        assert out1 == pytest.approx(8e6 * 10 / 8, rel=0.01)

    def test_route_table_walk(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        hops = client.table_column("10.1.0.1", O.IP_ROUTE_NEXT_HOP)
        masks = client.table_column("10.1.0.1", O.IP_ROUTE_MASK)
        assert len(hops) == len(masks) == 3  # two direct + one via r2
        # indirect route to 10.2/24 via 192.168.0.2
        assert hops[(10, 2, 0, 0)] == "192.168.0.2"

    def test_route_types(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        types = client.table_column("10.1.0.1", O.IP_ROUTE_TYPE)
        assert types[(10, 2, 0, 0)] == O.ROUTE_TYPE_INDIRECT
        assert types[(10, 1, 0, 0)] == O.ROUTE_TYPE_DIRECT

    def test_switch_bridge_mib(self):
        lan = build_switched_lan(8, fanout=8)
        world = instrument_network(lan.net)
        client = SnmpClient(world, lan.hosts[0].ip)
        sw = lan.switches[0]
        base = client.get(sw.management_ip, O.DOT1D_BASE_BRIDGE_ADDRESS)
        assert base == str(sw.management_mac())
        ports = client.table_column(sw.management_ip, O.DOT1D_TP_FDB_PORT)
        # hosts + router + self
        assert len(ports) == 8 + 1 + 1
        statuses = client.table_column(sw.management_ip, O.DOT1D_TP_FDB_STATUS)
        assert O.FDB_STATUS_SELF in statuses.values()


class TestAccessControl:
    def test_unknown_ip_times_out(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        t0 = d.net.now
        with pytest.raises(AgentUnreachableError):
            client.get("10.99.0.1", O.SYS_NAME)
        assert d.net.now - t0 == pytest.approx(client.cost.timeout_s)
        assert client.timeout_count == 1

    def test_bad_community_times_out(self):
        d = build_dumbbell()
        world = instrument_network(d.net, community="secret")
        client = SnmpClient(world, d.h1.ip, community="public")
        with pytest.raises(AgentUnreachableError):
            client.get("10.1.0.1", O.SYS_NAME)

    def test_source_acl_refuses_foreign_clients(self):
        d = build_dumbbell()
        world = instrument_network(
            d.net, allowed_sources=[IPv4Network("10.1.0.0/24")]
        )
        local = SnmpClient(world, d.h1.ip)  # 10.1.0.10: allowed
        foreign = SnmpClient(world, d.h2.ip)  # 10.2.0.10: denied
        assert local.get("10.1.0.1", O.SYS_NAME) == "r1"
        with pytest.raises(AuthorizationError):
            foreign.get("10.1.0.1", O.SYS_NAME)

    def test_agent_marked_down(self):
        d = build_dumbbell()
        d.r2.snmp_reachable = False
        world = instrument_network(d.net)
        client = SnmpClient(world, d.h1.ip)
        with pytest.raises(AgentUnreachableError):
            client.get("10.2.0.1", O.SYS_NAME)


class TestCostAccounting:
    def test_get_charges_rtt(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        t0 = d.net.now
        client.get("10.1.0.1", O.SYS_NAME)
        assert d.net.now - t0 == pytest.approx(
            client.cost.rtt_s + client.cost.per_varbind_s
        )
        assert client.pdu_count == 1

    def test_walk_counts_pdus(self, snmp_dumbbell):
        d, world, client = snmp_dumbbell
        before = client.pdu_count
        rows = client.walk("10.1.0.1", O.IP_ROUTE_NEXT_HOP)
        # one PDU per row + one overshoot
        assert client.pdu_count - before == len(rows) + 1

    def test_custom_cost_model(self):
        d = build_dumbbell()
        world = instrument_network(d.net)
        client = SnmpClient(world, d.h1.ip, cost=SnmpCostModel(rtt_s=0.5, per_varbind_s=0.0))
        t0 = d.net.now
        client.get("10.1.0.1", O.SYS_NAME)
        assert d.net.now - t0 == pytest.approx(0.5)
