"""Tests for incremental MIB refresh helpers (FDB rows, associations)."""

import pytest

from repro.common.units import MBPS
from repro.netsim.address import MacAddress
from repro.netsim.builders import build_switched_lan, build_wireless_lan
from repro.netsim.wireless import associate
from repro.snmp import oid as O
from repro.snmp.agent import instrument_network
from repro.snmp.client import SnmpClient
from repro.snmp.mib import refresh_basestation_assoc, refresh_switch_fdb


class TestFdbRefresh:
    def test_new_entry_appears(self):
        lan = build_switched_lan(4, fanout=4)
        world = instrument_network(lan.net)
        sw = lan.switches[0]
        agent = world.agent_for(sw.name)
        ghost = MacAddress(0xAABBCCDDEEFF)
        sw.fdb[ghost] = 1
        refresh_switch_fdb(agent.mib, sw)
        client = SnmpClient(world, lan.hosts[0].ip)
        ports = client.table_column(sw.management_ip, O.DOT1D_TP_FDB_PORT)
        assert ghost.octets() in ports
        assert ports[ghost.octets()] == 1

    def test_removed_entry_disappears(self):
        lan = build_switched_lan(4, fanout=4)
        world = instrument_network(lan.net)
        sw = lan.switches[0]
        agent = world.agent_for(sw.name)
        victim = lan.hosts[0].interfaces[0].mac
        assert victim in sw.fdb
        del sw.fdb[victim]
        refresh_switch_fdb(agent.mib, sw)
        client = SnmpClient(world, lan.hosts[0].ip)
        ports = client.table_column(sw.management_ip, O.DOT1D_TP_FDB_PORT)
        assert victim.octets() not in ports

    def test_port_change_live_without_refresh(self):
        """Port moves read through; only row add/remove needs refresh."""
        lan = build_switched_lan(4, fanout=4)
        world = instrument_network(lan.net)
        sw = lan.switches[0]
        mac = lan.hosts[0].interfaces[0].mac
        client = SnmpClient(world, lan.hosts[1].ip)
        before = client.get(sw.management_ip, O.DOT1D_TP_FDB_PORT + mac.octets())
        sw.fdb[mac] = 99
        after = client.get(sw.management_ip, O.DOT1D_TP_FDB_PORT + mac.octets())
        assert after == 99 != before


class TestAssocRefresh:
    def test_roam_updates_assoc_tables(self):
        wl = build_wireless_lan(n_basestations=2, n_wireless_hosts=2)
        world = instrument_network(wl.net)
        h = wl.wireless_hosts[0]
        mac = h.interfaces[0].mac
        src, dst = wl.basestations
        associate(wl.net, h, dst)
        for bs in (src, dst):
            agent = world.agent_for(bs.name)
            refresh_basestation_assoc(agent.mib, bs)
        client = SnmpClient(world, wl.wired_hosts[0].ip)
        src_rows = client.walk(src.management_ip, O.WLAN_ASSOC_STATION)
        dst_rows = client.walk(dst.management_ip, O.WLAN_ASSOC_STATION)
        src_macs = {v for _, v in src_rows}
        dst_macs = {v for _, v in dst_rows}
        assert str(mac) not in src_macs
        assert str(mac) in dst_macs

    def test_refresh_idempotent(self):
        wl = build_wireless_lan(n_basestations=1, n_wireless_hosts=2)
        world = instrument_network(wl.net)
        bs = wl.basestations[0]
        agent = world.agent_for(bs.name)
        refresh_basestation_assoc(agent.mib, bs)
        refresh_basestation_assoc(agent.mib, bs)
        client = SnmpClient(world, wl.wired_hosts[0].ip)
        rows = client.walk(bs.management_ip, O.WLAN_ASSOC_STATION)
        assert len(rows) == 2
