"""Tests for the virtual topology graph."""

import math

import pytest

from repro.common.errors import TopologyError
from repro.modeler.graph import (
    HOST,
    ROUTER,
    SWITCH,
    VSWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)


def _line_graph():
    """h1 - s1 - s2 - h2 with a 10 Mbps middle edge."""
    g = TopologyGraph()
    g.add_node(TopoNode("h1", HOST, ("10.0.0.1",)))
    g.add_node(TopoNode("s1", SWITCH))
    g.add_node(TopoNode("s2", SWITCH))
    g.add_node(TopoNode("h2", HOST, ("10.0.0.2",)))
    g.add_edge(TopoEdge("h1", "s1", 100e6, latency_s=0.001))
    g.add_edge(TopoEdge("s1", "s2", 10e6, util_ab_bps=4e6, util_ba_bps=1e6, latency_s=0.001))
    g.add_edge(TopoEdge("s2", "h2", 100e6, latency_s=0.001))
    return g


class TestNodesAndEdges:
    def test_bad_kind_rejected(self):
        with pytest.raises(TopologyError):
            TopoNode("x", "gizmo")

    def test_add_node_merges_ips(self):
        g = TopologyGraph()
        g.add_node(TopoNode("h", HOST, ("10.0.0.1",)))
        merged = g.add_node(TopoNode("h", HOST, ("10.0.0.2",)))
        assert merged.ips == ("10.0.0.1", "10.0.0.2")
        assert len(g) == 1

    def test_edge_requires_endpoints(self):
        g = TopologyGraph()
        g.add_node(TopoNode("a", HOST))
        with pytest.raises(TopologyError):
            g.add_edge(TopoEdge("a", "missing"))

    def test_edge_key_canonical(self):
        e = TopoEdge("b", "a")
        assert e.key() == ("a", "b")

    def test_util_from_direction(self):
        e = TopoEdge("a", "b", 10e6, util_ab_bps=3e6, util_ba_bps=1e6)
        assert e.util_from("a") == 3e6
        assert e.util_from("b") == 1e6
        with pytest.raises(TopologyError):
            e.util_from("c")

    def test_available_from(self):
        e = TopoEdge("a", "b", 10e6, util_ab_bps=3e6)
        assert e.available_from("a") == 7e6
        assert e.available_from("b") == 10e6

    def test_readd_edge_replaces(self):
        g = _line_graph()
        g.add_edge(TopoEdge("s1", "s2", 20e6))
        assert g.edge("s1", "s2").capacity_bps == 20e6
        assert g.num_edges() == 3

    def test_missing_lookups_raise(self):
        g = _line_graph()
        with pytest.raises(TopologyError):
            g.node("zz")
        with pytest.raises(TopologyError):
            g.edge("h1", "h2")


class TestPathOps:
    def test_shortest_path(self):
        g = _line_graph()
        assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]

    def test_no_path_raises(self):
        g = _line_graph()
        g.add_node(TopoNode("lonely", HOST))
        with pytest.raises(TopologyError):
            g.path("h1", "lonely")

    def test_bottleneck_direction_sensitive(self):
        g = _line_graph()
        # h1->h2 crosses s1->s2 with 4 Mbps used: 6 Mbps left
        assert g.bottleneck_available("h1", "h2") == pytest.approx(6e6)
        # reverse direction only 1 Mbps used: 9 Mbps left
        assert g.bottleneck_available("h2", "h1") == pytest.approx(9e6)

    def test_path_latency(self):
        g = _line_graph()
        assert g.path_latency("h1", "h2") == pytest.approx(0.003)


class TestMergeAndCopy:
    def test_merge_unions(self):
        g1 = _line_graph()
        g2 = TopologyGraph()
        g2.add_node(TopoNode("h2", HOST))
        g2.add_node(TopoNode("h3", HOST))
        g2.add_edge(TopoEdge("h2", "h3", 5e6))
        g1.merge(g2)
        assert g1.has_edge("h2", "h3")
        assert g1.path("h1", "h3")[-1] == "h3"

    def test_copy_is_deep_for_structure(self):
        g = _line_graph()
        c = g.copy()
        c.remove_node("s1")
        assert g.has_node("s1")
        assert not c.has_node("s1")
