"""RemosSession: the status-carrying API facade, and the deprecated
Modeler shims that keep the historical strict behaviour."""

import dataclasses

import pytest

from repro.common.errors import PartialResultError, QueryError
from repro.common.status import QueryStatus
from repro.common.units import MBPS
from repro.deploy import deploy_lan, deploy_wan
from repro.modeler.api import FlowAnswer, NodeAnswer, TopologyAnswer
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan
from repro.session import RemosSession


@pytest.fixture
def lan_dep():
    lan = build_switched_lan(8, fanout=4)
    return lan, deploy_lan(lan)


@pytest.fixture
def wan_dep():
    w = build_multisite_wan(
        [
            SiteSpec("a", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("b", access_bps=10 * MBPS, n_hosts=3),
        ]
    )
    return w, deploy_wan(w)


class TestSessionAnswers:
    def test_flow_info_carries_status_age_provenance(self, wan_dep):
        w, dep = wan_dep
        ans = dep.session().flow_info(w.host("a", 0), w.host("b", 0))
        assert isinstance(ans, FlowAnswer)
        assert ans.status == QueryStatus.OK
        assert ans.ok and not ans.degraded
        assert ans.provenance == ("a", "b")
        assert ans.available_bps > 0

    def test_topology_answer(self, wan_dep):
        w, dep = wan_dep
        ans = dep.session().topology([w.host("a", 0), w.host("b", 0)])
        assert isinstance(ans, TopologyAnswer)
        assert ans.status == QueryStatus.OK
        assert ans.unresolved == ()
        assert set(ans.site_status) == {"a", "b"}
        assert ans.graph.has_node(str(w.host("a", 0).ip))

    def test_unknown_host_degrades_instead_of_raising(self, wan_dep):
        w, dep = wan_dep
        s = dep.session()
        good, bad = s.flow_info_many(
            [
                (w.host("a", 0), w.host("b", 0)),
                (w.host("a", 0), "10.99.0.1"),  # covered by no collector
            ]
        )
        assert good.available_bps > 0
        assert bad.status == QueryStatus.FAILED
        assert bad.available_bps == 0.0 and bad.path == ()
        topo = s.topology([w.host("a", 0), "10.99.0.1"])
        assert topo.degraded
        assert "10.99.0.1" in topo.unresolved

    def test_node_info_answers(self, lan_dep):
        lan, dep = lan_dep
        from repro.netsim.agents import attach_trace
        from repro.rps.hostload import host_load_trace

        h = lan.hosts[0]
        attach_trace(h, host_load_trace(200, seed=1), dt=1.0)
        dep.attach_host_sensor(h, "AR(4)")
        lan.net.engine.run_until(lan.net.now + 10.0)
        [ans, missing] = dep.session().node_info([h, "10.9.9.9"])
        assert isinstance(ans, NodeAnswer)
        assert ans.load is not None and ans.status == QueryStatus.OK
        assert ans.provenance == ("host-sensor",)
        # a host no sensor covers answers load=None, FAILED — not an error
        assert missing.load is None
        assert missing.status == QueryStatus.FAILED

    def test_session_from_deployment_shares_the_modeler(self, lan_dep):
        lan, dep = lan_dep
        s = dep.session()
        assert isinstance(s, RemosSession)
        assert s.modeler is dep.modeler


class TestDeprecatedShims:
    def test_shims_warn_and_match_session_results(self, wan_dep):
        w, dep = wan_dep
        s = dep.session()
        src, dst = w.host("a", 0), w.host("b", 0)

        with pytest.warns(DeprecationWarning, match="flow_query is deprecated"):
            old = dep.modeler.flow_query(src, dst)
        new = s.flow_info(src, dst)
        old_d, new_d = dataclasses.asdict(old), dataclasses.asdict(new)
        # data age moves with the clock between the two calls
        assert old_d.pop("data_age_s") == pytest.approx(
            new_d.pop("data_age_s"), abs=5.0
        )
        assert old_d == new_d

        with pytest.warns(DeprecationWarning, match="topology_query is deprecated"):
            old_graph = dep.modeler.topology_query([src, dst])
        new_graph = s.topology([src, dst]).graph
        assert sorted(n.id for n in old_graph.nodes()) == sorted(
            n.id for n in new_graph.nodes()
        )

        with pytest.warns(DeprecationWarning, match="flow_queries is deprecated"):
            [old] = dep.modeler.flow_queries([(src, dst)])
        assert old.available_bps == pytest.approx(new.available_bps)

        with pytest.warns(DeprecationWarning, match="node_query is deprecated"):
            answers = dep.modeler.node_query([src])
        assert answers[0].ip == str(src.ip)

    def test_shims_keep_strict_raising_semantics(self, wan_dep):
        w, dep = wan_dep
        with pytest.warns(DeprecationWarning):
            with pytest.raises(QueryError, match="not covered"):
                dep.modeler.flow_query(w.host("a", 0), "10.99.0.1")
        # ... and the modern error subtype carries the detail
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PartialResultError) as exc:
                dep.modeler.topology_query([w.host("a", 0), "10.99.0.1"])
        assert exc.value.unresolved == ("10.99.0.1",)

    def test_session_itself_never_warns(self, wan_dep):
        import warnings

        w, dep = wan_dep
        s = dep.session()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            s.flow_info(w.host("a", 0), w.host("b", 0))
            s.topology([w.host("a", 0)])
            s.invalidate_cache()
