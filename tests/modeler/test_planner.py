"""Flow-query planning: dedupe/merge of ``flow_info_many`` batches.

The planner shares path/fetch work between repeated pairs but must not
change any answer — k requested instances of one pair stay k flows in
the joint max-min and legitimately split their bottleneck.
"""

import pytest

from repro import obs
from repro.deploy import deploy_lan
from repro.modeler.planner import plan_flow_pairs
from repro.netsim.builders import build_switched_lan


class TestPlan:
    def test_dedup_and_instance_map(self):
        plan = plan_flow_pairs([("a", "b"), ("c", "d"), ("a", "b")])
        assert plan.pairs == (("a", "b"), ("c", "d"), ("a", "b"))
        assert plan.unique_pairs == (("a", "b"), ("c", "d"))
        assert plan.instance_of == (0, 1, 0)
        assert plan.merged == 1
        assert plan.involved == ("a", "b", "c", "d")

    def test_directions_are_distinct(self):
        # (a, b) and (b, a) are different questions (per-direction
        # utilization); the planner must not merge them.
        plan = plan_flow_pairs([("a", "b"), ("b", "a")])
        assert plan.unique_pairs == (("a", "b"), ("b", "a"))
        assert plan.merged == 0

    def test_extra_ips_fold_into_involved(self):
        plan = plan_flow_pairs([("a", "b")], extra_ips=["z", "a"])
        assert plan.involved == ("a", "b", "z")

    def test_counters(self):
        with obs.scoped_registry() as reg:
            plan_flow_pairs([("a", "b"), ("a", "b"), ("a", "b"), ("c", "d")])
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.planner.pairs{result=unique}"] == 2
        assert c["modeler.planner.pairs{result=merged}"] == 2

    def test_empty_batch_emits_nothing(self):
        with obs.scoped_registry() as reg:
            plan = plan_flow_pairs([])
            snap = obs.export.snapshot(reg)
        assert plan.pairs == ()
        assert plan.involved == ()
        assert "modeler.planner.pairs{result=unique}" not in snap["counters"]


class TestMergedAnswers:
    @pytest.fixture
    def lan_dep(self):
        lan = build_switched_lan(8, fanout=4)
        dep = deploy_lan(lan)
        dep.session().flow_info(lan.hosts[0], lan.hosts[7])  # warm discovery
        return lan, dep

    def test_duplicate_pair_still_splits_bandwidth(self, lan_dep):
        # Merging shares the route derivation, not the allocation: two
        # instances of one pair are two flows in the joint max-min and
        # each gets half of what a single instance would.
        lan, dep = lan_dep
        pair = (lan.hosts[0], lan.hosts[7])
        single = dep.session().flow_info_many([pair])
        double = dep.session().flow_info_many([pair, pair])
        assert len(double) == 2
        assert double[0].available_bps == pytest.approx(
            single[0].available_bps / 2
        )
        assert double[1].available_bps == double[0].available_bps
        assert double[0].path == single[0].path == double[1].path

    def test_session_batch_reports_merge(self, lan_dep):
        lan, dep = lan_dep
        pair = (lan.hosts[0], lan.hosts[7])
        with obs.scoped_registry() as reg:
            dep.session().flow_info_many([pair, pair, pair])
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.planner.pairs{result=unique}"] == 1
        assert c["modeler.planner.pairs{result=merged}"] == 2
