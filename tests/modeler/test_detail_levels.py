"""Tests for topology query detail levels."""

import math

import pytest

from repro.common.errors import QueryError
from repro.common.units import MBPS
from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan


@pytest.fixture(scope="module")
def lan_dep():
    lan = build_switched_lan(16, fanout=4)
    dep = deploy_lan(lan)
    lan.net.flows.start_flow(lan.hosts[0], lan.hosts[15], demand_bps=30 * MBPS)
    lan.net.engine.run_until(10.0)
    return lan, dep


class TestDetailLevels:
    def test_raw_has_switches(self, lan_dep):
        lan, dep = lan_dep
        g = dep.modeler.topology_query([lan.hosts[0], lan.hosts[15]], detail="raw")
        assert any(n.kind == "switch" for n in g.nodes())

    def test_summary_is_hosts_only(self, lan_dep):
        lan, dep = lan_dep
        hosts = [lan.hosts[0], lan.hosts[7], lan.hosts[15]]
        g = dep.modeler.topology_query(hosts, detail="summary")
        assert len(g) == 3
        assert all(n.kind == "host" for n in g.nodes())
        assert g.num_edges() == 3  # all pairs

    def test_summary_preserves_bottleneck(self, lan_dep):
        lan, dep = lan_dep
        a, b = lan.hosts[0], lan.hosts[15]
        full = dep.modeler.topology_query([a, b], detail="raw")
        summ = dep.modeler.topology_query([a, b], detail="summary")
        full_avail = full.bottleneck_available(str(a.ip), str(b.ip))
        summ_avail = summ.bottleneck_available(str(a.ip), str(b.ip))
        assert summ_avail == pytest.approx(full_avail, rel=1e-6)
        # latency preserved too
        assert summ.path_latency(str(a.ip), str(b.ip)) == pytest.approx(
            full.path_latency(str(a.ip), str(b.ip))
        )

    def test_summary_directional(self, lan_dep):
        lan, dep = lan_dep
        a, b = lan.hosts[0], lan.hosts[15]
        g = dep.modeler.topology_query([a, b], detail="summary")
        # 30 Mbps flows a -> b: less available that way
        assert g.bottleneck_available(str(a.ip), str(b.ip)) < g.bottleneck_available(
            str(b.ip), str(a.ip)
        )

    def test_simplified_is_default(self, lan_dep):
        lan, dep = lan_dep
        g1 = dep.modeler.topology_query([lan.hosts[0], lan.hosts[15]])
        g2 = dep.modeler.topology_query(
            [lan.hosts[0], lan.hosts[15]], detail="simplified"
        )
        assert sorted(n.id for n in g1.nodes()) == sorted(n.id for n in g2.nodes())

    def test_unknown_level_rejected(self, lan_dep):
        lan, dep = lan_dep
        with pytest.raises(QueryError):
            dep.modeler.topology_query([lan.hosts[0]], detail="cubist")
