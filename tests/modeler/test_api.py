"""Tests for the Modeler (the Remos API)."""

import pytest

from repro.common.errors import QueryError
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan
from repro.deploy import deploy_lan, deploy_wan
from repro.modeler.graph import HOST, VSWITCH


@pytest.fixture(scope="module")
def lan_dep():
    lan = build_switched_lan(16, fanout=4)
    return lan, deploy_lan(lan)


@pytest.fixture
def wan_dep():
    w = build_multisite_wan(
        [
            SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("eth", access_bps=60 * MBPS, n_hosts=3),
        ]
    )
    return w, deploy_wan(w)


class TestTopologyQuery:
    def test_simplified_by_default(self, lan_dep):
        lan, dep = lan_dep
        g = dep.modeler.topology_query([lan.hosts[0], lan.hosts[15]])
        # simplification leaves hosts + one vswitch chain
        kinds = [n.kind for n in g.nodes()]
        assert kinds.count(HOST) == 2
        assert VSWITCH in kinds

    def test_raw_topology_has_switches(self, lan_dep):
        lan, dep = lan_dep
        g = dep.modeler.topology_query(
            [lan.hosts[0], lan.hosts[15]], simplified=False
        )
        assert any(n.kind == "switch" for n in g.nodes())

    def test_accepts_hosts_ips_strings(self, lan_dep):
        lan, dep = lan_dep
        g1 = dep.modeler.topology_query([lan.hosts[0], lan.hosts[1]])
        g2 = dep.modeler.topology_query([str(lan.hosts[0].ip), str(lan.hosts[1].ip)])
        assert sorted(n.id for n in g1.nodes()) == sorted(n.id for n in g2.nodes())

    def test_unknown_host_raises(self, lan_dep):
        lan, dep = lan_dep
        with pytest.raises(QueryError):
            dep.modeler.topology_query(["172.16.0.9"])


class TestFlowQuery:
    def test_lan_flow_full_capacity(self, lan_dep):
        lan, dep = lan_dep
        ans = dep.modeler.flow_query(lan.hosts[0], lan.hosts[15])
        assert ans.available_bps == pytest.approx(100 * MBPS, rel=0.02)
        assert ans.path[0] == str(lan.hosts[0].ip)
        assert ans.path[-1] == str(lan.hosts[15].ip)

    def test_wan_flow_bottlenecked_by_benchmark(self, wan_dep):
        w, dep = wan_dep
        ans = dep.modeler.flow_query(w.host("cmu", 0), w.host("eth", 0))
        assert ans.available_bps == pytest.approx(10 * MBPS, rel=0.05)
        assert ans.latency_s > 0

    def test_joint_flow_queries_share(self, wan_dep):
        w, dep = wan_dep
        answers = dep.modeler.flow_queries(
            [
                (w.host("cmu", 0), w.host("eth", 0)),
                (w.host("cmu", 1), w.host("eth", 1)),
            ]
        )
        # both flows cross the same 10 Mbps logical WAN edge
        assert answers[0].available_bps == pytest.approx(5 * MBPS, rel=0.05)
        assert answers[1].available_bps == pytest.approx(5 * MBPS, rel=0.05)

    def test_flow_query_sees_background_traffic(self, wan_dep):
        w, dep = wan_dep
        # saturate half the cmu access link with cross traffic
        f = w.net.flows.start_flow(w.host("cmu", 1), w.host("eth", 1),
                                   demand_bps=5 * MBPS)
        w.net.engine.run_until(w.net.now + 10.0)
        ans = dep.modeler.flow_query(w.host("cmu", 0), w.host("eth", 0))
        # benchmark probe shares the access link with the 5 Mbps flow:
        # max-min gives the probe 5 Mbps
        assert ans.available_bps == pytest.approx(5 * MBPS, rel=0.1)

    def test_prediction_requires_service(self, lan_dep):
        lan, dep = lan_dep
        dep.modeler.prediction_service = None
        with pytest.raises(QueryError):
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[1], predict=True)
