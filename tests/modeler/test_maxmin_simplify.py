"""Tests for modeler flow math and topology simplification."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.modeler.graph import (
    HOST,
    SWITCH,
    VSWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)
from repro.modeler.maxmin import predict_flows
from repro.modeler.simplify import collapse_chains, prune, simplify


def _shared_bottleneck():
    """h1,h2 -- sw -- 10 Mbps -- gw -- h3: both flows share sw-gw."""
    g = TopologyGraph()
    for hid in ("h1", "h2", "h3"):
        g.add_node(TopoNode(hid, HOST))
    g.add_node(TopoNode("sw", SWITCH))
    g.add_node(TopoNode("gw", SWITCH))
    g.add_edge(TopoEdge("h1", "sw", 100e6))
    g.add_edge(TopoEdge("h2", "sw", 100e6))
    g.add_edge(TopoEdge("sw", "gw", 10e6))
    g.add_edge(TopoEdge("gw", "h3", 100e6))
    return g


class TestPredictFlows:
    def test_single_flow_bottleneck(self):
        g = _shared_bottleneck()
        [p] = predict_flows(g, [("h1", "h3")])
        assert p.rate_bps == pytest.approx(10e6)
        assert p.bottleneck_bps == pytest.approx(10e6)
        assert p.capacity_bps == pytest.approx(10e6)

    def test_two_flows_share_fairly(self):
        g = _shared_bottleneck()
        preds = predict_flows(g, [("h1", "h3"), ("h2", "h3")])
        assert preds[0].rate_bps == pytest.approx(5e6)
        assert preds[1].rate_bps == pytest.approx(5e6)

    def test_utilization_reduces_residual(self):
        g = _shared_bottleneck()
        g.add_edge(TopoEdge("sw", "gw", 10e6, util_ab_bps=4e6))
        [p] = predict_flows(g, [("h1", "h3")])
        assert p.rate_bps == pytest.approx(6e6)
        assert p.capacity_bps == pytest.approx(10e6)

    def test_demand_cap(self):
        g = _shared_bottleneck()
        preds = predict_flows(g, [("h1", "h3"), ("h2", "h3")], demands=[2e6, math.inf])
        assert preds[0].rate_bps == pytest.approx(2e6)
        assert preds[1].rate_bps == pytest.approx(8e6)

    def test_opposite_directions_dont_contend(self):
        g = _shared_bottleneck()
        preds = predict_flows(g, [("h1", "h3"), ("h3", "h2")])
        # full duplex: each direction has its own 10 Mbps
        assert preds[0].rate_bps == pytest.approx(10e6)
        assert preds[1].rate_bps == pytest.approx(10e6)

    def test_no_path_raises(self):
        g = _shared_bottleneck()
        g.add_node(TopoNode("h9", HOST))
        with pytest.raises(QueryError):
            predict_flows(g, [("h1", "h9")])

    def test_demand_length_mismatch(self):
        g = _shared_bottleneck()
        with pytest.raises(ValueError):
            predict_flows(g, [("h1", "h3")], demands=[1.0, 2.0])


def _chain_graph(k=4):
    """h1 - s1 - s2 - ... - sk - h2 with varying capacities."""
    g = TopologyGraph()
    g.add_node(TopoNode("h1", HOST))
    g.add_node(TopoNode("h2", HOST))
    prev = "h1"
    caps = [100e6, 10e6, 50e6, 80e6, 100e6]
    utils = [0.0, 4e6, 0.0, 20e6, 0.0]
    for i in range(k):
        sid = f"s{i}"
        g.add_node(TopoNode(sid, SWITCH))
        g.add_edge(TopoEdge(prev, sid, caps[i % 5], util_ab_bps=utils[i % 5]))
        prev = sid
    g.add_edge(TopoEdge(prev, "h2", 100e6))
    return g


class TestSimplify:
    def test_prune_drops_dangling(self):
        g = _shared_bottleneck()
        g.add_node(TopoNode("stray", SWITCH))
        g.add_edge(TopoEdge("gw", "stray", 1e6))
        p = prune(g, protect={"h1", "h3"})
        assert not p.has_node("stray")
        assert not p.has_node("h2")  # unprotected leaf host goes too
        assert p.has_node("h1") and p.has_node("h3")

    def test_collapse_preserves_flow_answers(self):
        g = _chain_graph(4)
        [before] = predict_flows(g, [("h1", "h2")])
        s = collapse_chains(g, protect={"h1", "h2"})
        assert len(s) < len(g)
        [after] = predict_flows(s, [("h1", "h2")])
        assert after.rate_bps == pytest.approx(before.rate_bps)
        # reverse direction preserved too
        [rb] = predict_flows(g, [("h2", "h1")])
        [ra] = predict_flows(s, [("h2", "h1")])
        assert ra.rate_bps == pytest.approx(rb.rate_bps)

    def test_collapse_inserts_vswitch(self):
        g = _chain_graph(3)
        s = collapse_chains(g, protect={"h1", "h2"})
        kinds = {n.kind for n in s.nodes()}
        assert VSWITCH in kinds
        assert s.path("h1", "h2")[1].startswith("vsw:")

    def test_simplify_pipeline(self):
        g = _chain_graph(5)
        g.add_node(TopoNode("stray", SWITCH))
        g.add_edge(TopoEdge("s2", "stray", 1e6))
        s = simplify(g, protect={"h1", "h2"})
        assert not s.has_node("stray")
        [before] = predict_flows(g, [("h1", "h2")])
        [after] = predict_flows(s, [("h1", "h2")])
        assert after.rate_bps == pytest.approx(before.rate_bps)

    def test_protected_interior_not_collapsed(self):
        g = _chain_graph(3)
        s = collapse_chains(g, protect={"h1", "h2", "s1"})
        assert s.has_node("s1")

    @given(st.integers(2, 8), st.lists(st.floats(1e6, 100e6), min_size=9, max_size=9),
           st.lists(st.floats(0, 0.9), min_size=9, max_size=9))
    @settings(max_examples=60, deadline=None)
    def test_collapse_equivalence_property(self, k, caps, util_fracs):
        """Chain collapsing never changes either direction's answer."""
        g = TopologyGraph()
        g.add_node(TopoNode("h1", HOST))
        g.add_node(TopoNode("h2", HOST))
        prev = "h1"
        for i in range(k):
            sid = f"s{i}"
            g.add_node(TopoNode(sid, SWITCH))
            cap = caps[i % 9]
            g.add_edge(TopoEdge(prev, sid, cap,
                                util_ab_bps=cap * util_fracs[i % 9],
                                util_ba_bps=cap * util_fracs[(i + 3) % 9]))
            prev = sid
        g.add_edge(TopoEdge(prev, "h2", caps[-1]))
        s = simplify(g, protect={"h1", "h2"})
        for pair in (("h1", "h2"), ("h2", "h1")):
            [b] = predict_flows(g, [pair])
            [a] = predict_flows(s, [pair])
            assert a.rate_bps == pytest.approx(b.rate_bps, rel=1e-9)
