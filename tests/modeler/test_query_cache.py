"""Modeler query-result caching (the staleness-window memoisation).

With ``query_cache_ttl_s > 0`` a repeated query inside the window is
answered from the memoised Master response: same answers, a fraction of
the simulated cost, and no Master RPC.  Past the window (or after
``invalidate_cache``) the Master is consulted again.
"""

import dataclasses

import pytest

from repro import obs
from repro.common.units import MBPS
from repro.netsim.builders import SiteSpec, build_multisite_wan, build_switched_lan
from repro.deploy import deploy_lan, deploy_wan


@pytest.fixture
def lan_dep():
    lan = build_switched_lan(8, fanout=4)
    dep = deploy_lan(lan)
    # warm discovery so per-query costs are stable
    dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
    return lan, dep


def _hit_miss(snap):
    c = snap["counters"]
    return (
        c.get("modeler.query_cache{result=hit}", 0),
        c.get("modeler.query_cache{result=miss}", 0),
    )


class TestDisabledByDefault:
    def test_no_cache_metrics_without_ttl(self, lan_dep):
        lan, dep = lan_dep
        assert dep.modeler.query_cache_ttl_s == 0.0
        with obs.scoped_registry() as reg:
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            snap = obs.export.snapshot(reg)
        assert _hit_miss(snap) == (0, 0)


class TestCachedAnswers:
    def test_cached_equals_uncached(self, lan_dep):
        lan, dep = lan_dep
        uncached = dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
        dep.modeler.query_cache_ttl_s = 30.0
        first = dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # miss
        second = dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # hit

        # data_age_s is measured against the sim clock, which advances a
        # few RPC latencies between separate fetches; every measurement
        # field must match exactly, and a cache hit must replay its
        # filling miss verbatim (age included).
        def split(ans):
            d = dataclasses.asdict(ans)
            return d.pop("data_age_s"), d

        age_u, d_u = split(uncached)
        age_1, d_1 = split(first)
        age_2, d_2 = split(second)
        assert d_1 == d_u
        assert d_2 == d_u
        assert age_1 == pytest.approx(age_u, abs=0.1)
        assert age_2 == age_1

    def test_hit_skips_master_and_is_cheaper(self, lan_dep):
        lan, dep = lan_dep
        dep.modeler.query_cache_ttl_s = 30.0
        with obs.scoped_registry() as reg:
            t0 = lan.net.now
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            miss_cost = lan.net.now - t0
            t1 = lan.net.now
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            hit_cost = lan.net.now - t1
            snap = obs.export.snapshot(reg)
        assert _hit_miss(snap) == (1, 1)
        assert hit_cost < miss_cost
        # a cache hit costs exactly the Modeler's local processing —
        # no Master RPC, no collector work
        assert hit_cost == pytest.approx(dep.modeler.rpc.local_s)

    def test_own_flow_credit_does_not_corrupt_cache(self, lan_dep):
        """flow_queries mutates the fetched graph in place to credit the
        caller's own traffic; the memoised graph must be unaffected."""
        lan, dep = lan_dep
        dep.modeler.query_cache_ttl_s = 30.0
        pairs = [(lan.hosts[0], lan.hosts[7])]
        own = [(lan.hosts[0], lan.hosts[7], 5e6)]
        plain = dep.modeler.flow_queries(pairs)[0]  # miss: fills the cache
        credited = dep.modeler.flow_queries(pairs, own_flows=own)[0]  # hit
        replay = dep.modeler.flow_queries(pairs)[0]  # hit, no credit
        assert credited.available_bps >= plain.available_bps
        assert replay.available_bps == pytest.approx(plain.available_bps)


class TestStaleness:
    def test_expiry_refetches(self, lan_dep):
        lan, dep = lan_dep
        dep.modeler.query_cache_ttl_s = 2.0
        with obs.scoped_registry() as reg:
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # miss
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # hit
            lan.net.engine.advance(5.0)  # step past the window
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])  # miss again
            snap = obs.export.snapshot(reg)
        assert _hit_miss(snap) == (1, 2)

    def test_invalidate_forces_refetch(self, lan_dep):
        lan, dep = lan_dep
        dep.modeler.query_cache_ttl_s = 30.0
        with obs.scoped_registry() as reg:
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            dep.modeler.invalidate_cache()
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            snap = obs.export.snapshot(reg)
        assert _hit_miss(snap) == (0, 2)

    def test_distinct_queries_do_not_share_entries(self, lan_dep):
        lan, dep = lan_dep
        dep.modeler.query_cache_ttl_s = 30.0
        with obs.scoped_registry() as reg:
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[7])
            dep.modeler.flow_query(lan.hosts[0], lan.hosts[3])
            snap = obs.export.snapshot(reg)
        assert _hit_miss(snap) == (0, 2)


class TestSiteScopedInvalidation:
    """``invalidate_cache(sites=...)`` evicts only entries whose
    provenance intersects the named sites; other memoized answers keep
    serving hits."""

    @pytest.fixture
    def wan_dep(self):
        w = build_multisite_wan(
            [
                SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2)
                for i in range(4)
            ]
        )
        dep = deploy_wan(w)
        dep.modeler.query_cache_ttl_s = 600.0
        pair_a = (w.host("s00", 0).ip, w.host("s01", 0).ip)
        pair_b = (w.host("s02", 0).ip, w.host("s03", 0).ip)
        # fill both entries (discovery + memoisation)
        dep.session().flow_info_many([pair_a])
        dep.session().flow_info_many([pair_b])
        return dep, pair_a, pair_b

    def test_scoped_eviction_spares_other_sites(self, wan_dep):
        dep, pair_a, pair_b = wan_dep
        with obs.scoped_registry() as reg:
            dep.session().invalidate_cache(sites=["s02"])
            dep.session().flow_info_many([pair_a])  # untouched: hit
            dep.session().flow_info_many([pair_b])  # evicted: refetch
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.query_cache{result=evicted}"] == 1
        assert c["modeler.query_cache{result=survived}"] == 1
        assert _hit_miss(snap) == (1, 1)

    def test_unknown_site_evicts_nothing(self, wan_dep):
        dep, pair_a, pair_b = wan_dep
        with obs.scoped_registry() as reg:
            dep.session().invalidate_cache(sites=["nowhere"])
            dep.session().flow_info_many([pair_a])
            dep.session().flow_info_many([pair_b])
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.query_cache{result=evicted}"] == 0
        assert c["modeler.query_cache{result=survived}"] == 2
        assert _hit_miss(snap) == (2, 0)

    def test_none_still_flushes_everything(self, wan_dep):
        dep, pair_a, pair_b = wan_dep
        with obs.scoped_registry() as reg:
            dep.session().invalidate_cache()
            dep.session().flow_info_many([pair_a])
            dep.session().flow_info_many([pair_b])
            snap = obs.export.snapshot(reg)
        assert _hit_miss(snap) == (0, 2)


class TestInvalidationShim:
    def test_old_spelling_warns_and_forwards(self, wan_dep_shim):
        dep, pair_a = wan_dep_shim
        with obs.scoped_registry() as reg:
            with pytest.warns(DeprecationWarning, match="invalidate_cache"):
                dep.modeler.invalidate_query_cache(sites=["s00"])
            dep.session().flow_info_many([pair_a])  # evicted: refetch
            snap = obs.export.snapshot(reg)
        assert snap["counters"]["modeler.query_cache{result=evicted}"] == 1
        assert _hit_miss(snap) == (0, 1)

    @pytest.fixture
    def wan_dep_shim(self):
        w = build_multisite_wan(
            [SiteSpec(f"s{i:02d}", access_bps=10 * MBPS, n_hosts=2) for i in range(2)]
        )
        dep = deploy_wan(w)
        dep.modeler.query_cache_ttl_s = 600.0
        pair_a = (w.host("s00", 0).ip, w.host("s01", 0).ip)
        dep.session().flow_info_many([pair_a])
        return dep, pair_a
