"""Tests for the jitter metric (§6.2 extension)."""

import pytest

from repro.common.units import MBPS
from repro.collectors.monitor import LinkMonitor, MonitorKey
from repro.modeler.graph import HOST, SWITCH, TopoEdge, TopoNode, TopologyGraph
from repro.modeler.maxmin import predict_flows
from repro.modeler.simplify import simplify
from repro.netsim.builders import build_switched_lan
from repro.netsim.traffic import RandomWalkTraffic
from repro.deploy import deploy_lan


class TestMonitorJitter:
    def _monitor_with_rates(self, rates, capacity):
        mon = LinkMonitor(MonitorKey("10.0.0.1", 1))
        total = 0.0
        for i, r in enumerate(rates):
            total += r / 8.0  # 1-second intervals
            mon.samples.append((float(i), 0.0, total))
        return mon

    def test_steady_load_no_jitter(self):
        mon = self._monitor_with_rates([5e6] * 20, 10e6)
        assert mon.jitter_estimate(10e6, 0.001) == pytest.approx(0.0, abs=1e-9)

    def test_fluctuating_load_has_jitter(self):
        rates = [1e6, 9e6] * 10
        mon = self._monitor_with_rates(rates, 10e6)
        assert mon.jitter_estimate(10e6, 0.001) > 1e-4

    def test_heavier_fluctuation_more_jitter(self):
        mild = self._monitor_with_rates([4e6, 6e6] * 10, 10e6)
        wild = self._monitor_with_rates([0.5e6, 9.5e6] * 10, 10e6)
        assert wild.jitter_estimate(10e6, 0.001) > mild.jitter_estimate(10e6, 0.001)

    def test_infinite_capacity_no_jitter(self):
        mon = self._monitor_with_rates([1e6] * 10, 10e6)
        assert mon.jitter_estimate(float("inf"), 0.001) == 0.0

    def test_too_little_history(self):
        mon = LinkMonitor(MonitorKey("x", 1))
        assert mon.jitter_estimate(10e6, 0.001) == 0.0


class TestPathJitterComposition:
    def _graph(self, jitters):
        g = TopologyGraph()
        g.add_node(TopoNode("h1", HOST))
        g.add_node(TopoNode("h2", HOST))
        prev = "h1"
        for i, j in enumerate(jitters):
            sid = f"s{i}"
            g.add_node(TopoNode(sid, SWITCH))
            g.add_edge(TopoEdge(prev, sid, 10e6, jitter_s=j))
            prev = sid
        g.add_edge(TopoEdge(prev, "h2", 10e6))
        return g

    def test_rss_composition(self):
        g = self._graph([0.003, 0.004])
        [p] = predict_flows(g, [("h1", "h2")])
        assert p.jitter_s == pytest.approx(0.005)  # 3-4-5 triangle

    def test_simplify_preserves_path_jitter(self):
        g = self._graph([0.003, 0.004, 0.002])
        [before] = predict_flows(g, [("h1", "h2")])
        s = simplify(g, protect={"h1", "h2"})
        [after] = predict_flows(s, [("h1", "h2")])
        assert after.jitter_s == pytest.approx(before.jitter_s)


class TestEndToEndJitter:
    def test_loaded_fluctuating_path_reports_jitter(self):
        lan = build_switched_lan(4, fanout=4)
        dep = deploy_lan(lan)
        # steady path first
        dep.modeler.flow_query(lan.hosts[0], lan.hosts[3])
        dep.start_monitoring()
        lan.net.engine.run_until(lan.net.now + 60.0)
        calm = dep.modeler.flow_query(lan.hosts[0], lan.hosts[3])
        # now make the path's load fluctuate hard
        gen = RandomWalkTraffic(
            lan.net, lan.hosts[0], lan.hosts[3],
            lo_bps=1 * MBPS, hi_bps=95 * MBPS, sigma_bps=40 * MBPS,
            step_s=1.0, seed=5,
        )
        gen.start()
        lan.net.engine.run_until(lan.net.now + 120.0)
        busy = dep.modeler.flow_query(lan.hosts[0], lan.hosts[3])
        gen.stop()
        assert busy.jitter_s > calm.jitter_s
        assert busy.jitter_s > 0
