"""Tests for declared application flows (self-interference credit)."""

import pytest

from repro.common.units import MBPS
from repro.deploy import deploy_lan
from repro.netsim.builders import build_switched_lan


@pytest.fixture
def loaded_lan():
    """A LAN where the application itself already sends 40 Mbps."""
    lan = build_switched_lan(8, fanout=8)
    dep = deploy_lan(lan)
    flow = lan.net.flows.start_flow(
        lan.hosts[0], lan.hosts[7], demand_bps=40 * MBPS, label="app"
    )
    lan.net.engine.run_until(10.0)
    return lan, dep, flow


class TestOwnFlows:
    def test_without_declaration_sees_own_traffic_as_load(self, loaded_lan):
        lan, dep, flow = loaded_lan
        [ans] = dep.modeler.flow_queries([(lan.hosts[0], lan.hosts[7])])
        assert ans.available_bps == pytest.approx(60 * MBPS, rel=0.05)

    def test_declared_flow_credited_back(self, loaded_lan):
        lan, dep, flow = loaded_lan
        [ans] = dep.modeler.flow_queries(
            [(lan.hosts[0], lan.hosts[7])],
            own_flows=[(lan.hosts[0], lan.hosts[7], 40 * MBPS)],
        )
        # with its own 40 Mbps credited, the full link is available
        assert ans.available_bps == pytest.approx(100 * MBPS, rel=0.05)

    def test_partial_declaration(self, loaded_lan):
        lan, dep, flow = loaded_lan
        [ans] = dep.modeler.flow_queries(
            [(lan.hosts[0], lan.hosts[7])],
            own_flows=[(lan.hosts[0], lan.hosts[7], 15 * MBPS)],
        )
        assert ans.available_bps == pytest.approx(75 * MBPS, rel=0.05)

    def test_unrelated_declared_flow_ignored(self, loaded_lan):
        lan, dep, flow = loaded_lan
        # a declared flow on a disjoint path must not change the answer
        [ans] = dep.modeler.flow_queries(
            [(lan.hosts[0], lan.hosts[7])],
            own_flows=[(lan.hosts[2], lan.hosts[3], 20 * MBPS)],
        )
        assert ans.available_bps == pytest.approx(60 * MBPS, rel=0.05)

    def test_credit_never_negative(self, loaded_lan):
        lan, dep, flow = loaded_lan
        # over-declaring cannot produce more than capacity
        [ans] = dep.modeler.flow_queries(
            [(lan.hosts[0], lan.hosts[7])],
            own_flows=[(lan.hosts[0], lan.hosts[7], 500 * MBPS)],
        )
        assert ans.available_bps <= 100 * MBPS * 1.001

    def test_direction_specific(self, loaded_lan):
        lan, dep, flow = loaded_lan
        # declaring the reverse direction must not free the forward one
        [ans] = dep.modeler.flow_queries(
            [(lan.hosts[0], lan.hosts[7])],
            own_flows=[(lan.hosts[7], lan.hosts[0], 40 * MBPS)],
        )
        assert ans.available_bps == pytest.approx(60 * MBPS, rel=0.05)
