"""Mutation-versioned caching on :class:`TopologyGraph`.

Paths, node views, and edge views are memoised per structural version;
every mutation (add_node, add_edge, remove_node, merge) must invalidate
them, and the cached answers must stay equal to recomputed ones.
"""

import pytest

from repro import obs
from repro.common.errors import TopologyError
from repro.modeler.graph import HOST, SWITCH, TopoEdge, TopoNode, TopologyGraph


def _chain(ids):
    g = TopologyGraph()
    for i in ids:
        g.add_node(TopoNode(i, HOST if i.startswith("h") else SWITCH, ()))
    for a, b in zip(ids, ids[1:]):
        g.add_edge(TopoEdge(a, b, 100e6, latency_s=0.001))
    return g


class TestVersioning:
    def test_mutations_bump_version(self):
        g = TopologyGraph()
        v0 = g.version
        g.add_node(TopoNode("a", HOST))
        assert g.version > v0
        v1 = g.version
        g.add_node(TopoNode("b", HOST))
        g.add_edge(TopoEdge("a", "b"))
        assert g.version > v1
        v2 = g.version
        g.remove_node("b")
        assert g.version > v2

    def test_merge_bumps_version(self):
        g = _chain(["h1", "s1"])
        other = _chain(["s1", "h2"])
        v = g.version
        g.merge(other)
        assert g.version > v


class TestPathCache:
    def test_repeated_path_hits_cache(self):
        g = _chain(["h1", "s1", "s2", "h2"])
        with obs.scoped_registry() as reg:
            first = g.path("h1", "h2")
            second = g.path("h1", "h2")
            reverse = g.path("h2", "h1")
        assert first == ["h1", "s1", "s2", "h2"]
        assert second == first
        assert reverse == list(reversed(first))
        snap = obs.export.snapshot(reg)
        assert snap["counters"]["modeler.graph.path_cache{result=miss}"] == 1
        assert snap["counters"]["modeler.graph.path_cache{result=hit}"] == 2

    def test_cached_path_is_a_copy(self):
        g = _chain(["h1", "s1", "h2"])
        p = g.path("h1", "h2")
        p.append("junk")
        assert g.path("h1", "h2") == ["h1", "s1", "h2"]

    def test_add_edge_invalidates(self):
        g = _chain(["h1", "s1", "s2", "h2"])
        assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]
        g.add_edge(TopoEdge("h1", "s2", 100e6))  # shortcut appears
        assert g.path("h1", "h2") == ["h1", "s2", "h2"]

    def test_remove_node_invalidates(self):
        g = _chain(["h1", "s1", "h2"])
        assert g.path("h1", "h2")
        g.remove_node("s1")
        with pytest.raises(TopologyError):
            g.path("h1", "h2")

    def test_merge_invalidates(self):
        g = _chain(["h1", "s1"])
        with pytest.raises(TopologyError):
            g.path("h1", "h2")  # caches the negative result
        g.merge(_chain(["s1", "h2"]))
        assert g.path("h1", "h2") == ["h1", "s1", "h2"]

    def test_negative_result_cached(self):
        g = TopologyGraph()
        g.add_node(TopoNode("a", HOST))
        g.add_node(TopoNode("b", HOST))
        with obs.scoped_registry() as reg:
            for _ in range(3):
                with pytest.raises(TopologyError):
                    g.path("a", "b")
        snap = obs.export.snapshot(reg)
        assert snap["counters"]["modeler.graph.path_cache{result=miss}"] == 1
        assert snap["counters"]["modeler.graph.path_cache{result=hit}"] == 2


class TestViewCaches:
    def test_views_stable_and_sorted(self):
        g = _chain(["h2", "h1", "s9", "s1"])  # insertion order != sorted
        assert [n.id for n in g.nodes()] == ["h1", "h2", "s1", "s9"]
        assert g.nodes() == g.nodes()  # cached and equal across calls
        assert g.edges() == g.edges()

    def test_view_mutation_does_not_corrupt_cache(self):
        g = _chain(["h1", "s1", "h2"])
        view = g.nodes()
        view.clear()
        assert [n.id for n in g.nodes()] == ["h1", "h2", "s1"]

    def test_views_refresh_after_mutation(self):
        g = _chain(["h1", "s1"])
        assert len(g.nodes()) == 2
        g.add_node(TopoNode("h2", HOST))
        assert [n.id for n in g.nodes()] == ["h1", "h2", "s1"]
        g.add_edge(TopoEdge("s1", "h2"))
        assert len(g.edges()) == 2
