"""Mutation-versioned caching on :class:`TopologyGraph`.

Paths, node views, and edge views are memoised; every mutation
(add_node, add_edge, remove_node, merge) must invalidate the entries it
could affect — and *only* those (scoped invalidation) — and cached
answers must stay equal to recomputed ones.
"""

import random

import pytest

from repro import obs
from repro.common.errors import TopologyError
from repro.modeler.graph import HOST, SWITCH, TopoEdge, TopoNode, TopologyGraph


def _chain(ids):
    g = TopologyGraph()
    for i in ids:
        g.add_node(TopoNode(i, HOST if i.startswith("h") else SWITCH, ()))
    for a, b in zip(ids, ids[1:]):
        g.add_edge(TopoEdge(a, b, 100e6, latency_s=0.001))
    return g


class TestVersioning:
    def test_mutations_bump_version(self):
        g = TopologyGraph()
        v0 = g.version
        g.add_node(TopoNode("a", HOST))
        assert g.version > v0
        v1 = g.version
        g.add_node(TopoNode("b", HOST))
        g.add_edge(TopoEdge("a", "b"))
        assert g.version > v1
        v2 = g.version
        g.remove_node("b")
        assert g.version > v2

    def test_merge_bumps_version(self):
        g = _chain(["h1", "s1"])
        other = _chain(["s1", "h2"])
        v = g.version
        g.merge(other)
        assert g.version > v


class TestPathCache:
    def test_repeated_path_hits_cache(self):
        g = _chain(["h1", "s1", "s2", "h2"])
        with obs.scoped_registry() as reg:
            first = g.path("h1", "h2")
            second = g.path("h1", "h2")
            reverse = g.path("h2", "h1")
        assert first == ["h1", "s1", "s2", "h2"]
        assert second == first
        assert reverse == list(reversed(first))
        snap = obs.export.snapshot(reg)
        assert snap["counters"]["modeler.graph.path_cache{result=miss}"] == 1
        assert snap["counters"]["modeler.graph.path_cache{result=hit}"] == 2

    def test_cached_path_is_a_copy(self):
        g = _chain(["h1", "s1", "h2"])
        p = g.path("h1", "h2")
        p.append("junk")
        assert g.path("h1", "h2") == ["h1", "s1", "h2"]

    def test_add_edge_invalidates(self):
        g = _chain(["h1", "s1", "s2", "h2"])
        assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]
        g.add_edge(TopoEdge("h1", "s2", 100e6))  # shortcut appears
        assert g.path("h1", "h2") == ["h1", "s2", "h2"]

    def test_remove_node_invalidates(self):
        g = _chain(["h1", "s1", "h2"])
        assert g.path("h1", "h2")
        g.remove_node("s1")
        with pytest.raises(TopologyError):
            g.path("h1", "h2")

    def test_merge_invalidates(self):
        g = _chain(["h1", "s1"])
        with pytest.raises(TopologyError):
            g.path("h1", "h2")  # caches the negative result
        g.merge(_chain(["s1", "h2"]))
        assert g.path("h1", "h2") == ["h1", "s1", "h2"]

    def test_negative_result_cached(self):
        g = TopologyGraph()
        g.add_node(TopoNode("a", HOST))
        g.add_node(TopoNode("b", HOST))
        with obs.scoped_registry() as reg:
            for _ in range(3):
                with pytest.raises(TopologyError):
                    g.path("a", "b")
        snap = obs.export.snapshot(reg)
        assert snap["counters"]["modeler.graph.path_cache{result=miss}"] == 1
        assert snap["counters"]["modeler.graph.path_cache{result=hit}"] == 2


def _two_chains():
    """Two disjoint chains: h1-s1-s2-h2 and h3-s3-s4-h4."""
    g = TopologyGraph()
    for i in ["h1", "s1", "s2", "h2", "h3", "s3", "s4", "h4"]:
        g.add_node(TopoNode(i, HOST if i.startswith("h") else SWITCH, ()))
    for a, b in [
        ("h1", "s1"), ("s1", "s2"), ("s2", "h2"),
        ("h3", "s3"), ("s3", "s4"), ("s4", "h4"),
    ]:
        g.add_edge(TopoEdge(a, b, 100e6))
    return g


def _cold_copy(g):
    """Rebuild the same topology with an empty path cache."""
    h = TopologyGraph()
    for n in g.nodes():
        h.add_node(TopoNode(n.id, n.kind, n.ips))
    for e in g.edges():
        h.add_edge(
            TopoEdge(
                e.a, e.b, e.capacity_bps, e.util_ab_bps, e.util_ba_bps,
                e.latency_s, e.jitter_s,
            )
        )
    return h


class TestScopedInvalidation:
    """Mutations drop only the cached pairs they could affect."""

    def test_unrelated_new_edge_keeps_cached_paths(self):
        g = _two_chains()
        assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]
        assert g.path("h3", "h4") == ["h3", "s3", "s4", "h4"]
        with obs.scoped_registry() as reg:
            g.add_edge(TopoEdge("h3", "s4", 100e6))  # shortcut in chain 2
            # chain 1's entry survived: answered without a recompute
            assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]
            # chain 2's entry was dropped and re-derives the shorter route
            assert g.path("h3", "h4") == ["h3", "s4", "h4"]
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.graph.scoped_invalidation{result=dropped}"] == 1
        assert c["modeler.graph.scoped_invalidation{result=survived}"] == 1
        assert c["modeler.graph.path_cache{result=hit}"] == 1
        assert c["modeler.graph.path_cache{result=miss}"] == 1

    def test_annotation_readd_drops_nothing(self):
        g = _two_chains()
        assert g.path("h1", "h2")
        with obs.scoped_registry() as reg:
            # same structural edge, fresh utilization: a measurement
            # refresh, not a topology change
            g.add_edge(TopoEdge("s1", "s2", 100e6, util_ab_bps=5e6))
            assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.graph.path_cache{result=hit}"] == 1
        assert "modeler.graph.path_cache{result=miss}" not in c
        assert g.edge("s1", "s2").util_ab_bps == 5e6

    def test_new_edge_drops_connected_negatives_only(self):
        g = _two_chains()
        with pytest.raises(TopologyError):
            g.path("h1", "h3")  # cross-chain: cached "no path"
        g.add_node(TopoNode("h9", HOST))  # isolated third component
        with pytest.raises(TopologyError):
            g.path("h1", "h9")  # cached "no path" to the isolated node
        g.add_edge(TopoEdge("s2", "s3", 100e6))  # bridge the two chains
        with obs.scoped_registry() as reg:
            # bridged pair was dropped and now resolves
            assert g.path("h1", "h3") == ["h1", "s1", "s2", "s3", "h3"]
            # the isolated node is still unreachable: entry survived
            with pytest.raises(TopologyError):
                g.path("h1", "h9")
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.graph.path_cache{result=miss}"] == 1
        assert c["modeler.graph.path_cache{result=hit}"] == 1

    def test_remove_node_drops_only_traversing_pairs(self):
        g = _two_chains()
        assert g.path("h1", "h2")
        assert g.path("h3", "h4")
        with obs.scoped_registry() as reg:
            g.remove_node("s3")
            assert g.path("h1", "h2") == ["h1", "s1", "s2", "h2"]  # hit
            with pytest.raises(TopologyError):
                g.path("h3", "h4")  # dropped, and the route is gone
            snap = obs.export.snapshot(reg)
        c = snap["counters"]
        assert c["modeler.graph.scoped_invalidation{result=dropped}"] == 1
        assert c["modeler.graph.scoped_invalidation{result=survived}"] == 1
        assert c["modeler.graph.path_cache{result=hit}"] == 1
        assert c["modeler.graph.path_cache{result=miss}"] == 1

    def test_copy_carries_cache(self):
        g = _two_chains()
        assert g.path("h1", "h2")
        cp = g.copy()
        with obs.scoped_registry() as reg:
            assert cp.path("h1", "h2") == ["h1", "s1", "s2", "h2"]
            snap = obs.export.snapshot(reg)
        assert snap["counters"]["modeler.graph.path_cache{result=hit}"] == 1

    def test_randomized_warm_equals_cold(self):
        """Soundness under arbitrary mutation/query interleavings.

        After every mutation, warm (cached) answers must agree with a
        cold rebuild on reachability and path *length*; exact node
        sequences may differ after ``remove_node`` (a surviving entry is
        a correct shortest path, but equal-length ties can fall
        differently than a fresh recompute), so the path itself is
        checked for validity edge by edge instead.
        """
        rng = random.Random(7)
        ids = [f"n{i}" for i in range(9)]
        g = TopologyGraph()
        alive = set()

        def ensure(node_id):
            if node_id not in alive:
                g.add_node(TopoNode(node_id, HOST, ()))
                alive.add(node_id)

        for i in ids[:4]:
            ensure(i)
        for _ in range(150):
            op = rng.random()
            if op < 0.45:
                a, b = rng.sample(ids, 2)
                ensure(a)
                ensure(b)
                g.add_edge(TopoEdge(a, b, 100e6))
            elif op < 0.60 and len(alive) > 2:
                victim = rng.choice(sorted(alive))
                g.remove_node(victim)
                alive.discard(victim)
            else:
                ensure(rng.choice(ids))
            cold = _cold_copy(g)
            for _ in range(3):
                x, y = rng.sample(sorted(alive), 2) if len(alive) >= 2 else ("n0", "n1")
                try:
                    warm_path = g.path(x, y)
                except TopologyError:
                    warm_path = None
                try:
                    cold_path = cold.path(x, y)
                except TopologyError:
                    cold_path = None
                assert (warm_path is None) == (cold_path is None), (x, y)
                if warm_path is not None:
                    assert len(warm_path) == len(cold_path), (x, y)
                    assert warm_path[0] == x and warm_path[-1] == y
                    for u, v in zip(warm_path, warm_path[1:]):
                        assert g.has_edge(u, v), (warm_path, u, v)


class TestViewCaches:
    def test_views_stable_and_sorted(self):
        g = _chain(["h2", "h1", "s9", "s1"])  # insertion order != sorted
        assert [n.id for n in g.nodes()] == ["h1", "h2", "s1", "s9"]
        assert g.nodes() == g.nodes()  # cached and equal across calls
        assert g.edges() == g.edges()

    def test_view_mutation_does_not_corrupt_cache(self):
        g = _chain(["h1", "s1", "h2"])
        view = g.nodes()
        view.clear()
        assert [n.id for n in g.nodes()] == ["h1", "h2", "s1"]

    def test_views_refresh_after_mutation(self):
        g = _chain(["h1", "s1"])
        assert len(g.nodes()) == 2
        g.add_node(TopoNode("h2", HOST))
        assert [n.id for n in g.nodes()] == ["h1", "h2", "s1"]
        g.add_edge(TopoEdge("s1", "h2"))
        assert len(g.edges()) == 2
