"""Smoke tests: every shipped example must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "mirror_selection",
        "video_streaming",
        "grid_monitoring",
        "wireless_roaming",
        "figure2_deployment",
    } <= names
