#!/usr/bin/env python
"""Compute-node selection: the §6.3 application class.

A parallel job needs 4 nodes with good pairwise connectivity and idle
CPUs.  The selector asks Remos for node loads and a summary topology,
grows the best-connected set greedily, then verifies the choice with a
joint all-pairs flow query (the job's own flows contend with each
other — per-pair numbers alone over-promise).

Run with::

    python examples/node_selection.py
"""

import numpy as np

from repro.apps import JobSpec, NodeSelector
from repro.common.units import MBPS, fmt_rate
from repro.deploy import deploy_wan
from repro.netsim import RandomWalkTraffic, SiteSpec, build_multisite_wan
from repro.netsim.agents import attach_trace
from repro.rps.hostload import host_load_trace


def main() -> None:
    world = build_multisite_wan(
        [
            SiteSpec("alpha", access_bps=40 * MBPS, n_hosts=5),
            SiteSpec("beta", access_bps=40 * MBPS, n_hosts=5),
            SiteSpec("gamma", access_bps=2 * MBPS, n_hosts=5),
        ]
    )
    remos = deploy_wan(world)

    candidates = [world.host(s, i) for s in ("alpha", "beta", "gamma")
                  for i in range(4)]
    # every node carries some load; two alpha nodes are swamped
    for k, h in enumerate(candidates):
        attach_trace(h, host_load_trace(2000, mean=0.4, seed=k), dt=1.0)
    world.host("alpha", 0).load_source = lambda t: 6.0
    world.host("alpha", 1).load_source = lambda t: 6.0
    # and gamma's thin access link carries cross traffic
    RandomWalkTraffic(
        world.net, world.host("gamma", 4), world.host("beta", 4),
        lo_bps=0.2 * MBPS, hi_bps=1.5 * MBPS, sigma_bps=0.5 * MBPS,
        step_s=2.0, seed=3,
    ).start()
    world.net.engine.run_until(30.0)

    selector = NodeSelector(remos.modeler, candidates)
    spec = JobSpec(n_nodes=4, min_pair_bandwidth_bps=5 * MBPS, max_load=2.0)
    placement = selector.select(spec, verify=True)

    print("job: 4 nodes, >= 5 Mbps between every pair, load <= 2.0\n")
    print("chosen nodes:")
    for ip in placement.hosts:
        host = world.net.node_for_ip(ip)
        print(f"  {ip:<14} ({host.name}, load {host.load(world.net.now):.2f})")
    print(f"\nworst pairwise bandwidth : {fmt_rate(placement.min_pair_bandwidth_bps)}")
    print(f"worst pairwise latency   : {placement.max_latency_s * 1000:.1f} ms")
    print(f"highest node load        : {placement.max_load:.2f}")
    print(f"joint all-pairs verify   : {fmt_rate(placement.verified_joint_bps)}")
    print("\n(the joint figure is what the job actually gets once its own")
    print(" flows contend — the per-pair number alone would over-promise)")


if __name__ == "__main__":
    main()
