#!/usr/bin/env python
"""Mirror-server selection: the paper's §5.4 application.

A client must fetch a 3 MB file from one of several replicas whose
paths fluctuate under cross traffic.  It asks Remos for the available
bandwidth to each, downloads from the best, and we check how often
Remos picked the true winner.

Run with::

    python examples/mirror_selection.py
"""

from repro.apps import MirrorClient
from repro.collectors.benchmark_collector import BenchmarkConfig
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim import RandomWalkTraffic, SiteSpec, build_multisite_wan

N_TRIALS = 12


def main() -> None:
    world = build_multisite_wan(
        [
            SiteSpec("client", access_bps=50 * MBPS, n_hosts=3),
            SiteSpec("mirror-east", access_bps=4.0 * MBPS, n_hosts=3),
            SiteSpec("mirror-west", access_bps=3.5 * MBPS, n_hosts=3),
            SiteSpec("mirror-eu", access_bps=1.5 * MBPS, n_hosts=3),
        ]
    )
    remos = deploy_wan(
        world,
        bench_config=BenchmarkConfig(probe_bytes=100_000, max_age_s=60.0),
    )

    # fluctuating cross traffic on every mirror's access link
    for i, site in enumerate(("mirror-east", "mirror-west", "mirror-eu")):
        RandomWalkTraffic(
            world.net, world.host(site, 1), world.host("client", 1),
            lo_bps=0.2 * MBPS, hi_bps=2.5 * MBPS, sigma_bps=0.8 * MBPS,
            step_s=2.0, seed=i, label=f"x:{site}",
        ).start()
    world.net.engine.run_until(60.0)

    client = MirrorClient(
        remos.modeler, world.net, world.host("client", 0),
        {s: world.host(s, 0) for s in ("mirror-east", "mirror-west", "mirror-eu")},
    )

    print(f"{'trial':>5}  {'chosen':>12}  {'fastest':>12}  "
          f"{'chosen Mbps':>11}  {'best?':>5}")
    for k in range(N_TRIALS):
        r = client.run_trial()
        print(
            f"{k + 1:>5}  {r.chosen:>12}  {r.fastest:>12}  "
            f"{r.achieved_bps[r.chosen] / MBPS:>11.2f}  "
            f"{'yes' if r.chose_best else 'NO':>5}"
        )
        world.net.engine.run_until(world.net.now + 30.0)

    print(f"\nRemos picked the fastest mirror in "
          f"{100 * client.best_pick_rate():.0f}% of {N_TRIALS} trials")
    print("average achieved bandwidth by Remos rank:")
    for rank, avg in enumerate(client.rank_averages(), start=1):
        print(f"  choice #{rank}: {avg / MBPS:.2f} Mbps")


if __name__ == "__main__":
    main()
