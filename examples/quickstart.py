#!/usr/bin/env python
"""Quickstart: stand up Remos on a simulated two-site grid and query it.

Run with::

    python examples/quickstart.py

Walks through the core API: build a topology, deploy the collector
stack, issue topology and flow queries through a RemosSession.
"""

from repro.common.units import MBPS, fmt_rate
from repro.deploy import deploy_wan
from repro.netsim import SiteSpec, build_multisite_wan


def main() -> None:
    # 1. A world: two sites joined by a WAN, the first with a fast
    #    access link, the second throttled to 2 Mbps.
    world = build_multisite_wan(
        [
            SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
            SiteSpec("eth", access_bps=2 * MBPS, n_hosts=3),
        ]
    )

    # 2. Deploy Remos: per site an SNMP collector (+ bridge collector
    #    for the switched LAN) and a benchmark collector; one master;
    #    one modeler.  This is Figure 2 of the paper in miniature.
    remos = deploy_wan(world)

    # 3. Some background traffic so there is something to observe.
    world.net.flows.start_flow(
        world.host("cmu", 1), world.host("eth", 1), demand_bps=0.5 * MBPS
    )
    world.net.engine.run_until(30.0)

    # 4. A topology query: the virtual topology between two hosts,
    #    simplified the way an application wants to see it.
    session = remos.session()
    client, server = world.host("cmu", 0), world.host("eth", 0)
    topo = session.topology([client, server]).graph
    print("virtual topology:")
    for node in topo.nodes():
        print(f"  node {node.id:24s} kind={node.kind}")
    for edge in topo.edges():
        print(
            f"  edge {edge.a} -- {edge.b}: capacity {fmt_rate(edge.capacity_bps)}"
        )

    # 5. A flow query: what bandwidth would a new transfer get?  Every
    #    answer carries a QueryStatus; `ok` means complete and fresh.
    answer = session.flow_info(client, server)
    print(f"\nflow {answer.src} -> {answer.dst} (status: {answer.status}):")
    print(f"  available bandwidth : {fmt_rate(answer.available_bps)}")
    print(f"  bottleneck residual : {fmt_rate(answer.bottleneck_bps)}")
    print(f"  path                : {' -> '.join(answer.path)}")
    print(f"  latency             : {answer.latency_s * 1000:.1f} ms")

    # 6. Joint queries model contention: two flows into the same
    #    2 Mbps site split it fairly.
    answers = session.flow_info_many(
        [
            (world.host("cmu", 0), world.host("eth", 0)),
            (world.host("cmu", 1), world.host("eth", 2)),
        ]
    )
    print("\ntwo simultaneous flows into the 2 Mbps site:")
    for a in answers:
        print(f"  {a.src} -> {a.dst}: {fmt_rate(a.available_bps)}")


if __name__ == "__main__":
    main()
