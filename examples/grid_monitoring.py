#!/usr/bin/env python
"""Grid monitoring: the full architecture on a three-site grid.

Demonstrates the pieces the simpler examples skip:

* periodic SNMP polling building utilization history,
* predictive flow queries (Modeler -> RPS client-server service),
* streaming host-load prediction with evaluator-driven refits,
* a hierarchical Master (master-of-masters), and
* the ASCII wire protocol the components speak.

Run with::

    python examples/grid_monitoring.py
"""

import numpy as np

from repro.collectors.base import TopologyRequest
from repro.collectors.directory import CollectorDirectory
from repro.collectors.master import MasterCollector
from repro.collectors.protocol import decode_topology, encode_topology
from repro.common.units import MBPS, fmt_rate
from repro.deploy import deploy_wan
from repro.netsim import RandomWalkTraffic, SiteSpec, build_multisite_wan
from repro.netsim.agents import attach_trace
from repro.rps import (
    HostLoadSensor,
    RpsPredictionService,
    StreamingPredictor,
    host_load_trace,
)


def main() -> None:
    world = build_multisite_wan(
        [
            SiteSpec("compute", access_bps=20 * MBPS, n_hosts=4),
            SiteSpec("data", access_bps=8 * MBPS, n_hosts=4),
            SiteSpec("viz", access_bps=4 * MBPS, n_hosts=4),
        ]
    )
    remos = deploy_wan(world)
    remos.modeler.prediction_service = RpsPredictionService("AR(16)")

    # background load: cross traffic + a host-load trace on a compute node
    RandomWalkTraffic(
        world.net, world.host("data", 1), world.host("viz", 1),
        lo_bps=0.5 * MBPS, hi_bps=3 * MBPS, sigma_bps=1 * MBPS,
        step_s=2.0, seed=3, label="x:bulk",
    ).start()
    node = world.host("compute", 0)
    trace = host_load_trace(4000, hurst=0.8, smoothing_s=5.0, seed=7)
    attach_trace(node, trace, dt=1.0)

    # 1. periodic monitoring: discover the paths once, then poll
    session = remos.session()
    session.flow_info(world.host("data", 0), world.host("viz", 0))
    remos.start_monitoring()

    # 2. streaming host-load prediction on the compute node
    predictor = StreamingPredictor("AR(16)", trace[:600], horizon=10)
    sensor = HostLoadSensor(world.net, node, predictor, rate_hz=1.0)
    sensor.start()

    world.net.engine.run_until(world.net.now + 300.0)

    # 3. a predictive flow query: forecast of the bottleneck's residual
    ans = session.flow_info(
        world.host("data", 0), world.host("viz", 0), predict=True
    )
    print("predictive flow query data -> viz:")
    print(f"  measured available : {fmt_rate(ans.available_bps)}")
    if ans.predicted_bps is not None:
        print(f"  RPS forecast       : {fmt_rate(ans.predicted_bps)} "
              f"(+-{np.sqrt(ans.predicted_var) / MBPS:.2f} Mbps)")

    # 4. host-load forecast from the streaming pipeline
    fc = predictor.forecast()
    print(f"\ncompute node load now {node.load(world.net.now):.2f}; "
          f"10-step forecast {fc.values[-1]:.2f} "
          f"(model refits so far: {predictor.refits})")
    print(f"host-load sensor CPU use at 1 Hz: "
          f"{100 * sensor.cpu_fraction():.3f}% of one core")

    # 5. hierarchy: a top-level master that delegates to this grid's master
    top_dir = CollectorDirectory()
    top_dir.register(remos.master, ["10.0.0.0/8", "192.168.0.0/16"],
                     site="grid-a", remote=True)
    top = MasterCollector("top-master", world.net, top_dir)
    resp = top.topology(
        TopologyRequest.of([world.host("compute", 0).ip, world.host("viz", 0).ip])
    )
    print(f"\ntop-level master answered with {len(resp.graph)} nodes, "
          f"{resp.graph.num_edges()} edges")

    # 6. the wire protocol: what actually crosses the TCP socket
    wire = encode_topology(resp.graph)
    again = decode_topology(wire)
    print(f"ASCII protocol round-trip: {len(wire.splitlines())} lines, "
          f"{len(again)} nodes parsed back")
    print("\nfirst lines on the wire:")
    for line in wire.splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
