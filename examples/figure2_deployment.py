#!/usr/bin/env python
"""The paper's Figure 2, reconstructed.

"Shown here are applications running at CMU and ETH making use of
resources at CMU, ETH, and BBN.  Each application is using prediction
services … The applications at CMU are using machines at CMU and BBN,
and the application at ETH is using machines at ETH and BBN."

Three sites; CMU and ETH each run their own Master Collector and
Modeler ("a different Master Collector is used in each network where
Remos applications are running"); BBN hosts resources and collectors
but no application.  Benchmark traffic crosses the Internet exactly as
the figure draws it.

Run with::

    python examples/figure2_deployment.py
"""

from repro.collectors.base import RpcCostModel
from repro.collectors.directory import CollectorDirectory
from repro.collectors.master import MasterCollector
from repro.common.units import MBPS, fmt_rate
from repro.deploy import deploy_wan
from repro.inspect import deployment_report
from repro.modeler.api import Modeler
from repro.netsim import SiteSpec, build_multisite_wan
from repro.rps.service import RpsPredictionService
from repro.session import RemosSession


def main() -> None:
    world = build_multisite_wan(
        [
            SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=4),
            SiteSpec("eth", access_bps=8 * MBPS, n_hosts=4),
            SiteSpec("bbn", access_bps=5 * MBPS, n_hosts=4),
        ]
    )
    base = deploy_wan(world)  # per-site collectors + benchmark mesh

    # Each application site gets its own Master + Modeler, sharing the
    # same collectors through the same directory.
    def master_for(site: str) -> Modeler:
        directory = CollectorDirectory()
        for reg in base.directory.registrations():
            directory.register(
                reg.collector, [str(p) for p in reg.prefixes], reg.site,
                remote=(reg.site != site),
            )
        for bench in base.benchmarks.values():
            directory.register_benchmark(bench)
        master = MasterCollector(
            f"master-{site}", world.net, directory, base.master.borders,
            RpcCostModel(),
        )
        modeler = Modeler(master, world.net)
        modeler.prediction_service = RpsPredictionService("AR(16)")
        return modeler

    cmu_modeler = master_for("cmu")
    eth_modeler = master_for("eth")
    world.net.engine.run_until(30.0)

    print("== the CMU application (machines at CMU and BBN) ==")
    ans = RemosSession(cmu_modeler).flow_info(
        world.host("cmu", 0), world.host("bbn", 0)
    )
    print(f"cmu -> bbn: {fmt_rate(ans.available_bps)} via {' -> '.join(ans.path)}")

    print("\n== the ETH application (machines at ETH and BBN) ==")
    ans = RemosSession(eth_modeler).flow_info(
        world.host("eth", 0), world.host("bbn", 1)
    )
    print(f"eth -> bbn: {fmt_rate(ans.available_bps)} via {' -> '.join(ans.path)}")

    # both applications share the same collectors: the BBN site
    # collector served queries from both masters
    bbn_coll = base.snmp_collectors["bbn"]
    print(f"\nBBN's SNMP collector served {bbn_coll.queries_served} queries "
          f"from two independent masters")

    print("\n" + deployment_report(base))


if __name__ == "__main__":
    main()
