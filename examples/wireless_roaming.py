#!/usr/bin/env python
"""Wireless roaming: mobile hosts, handoffs, and location monitoring.

The paper lists a wireless-LAN collector as under development and
mobile-host support as ongoing work (§3.1, §6.2).  This example runs
that scenario: hosts roam between basestations mid-transfer, the
Wireless Collector's periodic monitoring notices each handoff, and
flow queries reflect the new cell's shared-medium bandwidth.

Run with::

    python examples/wireless_roaming.py
"""

from repro.common.units import MBPS, fmt_rate
from repro.deploy import deploy_wireless
from repro.netsim import build_wireless_lan
from repro.netsim.wireless import associate, current_basestation


def main() -> None:
    wl = build_wireless_lan(n_basestations=3, n_wireless_hosts=6)
    remos = deploy_wireless(wl, location_monitor_s=5.0)
    wc = remos.wireless_collectors["wlan"]
    net = wl.net

    roamer = wl.wireless_hosts[0]
    mac = roamer.interfaces[0].mac
    server = wl.wired_hosts[0]

    print("initial cells:")
    for name, cell in sorted(wc.cells.items()):
        print(f"  {name}: {cell.station_count} stations at "
              f"{fmt_rate(cell.air_rate_bps)} air rate")

    # a transfer is running when the host roams
    flow = net.flows.start_flow(roamer, server, label="download")
    print(f"\n{roamer.name} downloading at {fmt_rate(flow.rate_bps)} "
          f"in cell {current_basestation(roamer).name}")

    net.engine.run_until(20.0)
    print(f"\n--- t={net.now:.0f}s: {roamer.name} roams to ap2 ---")
    broken = associate(net, roamer, wl.basestations[2])
    remos.world.refresh_device(wl.basestations[0])
    remos.world.refresh_device(wl.basestations[2])
    print(f"handoff broke {len(broken)} flow(s) (as a real handoff would)")

    # the periodic monitor notices within one period
    net.engine.run_until(30.0)
    print(f"collector has seen {wc.handoffs_seen} handoff(s); "
          f"it now places {roamer.name} in cell {wc.locate(mac).name}")

    # reconnect and ask Remos what the new cell offers
    flow2 = net.flows.start_flow(roamer, server, label="download2")
    ans = remos.session().flow_info(roamer, server)
    print(f"\nafter reconnect: flow gets {fmt_rate(flow2.rate_bps)}; "
          f"Remos reports {fmt_rate(ans.available_bps)} available")
    print(f"expected fair share in {wc.locate(mac).name}: "
          f"{fmt_rate(wc.expected_bandwidth(mac))}")


if __name__ == "__main__":
    main()
