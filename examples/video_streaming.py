#!/usr/bin/env python
"""Adaptive video streaming: the paper's §5.5 application.

A video client asks Remos for the available bandwidth to each replica
server, streams from the best one, and the server adapts by dropping
low-priority (B, then P) frames when the path cannot carry the full
stream.  We also show the Fig. 11 analysis: the client's perceived
bandwidth averaged over different windows.

Run with::

    python examples/video_streaming.py
"""

from repro.apps import VideoSpec, choose_and_stream
from repro.common.units import MBPS
from repro.deploy import deploy_wan
from repro.netsim import SiteSpec, build_multisite_wan


def main() -> None:
    world = build_multisite_wan(
        [
            SiteSpec("client", access_bps=100 * MBPS, n_hosts=2),
            SiteSpec("near", access_bps=1.2 * MBPS, n_hosts=2),
            SiteSpec("far", access_bps=0.4 * MBPS, n_hosts=2),
            SiteSpec("dsl", access_bps=0.15 * MBPS, n_hosts=2),
        ]
    )
    remos = deploy_wan(world)
    world.net.engine.run_until(10.0)

    # ~0.6 Mbps movie: more than any server can push, so every stream
    # adapts by dropping frames
    spec = VideoSpec(duration_s=30.0, fps=24.0, i_frame_bytes=11000.0, seed=1)
    print(f"movie: {spec.duration_s:.0f}s at {spec.fps:.0f} fps, "
          f"nominal rate {spec.nominal_rate_bps() / MBPS:.2f} Mbps\n")

    servers = {s: world.host(s, 0) for s in ("near", "far", "dsl")}
    picked, results = choose_and_stream(
        remos.modeler, world.net, world.host("client", 0), servers, spec
    )

    print(f"Remos picked: {picked}\n")
    print(f"{'server':>8}  {'frames':>12}  {'I-frames kept':>13}")
    for site, res in sorted(results.items(), key=lambda kv: -kv[1].frames_received):
        total = res.total_frames
        i_kept = sum(1 for f in res.received if f.kind == "I")
        i_total = sum(1 for _, k, _ in spec.frames() if k == "I")
        mark = " <- picked" if site == picked else ""
        print(f"{site:>8}  {res.frames_received:>5}/{total:<6} "
              f"{i_kept:>6}/{i_total:<6}{mark}")

    print("\nclient-perceived bandwidth from the picked server:")
    for window in (1.0, 2.0, 10.0):
        _, bw = results[picked].perceived_bandwidth(window)
        print(f"  {window:>4.0f}s windows: mean {bw.mean() / MBPS:.3f} Mbps, "
              f"sd {bw.std() / MBPS:.3f}")


if __name__ == "__main__":
    main()
