"""Max-min flow calculations on virtual topologies.

"The Modeler performs max-min flow calculations on the Collector's
topologies to determine solutions to flow queries" (paper §3.2).  Given
a :class:`~repro.modeler.graph.TopologyGraph` annotated with capacities
and measured utilizations, this module answers: *what bandwidth would a
set of new flows receive?*

Each edge direction contributes a constraint with residual capacity
``capacity - measured utilization``; requested flows follow shortest
paths; rates come from the same progressive-filling water-fill the
substrate uses (:func:`repro.netsim.flows.max_min_allocation`), so the
Modeler's predictions and the fluid ground truth agree by construction
when measurements are accurate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.common.errors import QueryError, TopologyError
from repro.netsim.flows import max_min_allocation
from repro.modeler.graph import TopologyGraph


class _DirCap:
    """A directed edge constraint: quacks like a netsim Channel."""

    __slots__ = ("capacity_bps", "label")

    def __init__(self, capacity_bps: float, label: str) -> None:
        self.capacity_bps = capacity_bps
        self.label = label

    def __repr__(self) -> str:
        return f"_DirCap({self.label}, {self.capacity_bps:.0f}bps)"


@dataclass
class FlowPrediction:
    """Answer for one requested flow."""

    src: str
    dst: str
    #: max-min fair rate the new flow would receive
    rate_bps: float
    #: residual bandwidth of the tightest edge, ignoring other requested flows
    bottleneck_bps: float
    #: raw path capacity (min ifSpeed), ignoring utilization
    capacity_bps: float
    latency_s: float
    #: end-to-end delay variation (independent per-link jitters compose
    #: by root-sum-of-squares)
    jitter_s: float
    path: tuple[str, ...]


def predict_flows(
    graph: TopologyGraph,
    pairs: list[tuple[str, str]],
    demands: list[float] | None = None,
) -> list[FlowPrediction]:
    """Max-min rates for a set of requested flows on a measured topology.

    ``demands`` caps each flow (default: greedy).  Raises
    :class:`~repro.common.errors.QueryError` if any pair has no path.
    Route resolution leans on the graph's shortest-path cache, so a
    planner pass that already checked answerability makes every lookup
    here a cache hit.
    """
    if demands is None:
        demands = [math.inf] * len(pairs)
    if len(demands) != len(pairs):
        raise ValueError("demands must match pairs")

    # One directed constraint object per (edge, direction), shared
    # across flows so contention is modelled.
    caps: dict[tuple[str, str], _DirCap] = {}

    def dircap(a: str, b: str) -> _DirCap:
        key = (a, b)
        if key not in caps:
            e = graph.edge(a, b)
            residual = e.available_from(a)
            caps[key] = _DirCap(residual, f"{a}->{b}")
        return caps[key]

    paths: list[list[_DirCap]] = []
    node_paths: list[list[str]] = []
    for src, dst in pairs:
        try:
            nodes = graph.path(src, dst)
        except TopologyError as exc:
            raise QueryError(str(exc)) from exc
        node_paths.append(nodes)
        paths.append([dircap(a, b) for a, b in zip(nodes, nodes[1:])])

    obs.histogram("modeler.maxmin.flows").observe(len(pairs))
    obs.histogram("modeler.maxmin.constraints").observe(len(caps))
    with obs.span("modeler.maxmin"):
        rates = max_min_allocation(paths, demands)

    out: list[FlowPrediction] = []
    for (src, dst), nodes, rate in zip(pairs, node_paths, rates):
        bottleneck = math.inf
        capacity = math.inf
        latency = 0.0
        jitter_sq = 0.0
        for a, b in zip(nodes, nodes[1:]):
            e = graph.edge(a, b)
            bottleneck = min(bottleneck, e.available_from(a))
            capacity = min(capacity, e.capacity_bps)
            latency += e.latency_s
            jitter_sq += e.jitter_s**2
        out.append(
            FlowPrediction(
                src, dst, rate, bottleneck, capacity, latency,
                math.sqrt(jitter_sq), tuple(nodes),
            )
        )
    return out
