"""Flow-query planning: dedupe and merge overlapping query pairs.

The session API answers many flows at once
(:meth:`repro.session.RemosSession.flow_info_many`), and collective
communication patterns repeat themselves: all-to-one reductions share a
destination, striped transfers repeat whole (src, dst) pairs, neighbour
exchanges reuse endpoints.  Before any Master delegation the planner
canonicalises one batch:

* endpoints are deduplicated into one sorted ``involved`` tuple, so a
  batch costs exactly one fragment fetch no matter how many pairs
  repeat a host;
* duplicate (src, dst) pairs are merged into one **unique pair** whose
  shortest path and answerability are resolved once and fanned back
  out to every instance.

Planning never changes an answer.  In particular, duplicates are *not*
collapsed for the allocation itself: k requested instances of the same
pair are k flows in the joint max-min calculation and legitimately
split their bottleneck — only the path/fetch work is shared.

Merge effectiveness is observable: ``modeler.planner.pairs`` counts
``result="unique"`` vs ``result="merged"`` instances per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro import obs


@dataclass(frozen=True)
class FlowQueryPlan:
    """One planned ``flow_info_many`` batch."""

    #: requested (src ip, dst ip) pairs, original order
    pairs: tuple[tuple[str, str], ...]
    #: deduplicated pairs, first-occurrence order
    unique_pairs: tuple[tuple[str, str], ...]
    #: per-instance index into ``unique_pairs``
    instance_of: tuple[int, ...]
    #: sorted deduplicated endpoints (plus any extra ips the caller
    #: declares, e.g. own-flow endpoints) — the Master fetch set
    involved: tuple[str, ...]

    @property
    def merged(self) -> int:
        """Instances answered by another instance's path resolution."""
        return len(self.pairs) - len(self.unique_pairs)


def plan_flow_pairs(
    ip_pairs: "Iterable[tuple[str, str]]",
    extra_ips: "Iterable[str]" = (),
) -> FlowQueryPlan:
    """Plan one batch of flow-query pairs (see module docstring)."""
    pairs = tuple(ip_pairs)
    index: dict[tuple[str, str], int] = {}
    unique: list[tuple[str, str]] = []
    instance_of: list[int] = []
    for pair in pairs:
        k = index.get(pair)
        if k is None:
            k = index[pair] = len(unique)
            unique.append(pair)
        instance_of.append(k)
    involved = sorted({ip for pair in pairs for ip in pair} | set(extra_ips))
    if unique:
        obs.counter("modeler.planner.pairs", result="unique").inc(len(unique))
    merged = len(pairs) - len(unique)
    if merged:
        obs.counter("modeler.planner.pairs", result="merged").inc(merged)
    return FlowQueryPlan(
        pairs=pairs,
        unique_pairs=tuple(unique),
        instance_of=tuple(instance_of),
        involved=tuple(involved),
    )
