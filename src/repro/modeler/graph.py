"""The virtual topology graph exchanged between Remos components.

Collectors answer queries with a :class:`TopologyGraph`: typed nodes
(hosts, routers, switches, *virtual* switches for shared or opaque
segments, WAN clouds) and annotated edges (capacity, per-direction
measured utilization, latency).  The Master Collector merges fragments
from several collectors into one graph; the Modeler simplifies it and
runs max-min flow calculations on it.

This is "a standard graph format" in the paper's words — the one
concrete data structure the whole architecture communicates with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import networkx as nx

from repro import obs
from repro.common.errors import TopologyError

#: node kinds
HOST = "host"
ROUTER = "router"
SWITCH = "switch"
VSWITCH = "vswitch"  # virtual switch: shared Ethernet or opaque devices
CLOUD = "cloud"  # opaque WAN interconnect


@dataclass
class TopoNode:
    """A vertex: ``id`` is globally unique (host IP or device name)."""

    id: str
    kind: str
    ips: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (HOST, ROUTER, SWITCH, VSWITCH, CLOUD):
            raise TopologyError(f"bad node kind {self.kind!r}")


@dataclass
class TopoEdge:
    """An undirected edge with per-direction utilization.

    ``util_ab_bps`` is measured traffic from ``a`` toward ``b``.
    ``capacity_bps`` may be ``inf`` for virtual elements whose capacity
    is unknown (e.g. through a virtual switch).  ``jitter_s`` is the
    collector's delay-variation estimate (§6.2's multimedia metric);
    0 when no utilization history exists yet.
    """

    a: str
    b: str
    capacity_bps: float = math.inf
    util_ab_bps: float = 0.0
    util_ba_bps: float = 0.0
    latency_s: float = 0.0
    jitter_s: float = 0.0

    def key(self) -> tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def util_from(self, node_id: str) -> float:
        if node_id == self.a:
            return self.util_ab_bps
        if node_id == self.b:
            return self.util_ba_bps
        raise TopologyError(f"{node_id} not on edge {self.a}--{self.b}")

    def available_from(self, node_id: str) -> float:
        """Residual capacity leaving ``node_id`` over this edge."""
        return max(0.0, self.capacity_bps - self.util_from(node_id))


class TopologyGraph:
    """Nodes + edges with merge, path, and bottleneck operations.

    Query-path operations are cached.  The sorted node/edge views are
    keyed to a **mutation version** (a counter bumped by every
    structural change — ``add_node``, ``add_edge``, ``remove_node``,
    ``merge`` — which downstream caches also use as a validity token).
    The shortest-path cache is **scope-invalidated** instead of flushed
    wholesale: each mutation drops only the cached pairs it could
    affect, so one topology delta no longer re-derives every path the
    Modeler has already resolved.

    * ``add_node`` and annotation re-adds of an existing edge drop
      nothing — an isolated new node or a utilization refresh cannot
      change any hop-count path.
    * a structurally **new edge** (a, b) drops exactly the pairs a
      shortest route via that edge could reach: with BFS hop distances
      ``d_a``/``d_b`` on the new graph, pair (x, y) is dropped iff
      ``min(d_a[x]+d_b[y], d_b[x]+d_a[y]) + 1 <= len(cached path)``
      (cached "no path" entries are dropped iff that bound is finite).
      Survivors are provably byte-identical to a fresh recompute: any
      changed answer must route via the new edge, which the bound
      excludes.
    * ``remove_node`` drops the pairs whose cached path traverses the
      node, via a reverse index node -> cached pair keys.  A surviving
      entry is still *a* correct shortest path (deletion cannot create
      or shorten routes), though an equal-length tie may differ from
      what a cold recompute would pick.

    Edge *annotations* (utilization) may be updated in place without
    bumping the version — hop-count paths do not depend on them.
    """

    def __init__(self) -> None:
        self._g = nx.Graph()
        self._version = 0
        #: (a, b) -> node path, or None for a cached "no path" result;
        #: scope-invalidated by mutations (see class docstring)
        self._paths_cache: dict[tuple[str, str], list[str] | None] = {}
        #: reverse index: node id -> keys of cached positive paths
        #: traversing it (negative entries are not indexed)
        self._node_pairs: dict[str, set[tuple[str, str]]] = {}
        self._nodes_cache: list[TopoNode] | None = None
        self._edges_cache: list[TopoEdge] | None = None

    @property
    def version(self) -> int:
        """Structural mutation counter (cache-invalidation token)."""
        return self._version

    def _touch(self) -> None:
        self._version += 1
        self._nodes_cache = None
        self._edges_cache = None

    # -- construction --------------------------------------------------

    def add_node(self, node: TopoNode) -> TopoNode:
        """Add a node; merging kinds/IPs if it already exists."""
        self._touch()
        existing: TopoNode | None = self._g.nodes.get(node.id, {}).get("data")
        if existing is not None:
            ips = tuple(dict.fromkeys(existing.ips + node.ips))
            merged = TopoNode(node.id, existing.kind, ips)
            self._g.nodes[node.id]["data"] = merged
            return merged
        self._g.add_node(node.id, data=node)
        return node

    def add_edge(self, edge: TopoEdge) -> TopoEdge:
        """Add an edge; both endpoints must exist.  Re-adding replaces
        annotations (latest measurement wins) and invalidates no cached
        paths — hop-count routes do not read annotations."""
        for end in (edge.a, edge.b):
            if end not in self._g:
                raise TopologyError(f"edge endpoint {end!r} not in graph")
        self._touch()
        a, b = edge.key()
        structurally_new = not self._g.has_edge(a, b)
        self._g.add_edge(a, b, data=edge)
        if structurally_new and self._paths_cache:
            self._invalidate_paths_for_new_edge(a, b)
        return edge

    def merge(self, other: "TopologyGraph") -> None:
        """Fold another fragment into this graph in place."""
        for n in other.nodes():
            self.add_node(n)
        for e in other.edges():
            self.add_edge(e)

    # -- access --------------------------------------------------------

    def node(self, node_id: str) -> TopoNode:
        try:
            data: TopoNode = self._g.nodes[node_id]["data"]
        except KeyError:
            raise TopologyError(f"no node {node_id!r}") from None
        return data

    def has_node(self, node_id: str) -> bool:
        return node_id in self._g

    def edge(self, a: str, b: str) -> TopoEdge:
        try:
            data: TopoEdge = self._g.edges[a, b]["data"]
        except KeyError:
            raise TopologyError(f"no edge {a!r}--{b!r}") from None
        return data

    def has_edge(self, a: str, b: str) -> bool:
        return bool(self._g.has_edge(a, b))

    def nodes(self) -> list[TopoNode]:
        if self._nodes_cache is None:
            self._nodes_cache = [self._g.nodes[n]["data"] for n in sorted(self._g.nodes)]
        return list(self._nodes_cache)

    def edges(self) -> list[TopoEdge]:
        if self._edges_cache is None:
            self._edges_cache = [
                d["data"]
                for _, _, d in sorted(self._g.edges(data=True), key=lambda t: (t[0], t[1]))
            ]
        return list(self._edges_cache)

    def neighbors(self, node_id: str) -> list[str]:
        return sorted(self._g.neighbors(node_id))

    def degree(self, node_id: str) -> int:
        return int(self._g.degree(node_id))

    def __len__(self) -> int:
        return int(self._g.number_of_nodes())

    def num_edges(self) -> int:
        return int(self._g.number_of_edges())

    # -- wire schema v1 (docs/service.md) ------------------------------

    def to_dict(self) -> dict[str, object]:
        """Canonical wire form: sorted node and edge records.

        Nodes sort by id; edges by their normalized endpoint key (the
        ``edges()`` accessor sorts by the endpoint order networkx
        happens to yield, which varies with construction order), so two
        graphs with the same content serialize byte-identically
        regardless of insertion order.  Non-finite capacities
        (``inf`` for virtual elements) survive because both wire ends
        use Python's ``json`` module, which round-trips ``Infinity``.
        """
        return {
            "nodes": [
                {"id": n.id, "kind": n.kind, "ips": list(n.ips)}
                for n in self.nodes()
            ],
            "edges": [
                {
                    "a": e.a,
                    "b": e.b,
                    "capacity_bps": e.capacity_bps,
                    "util_ab_bps": e.util_ab_bps,
                    "util_ba_bps": e.util_ba_bps,
                    "latency_s": e.latency_s,
                    "jitter_s": e.jitter_s,
                }
                for e in sorted(self.edges(), key=TopoEdge.key)
            ],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TopologyGraph":
        graph = cls()
        for nd in d.get("nodes", []):
            graph.add_node(
                TopoNode(str(nd["id"]), str(nd["kind"]), tuple(nd.get("ips", ())))
            )
        for ed in d.get("edges", []):
            graph.add_edge(
                TopoEdge(
                    str(ed["a"]),
                    str(ed["b"]),
                    capacity_bps=float(ed.get("capacity_bps", math.inf)),
                    util_ab_bps=float(ed.get("util_ab_bps", 0.0)),
                    util_ba_bps=float(ed.get("util_ba_bps", 0.0)),
                    latency_s=float(ed.get("latency_s", 0.0)),
                    jitter_s=float(ed.get("jitter_s", 0.0)),
                )
            )
        return graph

    def remove_node(self, node_id: str) -> None:
        self._touch()
        if self._paths_cache:
            before = len(self._paths_cache)
            for key in self._node_pairs.pop(node_id, set()):
                self._drop_path_entry(key)
            self._report_invalidation(before)
        self._g.remove_node(node_id)

    # -- scoped path-cache invalidation ----------------------------------

    def _bfs_hops(self, source: str) -> dict[str, int]:
        """Hop distance from ``source`` to every reachable node."""
        dist = {source: 0}
        frontier = [source]
        adj = self._g.adj
        d = 0
        while frontier:
            d += 1
            nxt: list[str] = []
            for u in frontier:
                for v in adj[u]:
                    if v not in dist:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    def _invalidate_paths_for_new_edge(self, a: str, b: str) -> None:
        """Drop cached pairs a shortest route via new edge (a, b) could
        serve; see the class docstring for the bound and its proof
        sketch.  Runs two BFS passes over the post-mutation graph, so a
        mutation costs O(V + E + cached pairs) instead of re-deriving
        every dropped pair from scratch later."""
        dist_a = self._bfs_hops(a)
        dist_b = self._bfs_hops(b)
        inf = math.inf
        before = len(self._paths_cache)
        doomed: list[tuple[str, str]] = []
        for key, nodes in self._paths_cache.items():
            x, y = key
            dax = dist_a.get(x, inf)
            day = dist_a.get(y, inf)
            dbx = dist_b.get(x, inf)
            dby = dist_b.get(y, inf)
            via = min(dax + dby, dbx + day) + 1
            if nodes is None:
                if via < inf:
                    doomed.append(key)
            elif via <= len(nodes) - 1:
                doomed.append(key)
        for key in doomed:
            self._drop_path_entry(key)
        self._report_invalidation(before)

    def _drop_path_entry(self, key: tuple[str, str]) -> None:
        nodes = self._paths_cache.pop(key, None)
        if nodes:
            for nid in nodes:
                pairs = self._node_pairs.get(nid)
                if pairs is not None:
                    pairs.discard(key)
                    if not pairs:
                        del self._node_pairs[nid]

    def _report_invalidation(self, before: int) -> None:
        survived = len(self._paths_cache)
        obs.counter("modeler.graph.scoped_invalidation", result="dropped").inc(
            before - survived
        )
        obs.counter("modeler.graph.scoped_invalidation", result="survived").inc(
            survived
        )

    # -- path operations -------------------------------------------------

    def path(self, a: str, b: str) -> list[str]:
        """Shortest node path between two node ids (cached per version).

        Negative results ("no path") are cached too — the Modeler's
        all-pairs scans hit disconnected pairs as often as connected
        ones.  Entries survive mutations that cannot affect them
        (scoped invalidation; see the class docstring).
        """
        key = (a, b) if a <= b else (b, a)
        if key in self._paths_cache:
            cached = self._paths_cache[key]
            obs.counter("modeler.graph.path_cache", result="hit").inc()
            if cached is None:
                raise TopologyError(f"no path {a!r} -> {b!r}")
            return list(cached) if cached[0] == a else list(reversed(cached))
        obs.counter("modeler.graph.path_cache", result="miss").inc()
        try:
            found = nx.shortest_path(self._g, a, b)
        except (nx.NodeNotFound, nx.NetworkXNoPath):
            self._paths_cache[key] = None
            raise TopologyError(f"no path {a!r} -> {b!r}") from None
        path = list(found)
        self._paths_cache[key] = path
        for nid in path:
            self._node_pairs.setdefault(nid, set()).add(key)
        return list(path)

    def path_edges(self, a: str, b: str) -> list[TopoEdge]:
        nodes = self.path(a, b)
        return [self.edge(x, y) for x, y in zip(nodes, nodes[1:])]

    def bottleneck_available(self, a: str, b: str) -> float:
        """Residual bandwidth for a new flow a -> b along the shortest
        path: min over edges of (capacity - utilization in the flow's
        direction)."""
        nodes = self.path(a, b)
        best = math.inf
        for x, y in zip(nodes, nodes[1:]):
            e = self.edge(x, y)
            best = min(best, e.available_from(x))
        return best

    def path_latency(self, a: str, b: str) -> float:
        return sum(e.latency_s for e in self.path_edges(a, b))

    def copy(self) -> "TopologyGraph":
        out = TopologyGraph()
        for n in self.nodes():
            out.add_node(TopoNode(n.id, n.kind, n.ips))
        for e in self.edges():
            out.add_edge(
                TopoEdge(
                    e.a, e.b, e.capacity_bps, e.util_ab_bps, e.util_ba_bps,
                    e.latency_s, e.jitter_s,
                )
            )
        # The copy is structurally identical, so every cached path (and
        # cached "no path") is valid for it too: carry the cache so the
        # copy does not pay shortest-path derivation again for pairs the
        # original already resolved.  Path lists are shared (treated as
        # immutable; ``path()`` always returns a fresh list).
        out._paths_cache = dict(self._paths_cache)
        out._node_pairs = {nid: set(keys) for nid, keys in self._node_pairs.items()}
        return out

    def __repr__(self) -> str:
        return f"TopologyGraph({len(self)} nodes, {self.num_edges()} edges)"
