"""The virtual topology graph exchanged between Remos components.

Collectors answer queries with a :class:`TopologyGraph`: typed nodes
(hosts, routers, switches, *virtual* switches for shared or opaque
segments, WAN clouds) and annotated edges (capacity, per-direction
measured utilization, latency).  The Master Collector merges fragments
from several collectors into one graph; the Modeler simplifies it and
runs max-min flow calculations on it.

This is "a standard graph format" in the paper's words — the one
concrete data structure the whole architecture communicates with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.common.errors import TopologyError

#: node kinds
HOST = "host"
ROUTER = "router"
SWITCH = "switch"
VSWITCH = "vswitch"  # virtual switch: shared Ethernet or opaque devices
CLOUD = "cloud"  # opaque WAN interconnect


@dataclass
class TopoNode:
    """A vertex: ``id`` is globally unique (host IP or device name)."""

    id: str
    kind: str
    ips: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (HOST, ROUTER, SWITCH, VSWITCH, CLOUD):
            raise TopologyError(f"bad node kind {self.kind!r}")


@dataclass
class TopoEdge:
    """An undirected edge with per-direction utilization.

    ``util_ab_bps`` is measured traffic from ``a`` toward ``b``.
    ``capacity_bps`` may be ``inf`` for virtual elements whose capacity
    is unknown (e.g. through a virtual switch).  ``jitter_s`` is the
    collector's delay-variation estimate (§6.2's multimedia metric);
    0 when no utilization history exists yet.
    """

    a: str
    b: str
    capacity_bps: float = math.inf
    util_ab_bps: float = 0.0
    util_ba_bps: float = 0.0
    latency_s: float = 0.0
    jitter_s: float = 0.0

    def key(self) -> tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def util_from(self, node_id: str) -> float:
        if node_id == self.a:
            return self.util_ab_bps
        if node_id == self.b:
            return self.util_ba_bps
        raise TopologyError(f"{node_id} not on edge {self.a}--{self.b}")

    def available_from(self, node_id: str) -> float:
        """Residual capacity leaving ``node_id`` over this edge."""
        return max(0.0, self.capacity_bps - self.util_from(node_id))


class TopologyGraph:
    """Nodes + edges with merge, path, and bottleneck operations."""

    def __init__(self) -> None:
        self._g = nx.Graph()

    # -- construction --------------------------------------------------

    def add_node(self, node: TopoNode) -> TopoNode:
        """Add a node; merging kinds/IPs if it already exists."""
        existing: TopoNode | None = self._g.nodes.get(node.id, {}).get("data")
        if existing is not None:
            ips = tuple(dict.fromkeys(existing.ips + node.ips))
            merged = TopoNode(node.id, existing.kind, ips)
            self._g.nodes[node.id]["data"] = merged
            return merged
        self._g.add_node(node.id, data=node)
        return node

    def add_edge(self, edge: TopoEdge) -> TopoEdge:
        """Add an edge; both endpoints must exist.  Re-adding replaces
        annotations (latest measurement wins)."""
        for end in (edge.a, edge.b):
            if end not in self._g:
                raise TopologyError(f"edge endpoint {end!r} not in graph")
        a, b = edge.key()
        self._g.add_edge(a, b, data=edge)
        return edge

    def merge(self, other: "TopologyGraph") -> None:
        """Fold another fragment into this graph in place."""
        for n in other.nodes():
            self.add_node(n)
        for e in other.edges():
            self.add_edge(e)

    # -- access --------------------------------------------------------

    def node(self, node_id: str) -> TopoNode:
        try:
            return self._g.nodes[node_id]["data"]
        except KeyError:
            raise TopologyError(f"no node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._g

    def edge(self, a: str, b: str) -> TopoEdge:
        try:
            return self._g.edges[a, b]["data"]
        except KeyError:
            raise TopologyError(f"no edge {a!r}--{b!r}") from None

    def has_edge(self, a: str, b: str) -> bool:
        return self._g.has_edge(a, b)

    def nodes(self) -> list[TopoNode]:
        return [self._g.nodes[n]["data"] for n in sorted(self._g.nodes)]

    def edges(self) -> list[TopoEdge]:
        return [d["data"] for _, _, d in sorted(self._g.edges(data=True), key=lambda t: (t[0], t[1]))]

    def neighbors(self, node_id: str) -> list[str]:
        return sorted(self._g.neighbors(node_id))

    def degree(self, node_id: str) -> int:
        return self._g.degree(node_id)

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def remove_node(self, node_id: str) -> None:
        self._g.remove_node(node_id)

    # -- path operations -------------------------------------------------

    def path(self, a: str, b: str) -> list[str]:
        """Shortest node path between two node ids."""
        try:
            return nx.shortest_path(self._g, a, b)
        except (nx.NodeNotFound, nx.NetworkXNoPath):
            raise TopologyError(f"no path {a!r} -> {b!r}") from None

    def path_edges(self, a: str, b: str) -> list[TopoEdge]:
        nodes = self.path(a, b)
        return [self.edge(x, y) for x, y in zip(nodes, nodes[1:])]

    def bottleneck_available(self, a: str, b: str) -> float:
        """Residual bandwidth for a new flow a -> b along the shortest
        path: min over edges of (capacity - utilization in the flow's
        direction)."""
        nodes = self.path(a, b)
        best = math.inf
        for x, y in zip(nodes, nodes[1:]):
            e = self.edge(x, y)
            best = min(best, e.available_from(x))
        return best

    def path_latency(self, a: str, b: str) -> float:
        return sum(e.latency_s for e in self.path_edges(a, b))

    def copy(self) -> "TopologyGraph":
        out = TopologyGraph()
        for n in self.nodes():
            out.add_node(TopoNode(n.id, n.kind, n.ips))
        for e in self.edges():
            out.add_edge(
                TopoEdge(
                    e.a, e.b, e.capacity_bps, e.util_ab_bps, e.util_ba_bps,
                    e.latency_s, e.jitter_s,
                )
            )
        return out

    def __repr__(self) -> str:
        return f"TopologyGraph({len(self)} nodes, {self.num_edges()} edges)"
