"""The Modeler: the Remos API exposed to applications.

"The Remos API, which is exposed to applications, is implemented only
in the Modeler" (paper §2).  Applications ask two kinds of questions:

* topology — the virtual topology spanning a set of hosts, simplified
  (pruned, chains collapsed to virtual switches) unless raw output is
  requested.
* flow information — the bandwidth a new flow (or a set of flows,
  e.g. a collective application's communication pattern) can expect,
  from max-min calculations on the collector topology.

The documented entry point is :class:`repro.session.RemosSession`,
whose answers always carry a :class:`~repro.common.status.QueryStatus`
and degrade instead of raising when part of the network stops
answering.  The historical ``Modeler.topology_query`` /
``flow_query`` / ``node_query`` methods remain as deprecated shims
with their original strict (raising) semantics.

The Modeler talks only to its Master Collector, and acts as the
intermediary to the prediction service: with ``predict=True`` a flow
query returns the RPS forecast of the bottleneck link's available
bandwidth instead of the last measurement (§2.3, §3.3).
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from dataclasses import dataclass, field
from typing import ClassVar, Protocol

import numpy as np

from repro import obs
from repro.common.errors import (
    PartialResultError,
    QueryError,
    RemosError,
    TopologyError,
)
from repro.common.status import QueryStatus, SiteStatus
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Host, Network
from repro.collectors.base import Collector, RpcCostModel, TopologyRequest
from repro.modeler.graph import TopologyGraph
from repro.modeler.maxmin import FlowPrediction, predict_flows
from repro.modeler.planner import plan_flow_pairs
from repro.modeler.simplify import simplify


class PredictionService(Protocol):
    """What the Modeler needs from RPS (see repro.rps.service)."""

    def predict_series(
        self, values: np.ndarray, horizon: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Forecast ``horizon`` steps ahead: (predictions, error variances)."""
        ...


#: wire schema version stamped into every serialized answer (bumped
#: only on incompatible changes; see docs/service.md)
WIRE_SCHEMA_VERSION = 1

#: answer fields carried as JSON lists but reconstructed as tuples
_TUPLE_FIELDS = frozenset({"path", "provenance", "unresolved"})


class Answer:
    """Common surface of every Remos answer.

    Concrete answers are dataclasses that append ``status``,
    ``data_age_s``, ``provenance``, and ``trace_id`` fields; this
    (non-dataclass) base only contributes the convenience predicates
    and the wire serialization, so subclasses keep full control of
    their field order.
    """

    #: wire discriminator, set by each concrete answer class
    KIND: ClassVar[str] = ""

    status: QueryStatus
    data_age_s: float
    provenance: tuple[str, ...]
    #: trace of the query span that produced this answer (None when no
    #: live registry was installed); feed it to ``repro trace`` or the
    #: flight recorder to see where the latency went
    trace_id: str | None

    @property
    def ok(self) -> bool:
        """Complete and fresh."""
        return self.status == QueryStatus.OK

    @property
    def degraded(self) -> bool:
        """Anything less than complete and fresh (stale/partial/failed)."""
        return self.status != QueryStatus.OK

    # -- wire schema v1 (docs/service.md) ------------------------------

    def to_dict(self) -> dict:
        """Canonical wire form: plain JSON-ready types, lossless.

        Every answer serializes to ``{"schema": 1, "kind": ..., <its
        dataclass fields>}`` with enums as value strings, tuples as
        lists, graphs/site records via their own ``to_dict``.  The dict
        is canonical: serializing the same answer twice — or an answer
        reconstructed by :meth:`from_dict` — yields byte-identical JSON
        under ``repro.service.wire.canonical_json``.
        """
        out: dict = {"schema": WIRE_SCHEMA_VERSION, "kind": self.KIND}
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            if isinstance(v, QueryStatus):
                v = v.to_dict()
            elif isinstance(v, TopologyGraph):
                v = v.to_dict()
            elif f.name == "site_status":
                v = {site: st.to_dict() for site, st in sorted(v.items())}
            elif isinstance(v, tuple):
                v = list(v)
            out[f.name] = v
        return out

    @staticmethod
    def from_dict(d: dict) -> "Answer":
        """Reconstruct any concrete answer from its wire form."""
        schema = d.get("schema")
        if schema != WIRE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported wire schema {schema!r} "
                f"(this build speaks v{WIRE_SCHEMA_VERSION})"
            )
        kinds: dict[str, type] = {
            cls.KIND: cls for cls in (FlowAnswer, NodeAnswer, TopologyAnswer)
        }
        kind = d.get("kind")
        cls = kinds.get(kind)
        if cls is None:
            raise ValueError(f"unknown answer kind {kind!r}")
        kwargs = {}
        for f in dataclasses.fields(cls):
            if f.name not in d:
                continue
            v = d[f.name]
            if f.name == "status":
                v = QueryStatus.from_dict(v)
            elif f.name == "graph":
                v = TopologyGraph.from_dict(v)
            elif f.name == "site_status":
                v = {site: SiteStatus.from_dict(sd) for site, sd in v.items()}
            elif f.name in _TUPLE_FIELDS:
                v = tuple(v)
            kwargs[f.name] = v
        return cls(**kwargs)


@dataclass
class FlowAnswer(Answer):
    """What a flow query returns to the application."""

    KIND: ClassVar[str] = "flow"

    src: str
    dst: str
    #: bandwidth a new flow can expect now (max-min on measured residuals)
    available_bps: float
    #: residual bandwidth of the tightest link
    bottleneck_bps: float
    #: raw path capacity
    capacity_bps: float
    latency_s: float
    #: delay-variation estimate for the path (0 without history)
    jitter_s: float
    path: tuple[str, ...]
    #: RPS forecast of available bandwidth (None unless predict=True)
    predicted_bps: float | None = None
    #: forecast error variance (None unless predict=True)
    predicted_var: float | None = None
    #: answer quality: FAILED when the pair is uncovered, otherwise the
    #: quality of the topology the answer was computed from
    status: QueryStatus = QueryStatus.OK
    #: age of the underlying dynamics, in simulated seconds
    data_age_s: float = 0.0
    #: sites whose collectors contributed to the answer
    provenance: tuple[str, ...] = ()
    trace_id: str | None = None


@dataclass
class NodeAnswer(Answer):
    """What a node (compute-resource) query returns.

    The Remos API covers compute nodes as well as the network (the
    query interface of Lowekamp et al., ref [17]); load data flows from
    RPS host-load sensors rather than the collectors.
    """

    KIND: ClassVar[str] = "node"

    ip: str
    #: current load average (None if no sensor covers the host)
    load: float | None
    #: RPS forecast of the load (None unless predict=True and a
    #: streaming predictor runs on the host)
    predicted_load: float | None = None
    predicted_var: float | None = None
    status: QueryStatus = QueryStatus.OK
    data_age_s: float = 0.0
    provenance: tuple[str, ...] = ()
    trace_id: str | None = None


@dataclass
class TopologyAnswer(Answer):
    """What a topology query returns through :class:`RemosSession`."""

    KIND: ClassVar[str] = "topology"

    graph: TopologyGraph
    #: requested hosts that could not be covered
    unresolved: tuple[str, ...] = ()
    #: per-site quality breakdown from the Master
    site_status: dict[str, SiteStatus] = field(default_factory=dict)
    status: QueryStatus = QueryStatus.OK
    data_age_s: float = 0.0
    provenance: tuple[str, ...] = ()
    trace_id: str | None = None


def _ip_of(host) -> str:
    """Accept Host objects, IPv4Address, or strings."""
    if isinstance(host, Host):
        return str(host.ip)
    return str(IPv4Address(host))


@dataclass
class _FetchMeta:
    """Quality bookkeeping for one Master fetch, threaded into answers."""

    status: QueryStatus
    data_age_s: float
    provenance: tuple[str, ...]
    unresolved: tuple[str, ...]
    site_status: dict[str, SiteStatus]


@dataclass
class _CachedFetch:
    """One memoized Master response: the graph, its structural version
    at insert time, the sim time it was fetched, and the fetch meta so
    cache hits replay exactly what the miss returned.

    Only ``status == OK`` responses are ever cached: memoizing a
    degraded response would replay the outage for a full TTL after the
    collectors recover (and, worse, a FAILED fragment's empty graph
    would shadow good data).  A degraded response additionally *drops*
    any existing entry for its key — the entry describes a world the
    Master can no longer confirm.

    ``flow_plans`` memoizes resolved flow-query results against this
    entry's (immutable) graph: key (requested pairs, strict) -> the
    predictions plus the unroutable-pair layout.  Valid exactly as long
    as the entry itself — the graph object is replaced, never mutated,
    on refetch — so a repeated ``flow_info_many`` within the staleness
    window rebuilds its answers without touching paths or the
    allocator.
    """

    graph: TopologyGraph
    version: int
    fetched_at: float
    meta: _FetchMeta
    flow_plans: dict = field(default_factory=dict)


class Modeler:
    """One application's window into Remos."""

    def __init__(
        self,
        master: Collector,
        net: Network,
        rpc_cost: RpcCostModel | None = None,
        prediction_service: "PredictionService | None" = None,
        history_provider=None,
        query_cache_ttl_s: float = 0.0,
    ) -> None:
        self.master = master
        self.net = net
        self.rpc = rpc_cost or RpcCostModel()
        self.prediction_service = prediction_service
        #: staleness window for memoized Master responses; 0 disables
        #: caching entirely (every query hits the Master, the
        #: historical behaviour).  Applications that tolerate data up
        #: to a few seconds old — the paper's common case, since the
        #: collectors themselves only repoll every 5 s — set this to
        #: their tolerance and repeated queries are answered locally.
        self.query_cache_ttl_s = query_cache_ttl_s
        self._query_cache: dict[tuple, _CachedFetch] = {}
        #: callable (edge a, edge b) -> np.ndarray of rate history, used
        #: for predictive flow queries (see repro.deploy)
        self.history_provider = history_provider
        #: callable (ip str) -> (load or None, StreamingPredictor or None),
        #: wired by the deployment for node queries
        self.node_info_provider = None
        self.queries_made = 0

    # -- topology ------------------------------------------------------

    def topology_query(
        self,
        hosts,
        simplified: bool = True,
        include_dynamics: bool = True,
        detail: str | None = None,
    ) -> TopologyGraph:
        """Deprecated: use :meth:`repro.session.RemosSession.topology`.

        Original strict behaviour: returns the bare graph and raises
        :class:`QueryError` when any requested host is uncovered.
        """
        warnings.warn(
            "Modeler.topology_query is deprecated; use RemosSession.topology",
            DeprecationWarning,
            stacklevel=2,
        )
        if detail is None:
            detail = "simplified" if simplified else "raw"
        return self._topology_answer(
            hosts, detail, include_dynamics, strict=True
        ).graph

    def _topology_answer(
        self,
        hosts,
        detail: str,
        include_dynamics: bool,
        strict: bool,
    ) -> TopologyAnswer:
        """The virtual topology spanning ``hosts``.

        ``detail`` selects how much structure the application sees —
        "an appropriate level of detail … without swamping the
        application" (§1):

        * ``"raw"`` — everything the collectors discovered.
        * ``"simplified"`` (default) — pruned, degree-2 chains collapsed
          into virtual switches; flow answers unchanged.
        * ``"summary"`` — only the queried hosts, pairwise logical edges
          carrying each pair's bottleneck availability/latency/jitter.
        """
        if detail not in ("raw", "simplified", "summary"):
            raise QueryError(f"unknown detail level {detail!r}")
        with obs.span("modeler.topology_query", detail=detail) as sp:
            obs.counter("modeler.queries", kind="topology").inc()
            ips = [_ip_of(h) for h in hosts]
            # "raw" hands the graph itself to the application, which may
            # mutate it; the derived detail levels only read it.
            graph, meta = self._fetch(
                ips, include_dynamics, strict=strict, private=(detail == "raw")
            )
            if detail == "simplified":
                graph = simplify(graph, protect=set(ips))
            elif detail == "summary":
                graph = self._summarize(graph, ips)
            return TopologyAnswer(
                graph,
                unresolved=tuple(meta.unresolved),
                site_status=meta.site_status,
                status=meta.status,
                data_age_s=meta.data_age_s,
                provenance=meta.provenance,
                trace_id=sp.trace_id,
            )

    @staticmethod
    def _summarize(graph: TopologyGraph, ips: list[str]) -> TopologyGraph:
        """Hosts only, with per-pair logical edges (bottleneck view)."""
        from repro.common.errors import TopologyError
        from repro.modeler.graph import HOST, TopoEdge, TopoNode

        out = TopologyGraph()
        present = [ip for ip in ips if graph.has_node(ip)]
        for ip in present:
            out.add_node(TopoNode(ip, HOST, (ip,)))
        for i in range(len(present)):
            for j in range(i + 1, len(present)):
                a, b = present[i], present[j]
                try:
                    edges = graph.path_edges(a, b)
                except TopologyError:
                    continue
                nodes = graph.path(a, b)
                avail_ab = min(
                    e.available_from(x) for e, x in zip(edges, nodes[:-1])
                )
                avail_ba = min(
                    e.available_from(y) for e, y in zip(edges, nodes[1:])
                )
                cap = min(e.capacity_bps for e in edges)
                latency = sum(e.latency_s for e in edges)
                jitter = math.sqrt(sum(e.jitter_s**2 for e in edges))
                out.add_edge(
                    TopoEdge(
                        a, b, cap,
                        max(0.0, cap - avail_ab),
                        max(0.0, cap - avail_ba),
                        latency, jitter,
                    )
                )
        return out

    # -- flows ------------------------------------------------------------

    def flow_query(
        self,
        src,
        dst,
        predict: bool = False,
        horizon_steps: int = 1,
    ) -> FlowAnswer:
        """Deprecated: use :meth:`repro.session.RemosSession.flow_info`.

        Original strict behaviour: raises :class:`QueryError` when the
        pair is uncovered or unroutable.
        """
        warnings.warn(
            "Modeler.flow_query is deprecated; use RemosSession.flow_info",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._flow_answers(
            [(src, dst)], predict, horizon_steps, None, strict=True
        )[0]

    def flow_queries(
        self,
        pairs,
        predict: bool = False,
        horizon_steps: int = 1,
        own_flows=None,
    ) -> list[FlowAnswer]:
        """Deprecated: use :meth:`repro.session.RemosSession.flow_info_many`."""
        warnings.warn(
            "Modeler.flow_queries is deprecated; use RemosSession.flow_info_many",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._flow_answers(pairs, predict, horizon_steps, own_flows, strict=True)

    def _flow_answers(
        self,
        pairs,
        predict: bool,
        horizon_steps: int,
        own_flows,
        strict: bool,
    ) -> list[FlowAnswer]:
        """Expected bandwidth for a set of simultaneous new flows.

        The flows are allocated jointly (max-min), so two requested
        flows sharing a bottleneck split it — what a collective
        application needs to know.

        ``own_flows`` optionally declares the application's *existing*
        traffic as ``(src, dst, rate_bps)`` triples.  Measured
        utilization includes that traffic, so without the declaration a
        long-running application asking about its own path sees its own
        load as "someone else's" and under-estimates what it could get
        (the self-interference trap).  Declared rates are credited back
        to the edges along each declared flow's path before the max-min
        calculation.

        Strict mode raises on any unroutable pair (the historical
        API); non-strict mode answers what it can, marking unroutable
        pairs FAILED with zeroed bandwidths and an empty path.

        The batch is planned first (:mod:`repro.modeler.planner`):
        endpoints collapse into one Master fetch and duplicate pairs
        resolve their route once, while the joint allocation still sees
        one flow per requested instance.
        """
        with obs.span("modeler.flow_query") as sp:
            obs.counter("modeler.queries", kind="flow").inc()
            ip_pairs = [(_ip_of(s), _ip_of(d)) for s, d in pairs]
            own = [
                (_ip_of(s), _ip_of(d), float(rate)) for s, d, rate in (own_flows or [])
            ]
            plan = plan_flow_pairs(
                ip_pairs, [ip for s, d, _ in own for ip in (s, d)]
            )
            # Without own traffic to credit the fetched graph is only
            # read, so the memoized graph can be served as-is — and the
            # paths it resolves stay resolved for the next query.
            graph, meta = self._fetch(
                list(plan.involved),
                include_dynamics=True,
                strict=strict,
                private=bool(own),
            )
            if own:
                self._credit_own_flows(graph, own)
            # When _fetch served the memoized graph itself (no own
            # traffic, cache hit or cached miss), resolved predictions
            # can be memoized right on the entry: the answers are a
            # pure function of (graph, pairs), and the graph is
            # replaced, never mutated, on refetch.
            entry = None
            if not own:
                entry = self._query_cache.get((plan.involved, True))
                if entry is not None and entry.graph is not graph:
                    entry = None
            memo_key = (plan.pairs, strict)
            cached_plan = (
                entry.flow_plans.get(memo_key) if entry is not None else None
            )
            if cached_plan is not None:
                preds, failed_spec = cached_plan
            else:
                # Resolve each unique pair's route once; instances
                # share it.
                unique_paths: list[list[str] | None] = []
                for s, d in plan.unique_pairs:
                    nodes: list[str] | None = None
                    if strict:
                        try:
                            nodes = graph.path(s, d)
                        except TopologyError as exc:
                            raise QueryError(str(exc)) from exc
                    else:
                        # Split the request: pairs without a route
                        # through what the collectors could deliver
                        # degrade to FAILED answers instead of
                        # poisoning the whole (joint) query.
                        try:
                            if graph.has_node(s) and graph.has_node(d):
                                nodes = graph.path(s, d)
                        except TopologyError:
                            nodes = None
                    unique_paths.append(nodes)
                answerable: list[tuple[str, str]] = []
                failed_spec = []
                for idx, k in enumerate(plan.instance_of):
                    if unique_paths[k] is not None:
                        answerable.append(ip_pairs[idx])
                    else:
                        failed_spec.append(idx)
                preds = predict_flows(graph, answerable)
                failed_spec = tuple(failed_spec)
                if entry is not None:
                    entry.flow_plans[memo_key] = (preds, failed_spec)
            failed: dict[int, FlowAnswer] = {}
            for idx in failed_spec:
                s, d = ip_pairs[idx]
                failed[idx] = FlowAnswer(
                    s, d, 0.0, 0.0, 0.0, 0.0, 0.0, (),
                    status=QueryStatus.FAILED,
                    data_age_s=meta.data_age_s,
                    provenance=meta.provenance,
                    trace_id=sp.trace_id,
                )
            good = [self._to_answer(p, meta, sp.trace_id) for p in preds]
            if predict:
                for ans in good:
                    self._attach_prediction(graph, ans, horizon_steps)
            if not failed:
                return good
            it = iter(good)
            return [
                failed[idx] if idx in failed else next(it)
                for idx in range(len(ip_pairs))
            ]

    @staticmethod
    def _credit_own_flows(graph: TopologyGraph, own) -> None:
        """Subtract the application's declared traffic from measured
        utilization along each declared flow's path."""
        from repro.common.errors import TopologyError

        for src, dst, rate in own:
            try:
                nodes = graph.path(src, dst)
            except TopologyError:
                continue  # declared flow not on this topology: ignore
            for a, b in zip(nodes, nodes[1:]):
                e = graph.edge(a, b)
                if a == e.a:
                    e.util_ab_bps = max(0.0, e.util_ab_bps - rate)
                else:
                    e.util_ba_bps = max(0.0, e.util_ba_bps - rate)

    # -- nodes ---------------------------------------------------------

    def node_query(
        self, hosts, predict: bool = False, horizon_steps: int = 1
    ) -> list[NodeAnswer]:
        """Deprecated: use :meth:`repro.session.RemosSession.node_info`."""
        warnings.warn(
            "Modeler.node_query is deprecated; use RemosSession.node_info",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._node_answers(hosts, predict, horizon_steps)

    def _node_answers(
        self, hosts, predict: bool, horizon_steps: int
    ) -> list[NodeAnswer]:
        """Current (and optionally forecast) load of compute nodes."""
        if self.node_info_provider is None:
            raise QueryError("no node information provider configured")
        with obs.span("modeler.node_query") as sp:
            obs.counter("modeler.queries", kind="node").inc()
            answers: list[NodeAnswer] = []
            for h in hosts:
                ip = _ip_of(h)
                self.net.engine.advance(self.rpc.local_s)
                load, predictor = self.node_info_provider(ip)
                ans = NodeAnswer(ip, load, trace_id=sp.trace_id)
                if load is None:
                    # no sensor covers this host; the answer says so
                    # rather than raising (historical behaviour)
                    ans.status = QueryStatus.FAILED
                else:
                    ans.provenance = ("host-sensor",)
                if predict and predictor is not None:
                    fc = predictor.forecast()
                    k = min(horizon_steps, fc.values.size)
                    if k >= 1:
                        ans.predicted_load = float(fc.values[k - 1])
                        ans.predicted_var = float(fc.variances[k - 1])
                answers.append(ans)
            return answers

    # -- internals ----------------------------------------------------------

    def _fetch(
        self,
        ips: list[str],
        include_dynamics: bool,
        strict: bool = True,
        private: bool = True,
    ) -> tuple[TopologyGraph, _FetchMeta]:
        """Topology for ``ips``, served from the memo cache when fresh.

        ``private=True`` returns a copy the caller owns outright (flow
        queries credit own traffic by mutating edges in place; raw
        topology answers hand the graph to the application).  Callers
        that only *read* pass ``private=False`` and share the memoized
        graph itself — skipping the copy, and letting the shortest
        paths they resolve accumulate on the cached entry so later
        queries start warm.
        """
        self.queries_made += 1
        caching = self.query_cache_ttl_s > 0
        key = (tuple(sorted(ips)), include_dynamics)
        if caching:
            entry = self._query_cache.get(key)
            if (
                entry is not None
                and self.net.now - entry.fetched_at <= self.query_cache_ttl_s
                and entry.graph.version == entry.version
            ):
                obs.counter("modeler.query_cache", result="hit").inc()
                self.net.engine.advance(self.rpc.local_s)
                if private:
                    return entry.graph.copy(), entry.meta
                return entry.graph, entry.meta
            obs.counter("modeler.query_cache", result="miss").inc()
        self.net.engine.advance(self.rpc.local_s)
        try:
            resp = self.master.topology(
                TopologyRequest(tuple(ips), include_dynamics=include_dynamics)
            )
        except RemosError:
            # the Master itself is unreachable — nothing to serve
            self._query_cache.pop(key, None)
            if strict:
                raise
            meta = _FetchMeta(QueryStatus.FAILED, 0.0, (), tuple(ips), {})
            return TopologyGraph(), meta
        provenance = tuple(sorted(resp.site_status)) or (
            getattr(self.master, "name", "master"),
        )
        meta = _FetchMeta(
            status=resp.status,
            data_age_s=resp.data_age_s,
            provenance=provenance,
            unresolved=tuple(resp.unresolved),
            site_status=resp.site_status,
        )
        if meta.status == QueryStatus.PARTIAL:
            obs.counter("query.partial").inc()
        missing = [ip for ip in ips if ip in resp.unresolved]
        if missing and strict:
            # don't let a degraded response linger in the cache
            self._query_cache.pop(key, None)
            raise PartialResultError(
                f"hosts not covered by any collector: {missing}",
                sites=tuple(
                    s
                    for s, st in resp.site_status.items()
                    if st.status == QueryStatus.FAILED
                ),
                unresolved=tuple(missing),
            )
        if caching:
            if meta.status == QueryStatus.OK:
                self._query_cache[key] = _CachedFetch(
                    resp.graph, resp.graph.version, self.net.now, meta
                )
                if private:
                    return resp.graph.copy(), meta
                return resp.graph, meta
            # degraded response: never memoize it, and drop whatever the
            # cache held — it describes a world the collectors can no
            # longer confirm and would otherwise replay after recovery
            self._query_cache.pop(key, None)
        return resp.graph, meta

    def invalidate_cache(self, sites=None) -> None:
        """Drop memoized responses (e.g. after a known topology change).

        With ``sites`` (an iterable of site names) the eviction is
        **scoped**: only entries whose provenance intersects the named
        sites are dropped — one site's topology delta no longer evicts
        every memoized answer.  ``None`` keeps the historical
        flush-everything behaviour.  Scoping is observable on the
        ``modeler.query_cache`` counter (``result="evicted"`` /
        ``"survived"``).  The invalidation also propagates to the
        Master plane (flat or sharded), dropping its last-known-good
        fragments for the named sites so a known topology change is
        never served from survival caches either.
        """
        drop = getattr(self.master, "invalidate_sites", None)
        if drop is not None:
            drop(sites)
        if sites is None:
            self._query_cache.clear()
            return
        wanted = set(sites)
        doomed = [
            key
            for key, entry in self._query_cache.items()
            if wanted & set(entry.meta.provenance)
        ]
        for key in doomed:
            del self._query_cache[key]
        obs.counter("modeler.query_cache", result="evicted").inc(len(doomed))
        obs.counter("modeler.query_cache", result="survived").inc(
            len(self._query_cache)
        )

    def invalidate_query_cache(self, sites=None) -> None:
        """Deprecated: use :meth:`invalidate_cache` (same signature).

        Kept as a shim so external callers keep working; remoslint
        RML003 flags internal use.
        """
        warnings.warn(
            "Modeler.invalidate_query_cache is deprecated; "
            "use Modeler.invalidate_cache (same signature)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.invalidate_cache(sites)

    @staticmethod
    def _to_answer(
        p: FlowPrediction, meta: _FetchMeta, trace_id: str | None
    ) -> FlowAnswer:
        # A pair answered from a PARTIAL topology is itself suspect —
        # traffic from the missing sites is invisible to the max-min
        # model — so the fetch status carries through to the answer.
        return FlowAnswer(
            p.src, p.dst, p.rate_bps, p.bottleneck_bps, p.capacity_bps,
            p.latency_s, p.jitter_s, p.path,
            status=meta.status,
            data_age_s=meta.data_age_s,
            provenance=meta.provenance,
            trace_id=trace_id,
        )

    def _attach_prediction(
        self, graph: TopologyGraph, ans: FlowAnswer, horizon_steps: int
    ) -> None:
        """Forecast the bottleneck edge's available bandwidth via RPS.

        History comes from the collectors through the Master's history
        interface (the paper's planned XML-protocol path); a local
        ``history_provider`` hook serves as fallback for deployments
        whose master predates the interface.
        """
        if self.prediction_service is None:
            raise QueryError("no prediction service configured")
        # Find the tightest edge on the path and its rate history.
        best: tuple[float, str, str] | None = None
        for a, b in zip(ans.path, ans.path[1:]):
            e = graph.edge(a, b)
            avail = e.available_from(a)
            if best is None or avail < best[0]:
                best = (avail, a, b)
        if best is None:
            return
        _, a, b = best
        # Streaming predictors at the collectors answer without a fit
        # (§2.3's amortized path); fall back to history + client-server.
        forecast_fn = getattr(self.master, "forecast_edge", None)
        if callable(forecast_fn):
            from repro.collectors.base import HistoryRequest

            self.net.engine.advance(self.rpc.local_s)
            out = forecast_fn(HistoryRequest(a, b), horizon_steps)
            if out is not None:
                preds, variances = out
                cap = graph.edge(a, b).capacity_bps
                predicted_util = float(preds[-1])
                ans.predicted_bps = (
                    max(0.0, min(cap, cap - predicted_util))
                    if math.isfinite(cap)
                    else math.inf
                )
                ans.predicted_var = float(variances[-1])
                return
        kind = "utilization"
        hist: np.ndarray | None = None
        history_fn = getattr(self.master, "history", None)
        if callable(history_fn):
            from repro.collectors.base import HistoryRequest

            self.net.engine.advance(self.rpc.local_s)
            resp = history_fn(HistoryRequest(a, b))
            if resp is not None:
                kind = resp.kind
                hist = np.asarray(resp.rates_bps, dtype=float)
        if (hist is None or hist.size < 8) and self.history_provider is not None:
            fallback = self.history_provider(a, b)
            if fallback is not None:
                kind = "utilization"
                hist = np.asarray(fallback, dtype=float)
        if hist is None or hist.size < 8:
            return  # not enough history: leave prediction unset
        preds, variances = self.prediction_service.predict_series(hist, horizon_steps)
        if kind == "available":
            ans.predicted_bps = max(0.0, float(preds[-1]))
        else:
            cap = graph.edge(a, b).capacity_bps
            predicted_util = float(preds[-1])
            ans.predicted_bps = (
                max(0.0, min(cap, cap - predicted_util))
                if math.isfinite(cap)
                else math.inf
            )
        ans.predicted_var = float(variances[-1])
