"""The Modeler: the Remos API exposed to applications.

"The Remos API, which is exposed to applications, is implemented only
in the Modeler" (paper §2).  Applications ask two kinds of questions:

* :meth:`Modeler.topology_query` — the virtual topology spanning a set
  of hosts, simplified (pruned, chains collapsed to virtual switches)
  unless raw output is requested.
* :meth:`Modeler.flow_query` — the bandwidth a new flow (or a set of
  flows, e.g. a collective application's communication pattern) can
  expect, from max-min calculations on the collector topology.

The Modeler talks only to its Master Collector, and acts as the
intermediary to the prediction service: with ``predict=True`` a flow
query returns the RPS forecast of the bottleneck link's available
bandwidth instead of the last measurement (§2.3, §3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro import obs
from repro.common.errors import QueryError
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Host, Network
from repro.collectors.base import Collector, RpcCostModel, TopologyRequest
from repro.modeler.graph import TopologyGraph
from repro.modeler.maxmin import FlowPrediction, predict_flows
from repro.modeler.simplify import simplify


class PredictionService(Protocol):
    """What the Modeler needs from RPS (see repro.rps.service)."""

    def predict_series(
        self, values: np.ndarray, horizon: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Forecast ``horizon`` steps ahead: (predictions, error variances)."""
        ...


@dataclass
class FlowAnswer:
    """What a flow query returns to the application."""

    src: str
    dst: str
    #: bandwidth a new flow can expect now (max-min on measured residuals)
    available_bps: float
    #: residual bandwidth of the tightest link
    bottleneck_bps: float
    #: raw path capacity
    capacity_bps: float
    latency_s: float
    #: delay-variation estimate for the path (0 without history)
    jitter_s: float
    path: tuple[str, ...]
    #: RPS forecast of available bandwidth (None unless predict=True)
    predicted_bps: float | None = None
    #: forecast error variance (None unless predict=True)
    predicted_var: float | None = None


@dataclass
class NodeAnswer:
    """What a node (compute-resource) query returns.

    The Remos API covers compute nodes as well as the network (the
    query interface of Lowekamp et al., ref [17]); load data flows from
    RPS host-load sensors rather than the collectors.
    """

    ip: str
    #: current load average (None if no sensor covers the host)
    load: float | None
    #: RPS forecast of the load (None unless predict=True and a
    #: streaming predictor runs on the host)
    predicted_load: float | None = None
    predicted_var: float | None = None


def _ip_of(host) -> str:
    """Accept Host objects, IPv4Address, or strings."""
    if isinstance(host, Host):
        return str(host.ip)
    return str(IPv4Address(host))


@dataclass
class _CachedFetch:
    """One memoized Master response: the graph, its structural version
    at insert time, and the sim time it was fetched."""

    graph: TopologyGraph
    version: int
    fetched_at: float


class Modeler:
    """One application's window into Remos."""

    def __init__(
        self,
        master: Collector,
        net: Network,
        rpc_cost: RpcCostModel | None = None,
        prediction_service: "PredictionService | None" = None,
        history_provider=None,
        query_cache_ttl_s: float = 0.0,
    ) -> None:
        self.master = master
        self.net = net
        self.rpc = rpc_cost or RpcCostModel()
        self.prediction_service = prediction_service
        #: staleness window for memoized Master responses; 0 disables
        #: caching entirely (every query hits the Master, the
        #: historical behaviour).  Applications that tolerate data up
        #: to a few seconds old — the paper's common case, since the
        #: collectors themselves only repoll every 5 s — set this to
        #: their tolerance and repeated queries are answered locally.
        self.query_cache_ttl_s = query_cache_ttl_s
        self._query_cache: dict[tuple, _CachedFetch] = {}
        #: callable (edge a, edge b) -> np.ndarray of rate history, used
        #: for predictive flow queries (see repro.deploy)
        self.history_provider = history_provider
        #: callable (ip str) -> (load or None, StreamingPredictor or None),
        #: wired by the deployment for node queries
        self.node_info_provider = None
        self.queries_made = 0

    # -- topology ------------------------------------------------------

    def topology_query(
        self,
        hosts,
        simplified: bool = True,
        include_dynamics: bool = True,
        detail: str | None = None,
    ) -> TopologyGraph:
        """The virtual topology spanning ``hosts``.

        ``detail`` selects how much structure the application sees —
        "an appropriate level of detail … without swamping the
        application" (§1):

        * ``"raw"`` — everything the collectors discovered.
        * ``"simplified"`` (default) — pruned, degree-2 chains collapsed
          into virtual switches; flow answers unchanged.
        * ``"summary"`` — only the queried hosts, pairwise logical edges
          carrying each pair's bottleneck availability/latency/jitter.
        """
        if detail is None:
            detail = "simplified" if simplified else "raw"
        if detail not in ("raw", "simplified", "summary"):
            raise QueryError(f"unknown detail level {detail!r}")
        with obs.span("modeler.topology_query", detail=detail):
            obs.counter("modeler.queries", kind="topology").inc()
            ips = [_ip_of(h) for h in hosts]
            graph = self._fetch(ips, include_dynamics)
            if detail == "raw":
                return graph
            if detail == "simplified":
                return simplify(graph, protect=set(ips))
            return self._summarize(graph, ips)

    @staticmethod
    def _summarize(graph: TopologyGraph, ips: list[str]) -> TopologyGraph:
        """Hosts only, with per-pair logical edges (bottleneck view)."""
        from repro.common.errors import TopologyError
        from repro.modeler.graph import HOST, TopoEdge, TopoNode

        out = TopologyGraph()
        present = [ip for ip in ips if graph.has_node(ip)]
        for ip in present:
            out.add_node(TopoNode(ip, HOST, (ip,)))
        for i in range(len(present)):
            for j in range(i + 1, len(present)):
                a, b = present[i], present[j]
                try:
                    edges = graph.path_edges(a, b)
                except TopologyError:
                    continue
                nodes = graph.path(a, b)
                avail_ab = min(
                    e.available_from(x) for e, x in zip(edges, nodes[:-1])
                )
                avail_ba = min(
                    e.available_from(y) for e, y in zip(edges, nodes[1:])
                )
                cap = min(e.capacity_bps for e in edges)
                latency = sum(e.latency_s for e in edges)
                jitter = math.sqrt(sum(e.jitter_s**2 for e in edges))
                out.add_edge(
                    TopoEdge(
                        a, b, cap,
                        max(0.0, cap - avail_ab),
                        max(0.0, cap - avail_ba),
                        latency, jitter,
                    )
                )
        return out

    # -- flows ------------------------------------------------------------

    def flow_query(
        self,
        src,
        dst,
        predict: bool = False,
        horizon_steps: int = 1,
    ) -> FlowAnswer:
        """Expected bandwidth for one new flow src -> dst."""
        return self.flow_queries([(src, dst)], predict, horizon_steps)[0]

    def flow_queries(
        self,
        pairs,
        predict: bool = False,
        horizon_steps: int = 1,
        own_flows=None,
    ) -> list[FlowAnswer]:
        """Expected bandwidth for a set of simultaneous new flows.

        The flows are allocated jointly (max-min), so two requested
        flows sharing a bottleneck split it — what a collective
        application needs to know.

        ``own_flows`` optionally declares the application's *existing*
        traffic as ``(src, dst, rate_bps)`` triples.  Measured
        utilization includes that traffic, so without the declaration a
        long-running application asking about its own path sees its own
        load as "someone else's" and under-estimates what it could get
        (the self-interference trap).  Declared rates are credited back
        to the edges along each declared flow's path before the max-min
        calculation.
        """
        with obs.span("modeler.flow_query"):
            obs.counter("modeler.queries", kind="flow").inc()
            ip_pairs = [(_ip_of(s), _ip_of(d)) for s, d in pairs]
            own = [
                (_ip_of(s), _ip_of(d), float(rate)) for s, d, rate in (own_flows or [])
            ]
            involved = sorted(
                {ip for pair in ip_pairs for ip in pair}
                | {ip for s, d, _ in own for ip in (s, d)}
            )
            graph = self._fetch(involved, include_dynamics=True)
            if own:
                self._credit_own_flows(graph, own)
            preds = predict_flows(graph, ip_pairs)
            answers = [self._to_answer(p) for p in preds]
            if predict:
                for ans in answers:
                    self._attach_prediction(graph, ans, horizon_steps)
            return answers

    @staticmethod
    def _credit_own_flows(graph: TopologyGraph, own) -> None:
        """Subtract the application's declared traffic from measured
        utilization along each declared flow's path."""
        from repro.common.errors import TopologyError

        for src, dst, rate in own:
            try:
                nodes = graph.path(src, dst)
            except TopologyError:
                continue  # declared flow not on this topology: ignore
            for a, b in zip(nodes, nodes[1:]):
                e = graph.edge(a, b)
                if a == e.a:
                    e.util_ab_bps = max(0.0, e.util_ab_bps - rate)
                else:
                    e.util_ba_bps = max(0.0, e.util_ba_bps - rate)

    # -- nodes ---------------------------------------------------------

    def node_query(
        self, hosts, predict: bool = False, horizon_steps: int = 1
    ) -> list[NodeAnswer]:
        """Current (and optionally forecast) load of compute nodes."""
        if self.node_info_provider is None:
            raise QueryError("no node information provider configured")
        with obs.span("modeler.node_query"):
            obs.counter("modeler.queries", kind="node").inc()
            return self._node_query(hosts, predict, horizon_steps)

    def _node_query(
        self, hosts, predict: bool, horizon_steps: int
    ) -> list[NodeAnswer]:
        answers: list[NodeAnswer] = []
        for h in hosts:
            ip = _ip_of(h)
            self.net.engine.advance(self.rpc.local_s)
            load, predictor = self.node_info_provider(ip)
            ans = NodeAnswer(ip, load)
            if predict and predictor is not None:
                fc = predictor.forecast()
                k = min(horizon_steps, fc.values.size)
                if k >= 1:
                    ans.predicted_load = float(fc.values[k - 1])
                    ans.predicted_var = float(fc.variances[k - 1])
            answers.append(ans)
        return answers

    # -- internals ----------------------------------------------------------

    def _fetch(self, ips: list[str], include_dynamics: bool) -> TopologyGraph:
        self.queries_made += 1
        caching = self.query_cache_ttl_s > 0
        key = (tuple(sorted(ips)), include_dynamics)
        if caching:
            entry = self._query_cache.get(key)
            if (
                entry is not None
                and self.net.now - entry.fetched_at <= self.query_cache_ttl_s
                and entry.graph.version == entry.version
            ):
                obs.counter("modeler.query_cache", result="hit").inc()
                self.net.engine.advance(self.rpc.local_s)
                # a copy, because flow queries credit own traffic by
                # mutating edges in place
                return entry.graph.copy()
            obs.counter("modeler.query_cache", result="miss").inc()
        self.net.engine.advance(self.rpc.local_s)
        resp = self.master.topology(
            TopologyRequest(tuple(ips), include_dynamics=include_dynamics)
        )
        missing = [ip for ip in ips if ip in resp.unresolved]
        if missing:
            raise QueryError(f"hosts not covered by any collector: {missing}")
        if caching:
            self._query_cache[key] = _CachedFetch(
                resp.graph, resp.graph.version, self.net.now
            )
            return resp.graph.copy()
        return resp.graph

    def invalidate_query_cache(self) -> None:
        """Drop memoized responses (e.g. after a known topology change)."""
        self._query_cache.clear()

    @staticmethod
    def _to_answer(p: FlowPrediction) -> FlowAnswer:
        return FlowAnswer(
            p.src, p.dst, p.rate_bps, p.bottleneck_bps, p.capacity_bps,
            p.latency_s, p.jitter_s, p.path,
        )

    def _attach_prediction(
        self, graph: TopologyGraph, ans: FlowAnswer, horizon_steps: int
    ) -> None:
        """Forecast the bottleneck edge's available bandwidth via RPS.

        History comes from the collectors through the Master's history
        interface (the paper's planned XML-protocol path); a local
        ``history_provider`` hook serves as fallback for deployments
        whose master predates the interface.
        """
        if self.prediction_service is None:
            raise QueryError("no prediction service configured")
        # Find the tightest edge on the path and its rate history.
        best: tuple[float, str, str] | None = None
        for a, b in zip(ans.path, ans.path[1:]):
            e = graph.edge(a, b)
            avail = e.available_from(a)
            if best is None or avail < best[0]:
                best = (avail, a, b)
        if best is None:
            return
        _, a, b = best
        # Streaming predictors at the collectors answer without a fit
        # (§2.3's amortized path); fall back to history + client-server.
        forecast_fn = getattr(self.master, "forecast_edge", None)
        if callable(forecast_fn):
            from repro.collectors.base import HistoryRequest

            self.net.engine.advance(self.rpc.local_s)
            out = forecast_fn(HistoryRequest(a, b), horizon_steps)
            if out is not None:
                preds, variances = out
                cap = graph.edge(a, b).capacity_bps
                predicted_util = float(preds[-1])
                ans.predicted_bps = (
                    max(0.0, min(cap, cap - predicted_util))
                    if math.isfinite(cap)
                    else math.inf
                )
                ans.predicted_var = float(variances[-1])
                return
        kind = "utilization"
        hist: np.ndarray | None = None
        history_fn = getattr(self.master, "history", None)
        if callable(history_fn):
            from repro.collectors.base import HistoryRequest

            self.net.engine.advance(self.rpc.local_s)
            resp = history_fn(HistoryRequest(a, b))
            if resp is not None:
                kind = resp.kind
                hist = np.asarray(resp.rates_bps, dtype=float)
        if (hist is None or hist.size < 8) and self.history_provider is not None:
            fallback = self.history_provider(a, b)
            if fallback is not None:
                kind = "utilization"
                hist = np.asarray(fallback, dtype=float)
        if hist is None or hist.size < 8:
            return  # not enough history: leave prediction unset
        preds, variances = self.prediction_service.predict_series(hist, horizon_steps)
        if kind == "available":
            ans.predicted_bps = max(0.0, float(preds[-1]))
        else:
            cap = graph.edge(a, b).capacity_bps
            predicted_util = float(preds[-1])
            ans.predicted_bps = (
                max(0.0, min(cap, cap - predicted_util))
                if math.isfinite(cap)
                else math.inf
            )
        ans.predicted_var = float(variances[-1])
