"""The Modeler layer: the Remos API, topology graphs, and flow math."""

from repro.modeler.api import FlowAnswer, Modeler
from repro.modeler.graph import (
    CLOUD,
    HOST,
    ROUTER,
    SWITCH,
    VSWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)
from repro.modeler.maxmin import FlowPrediction, predict_flows
from repro.modeler.simplify import collapse_chains, prune, simplify

__all__ = [
    "FlowAnswer",
    "Modeler",
    "CLOUD",
    "HOST",
    "ROUTER",
    "SWITCH",
    "VSWITCH",
    "TopoEdge",
    "TopoNode",
    "TopologyGraph",
    "FlowPrediction",
    "predict_flows",
    "collapse_chains",
    "prune",
    "simplify",
]
