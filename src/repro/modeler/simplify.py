"""Topology simplification.

The Modeler "performs additional processing on the topology returned by
the collector to eliminate unnecessary information and present the
topology to the application in a more manageable form" (paper §2.2),
including inserting virtual switches.  Two transformations:

* :func:`prune` — drop nodes that cannot lie on any path between the
  hosts the application asked about (iterative leaf removal).
* :func:`collapse_chains` — replace runs of degree-2 interior nodes
  (switch chains) with a single virtual switch whose two edges preserve
  the chain's directional available bandwidth, so flow answers are
  unchanged by simplification.
"""

from __future__ import annotations

import math

from repro import obs
from repro.modeler.graph import (
    HOST,
    VSWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)


def prune(graph: TopologyGraph, protect: set[str]) -> TopologyGraph:
    """Remove leaf nodes not in ``protect`` until none remain."""
    g = graph.copy()
    changed = True
    while changed:
        changed = False
        for node in list(g.nodes()):
            if node.id in protect:
                continue
            if g.degree(node.id) <= 1:
                g.remove_node(node.id)
                changed = True
    return g


def collapse_chains(graph: TopologyGraph, protect: set[str]) -> TopologyGraph:
    """Collapse maximal degree-2 chains of unprotected interior nodes.

    A chain ``A - x1 - x2 - ... - xk - B`` (each ``xi`` unprotected,
    non-host, degree 2) becomes ``A - v - B`` where ``v`` is a virtual
    switch.  Each replacement edge carries the chain half's bottleneck:
    capacity = min capacity, and utilization chosen so that available
    bandwidth in each direction equals the chain's directional minimum.
    Flow predictions over the simplified graph therefore match the
    original.
    """
    g = graph.copy()
    visited: set[str] = set()
    for node in list(g.nodes()):
        nid = node.id
        if nid in visited or not g.has_node(nid):
            continue
        if not _chainable(g, nid, protect):
            continue
        # Walk to both ends of the chain containing nid.
        chain = [nid]
        for direction in (0, 1):
            prev = nid
            nbrs = g.neighbors(nid)
            if len(nbrs) <= direction:
                break
            cur = nbrs[direction]
            while _chainable(g, cur, protect):
                if direction == 0:
                    chain.insert(0, cur)
                else:
                    chain.append(cur)
                nxt = [x for x in g.neighbors(cur) if x != prev]
                if not nxt:
                    break
                prev, cur = cur, nxt[0]
        visited.update(chain)
        if len(chain) < 2:
            continue
        ends = _chain_ends(g, chain)
        if ends is None:
            continue
        left, right = ends
        # Bottlenecks along the full chain, per direction.
        nodes_seq = [left] + chain + [right]
        avail_lr = math.inf
        avail_rl = math.inf
        cap = math.inf
        lat = 0.0
        jitter_sq = 0.0
        for a, b in zip(nodes_seq, nodes_seq[1:]):
            e = g.edge(a, b)
            avail_lr = min(avail_lr, e.available_from(a))
            avail_rl = min(avail_rl, e.available_from(b))
            cap = min(cap, e.capacity_bps)
            lat += e.latency_s
            jitter_sq += e.jitter_s**2
        vid = f"vsw:chain:{chain[0]}"
        for cid in chain:
            g.remove_node(cid)
        g.add_node(TopoNode(vid, VSWITCH))
        util_lr = max(0.0, cap - avail_lr)
        util_rl = max(0.0, cap - avail_rl)
        # split the chain's jitter so the two halves recompose exactly
        half_jitter = math.sqrt(jitter_sq / 2.0)
        g.add_edge(TopoEdge(left, vid, cap, util_lr, util_rl, lat / 2, half_jitter))
        g.add_edge(TopoEdge(vid, right, cap, util_lr, util_rl, lat / 2, half_jitter))
    return g


def simplify(graph: TopologyGraph, protect: set[str]) -> TopologyGraph:
    """Prune then collapse — the Modeler's standard pipeline.

    Records how much structure the application was spared: the
    node/edge reduction ratios (``1 - after/before``, so 0 means
    nothing removed) feed the "manageable form" claim of §2.2.
    """
    nodes_before = sum(1 for _ in graph.nodes())
    edges_before = sum(1 for _ in graph.edges())
    with obs.span("modeler.simplify"):
        out = collapse_chains(prune(graph, protect), protect)
    nodes_after = sum(1 for _ in out.nodes())
    edges_after = sum(1 for _ in out.edges())
    if nodes_before:
        obs.histogram("modeler.simplify.node_reduction").observe(
            1.0 - nodes_after / nodes_before
        )
    if edges_before:
        obs.histogram("modeler.simplify.edge_reduction").observe(
            1.0 - edges_after / edges_before
        )
    return out


def _chainable(g: TopologyGraph, nid: str, protect: set[str]) -> bool:
    if nid in protect or not g.has_node(nid):
        return False
    node = g.node(nid)
    return node.kind != HOST and g.degree(nid) == 2


def _chain_ends(g: TopologyGraph, chain: list[str]) -> tuple[str, str] | None:
    """The two non-chain neighbors bounding a chain."""
    chain_set = set(chain)
    left = [x for x in g.neighbors(chain[0]) if x not in chain_set]
    right = [x for x in g.neighbors(chain[-1]) if x not in chain_set]
    if len(left) != 1 or len(right) != 1:
        return None
    if left[0] == right[0]:
        return None  # degenerate loop; leave untouched
    return left[0], right[0]
