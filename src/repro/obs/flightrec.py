"""Flight recorder: bounded black box dumped when queries degrade.

The paper's Remos deployment runs unattended; when a query comes back
FAILED or PARTIAL hours later, the interesting evidence — which site's
fragment timed out, which retry burned the deadline — is long gone
from any live dashboard.  The flight recorder keeps a bounded ring of
recent log events alongside the registry's span ring, and on a
degraded answer (or an injected fault) freezes both into a JSON dump:
the full causal span tree for the affected trace plus the log tail and
the retry/timeout tallies.

Usage::

    with obs.scoped_registry() as reg:
        rec = FlightRecorder(reg, out_dir="diag/")
        with rec:                       # installs the log-tail handler
            answers = session.flow_info_many(pairs)
    # any FAILED/PARTIAL answer auto-dumped diag/flightrec-001-*.json

``RemosSession`` calls :meth:`on_answer` for every answer it returns
and :mod:`repro.faults` calls :meth:`on_fault` when an injector fires;
both honour ``max_dumps`` so a retry storm cannot fill the disk.
Render a dump with ``repro trace <file>``.
"""

from __future__ import annotations

import json
import logging
from collections import deque
from pathlib import Path
from typing import Protocol

from repro.obs import traceview
from repro.obs.log import ROOT as LOG_ROOT
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import SpanRecord


class DegradableAnswer(Protocol):
    """The slice of the Answer family the recorder hook needs.

    ``obs`` sits at the bottom of the layer DAG and must not import
    the modeler that defines :class:`~repro.modeler.api.Answer` —
    callers from above satisfy this protocol structurally.
    """

    @property
    def status(self) -> object: ...

    @property
    def trace_id(self) -> "str | None": ...

#: dump payload version, bumped on incompatible shape changes
DUMP_VERSION = 1


class _RingHandler(logging.Handler):
    """Log handler appending formatted events to a bounded ring."""

    def __init__(self, recorder: "FlightRecorder") -> None:
        super().__init__(level=logging.DEBUG)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            msg = record.getMessage()
        except Exception:  # pragma: no cover - malformed log call
            msg = str(record.msg)
        self._recorder._log_event(record.name, record.levelname, msg)


class FlightRecorder:
    """Bounded recorder of log events, dumped with the span ring.

    Attaching (``with recorder:`` or :meth:`attach`) registers the
    recorder on ``registry.flight_recorder`` — which is how the session
    and the fault injector discover it — and hooks a DEBUG-level
    handler onto the ``repro`` logger so the ring sees every event
    regardless of the configured console level.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        out_dir: str | Path | None = None,
        max_log_events: int = 256,
        max_dumps: int = 8,
    ) -> None:
        self.registry = registry
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.max_dumps = max_dumps
        #: dumps produced so far, most recent last
        self.dumps: list[dict[str, object]] = []
        self._events: deque[dict[str, object]] = deque(maxlen=max_log_events)
        self._handler: _RingHandler | None = None
        self._dump_seq = 0

    # -- lifecycle -----------------------------------------------------

    def attach(self) -> "FlightRecorder":
        if self._handler is None:
            self._handler = _RingHandler(self)
            root = logging.getLogger(LOG_ROOT)
            root.addHandler(self._handler)
            # the ring wants every event even when the console doesn't
            if root.level == logging.NOTSET or root.level > logging.DEBUG:
                root.setLevel(logging.DEBUG)
        self.registry.flight_recorder = self
        return self

    def detach(self) -> None:
        if self._handler is not None:
            logging.getLogger(LOG_ROOT).removeHandler(self._handler)
            self._handler = None
        if self.registry.flight_recorder is self:
            self.registry.flight_recorder = None

    def __enter__(self) -> "FlightRecorder":
        return self.attach()

    def __exit__(self, *exc: object) -> None:
        self.detach()

    # -- event intake --------------------------------------------------

    def _log_event(self, logger: str, level: str, message: str) -> None:
        self._events.append(
            {
                "t_s": self.registry.clock.now(),
                "logger": logger,
                "level": level,
                "message": message,
            }
        )

    # -- triggers ------------------------------------------------------

    def on_answer(self, answer: DegradableAnswer) -> None:
        """Session hook: dump when an answer comes back degraded."""
        status = getattr(answer.status, "name", str(answer.status))
        if status in ("FAILED", "PARTIAL"):
            self.maybe_dump(
                reason=f"answer.{status.lower()}",
                trace_id=getattr(answer, "trace_id", None),
            )

    def on_fault(self, kind: str) -> None:
        """Fault-injector hook: dump when a fault fires."""
        self.maybe_dump(reason=f"fault.{kind}", trace_id=None)

    # -- dumping -------------------------------------------------------

    def maybe_dump(
        self, reason: str, trace_id: str | None = None
    ) -> dict[str, object] | None:
        """Dump unless the ``max_dumps`` budget is exhausted."""
        if self._dump_seq >= self.max_dumps:
            return None
        return self.dump(reason, trace_id=trace_id)

    def dump(self, reason: str, trace_id: str | None = None) -> dict[str, object]:
        """Freeze the current evidence into a JSON-ready dict.

        Includes every span still in the registry ring (filtered to
        ``trace_id`` when given — plus any open ancestors so the tree
        has its roots), the log-event tail, and the counter snapshot
        the retry/timeout attribution reads from.  Written to
        ``out_dir`` as ``flightrec-NNN-<reason>.json`` when configured.
        """
        self._dump_seq += 1
        reg = self.registry
        spans = [traceview.record_to_dict(s) for s in reg.spans]
        # open spans (e.g. the session root at fault time) would be
        # invisible — the ring only holds completed spans — so record
        # them with a null duration
        now = reg.clock.now()
        for open_span in reg._span_stack:
            spans.append(_open_span_dict(open_span, now))
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace_id") == trace_id]
        counters = {
            c.name if not c.labels else _rendered(c.name, c.labels): c.value
            for c in reg.counters()
        }
        payload: dict[str, object] = {
            "version": DUMP_VERSION,
            "reason": reason,
            "trace_id": trace_id,
            "t_s": now,
            "spans": spans,
            "events": list(self._events),
            "counters": counters,
            "breakdown": traceview.breakdown(spans, counters),
        }
        self.dumps.append(payload)
        reg.counter("obs.flightrec.dumps", reason=reason.split(".", 1)[0]).inc()
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            slug = "".join(c if c.isalnum() else "-" for c in reason)
            path = self.out_dir / f"flightrec-{self._dump_seq:03d}-{slug}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return payload


def _rendered(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _open_span_dict(span: SpanRecord, now: float) -> dict[str, object]:
    """A still-open Span in the exported span-dict shape.

    Open spans (entered, not yet exited) have no ``end_s``/``wall_s``;
    close them at the dump instant so the tree renders.
    """
    return {
        "name": span.name,
        "labels": dict(span.labels),
        "start_s": span.start_s,
        "duration_s": max(0.0, now - span.start_s),
        "wall_s": 0.0,
        "depth": span.depth,
        "parent": span.parent,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "open": True,
    }


def load_dump(path: str | Path) -> dict[str, object]:
    """Read a flight-recorder dump back from disk.

    Round-trip guarantee: ``span_tree(load_dump(p)["spans"])`` equals
    the tree of the in-memory payload that produced ``p``.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "spans" not in data:
        raise ValueError(f"{path}: not a flight-recorder dump")
    return data
