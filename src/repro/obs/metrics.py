"""Metric primitives: counters, gauges, and quantile histograms.

Live instances are handed out by a
:class:`~repro.obs.registry.MetricsRegistry`; the matching ``Null*``
singletons are what the default no-op registry returns, so instrumented
code pays one attribute call and nothing else when observability is
disabled.

Histograms keep exact ``count``/``sum``/``min``/``max`` plus a bounded
reservoir of recent observations for quantile estimates — enough for
the paper-style latency tables without unbounded memory on long runs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

#: label set rendered into a stable identity: (("k", "v"), ...)
LabelsKey = tuple[tuple[str, str], ...]


def labels_key(labels: dict[str, object]) -> LabelsKey:
    # hot path: almost every call site passes zero or one label, where
    # no sort is needed
    if not labels:
        return ()
    if len(labels) == 1:
        [(k, v)] = labels.items()
        return ((k, str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_name(name: str, labels: LabelsKey) -> str:
    """Canonical display form: ``name{k=v,k2=v2}`` (or bare name)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({render_name(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that goes up and down (queue depth, staleness, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def __repr__(self) -> str:
        return f"Gauge({render_name(self.name, self.labels)}={self.value})"


class Histogram:
    """Distribution summary with reservoir-backed quantiles.

    ``count``/``sum``/``min``/``max`` are exact over the histogram's
    lifetime; quantiles are computed over the last ``reservoir``
    observations (a sliding window, which is what a monitoring system
    wants anyway: recent latency, not all-time latency).
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "_window")

    #: quantiles reported in snapshots and Prometheus summaries
    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(
        self, name: str, labels: LabelsKey = (), reservoir: int = 2048
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._window: deque[float] = deque(maxlen=reservoir)

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self._window.append(v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the reservoir (nan if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._window:
            return math.nan
        data = sorted(self._window)
        pos = q * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def quantiles(self, qs: Iterable[float] = QUANTILES) -> dict[float, float]:
        if not self._window:
            return {q: math.nan for q in qs}
        data = sorted(self._window)
        out: dict[float, float] = {}
        for q in qs:
            pos = q * (len(data) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(data) - 1)
            frac = pos - lo
            out[q] = data[lo] * (1.0 - frac) + data[hi] * frac
        return out

    def __repr__(self) -> str:
        return (
            f"Histogram({render_name(self.name, self.labels)}: "
            f"n={self.count}, mean={self.mean:.4g})"
        )


# -- no-op twins ------------------------------------------------------


class NullCounter:
    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()

    def set(self, v: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    def observe(self, v: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    def quantiles(self, qs: Iterable[float] = Histogram.QUANTILES) -> dict[float, float]:
        return {q: math.nan for q in qs}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
