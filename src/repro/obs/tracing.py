"""Lightweight span-based tracing.

A span brackets one logical operation — a collector topology query, a
polling sweep, a model fit — and records how long it took on *both*
clocks: the registry's timebase (the simulator clock in deployed
stacks, matching how the paper measures query latency) and the process
wall clock (how much real CPU the reproduction itself burned).

Spans nest: entering a span while another is open records the parent's
name and a depth, so a trace of ``modeler.flow_query`` containing
``collectors.master.topology`` containing ``collectors.snmp.topology``
reads like a call tree.  Nesting state lives on the owning registry;
the whole stack is single-threaded (one simulation timeline), so no
thread-local machinery is needed.

Every completed span also feeds a histogram named
``<span name>.duration_s`` (registry-clock seconds) in the same
registry, so latency quantiles come for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.metrics import LabelsKey


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    labels: LabelsKey
    #: start/end on the registry timebase (sim time in deployed stacks)
    start_s: float
    end_s: float
    #: wall-clock duration, always measured with perf_counter
    wall_s: float
    #: nesting depth at entry (0 = top level)
    depth: int
    #: name of the enclosing span, if any
    parent: str | None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class Span:
    """Context manager produced by ``registry.span(name, **labels)``."""

    __slots__ = ("_registry", "name", "labels", "_start", "_wall0", "_depth", "_parent")

    def __init__(self, registry, name: str, labels: LabelsKey) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack
        self._depth = len(stack)
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._start = self._registry.clock.now()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        end = self._registry.clock.now()
        stack = self._registry._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        record = SpanRecord(
            self.name, self.labels, self._start, end, wall, self._depth, self._parent
        )
        self._registry._record_span(record)


class NullSpan:
    """Reusable no-op context manager (safe to re-enter: it has no state)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()
