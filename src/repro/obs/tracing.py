"""Causal span tracing: explicit trace/span/parent identifiers.

A span brackets one logical operation — a collector topology query, a
polling sweep, one SNMP PDU exchange — and records how long it took on
*both* clocks: the registry's timebase (the simulator clock in deployed
stacks, matching how the paper measures query latency) and the process
wall clock (how much real CPU the reproduction itself burned).

Causality is explicit.  Every span carries three identifiers:

* ``trace_id`` — the query it belongs to, a string (``"t0007"``).  A
  span entered while no other span is open starts a fresh trace;
  descendants inherit it.
* ``span_id`` — unique per span within the registry.  A plain integer:
  span entry is the hottest obs path and formatting an id string per
  span costs more than the rest of the bookkeeping combined.
* ``parent_id`` — the ``span_id`` of the enclosing span (None for
  roots).

Parentage is captured *at entry time* from the registry's span stack,
not reconstructed later from names, depths, or timestamps.  That
distinction matters under :meth:`Engine.overlap <repro.netsim.engine.
Engine.overlap>`: logically concurrent fragment delegations are
rewound to a common start time, so sibling spans have *overlapping*
sim-clock intervals and any time-ordered reconstruction would attach a
child to whichever sibling happens to surround it.  The explicit
``parent_id`` survives that (see ``tests/obs/test_trace_causality.py``).

Identifiers are deterministic — per-registry sequence counters, no
randomness — so two runs of a seeded experiment against fresh
registries produce identical traces, and answers stay reproducible.

Spans still record the legacy ``depth`` and parent *name* fields for
readers of exported snapshots, and every completed span feeds a
histogram named ``<span name>.duration_s`` (registry-clock seconds) in
the same registry, so latency quantiles come for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.metrics import LabelsKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) coordinates of one point in a causal tree.

    Handed to code that needs to stamp results — an ``Answer`` records
    the ``trace_id`` of the query span that produced it — without
    holding a live :class:`Span` open.
    """

    trace_id: str
    span_id: int
    parent_id: int | None = None


@dataclass(slots=True)
class SpanRecord:
    """One completed span.

    Not frozen: a frozen dataclass routes ``__init__`` through
    ``object.__setattr__`` per field, and span completion is a hot path
    (six spans per warm query in the query-rate benchmark).  Treat
    instances as immutable anyway.
    """

    name: str
    labels: LabelsKey
    #: start/end on the registry timebase (sim time in deployed stacks)
    start_s: float
    end_s: float
    #: wall-clock duration, always measured with perf_counter
    wall_s: float
    #: nesting depth at entry (0 = top level)
    depth: int
    #: name of the enclosing span, if any (legacy; prefer parent_id)
    parent: str | None
    #: causal identifiers (see module docstring)
    trace_id: str = ""
    span_id: int = 0
    parent_id: int | None = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, self.parent_id)


class Span(SpanRecord):
    """Context manager produced by ``registry.span(name, **labels)``.

    A Span *is* its own completed :class:`SpanRecord` — on exit it
    fills in ``end_s``/``wall_s`` and appends itself to the registry's
    span ring, instead of copying eleven fields into a second object on
    the hot path.  ``end_s``/``wall_s`` are unset until exit.
    """

    __slots__ = ("_registry", "_wall0")

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: LabelsKey
    ) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels

    def __enter__(self) -> "Span":
        reg = self._registry
        stack = reg._span_stack
        self.depth = len(stack)
        if stack:
            top = stack[-1]
            self.parent = top.name
            self.trace_id = top.trace_id
            self.parent_id = top.span_id
        else:
            self.parent = None
            self.trace_id = reg._next_trace_id()
            self.parent_id = None
        self.span_id = reg._next_span_id()
        stack.append(self)
        self.start_s = reg.clock.now()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        reg = self._registry
        self.end_s = reg.clock.now()
        stack = reg._span_stack
        # Normally we are the top of the stack; an out-of-order exit
        # (a generator torn down late, an exception unwinding several
        # spans) must still remove *this* span, not whatever sits on
        # top, or every later span would inherit a bogus parent.
        if stack:
            if stack[-1] is self:
                stack.pop()
            else:
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is self:
                        del stack[i]
                        break
        reg._record_span(self)


class NullSpan:
    """Reusable no-op context manager (safe to re-enter: it has no state).

    Carries the same identifier surface as :class:`Span` — all None-ish
    — so call sites can stamp ``span.trace_id`` unconditionally.
    """

    __slots__ = ()

    #: the no-op trace has no identity
    trace_id: str | None = None
    span_id: int | None = None
    parent_id: int | None = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


NULL_SPAN = NullSpan()
