"""Namespaced logging for the whole stack.

Every module gets its logger through :func:`get_logger`, which roots
everything under the ``repro`` logger namespace so one call configures
the lot::

    from repro.obs.log import get_logger
    log = get_logger(__name__)        # -> logging.getLogger("repro.deploy")

Nothing is emitted unless :func:`configure` (or the application's own
``logging`` setup) attaches a handler; the library itself stays silent,
as libraries should.  The CLI's ``--verbose`` flag calls
``configure(verbose=True)``.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

ROOT = "repro"

#: format used by configure(); includes the namespaced logger so a
#: verbose run doubles as a per-layer event trace
_FORMAT = "%(levelname).1s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    Accepts a module ``__name__`` (already rooted at ``repro``), a bare
    suffix like ``"deploy"``, or None for the root ``repro`` logger.
    """
    if not name or name == ROOT:
        return logging.getLogger(ROOT)
    if name == "__main__":
        return logging.getLogger(f"{ROOT}.cli")
    if name.startswith(ROOT + ".") :
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def configure(
    verbose: bool = False, stream: IO[str] | None = None, level: int | None = None
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root logger.

    ``verbose=True`` selects DEBUG, otherwise INFO; an explicit
    ``level`` wins over both.  Idempotent: re-configuring replaces the
    handler installed by a previous call instead of stacking another.
    """
    root = logging.getLogger(ROOT)
    root.setLevel(level if level is not None else
                  logging.DEBUG if verbose else logging.INFO)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.set_name("repro-obs")
    for h in list(root.handlers):
        if h.get_name() == "repro-obs":
            root.removeHandler(h)
    root.addHandler(handler)
    root.propagate = False
    return root
