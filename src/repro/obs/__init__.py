"""repro.obs — metrics, spans, and logging for the Remos stack.

The paper's whole evaluation rests on measured quantities (query
latency, SNMP message counts, staleness, fit cost); this package makes
a running stack report them itself.  See ``docs/observability.md`` for
the metric name catalogue.

Instrumented code calls the module-level helpers, which delegate to the
current process-global registry::

    from repro import obs

    obs.counter("snmp.client.pdus", op="get").inc()
    obs.gauge("collectors.snmp.poll.staleness_s").set(age)
    obs.histogram("rps.fit.wall_s", spec="AR(16)").observe(dt)
    with obs.span("modeler.flow_query"):
        ...

By default the registry is a no-op (:class:`NullRegistry`): handles are
shared singletons and every call above costs one function call.
Experiments opt in::

    with obs.scoped_registry() as reg:
        reg.use_sim_clock(net.engine)      # spans in simulated seconds
        run()
        print(obs.export.to_json(reg))
"""

from __future__ import annotations

from repro.obs import export, log, metrics, timebase, tracing  # noqa: F401
from repro.obs.log import get_logger
from repro.obs.flightrec import FlightRecorder, load_dump
from repro.obs.metrics import Counter, Gauge, Histogram, render_name
from repro.obs.registry import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from repro.obs.timebase import (
    FixedTimebase,
    SimTimebase,
    WallTimebase,
    cpu_now,
    wall_now,
)
from repro.obs.tracing import SpanRecord, TraceContext
from repro.obs import flightrec, traceview  # noqa: F401

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SpanRecord",
    "TraceContext",
    "FixedTimebase",
    "SimTimebase",
    "WallTimebase",
    "counter",
    "cpu_now",
    "wall_now",
    "gauge",
    "histogram",
    "span",
    "get_logger",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "render_name",
    "load_dump",
    "export",
    "flightrec",
    "log",
    "metrics",
    "timebase",
    "traceview",
    "tracing",
]


def counter(name: str, **labels: object) -> "metrics.Counter | metrics.NullCounter":
    """Counter handle from the current registry."""
    return get_registry().counter(name, **labels)


def gauge(name: str, **labels: object) -> "metrics.Gauge | metrics.NullGauge":
    """Gauge handle from the current registry."""
    return get_registry().gauge(name, **labels)


def histogram(
    name: str, **labels: object
) -> "metrics.Histogram | metrics.NullHistogram":
    """Histogram handle from the current registry."""
    return get_registry().histogram(name, **labels)


def span(name: str, **labels: object) -> "tracing.Span | tracing.NullSpan":
    """Span context manager from the current registry."""
    return get_registry().span(name, **labels)
