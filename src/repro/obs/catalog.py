"""Central catalogue of observability metric and span names.

Every counter/gauge/histogram name used in instrumentation must be
registered in :data:`METRIC_NAMES` — remoslint rule RML007 fails the
build otherwise — and every span name in :data:`SPAN_NAMES` — rule
RML008 — so exporter consumers, dashboards, trace tooling, and the
BENCH_*.json diffs never chase a typo'd time series or a trace name
that silently forked.  ``docs/observability.md`` is the prose
companion; this module is the machine-checked source of truth.

Spans derive ``<name>.duration_s`` histograms inside the obs layer
itself; those derived histogram names are not listed separately.
"""

from __future__ import annotations

METRIC_NAMES: frozenset[str] = frozenset(
    {
        # -- netsim ----------------------------------------------------
        "netsim.engine.events",
        "netsim.engine.queue_depth",
        "netsim.engine.sim_advance_s",
        "netsim.engine.sim_time_s",
        "netsim.flows.realloc_channels_touched",
        "netsim.maxmin.rounds",
        # -- snmp ------------------------------------------------------
        "snmp.agent.dropped",
        "snmp.agent.requests",
        "snmp.bulk_varbinds",
        "snmp.client.bulk_walk_len",
        "snmp.client.pdus",
        "snmp.client.timeouts",
        "snmp.client.walk_len",
        "snmp.retries",
        # -- collectors ------------------------------------------------
        "collectors.benchmark.probe_failures",
        "collectors.benchmark.probes",
        "collectors.benchmark.throughput_bps",
        "collectors.master.fanout",
        "collectors.master.fragment_retries",
        "collectors.master.lkg_invalidated",
        "collectors.master.lkg_served",
        "collectors.master.merge_wall_s",
        "collectors.master.overlap_saved_s",
        "collectors.master.quarantine_skips",
        "collectors.master.query_pdus",
        "collectors.master.unresolved_ips",
        "collectors.master.wan_edges",
        "collectors.sharded.cross_edges",
        "collectors.sharded.fanout",
        "collectors.sharded.lkg_served",
        "collectors.sharded.overlap_saved_s",
        "collectors.sharded.replica_promotions",
        "collectors.sharded.shard_failures",
        "collectors.snmp.cache_flush",
        "collectors.snmp.monitored_links",
        "collectors.snmp.monitors_bootstrapped",
        "collectors.snmp.path_cache",
        "collectors.snmp.poll.batch_links",
        "collectors.snmp.poll.staleness_s",
        "collectors.snmp.polls",
        "collectors.snmp.route_cache",
        "collectors.streaming.predictors",
        "collectors.streaming.samples_fed",
        "master.fragment_timeouts",
        # -- modeler / query path --------------------------------------
        "modeler.graph.path_cache",
        "modeler.graph.scoped_invalidation",
        "modeler.maxmin.constraints",
        "modeler.maxmin.flows",
        "modeler.planner.pairs",
        "modeler.queries",
        "modeler.query_cache",
        "modeler.simplify.edge_reduction",
        "modeler.simplify.node_reduction",
        "query.partial",
        # -- rps -------------------------------------------------------
        "rps.evaluator.abs_error",
        "rps.evaluator.observations",
        "rps.evaluator.refit_flags",
        "rps.fit.wall_s",
        "rps.refit.events",
        "rps.requests",
        "rps.service.fallbacks",
        "rps.service.last_resort",
        "rps.service.requests",
        "rps.streaming.refits",
        # -- service plane (repro.service) -----------------------------
        "service.breaker_transitions",
        "service.inflight",
        "service.lkg_entries",
        "service.ratelimited",
        "service.requests",
        "service.retries",
        "service.shed",
        "service.subs_events",
        # -- faults ----------------------------------------------------
        "faults.injected",
        # -- obs itself ------------------------------------------------
        "obs.flightrec.dumps",
    }
)

#: every span name instrumentation may open (RML008); each span also
#: feeds a derived ``<name>.duration_s`` histogram with its labels.
SPAN_NAMES: frozenset[str] = frozenset(
    {
        # -- service plane (trace roots for remote queries) ------------
        "service.backend",
        "service.request",
        # -- session (trace roots) -------------------------------------
        "session.flow_info",
        "session.flow_info_many",
        "session.node_info",
        "session.topology",
        # -- modeler ---------------------------------------------------
        "modeler.flow_query",
        "modeler.maxmin",
        # -- netsim ----------------------------------------------------
        "netsim.maxmin.kernel",
        "modeler.node_query",
        "modeler.simplify",
        "modeler.topology_query",
        # -- collectors ------------------------------------------------
        "collectors.master.delegate",
        "collectors.master.history",
        "collectors.master.topology",
        "collectors.sharded.delegate",
        "collectors.sharded.stitch",
        "collectors.sharded.topology",
        "collectors.snmp.history",
        "collectors.snmp.poll",
        "collectors.snmp.topology",
        # -- snmp transport --------------------------------------------
        "snmp.client.pdu",
        "snmp.client.retry",
        "snmp.client.timeout",
    }
)
