"""Clock abstraction for the observability layer.

The paper's evaluation measures everything — collector query latency,
polling staleness, probe cost — in *simulated* time, while model-fit
cost (Fig. 7) is *wall-clock* CPU time.  A :class:`Timebase` lets the
metrics registry stamp spans and gauges against whichever clock the
experiment cares about: spans always capture wall-clock duration via
``perf_counter`` in addition to the registry timebase, so both numbers
are available from one instrumentation point.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Timebase(Protocol):
    """Anything that can report the current time in seconds."""

    def now(self) -> float: ...


def wall_now() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``).

    The sanctioned wall-clock read for sim-facing layers: remoslint
    rule RML001 bans direct ``time.*`` clock calls in netsim / snmp /
    collectors / rps / faults so every wall-clock dependency is
    greppable here.  Only use it for *duration measurement* (cost
    accounting, span timing) — anything that influences simulation
    behaviour must read the Engine clock instead.
    """
    return time.perf_counter()


def cpu_now() -> float:
    """Process CPU seconds (``time.process_time``).

    Counterpart of :func:`wall_now` for CPU-cost accounting (the
    paper's Fig. 6/7 measurements); same RML001 rationale.
    """
    return time.process_time()


class WallTimebase:
    """Monotonic wall-clock time (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class SimTimebase:
    """The simulated clock of an engine (or anything with a ``now``).

    Accepts any object exposing a ``now`` attribute or property —
    :class:`repro.netsim.engine.Engine` and
    :class:`repro.netsim.topology.Network` both qualify — without the
    obs layer importing netsim (which would invert the layering).
    """

    def __init__(self, source: object) -> None:
        if not hasattr(source, "now"):
            raise TypeError(f"{source!r} has no 'now' attribute")
        self._source = source
        # resolve once whether `now` is a method or a property; this
        # clock is read twice per span, so the per-call callable()
        # check is worth hoisting
        self._is_method = callable(source.now)  # type: ignore[attr-defined]

    def now(self) -> float:
        value = self._source.now  # type: ignore[attr-defined]
        return float(value()) if self._is_method else float(value)


class FixedTimebase:
    """Manually advanced clock for deterministic tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance backwards")
        self._now += dt
