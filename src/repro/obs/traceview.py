"""Trace analysis and rendering: span trees, attribution, exports.

Everything here operates on *span dicts* — the JSON shape emitted by
:func:`repro.obs.export.snapshot` (``snapshot(reg)["spans"]``) and by
flight-recorder dumps — so the same code serves the ``repro trace``
CLI, the benchmark breakdown sections, and offline analysis of a
``BENCH_*.json`` file.  Live :class:`~repro.obs.tracing.SpanRecord`
objects are converted with :func:`record_to_dict`.

The three consumers:

* :func:`span_tree` — reconstruct the causal tree from explicit
  ``parent_id`` links (never from names, depths, or timestamps, which
  are ambiguous under ``Engine.overlap``; see ``repro.obs.tracing``).
* :func:`time_by_layer` / :func:`time_by_site` /
  :func:`retry_timeout_counts` — latency attribution: where did an
  answer's time go?  Layer attribution uses *self time* (a span's
  duration minus its children's) so nested layers never double-count;
  site attribution keys on the ``site`` label the Master stamps on
  each fragment delegation.
* :func:`waterfall_lines` and :func:`to_chrome_trace` — a text
  waterfall for terminals, and Chrome trace-event JSON (load it at
  ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.obs.tracing import SpanRecord

#: one exported span, as in snapshot()["spans"] (plus "children" once
#: assembled into a tree)
SpanDict = dict[str, object]

#: span-name prefixes mapped to attribution layers, longest match wins
LAYER_PREFIXES: tuple[str, ...] = (
    "session",
    "modeler",
    "collectors.master",
    "collectors.snmp",
    "collectors",
    "snmp.client",
    "snmp",
    "netsim",
    "rps",
)


def record_to_dict(s: SpanRecord) -> SpanDict:
    """A live SpanRecord in the exported-snapshot span shape."""
    dur = s.duration_s
    return {
        "name": s.name,
        "labels": dict(s.labels),
        "start_s": s.start_s,
        "duration_s": dur if math.isfinite(dur) else None,
        "wall_s": s.wall_s,
        "depth": s.depth,
        "parent": s.parent,
        "trace_id": s.trace_id,
        "span_id": s.span_id,
        "parent_id": s.parent_id,
    }


def normalize_spans(obj: object) -> list[SpanDict]:
    """Find the span list inside any of the shapes we emit.

    Accepts a bare span list, a registry snapshot (``{"spans": ...}``),
    a flight-recorder dump (same key), or a ``BENCH_*.json`` payload
    (``{"obs": {"spans": ...}}``).
    """
    if isinstance(obj, list):
        return [dict(s) for s in obj]
    if isinstance(obj, dict):
        if isinstance(obj.get("spans"), list):
            return [dict(s) for s in obj["spans"]]
        obs_part = obj.get("obs")
        if isinstance(obs_part, dict) and isinstance(obs_part.get("spans"), list):
            return [dict(s) for s in obs_part["spans"]]
    raise ValueError("no span list found (expected snapshot, dump, or BENCH json)")


def _dur(span: Mapping[str, object]) -> float:
    v = span.get("duration_s")
    return float(v) if isinstance(v, (int, float)) else 0.0


def _start(span: Mapping[str, object]) -> float:
    v = span.get("start_s")
    return float(v) if isinstance(v, (int, float)) else 0.0


def _sort_key(span: Mapping[str, object]) -> tuple[float, str]:
    # span ids are ints; zero-pad so the string tiebreak sorts them
    # numerically (and still tolerates ad-hoc string ids in hand-made
    # fixtures)
    sid = span.get("span_id")
    return (_start(span), f"{sid:012d}" if isinstance(sid, int) else str(sid or ""))


def span_tree(spans: Iterable[SpanDict]) -> list[SpanDict]:
    """Assemble the causal tree from explicit parent_id links.

    Returns the roots, each a *copy* of its span dict with a
    ``children`` list (recursively), ordered by (start, span_id).
    Spans whose parent was evicted from the bounded ring become roots
    themselves, so a truncated recording still renders.
    """
    nodes: dict[str, SpanDict] = {}
    ordered: list[SpanDict] = []
    for s in spans:
        node = dict(s)
        node["children"] = []
        sid = str(s.get("span_id") or "")
        if sid:
            nodes[sid] = node
        ordered.append(node)
    roots: list[SpanDict] = []
    for node in ordered:
        pid = node.get("parent_id")
        parent = nodes.get(str(pid)) if pid else None
        if parent is not None and parent is not node:
            children = parent["children"]
            assert isinstance(children, list)
            children.append(node)
        else:
            roots.append(node)
    for node in ordered:
        children = node["children"]
        assert isinstance(children, list)
        children.sort(key=_sort_key)
    roots.sort(key=_sort_key)
    return roots


def self_time_s(node: Mapping[str, object]) -> float:
    """A tree node's duration minus its children's (floored at 0)."""
    children = node.get("children") or []
    assert isinstance(children, list)
    own = _dur(node) - sum(_dur(c) for c in children)
    return max(0.0, own)


def layer_of(name: str) -> str:
    """Attribution layer of a span name (longest registered prefix)."""
    best = ""
    for prefix in LAYER_PREFIXES:
        if (name == prefix or name.startswith(prefix + ".")) and len(prefix) > len(best):
            best = prefix
    return best or name.split(".", 1)[0]


def time_by_layer(spans: Iterable[SpanDict]) -> dict[str, float]:
    """Self-time (registry-clock seconds) attributed per layer.

    Because self time excludes children, the values sum to the total
    traced time with no double counting across nested layers.
    """
    out: dict[str, float] = {}
    for root in span_tree(spans):
        stack = [root]
        while stack:
            node = stack.pop()
            layer = layer_of(str(node.get("name") or ""))
            out[layer] = out.get(layer, 0.0) + self_time_s(node)
            children = node.get("children") or []
            assert isinstance(children, list)
            stack.extend(children)
    return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))


def time_by_site(spans: Iterable[SpanDict]) -> dict[str, float]:
    """Registry-clock seconds spent per site, from delegation spans.

    The Master stamps ``site=<name>`` on each fragment delegation span
    (``collectors.master.delegate``); under overlapped delegation the
    per-site durations are logically concurrent, so they sum to the
    *serial* cost, not the makespan — exactly what "which site consumed
    the budget" asks.
    """
    out: dict[str, float] = {}
    for s in spans:
        labels = s.get("labels")
        if not isinstance(labels, dict):
            continue
        site = labels.get("site")
        if site is None:
            continue
        out[str(site)] = out.get(str(site), 0.0) + _dur(s)
    return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))


#: counter base names summed into the retry/timeout section
_RETRY_COUNTERS = ("snmp.retries", "collectors.master.fragment_retries")
_TIMEOUT_COUNTERS = ("snmp.client.timeouts", "master.fragment_timeouts")
_DEGRADE_COUNTERS = (
    "collectors.master.quarantine_skips",
    "collectors.master.lkg_served",
    "query.partial",
    "faults.injected",
)


def _sum_counters(counters: Mapping[str, float], bases: Iterable[str]) -> float:
    total = 0.0
    for rendered, value in counters.items():
        base = rendered.split("{", 1)[0]
        if base in bases:
            total += float(value)
    return total


def retry_timeout_counts(counters: Mapping[str, float]) -> dict[str, float]:
    """Retry/timeout/degradation tallies from a counters snapshot.

    ``counters`` is the ``snapshot(reg)["counters"]`` dict (rendered
    names with labels); labelled series are summed per base name.
    """
    out = {
        "retries": _sum_counters(counters, _RETRY_COUNTERS),
        "timeouts": _sum_counters(counters, _TIMEOUT_COUNTERS),
    }
    for base in _DEGRADE_COUNTERS:
        out[base] = _sum_counters(counters, (base,))
    return out


def breakdown(
    spans: Iterable[SpanDict], counters: Mapping[str, float] | None = None
) -> dict[str, object]:
    """The trace-derived sections embedded in ``BENCH_*.json``."""
    spans = list(spans)
    return {
        "time_by_layer": time_by_layer(spans),
        "time_by_site": time_by_site(spans),
        "counts": retry_timeout_counts(counters or {}),
        "spans_recorded": len(spans),
        "traces": len({s.get("trace_id") for s in spans if s.get("trace_id")}),
    }


# -- text waterfall ----------------------------------------------------


def _render_labels(span: Mapping[str, object]) -> str:
    labels = span.get("labels")
    if not isinstance(labels, dict) or not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def waterfall_lines(
    spans: Iterable[SpanDict],
    trace_id: str | None = None,
    width: int = 40,
) -> list[str]:
    """A per-trace indented waterfall with proportional duration bars.

    One block per trace (filtered to ``trace_id`` when given); each
    line shows the span's name+labels, its sim-clock window, and a bar
    positioned on the trace's own timeline, so overlapped fragments
    visibly run in parallel.
    """
    spans = list(spans)
    roots = span_tree(spans)
    by_trace: dict[str, list[SpanDict]] = {}
    for r in roots:
        tid = str(r.get("trace_id") or "?")
        by_trace.setdefault(tid, []).append(r)
    lines: list[str] = []
    for tid in sorted(by_trace):
        if trace_id is not None and tid != trace_id:
            continue
        trace_roots = by_trace[tid]
        t0 = min(_start(r) for r in trace_roots)
        t1 = max(_start(r) + _dur(r) for r in trace_roots)
        extent = max(t1 - t0, 1e-12)
        lines.append(f"trace {tid}  ({t1 - t0:.6f}s sim, t0={t0:.6f})")
        stack: list[tuple[SpanDict, int]] = [(r, 0) for r in reversed(trace_roots)]
        while stack:
            node, depth = stack.pop()
            start = _start(node)
            dur = _dur(node)
            lo = int(round((start - t0) / extent * width))
            hi = max(lo + 1, int(round((start + dur - t0) / extent * width)))
            bar = " " * lo + "#" * min(hi - lo, width - lo)
            name = "  " * depth + str(node.get("name")) + _render_labels(node)
            lines.append(
                f"  {name:<46} {dur * 1e3:9.3f}ms |{bar:<{width}}|"
            )
            children = node.get("children") or []
            assert isinstance(children, list)
            stack.extend((c, depth + 1) for c in reversed(children))
        lines.append("")
    if len(lines) and lines[-1] == "":
        lines.pop()
    return lines


# -- Chrome trace-event export -----------------------------------------


def to_chrome_trace(spans: Iterable[SpanDict]) -> dict[str, object]:
    """Spans as Chrome trace-event JSON (complete "X" events).

    Timestamps are the registry clock (sim seconds) scaled to
    microseconds.  Thread ids are lanes: a span shares its parent's
    lane unless it overlaps an earlier sibling there (the
    ``Engine.overlap`` case), in which case it gets a fresh lane — so
    logically concurrent fragments render side by side instead of
    corrupting the flame stack.
    """
    events: list[dict[str, object]] = []
    next_lane = 0

    def place(nodes: list[SpanDict], parent_lane: int) -> None:
        nonlocal next_lane
        #: (lane, busy-until) candidates for this sibling group
        candidates: list[tuple[int, float]] = [(parent_lane, -math.inf)]
        for node in nodes:
            start, end = _start(node), _start(node) + _dur(node)
            lane = -1
            for i, (cand, busy) in enumerate(candidates):
                if busy <= start:
                    lane = cand
                    candidates[i] = (cand, end)
                    break
            if lane < 0:
                next_lane += 1
                lane = next_lane
                candidates.append((lane, end))
            args: dict[str, object] = {
                "trace_id": node.get("trace_id"),
                "span_id": node.get("span_id"),
                "parent_id": node.get("parent_id"),
                "wall_ms": round(float(node.get("wall_s") or 0.0) * 1e3, 6),
            }
            labels = node.get("labels")
            if isinstance(labels, dict):
                args.update(labels)
            events.append(
                {
                    "name": str(node.get("name")),
                    "cat": str(node.get("trace_id") or "trace"),
                    "ph": "X",
                    "ts": round(start * 1e6, 3),
                    "dur": round(_dur(node) * 1e6, 3),
                    "pid": 0,
                    "tid": lane,
                    "args": args,
                }
            )
            children = node.get("children") or []
            assert isinstance(children, list)
            place(children, lane)

    place(span_tree(spans), 0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
