"""The metrics registry: process-global, swappable, no-op by default.

Instrumented code never holds configuration — it asks the current
registry for a handle each time::

    from repro import obs
    obs.counter("snmp.client.pdus", op="get").inc()
    with obs.span("collectors.snmp.topology"):
        ...

The default registry is a :class:`NullRegistry` whose handles are
shared no-op singletons, so an uninstrumented run pays one function
call per metric touch and allocates nothing.  Experiments install a
live :class:`MetricsRegistry` — usually through the
:func:`scoped_registry` context manager, which restores the previous
registry on exit so tests and benchmarks capture metrics hermetically.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    LabelsKey,
    labels_key,
)
from repro.obs.timebase import SimTimebase, Timebase, WallTimebase
from repro.obs.tracing import NULL_SPAN, Span, SpanRecord


class MetricsRegistry:
    """A live store of counters, gauges, histograms, and spans.

    ``clock`` is the timebase spans and staleness gauges are stamped
    against — wall clock unless :meth:`use_sim_clock` points it at a
    simulation engine.
    """

    def __init__(
        self,
        clock: Timebase | None = None,
        max_spans: int = 4096,
        reservoir: int = 2048,
    ) -> None:
        self.clock: Timebase = clock or WallTimebase()
        self._reservoir = reservoir
        self._counters: dict[tuple[str, LabelsKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelsKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelsKey], Histogram] = {}
        #: completed spans, most recent last (bounded)
        self.spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._span_stack: list[Span] = []

    # -- clock ---------------------------------------------------------

    def use_sim_clock(self, source) -> None:
        """Stamp spans against a simulation clock (engine or network)."""
        self.clock = SimTimebase(source)

    # -- handles -------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, labels_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, labels_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, labels_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1], self._reservoir)
        return h

    def span(self, name: str, **labels) -> Span:
        return Span(self, name, labels_key(labels))

    def _record_span(self, record: SpanRecord) -> None:
        self.spans.append(record)
        self.histogram(record.name + ".duration_s", **dict(record.labels)).observe(
            record.duration_s
        )

    # -- introspection -------------------------------------------------

    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def metric_names(self) -> set[str]:
        """Distinct metric names (without labels) of every kind."""
        return (
            {n for n, _ in self._counters}
            | {n for n, _ in self._gauges}
            | {n for n, _ in self._histograms}
        )

    def reset(self) -> None:
        """Drop every metric and span (the clock is kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()
        self._span_stack.clear()


class NullRegistry:
    """The default: every handle is a shared no-op singleton."""

    clock: Timebase = WallTimebase()

    def use_sim_clock(self, source) -> None:
        pass

    def counter(self, name: str, **labels):
        return NULL_COUNTER

    def gauge(self, name: str, **labels):
        return NULL_GAUGE

    def histogram(self, name: str, **labels):
        return NULL_HISTOGRAM

    def span(self, name: str, **labels):
        return NULL_SPAN

    def counters(self) -> list:
        return []

    def gauges(self) -> list:
        return []

    def histograms(self) -> list:
        return []

    def metric_names(self) -> set[str]:
        return set()

    @property
    def spans(self) -> deque:
        return deque()

    def reset(self) -> None:
        pass


_NULL = NullRegistry()
_current = _NULL


def get_registry():
    """The registry instrumented code is currently writing to."""
    return _current


def set_registry(registry) -> None:
    """Install a registry globally (None restores the no-op default)."""
    global _current
    _current = registry if registry is not None else _NULL


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None):
    """Install a registry for the duration of a ``with`` block.

    Creates a fresh live :class:`MetricsRegistry` when none is given.
    The previous registry is restored on exit, so nested scopes and
    test isolation just work::

        with scoped_registry() as reg:
            run_experiment()
            snapshot = export.snapshot(reg)
    """
    reg = registry if registry is not None else MetricsRegistry()
    global _current
    prev = _current
    _current = reg
    try:
        yield reg
    finally:
        _current = prev
