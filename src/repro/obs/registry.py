"""The metrics registry: process-global, swappable, no-op by default.

Instrumented code never holds configuration — it asks the current
registry for a handle each time::

    from repro import obs
    obs.counter("snmp.client.pdus", op="get").inc()
    with obs.span("collectors.snmp.topology"):
        ...

The default registry is a :class:`NullRegistry` whose handles are
shared no-op singletons, so an uninstrumented run pays one function
call per metric touch and allocates nothing.  Experiments install a
live :class:`MetricsRegistry` — usually through the
:func:`scoped_registry` context manager, which restores the previous
registry on exit so tests and benchmarks capture metrics hermetically.

Trace identifiers (see :mod:`repro.obs.tracing`) are allocated here,
from plain per-registry sequence counters: deterministic, so seeded
experiments replay identical traces.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    LabelsKey,
    NullCounter,
    NullGauge,
    NullHistogram,
    labels_key,
)
from repro.obs.timebase import SimTimebase, Timebase, WallTimebase
from repro.obs.tracing import NULL_SPAN, NullSpan, Span, SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.flightrec import FlightRecorder


class MetricsRegistry:
    """A live store of counters, gauges, histograms, and spans.

    ``clock`` is the timebase spans and staleness gauges are stamped
    against — wall clock unless :meth:`use_sim_clock` points it at a
    simulation engine.
    """

    def __init__(
        self,
        clock: Timebase | None = None,
        max_spans: int = 4096,
        reservoir: int = 2048,
    ) -> None:
        self.clock: Timebase = clock or WallTimebase()
        self._reservoir = reservoir
        self._counters: dict[tuple[str, LabelsKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelsKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelsKey], Histogram] = {}
        #: span (name, labels) -> its duration histogram, so recording
        #: a span skips the "<name>.duration_s" string concat
        self._span_hists: dict[tuple[str, LabelsKey], Histogram] = {}
        #: completed spans, most recent last (bounded ring)
        self.spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._span_stack: list[Span] = []
        #: deterministic identifier sequences (see repro.obs.tracing)
        self._trace_seq = 0
        self._span_seq = 0
        #: optional flight recorder; the session and fault injector
        #: discover it here at dump time (see repro.obs.flightrec)
        self.flight_recorder: "FlightRecorder | None" = None

    # -- clock ---------------------------------------------------------

    def use_sim_clock(self, source: object) -> None:
        """Stamp spans against a simulation clock (engine or network)."""
        self.clock = SimTimebase(source)

    # -- handles -------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, labels_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, labels_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, labels_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1], self._reservoir)
        return h

    def span(self, name: str, **labels: object) -> Span:
        return Span(self, name, labels_key(labels) if labels else ())

    # -- trace identity ------------------------------------------------

    def _next_trace_id(self) -> str:
        self._trace_seq += 1
        return f"t{self._trace_seq:04d}"

    def _next_span_id(self) -> int:
        self._span_seq += 1
        return self._span_seq

    def current_trace_id(self) -> str | None:
        """The trace of the innermost open span, if any."""
        stack = self._span_stack
        return stack[-1].trace_id if stack else None

    def _record_span(self, record: SpanRecord) -> None:
        self.spans.append(record)
        # hot path: record.labels is already a canonical LabelsKey and
        # the duration histogram is memoized per (name, labels), so the
        # steady state is one dict hit — no labels re-sort, no
        # "<name>.duration_s" concat
        key = (record.name, record.labels)
        h = self._span_hists.get(key)
        if h is None:
            h = Histogram(record.name + ".duration_s", record.labels, self._reservoir)
            self._histograms[(h.name, record.labels)] = h
            self._span_hists[key] = h
        h.observe(record.end_s - record.start_s)

    # -- introspection -------------------------------------------------

    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def metric_names(self) -> set[str]:
        """Distinct metric names (without labels) of every kind."""
        return (
            {n for n, _ in self._counters}
            | {n for n, _ in self._gauges}
            | {n for n, _ in self._histograms}
        )

    def reset(self) -> None:
        """Drop every metric and span (the clock is kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._span_hists.clear()
        self.spans.clear()
        self._span_stack.clear()
        self._trace_seq = 0
        self._span_seq = 0


class NullRegistry:
    """The default: every handle is a shared no-op singleton."""

    clock: Timebase = WallTimebase()
    flight_recorder: None = None

    def use_sim_clock(self, source: object) -> None:
        pass

    def counter(self, name: str, **labels: object) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, **labels: object) -> NullHistogram:
        return NULL_HISTOGRAM

    def span(self, name: str, **labels: object) -> NullSpan:
        return NULL_SPAN

    def current_trace_id(self) -> None:
        return None

    def counters(self) -> list[Counter]:
        return []

    def gauges(self) -> list[Gauge]:
        return []

    def histograms(self) -> list[Histogram]:
        return []

    def metric_names(self) -> set[str]:
        return set()

    @property
    def spans(self) -> "deque[SpanRecord]":
        return deque()

    def reset(self) -> None:
        pass


_NULL = NullRegistry()
_current: "MetricsRegistry | NullRegistry" = _NULL


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The registry instrumented code is currently writing to."""
    return _current


def set_registry(registry: "MetricsRegistry | NullRegistry | None") -> None:
    """Install a registry globally (None restores the no-op default)."""
    global _current
    _current = registry if registry is not None else _NULL


@contextmanager
def scoped_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of a ``with`` block.

    Creates a fresh live :class:`MetricsRegistry` when none is given.
    The previous registry is restored on exit, so nested scopes and
    test isolation just work::

        with scoped_registry() as reg:
            run_experiment()
            snapshot = export.snapshot(reg)
    """
    reg = registry if registry is not None else MetricsRegistry()
    global _current
    prev = _current
    _current = reg
    try:
        yield reg
    finally:
        _current = prev
