"""Registry exporters: JSON snapshots and Prometheus text format.

Two consumers, two formats:

* :func:`snapshot` / :func:`to_json` — a plain dict / JSON document for
  benchmark scripts and EXPERIMENTS.md tooling (registry reads replace
  hand-rolled counters).  Span entries carry the causal identifiers
  (``trace_id``/``span_id``/``parent_id``, see :mod:`repro.obs.tracing`)
  so the tree is reconstructible offline (``repro trace`` renders it).
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` comments, ``name{label="v"} value`` samples; histograms
  as summaries with ``quantile`` labels plus ``_sum``/``_count``), so a
  real scrape endpoint is one HTTP handler away.  Label values are
  escaped per the exposition spec (backslash, double quote, newline).
  :func:`parse_prometheus` reads that format back, which the tests use
  to prove the export round-trips.

Metric names are dotted internally (``snmp.client.pdus``) and
sanitised to Prometheus conventions (``repro_snmp_client_pdus``) on
export.
"""

from __future__ import annotations

import json
import math
import re
from typing import TYPE_CHECKING

from repro.obs.metrics import Histogram, LabelsKey, render_name

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.registry import MetricsRegistry, NullRegistry

    AnyRegistry = MetricsRegistry | NullRegistry

#: prefix for every exported Prometheus metric
PROM_PREFIX = "repro_"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:[^"\\]|\\.)*)"')


def prom_name(name: str) -> str:
    """``snmp.client.pdus`` -> ``repro_snmp_client_pdus``."""
    return PROM_PREFIX + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _finite(v: float) -> float | None:
    """JSON-safe number (inf/nan become None)."""
    return v if math.isfinite(v) else None


def _histogram_summary(h: Histogram) -> dict[str, object]:
    return {
        "count": h.count,
        "sum": _finite(h.sum),
        "min": _finite(h.min) if h.count else None,
        "max": _finite(h.max) if h.count else None,
        "mean": _finite(h.mean),
        "quantiles": {
            str(q): _finite(v) for q, v in h.quantiles().items()
        },
    }


def snapshot(registry: "AnyRegistry", max_spans: int = 256) -> dict[str, object]:
    """The registry's state as a plain dict (JSON-serialisable)."""
    return {
        "counters": {
            render_name(c.name, c.labels): c.value for c in registry.counters()
        },
        "gauges": {
            render_name(g.name, g.labels): _finite(g.value)
            for g in registry.gauges()
        },
        "histograms": {
            render_name(h.name, h.labels): _histogram_summary(h)
            for h in registry.histograms()
        },
        "spans": [
            {
                "name": s.name,
                "labels": dict(s.labels),
                "start_s": s.start_s,
                "duration_s": _finite(s.duration_s),
                "wall_s": s.wall_s,
                "depth": s.depth,
                "parent": s.parent,
                "trace_id": s.trace_id,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
            }
            for s in list(registry.spans)[-max_spans:]
        ],
    }


def to_json(
    registry: "AnyRegistry", indent: int | None = 2, max_spans: int = 256
) -> str:
    return json.dumps(snapshot(registry, max_spans=max_spans), indent=indent)


def escape_label_value(v: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _unescape_label_value(v: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(v):
        ch = v[i]
        if ch == "\\" and i + 1 < len(v):
            nxt = v[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _prom_labels(
    labels: LabelsKey, extra: tuple[tuple[str, str], ...] = ()
) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{escape_label_value(v)}"' for k, v in items)
        + "}"
    )


def _prom_value(v: float) -> str:
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(float(v))


def to_prometheus(registry: "AnyRegistry") -> str:
    """Prometheus text exposition of every counter, gauge, histogram."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for c in registry.counters():
        name = prom_name(c.name)
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(c.labels)} {_prom_value(c.value)}")
    for g in registry.gauges():
        name = prom_name(g.name)
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(g.labels)} {_prom_value(g.value)}")
    for h in registry.histograms():
        name = prom_name(h.name)
        type_line(name, "summary")
        for q, v in h.quantiles().items():
            lines.append(
                f"{name}{_prom_labels(h.labels, (('quantile', str(q)),))} "
                f"{_prom_value(v)}"
            )
        lines.append(f"{name}_sum{_prom_labels(h.labels)} {_prom_value(h.sum)}")
        lines.append(f"{name}_count{_prom_labels(h.labels)} {h.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text format back into {(name, labels): value}.

    Supports the subset :func:`to_prometheus` emits (which is the
    standard sample syntax), so ``parse_prometheus(to_prometheus(r))``
    recovers every exported sample, escaped label values included.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        labels = tuple(
            (lm.group("k"), _unescape_label_value(lm.group("v")))
            for lm in _LABEL_RE.finditer(m.group("labels") or "")
        )
        raw = m.group("value")
        value = {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}.get(
            raw, None
        )
        out[(m.group("name"), labels)] = (
            float(raw) if value is None else value
        )
    return out
