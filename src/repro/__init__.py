"""repro: a reproduction of "The Architecture of the Remos System" (HPDC 2001).

Layers, bottom to top:

* :mod:`repro.netsim` — discrete-event network simulation substrate
  (the ground truth the collectors observe).
* :mod:`repro.snmp` — a from-scratch mini-SNMP: OIDs, MIB-II/Bridge-MIB
  views over simulated devices, GET/GETNEXT/WALK clients.
* :mod:`repro.collectors` — SNMP, Bridge, Benchmark, and Master
  collectors.
* :mod:`repro.modeler` — the application-facing Remos API (flow and
  topology queries, max-min flow calculations, virtual switches).
* :mod:`repro.rps` — the RPS prediction toolkit (AR/MA/ARMA/ARIMA/
  ARFIMA/..., streaming and client-server predictors, evaluators).
* :mod:`repro.apps` — the paper's applications: mirror-server
  selection and adaptive video streaming.

Quickstart::

    from repro.netsim import build_multisite_wan, SiteSpec
    from repro.deploy import deploy_remos

    world = build_multisite_wan([SiteSpec("cmu", access_bps=10e6),
                                 SiteSpec("eth", access_bps=2e6)])
    remos = deploy_remos(world.net)
    reply = remos.session().flow_info("cmu-h0", "eth-h0")
    print(reply.available_bps, reply.status)
"""

__version__ = "0.1.0"
