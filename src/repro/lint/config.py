"""remoslint configuration, read from ``[tool.remoslint]`` in pyproject.

Recognised keys::

    [tool.remoslint]
    paths = ["src"]                    # what `repro lint` walks by default
    select = ["RML001", ...]           # enable only these (default: all)
    ignore = ["RML006"]                # disable these
    exclude = ["src/repro/_vendor"]    # path prefixes skipped entirely
    baseline = "lint-baseline.json"    # grandfathered-violation file

    [tool.remoslint.per-rule.RML004]
    exclude = ["src/repro/cli.py"]     # rule-specific exemptions

``tomllib`` ships with Python 3.11+; on 3.10 a minimal parser that
understands exactly the subset above takes over, so the linter has no
third-party dependencies anywhere.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]


@dataclass
class LintConfig:
    paths: list[str] = field(default_factory=lambda: ["src"])
    select: list[str] = field(default_factory=list)  # empty = all rules
    ignore: list[str] = field(default_factory=list)
    exclude: list[str] = field(default_factory=list)
    baseline: str = "lint-baseline.json"
    #: rule code -> {"exclude": [path prefixes]}
    per_rule: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: layer names, rank 0 (foundation) upward — [tool.remoslint.layers] order
    layers_order: list[str] = field(default_factory=list)
    #: layer name -> module prefixes — [tool.remoslint.layers.assign]
    layers_assign: dict[str, list[str]] = field(default_factory=dict)
    #: directory paths are resolved against; repo root in normal runs
    root: Path = field(default_factory=Path.cwd)

    def rule_excludes(self, code: str) -> list[str]:
        return list(self.per_rule.get(code, {}).get("exclude", []))


def load_config(root: Path | None = None) -> LintConfig:
    """Read ``[tool.remoslint]`` from ``<root>/pyproject.toml``."""
    root = Path(root) if root is not None else Path.cwd()
    cfg = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return cfg
    data = _load_toml(pyproject)
    section = data.get("tool", {}).get("remoslint", {})
    if not isinstance(section, dict):
        return cfg
    for key in ("paths", "select", "ignore", "exclude"):
        value = section.get(key)
        if isinstance(value, list):
            setattr(cfg, key, [str(v) for v in value])
    if isinstance(section.get("baseline"), str):
        cfg.baseline = section["baseline"]
    per_rule = section.get("per-rule", {})
    if isinstance(per_rule, dict):
        cfg.per_rule = {
            str(code): dict(opts)
            for code, opts in per_rule.items()
            if isinstance(opts, dict)
        }
    layers = section.get("layers", {})
    if isinstance(layers, dict):
        order = layers.get("order")
        if isinstance(order, list):
            cfg.layers_order = [str(v) for v in order]
        assign = layers.get("assign", {})
        if isinstance(assign, dict):
            cfg.layers_assign = {
                str(layer): [str(p) for p in prefixes]
                for layer, prefixes in assign.items()
                if isinstance(prefixes, list)
            }
    return cfg


def _load_toml(path: Path) -> dict[str, Any]:
    if tomllib is not None:
        with path.open("rb") as fh:
            return tomllib.load(fh)
    return _parse_minimal_toml(path.read_text())


_SECTION_RE = re.compile(r"^\[([A-Za-z0-9_.\-\"]+)\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_\-]+)\s*=\s*(.+)$")


def _parse_minimal_toml(text: str) -> dict[str, Any]:
    """Just enough TOML for the config subset documented above.

    Handles ``[dotted.section.headers]``, string values, booleans,
    integers, and single-line arrays of strings.  Anything else is
    silently skipped — this is a fallback for stdlibs without
    ``tomllib``, not a general parser.
    """
    root: dict[str, Any] = {}
    table = root
    buffered = ""
    for raw in text.splitlines():
        line = raw.strip()
        if buffered:
            line = buffered + " " + line
            buffered = ""
        if not line or line.startswith("#"):
            continue
        m = _SECTION_RE.match(line)
        if m:
            table = root
            for part in m.group(1).replace('"', "").split("."):
                table = table.setdefault(part, {})
            continue
        m = _KEY_RE.match(line)
        if not m:
            continue
        key, value = m.group(1), m.group(2).strip()
        if value.startswith("[") and not value.rstrip().endswith("]"):
            buffered = line  # array continued on the next line
            continue
        parsed = _parse_value(value)
        if parsed is not _SKIP:
            table[key] = parsed
    return root


_SKIP = object()


def _parse_value(value: str) -> Any:
    value = value.split("#", 1)[0].strip() if not value.startswith(('"', "'", "[")) else value
    if value in ("true", "false"):
        return value == "true"
    if re.fullmatch(r"-?\d+", value):
        return int(value)
    if len(value) >= 2 and value[0] in "\"'" and value.rstrip()[-1] == value[0]:
        return value.rstrip()[1:-1]
    if value.startswith("["):
        inner = value.rstrip()
        if not inner.endswith("]"):
            return _SKIP
        items = re.findall(r"\"([^\"]*)\"|'([^']*)'", inner[1:-1])
        return [a or b for a, b in items]
    return _SKIP
