"""Module graph and approximate call graph over the repro package.

The per-file rules (RML001–RML008) see one AST at a time; the RML1xx
family needs to know *how modules relate*: who imports whom (and
whether the import hides inside ``TYPE_CHECKING`` or a function body),
and which function can reach which call.  This module builds both
structures by static name resolution over the package namespace — no
imports are executed.

The call graph is deliberately approximate.  It resolves:

* plain calls to functions defined in an enclosing scope or at module
  top level (``helper()``);
* imported names, through the same alias-aware :class:`ImportMap` the
  per-file rules use (``from x import y as z; z()``);
* module-attribute calls (``import repro.snmp.client as sc;
  sc.walk(...)``);
* ``self.method(...)`` against methods of the lexically enclosing
  class;
* class instantiation (an edge to ``Class.__init__`` when one exists);
* callables passed as arguments (``call_with_retry(run)`` reaches
  ``run``), because retry/dispatch wrappers are how the service plane
  invokes everything.

Everything else degrades gracefully: a dotted call that leaves the
project records its canonical external path (``time.sleep``), and a
call on an arbitrary expression records just the trailing attribute
name, so reachability rules can still apply name heuristics
(``engine.run_until``) without pretending to resolve receivers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.lint.core import ImportMap, dotted_name

#: builtin callables worth recording as external sinks when called by
#: bare name (no import resolves them)
_BUILTIN_SINKS = {"open", "input", "exec", "eval", "compile", "__import__"}


def module_name_for(rel_path: str) -> str | None:
    """Dotted module name for a repo-relative posix path, or None.

    ``src/repro/snmp/client.py`` -> ``repro.snmp.client``;
    ``tests/lint/test_cli.py`` -> ``tests.lint.test_cli`` (tests are
    not an importable package, but the graph still needs stable ids).
    """
    p = PurePosixPath(rel_path)
    if p.suffix != ".py":
        return None
    parts = list(p.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


@dataclass(frozen=True)
class ImportRecord:
    """One module-level dependency edge."""

    module: str  #: importing module (dotted)
    target: str  #: imported module (dotted, absolute)
    lineno: int
    col: int
    #: "top" | "lazy" (inside a function) | "type_checking"
    kind: str


@dataclass(frozen=True)
class CallEdge:
    """One call site, as well as we could resolve it."""

    caller: str  #: qname of the calling function ("" for module body)
    lineno: int
    col: int
    #: resolved project function/class qname, when resolution succeeded
    callee: str | None = None
    #: canonical dotted path outside the project ("time.sleep")
    external: str | None = None
    #: trailing attribute name when the receiver is opaque ("run_until")
    attr: str | None = None
    #: True when the callee was passed as an argument, not called
    via_argument: bool = False


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qname: str  #: "repro.service.app.RemosService._call_backend"
    module: str
    path: str  #: repo-relative posix path of the defining file
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    #: qname of the lexically enclosing class, when this is a method
    cls: str | None = None
    #: parameter names in call order (including self/cls)
    params: tuple[str, ...] = ()
    #: whether the name is public API (no leading underscore anywhere
    #: from the module-level symbol down)
    public: bool = True


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  #: dotted module name
    path: str  #: repo-relative posix path
    source: str
    tree: ast.Module
    imports: list[ImportRecord] = field(default_factory=list)
    import_map: ImportMap = field(default_factory=ImportMap)
    #: qnames of functions defined in this module
    functions: list[str] = field(default_factory=list)


class CallGraph:
    """Functions, call edges, and module imports for a set of files."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: caller qname ("" + module body edges live under "<module>:<name>")
        self.edges: dict[str, list[CallEdge]] = {}

    # -- construction --------------------------------------------------

    def add_module(self, rel_path: str, source: str, tree: ast.Module) -> ModuleInfo:
        name = module_name_for(rel_path)
        assert name is not None
        info = ModuleInfo(
            name=name, path=rel_path, source=source, tree=tree,
            import_map=ImportMap.of(tree),
        )
        self.modules[name] = info
        _collect_imports(info)
        _collect_functions(self, info)
        return info

    def finish(self) -> None:
        """Resolve call edges once every module is registered."""
        for info in self.modules.values():
            _collect_edges(self, info)

    # -- queries --------------------------------------------------------

    def edges_from(self, qname: str) -> list[CallEdge]:
        return self.edges.get(qname, [])

    def module_body_id(self, module: str) -> str:
        """Pseudo-function id for a module's top-level statements."""
        return f"{module}.<module>"

    def resolve_callee(self, hint: str) -> str | None:
        """Map a dotted hint to a known function qname, if any.

        Tries the hint itself, then ``hint.__init__`` (instantiation of
        a known class).
        """
        if hint in self.functions:
            return hint
        init = f"{hint}.__init__"
        if init in self.functions:
            return init
        return None

    def is_project_path(self, dotted: str) -> bool:
        """Whether a dotted path points into a registered module."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            if ".".join(parts[:i]) in self.modules:
                return True
        return False


# -- pass 1: imports ------------------------------------------------------


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _collect_imports(info: ModuleInfo) -> None:
    pkg = info.name if info.path.endswith("__init__.py") else info.name.rpartition(".")[0]

    def resolve_from(node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        base_parts = pkg.split(".") if pkg else []
        drop = node.level - 1
        if drop > len(base_parts):
            return None
        base = base_parts[: len(base_parts) - drop]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) or None

    def visit(nodes: list[ast.stmt], kind: str) -> None:
        for node in nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports.append(ImportRecord(
                        info.name, alias.name, node.lineno, node.col_offset, kind,
                    ))
            elif isinstance(node, ast.ImportFrom):
                base = resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    # `from repro import obs` names the module repro.obs,
                    # not the package: prefer the submodule as the target
                    # (a rule may still collapse it back to the package).
                    info.imports.append(ImportRecord(
                        info.name, f"{base}.{alias.name}",
                        node.lineno, node.col_offset, kind,
                    ))
            elif isinstance(node, ast.If):
                sub_kind = "type_checking" if _is_type_checking_test(node.test) else kind
                visit(node.body, sub_kind)
                visit(node.orelse, kind)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(node.body, "lazy")
            elif isinstance(node, (ast.ClassDef, ast.With, ast.Try, ast.For, ast.While)):
                for block in (getattr(node, "body", []), getattr(node, "orelse", []),
                              getattr(node, "finalbody", [])):
                    visit(list(block), kind)
                for handler in getattr(node, "handlers", []):
                    visit(handler.body, kind)

    visit(info.tree.body, "top")


# -- pass 2: function table ------------------------------------------------


@dataclass
class _Scope:
    """Lexical scope for name resolution: defs declared directly here."""

    defs: dict[str, str] = field(default_factory=dict)  #: name -> qname
    parent: "_Scope | None" = None

    def lookup(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.defs:
                return scope.defs[name]
            scope = scope.parent
        return None


def _collect_functions(graph: CallGraph, info: ModuleInfo) -> None:
    """Register every (possibly nested) function with its scope chain."""

    module_scope = _Scope()
    info_scopes: dict[str, _Scope] = {}
    info._scopes = info_scopes  # type: ignore[attr-defined]
    info._module_scope = module_scope  # type: ignore[attr-defined]

    def walk(nodes: list[ast.stmt], prefix: str, scope: _Scope,
             cls: str | None, public: bool) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{node.name}"
                scope.defs[node.name] = qname
                fn_public = public and not (
                    node.name.startswith("_") and not node.name.startswith("__")
                )
                args = node.args
                params = tuple(
                    a.arg for a in
                    list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                )
                graph.functions[qname] = FunctionInfo(
                    qname=qname, module=info.name, path=info.path, node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    cls=cls, params=params, public=fn_public,
                )
                info.functions.append(qname)
                inner = _Scope(parent=scope)
                info_scopes[qname] = inner
                walk(node.body, qname, inner, None, fn_public)
            elif isinstance(node, ast.ClassDef):
                qname = f"{prefix}.{node.name}"
                scope.defs[node.name] = qname
                cls_public = public and not node.name.startswith("_")
                # class bodies don't contribute names to method scopes:
                # methods resolve against the scope *containing* the class
                walk(node.body, qname, scope, qname, cls_public)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for block in (getattr(node, "body", []), getattr(node, "orelse", []),
                              getattr(node, "finalbody", [])):
                    walk(list(block), prefix, scope, cls, public)
                for handler in getattr(node, "handlers", []):
                    walk(handler.body, prefix, scope, cls, public)

    walk(info.tree.body, info.name, module_scope, None, True)


# -- pass 3: call edges ----------------------------------------------------


def _iter_scope_body(node: ast.AST) -> "list[ast.AST]":
    """Child statements of a scope, not descending into nested defs."""
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        out.append(sub)
        stack.extend(ast.iter_child_nodes(sub))
    return out


def _collect_edges(graph: CallGraph, info: ModuleInfo) -> None:
    scopes: dict[str, _Scope] = info._scopes  # type: ignore[attr-defined]
    module_scope: _Scope = info._module_scope  # type: ignore[attr-defined]

    def resolve_target(
        node: ast.expr, scope: _Scope, cls: str | None
    ) -> tuple[str | None, str | None, str | None]:
        """(callee_qname, external, attr) for a call target expression."""
        if isinstance(node, ast.Name):
            local = scope.lookup(node.id)
            if local is not None:
                return graph.resolve_callee(local) or local, None, None
            resolved = info.import_map.resolve(node)
            if resolved is not None:
                if graph.is_project_path(resolved):
                    return graph.resolve_callee(resolved) or resolved, None, None
                return None, resolved, None
            if node.id in _BUILTIN_SINKS:
                return None, node.id, None
            return None, None, None
        if isinstance(node, ast.Attribute):
            dn = dotted_name(node)
            if dn is not None and dn.startswith("self.") and cls is not None:
                rest = dn[len("self."):]
                if "." not in rest:
                    hit = graph.resolve_callee(f"{cls}.{rest}")
                    if hit is not None:
                        return hit, None, None
                return None, None, node.attr
            resolved = info.import_map.resolve(node)
            if resolved is not None:
                if graph.is_project_path(resolved):
                    return graph.resolve_callee(resolved) or resolved, None, None
                return None, resolved, None
            return None, None, node.attr
        return None, None, None

    def edges_for(caller: str, body_owner: ast.AST, scope: _Scope,
                  cls: str | None) -> None:
        out = graph.edges.setdefault(caller, [])
        for node in _iter_scope_body(body_owner):
            if not isinstance(node, ast.Call):
                continue
            callee, external, attr = resolve_target(node.func, scope, cls)
            if callee or external or attr:
                out.append(CallEdge(
                    caller, node.lineno, node.col_offset,
                    callee=callee, external=external, attr=attr,
                ))
            # callables handed onward: call_with_retry(run), every(cb)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    a_callee, _, _ = resolve_target(arg, scope, cls)
                    if a_callee is not None and a_callee in graph.functions:
                        out.append(CallEdge(
                            caller, arg.lineno, arg.col_offset,
                            callee=a_callee, via_argument=True,
                        ))

    for qname in info.functions:
        fn = graph.functions[qname]
        edges_for(qname, fn.node, scopes[qname], fn.cls)
    edges_for(graph.module_body_id(info.name), info.tree, module_scope, None)
