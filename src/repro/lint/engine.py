"""The lint engine: walk files, run rules, apply pragmas and baseline.

Suppression layers, in order:

1. inline pragmas — ``# remoslint: disable=RML001[,RML002]`` on the
   offending line, or ``# remoslint: disable-file=RML001`` anywhere in
   the file for a whole-file opt-out;
2. per-rule path excludes from ``[tool.remoslint.per-rule.*]``;
3. the committed baseline (grandfathered debt, matched by fingerprint).

What survives all three is a *new* violation and fails the gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import LintConfig
from repro.lint.core import FileContext, Rule, Violation

_PRAGMA = re.compile(r"#\s*remoslint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9, ]+)")


@dataclass
class PragmaSet:
    """Suppressions parsed from one file's comments."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    @classmethod
    def of(cls, source: str) -> "PragmaSet":
        out = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _PRAGMA.search(line)
            if not m:
                continue
            codes = {c.strip().upper() for c in m.group(2).split(",") if c.strip()}
            if m.group(1) == "disable-file":
                out.whole_file |= codes
            else:
                out.by_line.setdefault(lineno, set()).update(codes)
        return out

    def suppresses(self, v: Violation) -> bool:
        if v.code in self.whole_file or "ALL" in self.whole_file:
            return True
        for line in (v.line, *v.pragma_lines):
            codes = self.by_line.get(line, ())
            if v.code in codes or "ALL" in codes:
                return True
        return False


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: violations not covered by pragma or baseline — these fail the gate
    violations: list[Violation] = field(default_factory=list)
    #: violations matched (and tolerated) by the baseline
    baselined: list[Violation] = field(default_factory=list)
    #: baseline entries that no longer match anything (paid-down debt)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    #: path -> error string for files that would not parse
    errors: dict[str, str] = field(default_factory=dict)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "violations": [
                {
                    "code": v.code,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col + 1,
                    "message": v.message,
                    "autofixable": v.fix is not None,
                }
                for v in self.violations
            ],
            "baselined": len(self.baselined),
            "stale_baseline_entries": [
                {"code": e.code, "path": e.path, "text": e.text}
                for e in self.stale_entries
            ],
            "errors": dict(self.errors),
        }


def lint_source(
    source: str, rules: list[Rule], path: str = ""
) -> list[Violation]:
    """Lint one in-memory snippet (the unit-test entry point).

    ``path`` scopes path-sensitive rules; pragmas apply, the baseline
    does not.
    """
    ctx = FileContext(source, path=path)
    pragmas = PragmaSet.of(source)
    out = []
    for rule in rules:
        if path and not rule.applies_to(path):
            continue
        for v in rule.check(ctx):
            if not pragmas.suppresses(v):
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def iter_python_files(paths: list[Path], exclude: list[str], root: Path) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_file() and p.suffix == ".py":
            files.append(p)
        elif p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
    def rel(f: Path) -> str:
        try:
            return f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return f.as_posix()
    return [
        f
        for f in files
        if not any(
            rel(f) == ex or rel(f).startswith(ex.rstrip("/") + "/")
            for ex in exclude
        )
    ]


def lint_paths(
    paths: list[Path],
    rules: list[Rule],
    config: LintConfig,
    baseline: Baseline | None = None,
    extra: list[Violation] | None = None,
) -> LintReport:
    """Lint files with per-file rules; ``extra`` merges pre-filtered
    violations (the project rules' output) into the same sort, baseline
    partition, and report."""
    report = LintReport()
    root = config.root
    all_violations: list[Violation] = []
    for file in iter_python_files(paths, config.exclude, root):
        try:
            rel_path = file.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel_path = file.as_posix()
        source = file.read_text()
        try:
            ctx = FileContext(source, path=rel_path)
        except SyntaxError as exc:
            report.errors[rel_path] = f"syntax error: {exc}"
            continue
        report.files_checked += 1
        pragmas = PragmaSet.of(source)
        for rule in rules:
            if not rule.applies_to(rel_path):
                continue
            if any(
                rel_path == ex or rel_path.startswith(ex.rstrip("/") + "/")
                for ex in config.rule_excludes(rule.code)
            ):
                continue
            for v in rule.check(ctx):
                if not pragmas.suppresses(v):
                    all_violations.append(v)
    if extra:
        all_violations.extend(extra)
    all_violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    if baseline is None:
        report.violations = all_violations
    else:
        fresh, grandfathered, stale = baseline.partition(all_violations)
        report.violations = fresh
        report.baselined = grandfathered
        report.stale_entries = stale
    return report


def apply_fixes(violations: list[Violation], root: Path) -> int:
    """Apply attached autofixes; returns the number of edits made.

    Edits are grouped per file and applied bottom-up so earlier edits
    never shift later line numbers.
    """
    by_file: dict[str, list[Violation]] = {}
    for v in violations:
        if v.fix is not None and v.path:
            by_file.setdefault(v.path, []).append(v)
    applied = 0
    for rel_path, vs in by_file.items():
        file = root / rel_path
        lines = file.read_text().splitlines(keepends=True)
        for v in sorted(vs, key=lambda v: -v.fix.line):  # type: ignore[union-attr]
            fix = v.fix
            assert fix is not None
            idx = fix.line - 1
            if 0 <= idx < len(lines) and fix.old in lines[idx]:
                lines[idx] = lines[idx].replace(fix.old, fix.new, 1)
                applied += 1
        file.write_text("".join(lines))
    return applied
