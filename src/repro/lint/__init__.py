"""remoslint — AST-based invariant linting for the Remos stack.

The repo's load-bearing contracts (sim-clock determinism, seeded RNG
discipline, the status-carrying session API) are enforced here rather
than merely documented.  Each rule has a stable ``RMLxxx`` code, a
rationale, and — where cheap — autofix metadata; grandfathered
violations live in a committed baseline file so the gate only fails on
*new* debt.

Usage::

    repro lint                      # or: python -m repro.lint
    repro lint --format json src/
    repro lint --write-baseline     # regenerate lint-baseline.json
    repro lint --check-baseline     # CI gate: new violations OR stale
                                    # baseline entries fail the build

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.lint.core import FileContext, Fix, Rule, Violation
from repro.lint.engine import LintReport, lint_paths, lint_source

__all__ = [
    "FileContext",
    "Fix",
    "Rule",
    "Violation",
    "LintReport",
    "lint_paths",
    "lint_source",
]
