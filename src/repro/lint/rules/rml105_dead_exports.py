"""RML105 — dead exports: public names nobody references.

A public name in ``src/repro`` that no code in src, tests,
benchmarks, or examples ever mentions is API surface with no witness:
it cannot break a test when it regresses, and every reader must assume
someone imports it.  Either a consumer (or test) should exist, or the
name should be deleted or made private.

Liveness is name-based and deliberately coarse: any ``Name`` load, any
``x.attr`` access, or any ``from m import name`` *anywhere* in the
four trees keeps a same-named export alive.  The one exception is
re-export hubs — a ``from .x import y`` inside an ``__init__.py``
under ``src/repro`` is plumbing, not use, and does not count (else
every name re-exported by a package __init__ would look alive by
construction).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

from repro.lint.core import Violation
from repro.lint.project import Project, ProjectRule, violation_at

#: module-level dunders that are metadata, not exports
_METADATA = {"__all__", "__version__"}


class DeadExportRule(ProjectRule):
    code = "RML105"
    name = "dead-exports"
    rationale = (
        "a public name unreferenced by src, tests, benchmarks, and "
        "examples is untested API surface; use it, test it, or drop it"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        used = self._used_names(project)
        for info in sorted(project.src_modules(), key=lambda m: m.path):
            for name, node in self._exports(info.tree):
                if name in used:
                    continue
                kind = (
                    "class" if isinstance(node, ast.ClassDef)
                    else "function"
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else "name"
                )
                yield violation_at(
                    self, project, info.path, node,
                    f"public {kind} {name!r} in {info.name} is never "
                    "referenced from src, tests, benchmarks, or examples",
                )

    def _exports(self, tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_"):
                    yield node.name, node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and not target.id.startswith("_")
                        and target.id not in _METADATA
                    ):
                        yield target.id, node
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and not node.target.id.startswith("_")
                    and node.target.id not in _METADATA
                ):
                    yield node.target.id, node

    def _used_names(self, project: Project) -> set[str]:
        used: set[str] = set()
        for info in project.graph.modules.values():
            is_reexport_hub = (
                info.path.endswith("__init__.py")
                and info.path.startswith("src/repro")
            )
            docstrings = _docstring_nodes(info.tree)
            for node in ast.walk(info.tree):
                if node in docstrings:
                    continue
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    used.add(node.id)
                elif isinstance(node, ast.Attribute):
                    used.add(node.attr)
                elif isinstance(node, ast.ImportFrom) and not is_reexport_hub:
                    for alias in node.names:
                        used.add(alias.name)
                elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                    # quoted annotations ("PredictionService | None"),
                    # getattr(x, "name"), __all__ entries, registry keys:
                    # every identifier-shaped token in a short string
                    # counts as a reference — generous on purpose, a
                    # liveness analysis must not kill quoted uses
                    if len(node.value) <= 200:
                        used.update(_IDENT.findall(node.value))
        return used


def _docstring_nodes(tree: ast.Module) -> set[ast.AST]:
    """Docstring Constants — prose, not references; never count as use."""
    out: set[ast.AST] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(body[0].value)
    return out
