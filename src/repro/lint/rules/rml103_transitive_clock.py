"""RML103 — sim-clock purity, transitively through the call graph.

RML001 bans wall-clock reads *lexically inside* the sim-facing layers
(netsim, snmp, collectors, faults, rps).  That leaves a hole: a
collector entry point that calls a helper in some other module which
calls ``time.time()`` still couples the run to the wall clock, and
RML001 never sees it because the read sits outside its path scope.

This rule starts from every public entry point defined in RML001's
scope and walks the call graph through *any* project module, flagging
reachable wall-clock sinks that live outside that scope (inside it,
RML001 already reports the read directly — no double jeopardy).
``repro.obs`` is the sanctioned sink package (``obs.timebase`` is how
a sim layer is *supposed* to read a wall clock) and ``repro.lint``
analyses rather than participates, so neither is traversed.

The finding is reported at the entry point's ``def`` line — that is
the contract being broken ("calling this couples you to the wall
clock"), and the place a pragma belongs if the reach is intended.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import Violation, _prefix_match
from repro.lint.project import Project, ProjectRule, violation_at
from repro.lint.rules.rml001_sim_clock import BANNED, SimClockPurityRule

#: packages never traversed: sanctioned clock sinks and the analyzer
EXCLUDED_PACKAGES = ("repro.obs", "repro.lint")


class TransitiveClockRule(ProjectRule):
    code = "RML103"
    name = "sim-clock-purity-transitive"
    rationale = (
        "a sim-layer entry point that can *reach* a wall-clock read is "
        "as seed-breaking as one that contains it; obs.timebase is the "
        "sanctioned sink"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        scope = SimClockPurityRule.scope
        entries = [
            fn for fn in graph.functions.values()
            if fn.public and any(_prefix_match(fn.path, sc) for sc in scope)
        ]
        for entry in sorted(entries, key=lambda f: f.qname):
            seen = {entry.qname}
            stack = [(entry.qname, [entry.qname])]
            found: set[str] = set()
            while stack:
                qname, chain = stack.pop()
                holder = graph.functions[qname]
                in_scope = any(_prefix_match(holder.path, sc) for sc in scope)
                for edge in graph.edges_from(qname):
                    if (
                        edge.external in BANNED
                        and not in_scope  # inside scope RML001 reports it
                        and edge.external not in found
                    ):
                        found.add(edge.external)
                        via = " -> ".join(_short(q) for q in chain)
                        yield violation_at(
                            self, project, entry.path, entry.node,
                            f"{_short(entry.qname)} can reach wall-clock "
                            f"call {edge.external} (via {via} at "
                            f"{holder.path}:{edge.lineno}); "
                            f"{BANNED[edge.external]}",
                        )
                    callee = edge.callee
                    if callee is None or callee in seen:
                        continue
                    target = graph.functions.get(callee)
                    if target is None or _excluded(target.module):
                        continue
                    if not target.module.startswith("repro"):
                        continue  # tests/benchmarks may read clocks freely
                    seen.add(callee)
                    stack.append((callee, chain + [callee]))


def _excluded(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in EXCLUDED_PACKAGES
    )


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname
