"""RML007 — metric-name drift.

Dashboards, exporters, and the benchmark BENCH_*.json diffs key on
metric names; a typo in one ``obs.counter("...")`` call silently forks
a time series nobody is watching.  Every counter/gauge/histogram name
used in instrumentation must appear in the central catalogue
(``repro.obs.catalog.METRIC_NAMES``), which ``docs/observability.md``
documents.  Adding a metric is a two-line change: instrument the call
site and register the name.

Dynamic (non-literal) names can't be checked statically and are
skipped; they should be rare and label-shaped instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, ImportMap, Rule, Violation

FACTORIES = {"counter", "gauge", "histogram"}

#: canonical module paths the factories live on
_OBS_PATHS = ("repro.obs.", "obs.")


def _load_catalogue() -> frozenset[str]:
    from repro.obs.catalog import METRIC_NAMES

    return METRIC_NAMES


class MetricNameRule(Rule):
    code = "RML007"
    name = "metric-name-drift"
    rationale = (
        "obs metric names must be registered in repro.obs.catalog so "
        "exporter consumers and dashboards never chase a typo"
    )
    scope = ("src/repro",)
    exempt = ("src/repro/obs",)

    def __init__(self, catalogue: frozenset[str] | None = None) -> None:
        self._catalogue = catalogue

    @property
    def catalogue(self) -> frozenset[str]:
        if self._catalogue is None:
            self._catalogue = _load_catalogue()
        return self._catalogue

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            factory = self._factory_name(node.func, imports)
            if factory is None or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if name not in self.catalogue:
                yield ctx.violation(
                    self,
                    first,
                    f"obs.{factory}({name!r}) is not in the metric "
                    "catalogue; register it in repro.obs.catalog (and "
                    "docs/observability.md)",
                )

    def _factory_name(self, func: ast.AST, imports: ImportMap) -> str | None:
        """'counter' for obs.counter / repro.obs.counter / reg.counter."""
        if isinstance(func, ast.Attribute) and func.attr in FACTORIES:
            resolved = imports.resolve(func)
            if resolved and any(
                resolved.startswith(p) or resolved == p + func.attr
                for p in _OBS_PATHS
            ):
                return func.attr
            # registry-handle form: reg.counter(...) — only when the
            # receiver is literally a registry-ish name, to avoid
            # flagging unrelated .counter() methods
            if isinstance(func.value, ast.Name) and func.value.id in (
                "obs",
                "reg",
                "registry",
            ):
                return func.attr
        return None
