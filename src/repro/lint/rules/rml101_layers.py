"""RML101 — the import-layering contract.

The Remos stack is a strict layer cake: the simulated network at the
bottom, SNMP on top of it, collectors above that, the modeler above
the collectors, prediction above the modeler, and the session/service
plane on top.  An import that points *up* the cake (a collector
importing the predictor, the prediction layer importing the session
facade) inverts the dependency the architecture promises and tends to
rot into an import cycle held together by lazy imports.

The contract is declared in ``pyproject.toml``::

    [tool.remoslint.layers]
    order = ["foundation", "netsim", ...]       # rank 0 upward

    [tool.remoslint.layers.assign]
    foundation = ["repro.common", "repro.obs"]  # module prefixes
    ...

Module-to-layer assignment is longest-prefix-wins, so a bare
``"repro"`` prefix in the top layer acts as the fallback: any module
nobody assigned explicitly lands at the top, where importing it from
below fails the gate until someone places it deliberately.

Imports laundered through ``if TYPE_CHECKING:`` or a function body are
still violations — the cycle they hide is still real at type-check or
call time — and the message says which laundering it saw.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import Violation
from repro.lint.project import Project, ProjectRule

#: fallback contract used when pyproject declares no layers
DEFAULT_ORDER = [
    "foundation", "netsim", "snmp", "graph",
    "collectors", "modeler", "rps", "session", "entry",
]
DEFAULT_ASSIGN = {
    "foundation": ["repro.common", "repro.obs"],
    "netsim": ["repro.netsim", "repro.faults"],
    "snmp": ["repro.snmp"],
    "graph": ["repro.modeler.graph"],
    "collectors": ["repro.collectors"],
    "modeler": ["repro.modeler"],
    "rps": ["repro.rps"],
    "session": ["repro.session", "repro.service", "repro.apps"],
    "entry": ["repro"],
}

_KIND_NOTE = {
    "lazy": " (laundered through a local import)",
    "type_checking": " (laundered through TYPE_CHECKING)",
}


class LayerMap:
    """Longest-prefix-wins module -> (layer, rank) assignment."""

    def __init__(self, order: list[str], assign: dict[str, list[str]]) -> None:
        self.order = order
        rank = {layer: i for i, layer in enumerate(order)}
        self._prefixes: list[tuple[str, str, int]] = []
        for layer, prefixes in assign.items():
            if layer not in rank:
                continue
            for prefix in prefixes:
                self._prefixes.append((prefix, layer, rank[layer]))
        # longest prefix first so repro.modeler.graph beats repro.modeler
        self._prefixes.sort(key=lambda t: -len(t[0]))

    def place(self, module: str) -> tuple[str, int] | None:
        for prefix, layer, rank in self._prefixes:
            if module == prefix or module.startswith(prefix + "."):
                return layer, rank
        return None


class ImportLayeringRule(ProjectRule):
    code = "RML101"
    name = "import-layering"
    rationale = (
        "imports must point down the declared layer DAG; an upward "
        "import inverts the architecture and breeds lazy-import cycles"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        order = project.config.layers_order or DEFAULT_ORDER
        assign = project.config.layers_assign or DEFAULT_ASSIGN
        layers = LayerMap(order, assign)
        for info in project.src_modules():
            placed = layers.place(info.name)
            if placed is None:
                continue
            src_layer, src_rank = placed
            for imp in info.imports:
                target = self._module_target(project, imp.target)
                if target is None:
                    continue
                t_placed = layers.place(target)
                if t_placed is None:
                    continue
                t_layer, t_rank = t_placed
                if t_rank <= src_rank:
                    continue
                note = _KIND_NOTE.get(imp.kind, "")
                yield Violation(
                    code=self.code,
                    path=info.path,
                    line=imp.lineno,
                    col=imp.col,
                    message=(
                        f"{info.name} (layer '{src_layer}') imports {target} "
                        f"(layer '{t_layer}', above it){note}; dependencies "
                        "must point down the layer DAG"
                    ),
                    line_text=self._line_text(project, info.path, imp.lineno),
                )

    def _module_target(self, project: Project, dotted: str) -> str | None:
        """Collapse an import target onto the module that defines it.

        ``from repro import obs`` records ``repro.obs`` (a module);
        ``from repro.session import RemosSession`` records
        ``repro.session.RemosSession`` — a member, so the defining
        module is ``repro.session``.  Only project-internal targets are
        layered; stdlib and third-party imports return None.
        """
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            cand = ".".join(parts[:i])
            if cand in project.graph.modules:
                return cand
        return None

    def _line_text(self, project: Project, path: str, lineno: int) -> str:
        lines = project.sources.get(path, "").splitlines()
        return lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
