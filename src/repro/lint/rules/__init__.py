"""Rule registry: every shipped remoslint rule, by code."""

from __future__ import annotations

from repro.lint.core import Rule
from repro.lint.rules.rml001_sim_clock import SimClockPurityRule
from repro.lint.rules.rml002_rng import SeededRngRule
from repro.lint.rules.rml003_deprecated_api import DeprecatedApiRule
from repro.lint.rules.rml004_status import StatusDisciplineRule
from repro.lint.rules.rml005_excepts import BlindExceptRule
from repro.lint.rules.rml006_oid_literals import OidLiteralRule
from repro.lint.rules.rml007_metric_names import MetricNameRule
from repro.lint.rules.rml008_span_names import SpanNameRule

ALL_RULES: tuple[type[Rule], ...] = (
    SimClockPurityRule,
    SeededRngRule,
    DeprecatedApiRule,
    StatusDisciplineRule,
    BlindExceptRule,
    OidLiteralRule,
    MetricNameRule,
    SpanNameRule,
)


def make_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """Instantiate the configured subset of rules, in code order."""
    rules = [cls() for cls in ALL_RULES]
    if select:
        wanted = {c.upper() for c in select}
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        dropped = {c.upper() for c in ignore}
        rules = [r for r in rules if r.code not in dropped]
    return rules


def rule_catalogue() -> dict[str, Rule]:
    return {cls.code: cls() for cls in ALL_RULES}
