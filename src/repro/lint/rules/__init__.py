"""Rule registry: every shipped remoslint rule, by code."""

from __future__ import annotations

from repro.lint.core import Rule
from repro.lint.project import ProjectRule
from repro.lint.rules.rml001_sim_clock import SimClockPurityRule
from repro.lint.rules.rml002_rng import SeededRngRule
from repro.lint.rules.rml003_deprecated_api import DeprecatedApiRule
from repro.lint.rules.rml004_status import StatusDisciplineRule
from repro.lint.rules.rml005_excepts import BlindExceptRule
from repro.lint.rules.rml006_oid_literals import OidLiteralRule
from repro.lint.rules.rml007_metric_names import MetricNameRule
from repro.lint.rules.rml008_span_names import SpanNameRule
from repro.lint.rules.rml101_layers import ImportLayeringRule
from repro.lint.rules.rml102_async_safety import AsyncSafetyRule
from repro.lint.rules.rml103_transitive_clock import TransitiveClockRule
from repro.lint.rules.rml104_status_flow import StatusFlowRule
from repro.lint.rules.rml105_dead_exports import DeadExportRule

ALL_RULES: tuple[type[Rule], ...] = (
    SimClockPurityRule,
    SeededRngRule,
    DeprecatedApiRule,
    StatusDisciplineRule,
    BlindExceptRule,
    OidLiteralRule,
    MetricNameRule,
    SpanNameRule,
)

#: whole-program rules, run only under ``repro lint --project``
PROJECT_RULES: tuple[type[ProjectRule], ...] = (
    ImportLayeringRule,
    AsyncSafetyRule,
    TransitiveClockRule,
    StatusFlowRule,
    DeadExportRule,
)


def make_project_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[ProjectRule]:
    """Instantiate the configured subset of project rules, in code order."""
    rules = [cls() for cls in PROJECT_RULES]
    if select:
        wanted = {c.upper() for c in select}
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        dropped = {c.upper() for c in ignore}
        rules = [r for r in rules if r.code not in dropped]
    return rules


def make_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """Instantiate the configured subset of rules, in code order."""
    rules = [cls() for cls in ALL_RULES]
    if select:
        wanted = {c.upper() for c in select}
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        dropped = {c.upper() for c in ignore}
        rules = [r for r in rules if r.code not in dropped]
    return rules


def rule_catalogue() -> "dict[str, Rule | ProjectRule]":
    """Every shipped rule by code, per-file and project families both."""
    out: dict[str, Rule | ProjectRule] = {cls.code: cls() for cls in ALL_RULES}
    out.update({cls.code: cls() for cls in PROJECT_RULES})
    return out
