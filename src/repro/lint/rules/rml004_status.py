"""RML004 — status discipline at RemosSession call sites.

Every ``Answer`` carries a :class:`~repro.common.status.QueryStatus`;
a caller that reads ``.available_bps`` without ever looking at
``.status`` / ``.ok`` / ``.degraded`` silently treats PARTIAL or STALE
data as fresh truth — exactly the failure mode the session API was
built to make visible.  The rule flags, per function scope, variables
bound from session query calls whose data attributes are consumed but
whose status is never inspected and which never escape the scope
(returned / yielded / passed on, which moves the obligation to the
caller).

Heuristic by design: it sees direct ``name = session.flow_info(...)``
bindings and ``for ans in session.flow_info_many(...)`` loops.  Sites
with a considered reason to ignore status carry a pragma or a baseline
entry with a note.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation

#: methods returning one Answer (or a list of them, for the *_many/list
#: forms) — receiver-agnostic, keyed on the attribute name
QUERY_METHODS = {"flow_info", "flow_info_many", "topology", "node_info"}

STATUS_ATTRS = {"status", "ok", "degraded", "site_status", "provenance"}


class StatusDisciplineRule(Rule):
    code = "RML004"
    name = "answer-status-discipline"
    rationale = (
        "Answer consumers must inspect .status/.ok/.degraded before "
        "trusting data fields; dropping it hides PARTIAL/STALE results"
    )
    scope = ("src/repro", "examples", "benchmarks")
    exempt = (
        # the facade and Modeler construct the answers they return
        "src/repro/session.py",
        "src/repro/modeler/api.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for scope_node in self._scopes(ctx.tree):
            yield from self._check_scope(ctx, scope_node)

    def _scopes(self, tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _body_walk(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Violation]:
        # 1. collect candidate bindings: name -> binding node
        candidates: dict[str, ast.AST] = {}
        for node in self._body_walk(scope):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_query_call(node.value)
            ):
                candidates[node.targets[0].id] = node
            elif (
                isinstance(node, ast.For)
                and isinstance(node.target, ast.Name)
                and self._is_query_call(node.iter)
            ):
                candidates[node.target.id] = node
        if not candidates:
            return

        # 2. classify every use of each candidate name
        checked: set[str] = set()
        escaped: set[str] = set()
        consumed: set[str] = set()
        for node in self._body_walk(scope):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                name = node.value.id
                if name in candidates:
                    if node.attr in STATUS_ATTRS:
                        checked.add(name)
                    else:
                        consumed.add(name)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                for escapee in self._names_in(value):
                    escaped.add(escapee)
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in candidates:
                        escaped.add(arg.id)

        for name, binding in sorted(candidates.items(), key=lambda kv: kv[1].lineno):
            if name in checked or name in escaped:
                continue
            if name not in consumed:
                continue  # never dereferenced here: nothing trusted yet
            yield ctx.violation(
                self,
                binding,
                f"answer {name!r} is consumed without inspecting "
                ".status/.ok/.degraded (PARTIAL or STALE data would be "
                "trusted silently)",
            )

    def _is_query_call(self, node: ast.AST | None) -> bool:
        call = node
        # unwrap `session.node_info(...)[0]` style subscripts
        if isinstance(call, ast.Subscript):
            call = call.value
        return (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in QUERY_METHODS
        )

    def _names_in(self, node: ast.AST | None) -> Iterator[str]:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                yield sub.id
