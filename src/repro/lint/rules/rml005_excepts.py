"""RML005 — bare and blind exception handlers in the collector stack.

A collector that swallows everything hides the difference between "the
agent is down" (a modelled, status-reported condition) and "the
collector has a bug" (which must surface).  Banned in the collector /
SNMP / fault layers:

* ``except:`` — catches ``KeyboardInterrupt``/``SystemExit`` too;
  autofixable to ``except Exception:``.
* ``except Exception:`` (or ``BaseException``) whose handler does
  nothing observable — only ``pass``/``...``/``continue``/``return
  <constant>`` — i.e. swallows without logging, narrowing, or
  re-raising.

Handlers that log, re-raise, or do real work are fine: deliberate
containment (the Master's per-fragment isolation) is the pattern,
silent swallowing is the bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Fix, Rule, Violation

BROAD = {"Exception", "BaseException"}


class BlindExceptRule(Rule):
    code = "RML005"
    name = "blind-except"
    rationale = (
        "bare/blind excepts in collectors hide real bugs behind the "
        "graceful-degradation machinery; narrow, log, or re-raise"
    )
    scope = ("src/repro/collectors", "src/repro/snmp", "src/repro/faults.py")
    autofixable = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                line = ctx.line_text(node.lineno)
                fix = (
                    Fix(node.lineno, "except:", "except Exception:")
                    if "except:" in line
                    else None
                )
                yield ctx.violation(
                    self,
                    node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "catch Exception or a RemosError subclass",
                    fix=fix,
                )
            elif self._is_broad(node.type) and self._is_blind(node.body):
                yield ctx.violation(
                    self,
                    node,
                    "blind 'except Exception' swallows collector bugs "
                    "silently; narrow the type, log, or re-raise",
                )

    def _is_broad(self, type_node: ast.expr) -> bool:
        names = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for n in names:
            if isinstance(n, ast.Name) and n.id in BROAD:
                return True
        return False

    def _is_blind(self, body: list[ast.stmt]) -> bool:
        """True when the handler has no observable effect."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / `...`
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            return False
        return True
