"""RML104 — Answer-status discipline, interprocedural.

RML004 discharges its obligation the moment an Answer escapes into a
call: ``plot(ans)`` moves the duty to ``plot``.  But if ``plot`` never
looks at ``.status`` either, PARTIAL and STALE data is trusted
silently and *neither* file shows a violation.  This rule closes the
hand-off: it summarises, for every function in the project, which
parameters have their data fields read on a path where ``.status`` /
``.ok`` / ``.degraded`` was never consulted (propagating through
forwarding chains with a call-graph fixpoint), then flags the call
sites that feed an unchecked Answer into such a function.

Conservative by construction:

* a parameter that is checked anywhere in the callee, returned,
  yielded, stored, or passed into a call we cannot resolve is assumed
  handled — only a definite read-without-check summary fires;
* a caller that checks the answer itself before (or after) the call is
  never flagged — the status was consulted on some path.

The session facade and ``modeler.api`` construct the answers they
return; their internals legitimately touch data fields, so functions
defined there are never summarised as offenders (same exemption as
RML004).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.core import Violation, _prefix_match, dotted_name
from repro.lint.project import Project, ProjectRule
from repro.lint.rules.rml004_status import QUERY_METHODS, STATUS_ATTRS

#: modules whose call sites are analysed (tests may ignore status)
CALLER_PREFIXES = ("repro", "examples", "benchmarks")

#: paths whose functions are never summarised as unchecked consumers
EXEMPT_PATHS = ("src/repro/session.py", "src/repro/modeler/api.py")


@dataclass
class _Summary:
    """Per-function parameter facts feeding the fixpoint."""

    params: tuple[str, ...]
    checked: set[str] = field(default_factory=set)
    consumed: set[str] = field(default_factory=set)
    escaped: set[str] = field(default_factory=set)
    #: (param, callee qname, slot) — slot is an int position or kw name
    forwards: list[tuple[str, str, "int | str"]] = field(default_factory=list)


class StatusFlowRule(ProjectRule):
    code = "RML104"
    name = "answer-status-flow"
    rationale = (
        "passing an unchecked Answer to a function that reads its data "
        "without consulting .status hides PARTIAL/STALE results across "
        "the call boundary"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        summaries = {
            qname: _summarise(graph, fn)
            for qname, fn in graph.functions.items()
        }
        unchecked = _fixpoint(graph, summaries)
        yield from self._scan_callers(project, unchecked)

    # -- caller side ---------------------------------------------------

    def _scan_callers(
        self, project: Project, unchecked: set[tuple[str, str]]
    ) -> Iterator[Violation]:
        graph = project.graph
        for info in sorted(graph.modules.values(), key=lambda m: m.path):
            if not any(
                info.name == p or info.name.startswith(p + ".")
                for p in CALLER_PREFIXES
            ):
                continue
            if any(_prefix_match(info.path, ex) for ex in EXEMPT_PATHS):
                continue
            scopes: list[ast.AST] = [info.tree]
            for qname in info.functions:
                scopes.append(graph.functions[qname].node)
            for scope in scopes:
                cls = None
                if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for qname in info.functions:
                        if graph.functions[qname].node is scope:
                            cls = graph.functions[qname].cls
                yield from self._scan_scope(project, info, scope, cls, unchecked)

    def _scan_scope(
        self,
        project: Project,
        info,
        scope: ast.AST,
        cls: str | None,
        unchecked: set[tuple[str, str]],
    ) -> Iterator[Violation]:
        graph = project.graph
        candidates: dict[str, int] = {}
        checked: set[str] = set()
        handoffs: list[tuple[str, str, str, ast.Call]] = []
        for node in _body_walk(scope):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_query_call(node.value)
            ):
                candidates[node.targets[0].id] = node.lineno
            elif (
                isinstance(node, ast.For)
                and isinstance(node.target, ast.Name)
                and _is_query_call(node.iter)
            ):
                candidates[node.target.id] = node.lineno
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.attr in STATUS_ATTRS:
                    checked.add(node.value.id)
            if isinstance(node, ast.Call):
                callee = _resolve_call(graph, info, node, cls)
                if callee is None:
                    continue
                fn = graph.functions.get(callee)
                if fn is None:
                    continue
                for slot, arg in _arg_slots(node):
                    if not isinstance(arg, ast.Name):
                        continue
                    param = _slot_to_param(fn, slot)
                    if param is not None and (callee, param) in unchecked:
                        handoffs.append((arg.id, callee, param, node))

        for name, callee, param, call in handoffs:
            if name not in candidates or name in checked:
                continue
            lines = project.sources.get(info.path, "").splitlines()
            text = (
                lines[call.lineno - 1].strip()
                if 1 <= call.lineno <= len(lines) else ""
            )
            yield Violation(
                code=self.code, path=info.path,
                line=call.lineno, col=call.col_offset,
                message=(
                    f"answer {name!r} is passed to {callee} (parameter "
                    f"{param!r}), which reads its data fields without ever "
                    "checking .status/.ok/.degraded — PARTIAL or STALE "
                    "data would be trusted silently"
                ),
                line_text=text,
            )


# -- callee summaries ------------------------------------------------------


def _summarise(graph: CallGraph, fn: FunctionInfo) -> _Summary:
    s = _Summary(params=fn.params)
    params = set(fn.params)
    for node in _body_walk(fn.node):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            name = node.value.id
            if name in params:
                if node.attr in STATUS_ATTRS:
                    s.checked.add(name)
                else:
                    s.consumed.add(name)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            for name in _names_in(node.value):
                if name in params:
                    s.escaped.add(name)
        elif isinstance(node, ast.Assign):
            # storing the parameter (self.x = ans) defers the obligation
            for name in _names_in(node.value):
                if name in params and not isinstance(node.value, ast.Attribute):
                    s.escaped.add(name)
        elif isinstance(node, ast.Call):
            info = graph.modules.get(fn.module)
            callee = _resolve_call(graph, info, node, fn.cls) if info else None
            for slot, arg in _arg_slots(node):
                if not isinstance(arg, ast.Name) or arg.id not in params:
                    continue
                if callee is None or callee not in graph.functions:
                    # handed to something we can't see: assume handled
                    s.escaped.add(arg.id)
                    continue
                target = graph.functions[callee]
                param = _slot_to_param(target, slot)
                if param is None:
                    s.escaped.add(arg.id)
                else:
                    s.forwards.append((arg.id, callee, slot))
    return s


def _fixpoint(
    graph: CallGraph, summaries: dict[str, _Summary]
) -> set[tuple[str, str]]:
    """(qname, param) pairs that read data without ever checking status."""
    exempt = {
        qname for qname, fn in graph.functions.items()
        if any(_prefix_match(fn.path, ex) for ex in EXEMPT_PATHS)
        or fn.module.startswith("tests")
    }
    unchecked: set[tuple[str, str]] = set()
    for qname, s in summaries.items():
        if qname in exempt:
            continue
        for p in s.consumed:
            if p not in s.checked and p not in s.escaped:
                unchecked.add((qname, p))
    for _ in range(10):  # forwarding chains are short; cap the fixpoint
        grew = False
        for qname, s in summaries.items():
            if qname in exempt:
                continue
            for p, callee, slot in s.forwards:
                if p in s.checked or p in s.escaped or (qname, p) in unchecked:
                    continue
                target = graph.functions.get(callee)
                if target is None:
                    continue
                param = _slot_to_param(target, slot)
                if param is not None and (callee, param) in unchecked:
                    unchecked.add((qname, p))
                    grew = True
        if not grew:
            break
    return unchecked


# -- small shared helpers --------------------------------------------------


def _body_walk(scope: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_query_call(node: ast.AST | None) -> bool:
    call = node
    if isinstance(call, ast.Subscript):
        call = call.value
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Attribute)
        and call.func.attr in QUERY_METHODS
    )


def _names_in(node: ast.AST | None) -> Iterator[str]:
    if node is None:
        return
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


def _resolve_call(
    graph: CallGraph, info, node: ast.Call, cls: str | None
) -> str | None:
    """Resolve a call target to a function qname (module-level view)."""
    func = node.func
    if isinstance(func, ast.Name):
        hit = graph.resolve_callee(f"{info.name}.{func.id}")
        if hit is not None:
            return hit
        resolved = info.import_map.resolve(func)
        if resolved is not None:
            return graph.resolve_callee(resolved)
        return None
    if isinstance(func, ast.Attribute):
        dn = dotted_name(func)
        if dn is not None and cls is not None and dn == f"self.{func.attr}":
            return graph.resolve_callee(f"{cls}.{func.attr}")
        resolved = info.import_map.resolve(func)
        if resolved is not None:
            return graph.resolve_callee(resolved)
    return None


def _arg_slots(node: ast.Call) -> Iterator[tuple["int | str", ast.expr]]:
    for i, arg in enumerate(node.args):
        yield i, arg
    for kw in node.keywords:
        if kw.arg is not None:
            yield kw.arg, kw.value


def _method_offset(fn: FunctionInfo) -> int:
    return 1 if fn.cls is not None and fn.params[:1] in (("self",), ("cls",)) else 0


def _slot_to_param(fn: FunctionInfo, slot: "int | str") -> str | None:
    if isinstance(slot, str):
        return slot if slot in fn.params else None
    idx = slot + _method_offset(fn)
    if 0 <= idx < len(fn.params):
        return fn.params[idx]
    return None
