"""RML003 — deprecated Modeler query-shim usage.

``Modeler.flow_query`` / ``flow_queries`` / ``topology_query`` /
``node_query`` survive only as ``DeprecationWarning`` shims for
external callers; internal code must go through the status-carrying
:class:`repro.session.RemosSession` so degraded answers (STALE /
PARTIAL) are represented instead of raised.  This rule fails the build
when internal code regrows a shim call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation

SHIMS = {
    "flow_query": "RemosSession.flow_info",
    "flow_queries": "RemosSession.flow_info_many",
    "topology_query": "RemosSession.topology",
    "node_query": "RemosSession.node_info",
    "invalidate_query_cache": "Modeler.invalidate_cache",
}


class DeprecatedApiRule(Rule):
    code = "RML003"
    name = "deprecated-modeler-shims"
    rationale = (
        "internal callers must use the status-carrying RemosSession, "
        "not the deprecated strict Modeler query shims"
    )
    scope = ("src/repro", "examples", "benchmarks")
    #: the module defining the shims and the facade implementing the
    #: replacement are the only legitimate mentions
    exempt = ("src/repro/modeler/api.py", "src/repro/session.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SHIMS
            ):
                yield ctx.violation(
                    self,
                    node,
                    f"deprecated Modeler.{node.func.attr}() shim; "
                    f"use {SHIMS[node.func.attr]} (status-carrying API)",
                )
