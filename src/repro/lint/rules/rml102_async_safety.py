"""RML102 — no blocking calls reachable from service coroutines.

``repro.service`` is a single-threaded asyncio plane: one coroutine
that blocks (a real ``time.sleep``, sync socket/subprocess/file I/O,
or stepping the simulation with ``Engine.run_until``) stalls every
other client on the loop.  The per-file rules can only see a blocking
call lexically inside an ``async def``; this rule walks the call graph
so a sleep buried two helpers deep is found from the coroutine that
reaches it.

The traversal deliberately stops at the package boundary: the sync
session backend *is* blocking by design and is invoked under the
backend lock with explicit yield points (see ``RemosService.
_call_backend``), so only functions defined inside ``repro.service``
are walked.  ``asyncio.*`` is sanctioned (``asyncio.sleep`` is the
non-blocking sleep).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import Violation
from repro.lint.project import Project, ProjectRule

SERVICE_PACKAGE = "repro.service"

#: canonical dotted externals that block the event loop
BLOCKING_EXTERNALS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "os.system": "blocking subprocess",
    "os.popen": "blocking subprocess",
    "subprocess.run": "blocking subprocess",
    "subprocess.call": "blocking subprocess",
    "subprocess.check_call": "blocking subprocess",
    "subprocess.check_output": "blocking subprocess",
    "subprocess.Popen": "blocking subprocess",
    "socket.socket": "sync socket I/O; use asyncio streams",
    "socket.create_connection": "sync socket I/O; use asyncio streams",
    "socket.getaddrinfo": "sync DNS; use loop.getaddrinfo",
    "urllib.request.urlopen": "sync HTTP; use asyncio streams",
    "http.client.HTTPConnection": "sync HTTP; use asyncio streams",
    "open": "sync file I/O on the event loop",
}

#: attribute names that mark a blocking call even when the receiver is
#: opaque — stepping the simulation or Path file I/O
BLOCKING_ATTRS = {
    "run_until": "steps the simulation clock on the event loop",
    "read_text": "sync file I/O on the event loop",
    "write_text": "sync file I/O on the event loop",
    "read_bytes": "sync file I/O on the event loop",
    "write_bytes": "sync file I/O on the event loop",
}


class AsyncSafetyRule(ProjectRule):
    code = "RML102"
    name = "async-safety"
    rationale = (
        "blocking calls reachable from repro.service coroutines stall "
        "the whole event loop; reached transitively via the call graph"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        graph = project.graph
        entries = [
            fn for fn in project.functions_under(SERVICE_PACKAGE) if fn.is_async
        ]
        # walk each entry's reachable set within the service package;
        # report each blocking call site once, naming one reaching entry
        reported: set[tuple[str, int, str]] = set()
        for entry in sorted(entries, key=lambda f: f.qname):
            seen = {entry.qname}
            stack = [(entry.qname, [entry.qname])]
            while stack:
                qname, chain = stack.pop()
                for edge in graph.edges_from(qname):
                    sink = advice = None
                    if edge.external in BLOCKING_EXTERNALS:
                        sink = edge.external
                        advice = BLOCKING_EXTERNALS[edge.external]
                    elif edge.attr in BLOCKING_ATTRS:
                        sink = f".{edge.attr}(...)"
                        advice = BLOCKING_ATTRS[edge.attr]
                    if sink is not None:
                        holder = graph.functions[qname]
                        key = (holder.path, edge.lineno, sink)
                        if key not in reported:
                            reported.add(key)
                            via = " -> ".join(_short(q) for q in chain)
                            yield self._violation(
                                project, holder.path, edge.lineno, edge.col,
                                f"blocking call {sink} reachable from async "
                                f"{_short(entry.qname)} (via {via}); {advice}",
                            )
                    callee = edge.callee
                    if callee is None or callee in seen:
                        continue
                    target = graph.functions.get(callee)
                    if target is None or not _in_service(target.module):
                        continue
                    if target.is_async and not edge.via_argument:
                        # awaited coroutines are their own entry points
                        continue
                    seen.add(callee)
                    stack.append((callee, chain + [callee]))

    def _violation(
        self, project: Project, path: str, line: int, col: int, message: str
    ) -> Violation:
        lines = project.sources.get(path, "").splitlines()
        text = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        return Violation(
            code=self.code, path=path, line=line, col=col,
            message=message, line_text=text,
        )


def _in_service(module: str) -> bool:
    return module == SERVICE_PACKAGE or module.startswith(SERVICE_PACKAGE + ".")


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname
