"""RML006 — OID literal hygiene.

Every MIB object the collectors touch is named once, in
``repro.snmp.oid``, so a MIB change is a one-file edit and OIDs are
greppable by symbolic name.  A raw dotted-OID string anywhere else
re-scatters the magic numbers the module exists to centralise.

A string literal counts as an OID when it has five or more numeric
components (``1.3.6.1.2``), or four starting with the standard
``1.3.6.`` prefix — dotted IPv4 addresses (always exactly four
components, not starting ``1.3.6.``) and version strings (two or three
components) never match.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation

_DOTTED = re.compile(r"^\.?\d+(\.\d+)+$")


def looks_like_oid(text: str) -> bool:
    if not _DOTTED.match(text):
        return False
    n_components = text.strip(".").count(".") + 1
    if n_components >= 5:
        return True
    return n_components == 4 and text.lstrip(".").startswith("1.3.6.")


class OidLiteralRule(Rule):
    code = "RML006"
    name = "oid-literal-hygiene"
    rationale = (
        "raw dotted-OID strings belong in repro.snmp.oid; everywhere "
        "else use the symbolic constants"
    )
    scope = ("src/repro",)
    exempt = ("src/repro/snmp/oid.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and looks_like_oid(node.value)
            ):
                yield ctx.violation(
                    self,
                    node,
                    f"raw OID literal {node.value!r}; use a symbolic "
                    "constant from repro.snmp.oid",
                )
