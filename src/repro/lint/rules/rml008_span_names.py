"""RML008 — span-name drift.

The trace tooling keys on span names: ``repro trace`` attributes
latency to layers by span-name prefix, flight-recorder dumps are
grepped by span name, and every span feeds a ``<name>.duration_s``
histogram whose name exporter consumers depend on.  A typo in one
``obs.span("...")`` call silently forks a latency series and drops the
span out of its attribution layer.  Every literal span name must
appear in the central catalogue (``repro.obs.catalog.SPAN_NAMES``),
which ``docs/observability.md`` documents.

Dynamic (non-literal) names can't be checked statically and are
skipped; they should be rare and label-shaped instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, ImportMap, Rule, Violation

#: canonical module paths the span factory lives on
_OBS_PATHS = ("repro.obs.", "obs.")


def _load_catalogue() -> frozenset[str]:
    from repro.obs.catalog import SPAN_NAMES

    return SPAN_NAMES


class SpanNameRule(Rule):
    code = "RML008"
    name = "span-name-drift"
    rationale = (
        "obs span names must be registered in repro.obs.catalog so "
        "trace attribution and duration histograms never chase a typo"
    )
    scope = ("src/repro",)
    exempt = ("src/repro/obs",)

    def __init__(self, catalogue: frozenset[str] | None = None) -> None:
        self._catalogue = catalogue

    @property
    def catalogue(self) -> frozenset[str]:
        if self._catalogue is None:
            self._catalogue = _load_catalogue()
        return self._catalogue

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_span_call(node.func, imports) or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if name not in self.catalogue:
                yield ctx.violation(
                    self,
                    first,
                    f"obs.span({name!r}) is not in the span catalogue; "
                    "register it in repro.obs.catalog.SPAN_NAMES (and "
                    "docs/observability.md)",
                )

    def _is_span_call(self, func: ast.AST, imports: ImportMap) -> bool:
        """True for obs.span / repro.obs.span / reg.span call sites."""
        if isinstance(func, ast.Attribute) and func.attr == "span":
            resolved = imports.resolve(func)
            if resolved and any(
                resolved.startswith(p) or resolved == p + "span" for p in _OBS_PATHS
            ):
                return True
            # registry-handle form: reg.span(...) — only when the
            # receiver is literally a registry-ish name, to avoid
            # flagging unrelated .span() methods
            if isinstance(func.value, ast.Name) and func.value.id in (
                "obs",
                "reg",
                "registry",
            ):
                return True
        return False
