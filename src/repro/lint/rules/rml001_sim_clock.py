"""RML001 — sim-clock purity in the simulation-facing layers.

The chaos suite pins seed-for-seed reproducibility on the simulation
clock: every timestamp that influences behaviour must come from the
Engine (``net.engine.now``) and every duration measurement from
``repro.obs.timebase`` (``wall_now``/``cpu_now``), which keeps the
wall-clock reads centralised, mockable, and out of simulation state.
One stray ``time.time()`` in a collector silently decouples a run from
its seed; this rule makes that a build failure instead of a debugging
session.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, ImportMap, Rule, Violation

#: canonical dotted names that read a process clock or block on one
BANNED = {
    "time.time": "use the Engine clock (net.engine.now)",
    "time.time_ns": "use the Engine clock (net.engine.now)",
    "time.sleep": "use engine.advance()/engine.every() instead of blocking",
    "time.monotonic": "use obs.timebase.wall_now()",
    "time.monotonic_ns": "use obs.timebase.wall_now()",
    "time.perf_counter": "use obs.timebase.wall_now()",
    "time.perf_counter_ns": "use obs.timebase.wall_now()",
    "time.process_time": "use obs.timebase.cpu_now()",
    "time.process_time_ns": "use obs.timebase.cpu_now()",
    "datetime.datetime.now": "use the Engine clock (net.engine.now)",
    "datetime.datetime.utcnow": "use the Engine clock (net.engine.now)",
    "datetime.datetime.today": "use the Engine clock (net.engine.now)",
    "datetime.date.today": "use the Engine clock (net.engine.now)",
}


class SimClockPurityRule(Rule):
    code = "RML001"
    name = "sim-clock-purity"
    rationale = (
        "wall-clock reads in sim-facing layers break seed-for-seed "
        "chaos determinism; use the Engine clock or obs.timebase"
    )
    scope = (
        "src/repro/netsim",
        "src/repro/snmp",
        "src/repro/collectors",
        "src/repro/faults.py",
        "src/repro/rps",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    target = f"{node.module}.{alias.name}"
                    if target in BANNED:
                        yield ctx.violation(
                            self,
                            node,
                            f"import of {target} in a sim-pure layer; {BANNED[target]}",
                        )
            elif isinstance(node, ast.Attribute):
                resolved = imports.resolve(node)
                if resolved in BANNED:
                    yield ctx.violation(
                        self,
                        node,
                        f"{resolved} in a sim-pure layer; {BANNED[resolved]}",
                    )
