"""RML002 — seeded-RNG discipline.

Every stochastic component must draw from an explicitly seeded
generator threaded through ``repro.common.rng.make_rng``.  Module-level
``random.*`` calls (global hidden state) and unseeded constructors
(``random.Random()``, ``np.random.default_rng()`` with no argument)
make runs irreproducible and chaos tests flaky.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, ImportMap, Rule, Violation

#: constructors that are fine *with* a seed argument, banned without one
SEEDABLE = {
    "random.Random",
    "random.SystemRandom",  # never deterministic, but flag the no-arg form too
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

#: module-attribute prefixes whose *function calls* are banned outright
BANNED_PREFIXES = ("random.", "numpy.random.")

#: attribute names under the banned prefixes that are not draws
_ALLOWED_TAILS = {
    "Random",
    "SystemRandom",
    "default_rng",
    "RandomState",
    "Generator",  # type annotations: np.random.Generator
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "Philox",
}


class SeededRngRule(Rule):
    code = "RML002"
    name = "seeded-rng-discipline"
    rationale = (
        "module-level random.* / unseeded generators use hidden global "
        "state; thread a seeded Generator via repro.common.rng.make_rng"
    )
    scope = ("src/repro",)
    exempt = ("src/repro/common/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.of(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in SEEDABLE:
                if not node.args and not node.keywords:
                    yield ctx.violation(
                        self,
                        node,
                        f"unseeded {resolved}(): pass an explicit seed "
                        "(or use repro.common.rng.make_rng)",
                    )
                continue
            if resolved.startswith(BANNED_PREFIXES):
                tail = resolved.rsplit(".", 1)[-1]
                if tail in _ALLOWED_TAILS:
                    continue
                yield ctx.violation(
                    self,
                    node,
                    f"module-level {resolved}() draws from hidden global "
                    "state; use a seeded Generator from "
                    "repro.common.rng.make_rng",
                )
