"""Project-level analysis: parse the whole tree once, run RML1xx rules.

``repro lint`` runs per-file rules against one AST at a time; ``repro
lint --project`` additionally builds a :class:`~repro.lint.callgraph.
CallGraph` over ``src`` plus the consumer trees (``tests``,
``benchmarks``, ``examples``) and hands it to :class:`ProjectRule`
plugins.  Project violations flow through exactly the same machinery
as per-file ones — inline pragmas, per-rule path excludes, and the
fingerprint baseline all apply — so one report and one gate cover
both families.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.callgraph import CallGraph, FunctionInfo, ModuleInfo
from repro.lint.config import LintConfig
from repro.lint.core import Violation, _prefix_match
from repro.lint.engine import PragmaSet, iter_python_files

#: directories (beyond the configured source paths) whose references
#: count when deciding whether an export is alive, and whose call sites
#: are part of the status-discipline graph
CONSUMER_TREES = ("tests", "benchmarks", "examples")


class Project:
    """Every parsed file, the call graph, and the lint config."""

    def __init__(self, root: Path, config: LintConfig) -> None:
        self.root = root
        self.config = config
        self.graph = CallGraph()
        #: repo-relative path -> source text (for pragma filtering)
        self.sources: dict[str, str] = {}
        #: repo-relative path -> parse error
        self.errors: dict[str, str] = {}

    @classmethod
    def build(cls, root: Path, config: LintConfig) -> "Project":
        project = cls(root, config)
        roots = [root / p for p in config.paths]
        roots += [root / t for t in CONSUMER_TREES if (root / t).is_dir()]
        for file in iter_python_files(roots, config.exclude, root):
            try:
                rel = file.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            if rel in project.sources:
                continue
            source = file.read_text()
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                project.errors[rel] = f"syntax error: {exc}"
                continue
            project.sources[rel] = source
            project.graph.add_module(rel, source, tree)
        project.graph.finish()
        return project

    # -- convenience views used by several rules -----------------------

    def src_modules(self) -> Iterator[ModuleInfo]:
        """Modules of the shipped package (dotted name under ``repro``)."""
        for info in self.graph.modules.values():
            if info.name == "repro" or info.name.startswith("repro."):
                yield info

    def functions_under(self, module_prefix: str) -> Iterator[FunctionInfo]:
        for fn in self.graph.functions.values():
            if fn.module == module_prefix or fn.module.startswith(module_prefix + "."):
                yield fn


class ProjectRule:
    """Base class for whole-program rules (the RML1xx family).

    Same plugin contract as :class:`~repro.lint.core.Rule` — code,
    name, rationale — but ``check`` sees the whole :class:`Project`
    instead of one file, and each yielded :class:`Violation` must carry
    the repo-relative ``path`` it points at (pragmas and per-rule
    excludes are applied per violation, by that path).
    """

    code: str = "RML100"
    name: str = "abstract-project-rule"
    rationale: str = ""
    autofixable: bool = False

    def check(self, project: Project) -> Iterator[Violation]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.code}>"


def violation_at(
    rule: ProjectRule,
    project: Project,
    path: str,
    node: ast.AST,
    message: str,
) -> Violation:
    """Build a Violation for an AST node of a parsed project file.

    Mirrors :meth:`FileContext.violation`, including the decorated-def
    pragma range, but reads the line text from the project's source
    cache.
    """
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    source = project.sources.get(path, "")
    lines = source.splitlines()
    text = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
    decorators = getattr(node, "decorator_list", None) or []
    pragma_lines: tuple[int, ...] = ()
    if decorators:
        first = min(d.lineno for d in decorators)
        pragma_lines = tuple(range(first, line))
    return Violation(
        code=rule.code, path=path, line=line, col=col,
        message=message, line_text=text, pragma_lines=pragma_lines,
    )


def lint_project(project: Project, rules: list[ProjectRule]) -> list[Violation]:
    """Run project rules; apply pragmas and per-rule path excludes.

    Returns violations ready to merge with the per-file report (the
    caller sorts and partitions against the baseline).
    """
    pragmas: dict[str, PragmaSet] = {}
    out: list[Violation] = []
    for rule in rules:
        excludes = project.config.rule_excludes(rule.code)
        for v in rule.check(project):
            if any(_prefix_match(v.path, ex) for ex in excludes):
                continue
            if v.path not in pragmas:
                pragmas[v.path] = PragmaSet.of(project.sources.get(v.path, ""))
            if pragmas[v.path].suppresses(v):
                continue
            out.append(v)
    return out
