"""Baseline file: grandfathered violations the gate tolerates.

The baseline is a committed JSON document.  Entries are matched by
*fingerprint* — ``(code, path, stripped source line)`` — not by line
number, so pure line moves don't churn the file.  Matching is multiset
semantics: two identical offending lines need two entries.

Each entry may carry a human ``note`` explaining why the violation is
grandfathered rather than fixed; ``--write-baseline`` preserves notes
of entries that survive regeneration.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.core import Violation

FORMAT_VERSION = 1


@dataclass
class BaselineEntry:
    code: str
    path: str
    text: str
    note: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.text)


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text())
        entries = [
            BaselineEntry(
                code=e["code"],
                path=e["path"],
                text=e["text"],
                note=e.get("note", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": [
                {
                    "code": e.code,
                    "path": e.path,
                    "text": e.text,
                    **({"note": e.note} if e.note else {}),
                }
                for e in sorted(self.entries, key=lambda e: (e.code, e.path, e.text))
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def partition(
        self, violations: list[Violation]
    ) -> tuple[list[Violation], list[Violation], list[BaselineEntry]]:
        """Split violations into (new, baselined); also report stale entries.

        A baseline entry is *stale* when no current violation matches it
        — the debt was paid down and the entry should be removed so the
        file never protects future regressions at that fingerprint.
        """
        budget = Counter(e.fingerprint() for e in self.entries)
        fresh: list[Violation] = []
        grandfathered: list[Violation] = []
        for v in violations:
            fp = v.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                grandfathered.append(v)
            else:
                fresh.append(v)
        stale = [e for e in self.entries if budget.get(e.fingerprint(), 0) > 0]
        # consume multiplicity so N stale copies report N entries
        for e in stale:
            budget[e.fingerprint()] -= 1
        return fresh, grandfathered, stale

    @classmethod
    def from_violations(
        cls, violations: list[Violation], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Regenerate, carrying notes over from a previous baseline."""
        notes: dict[tuple[str, str, str], list[str]] = {}
        if previous is not None:
            for e in previous.entries:
                notes.setdefault(e.fingerprint(), []).append(e.note)
        entries = []
        for v in violations:
            fp = v.fingerprint()
            note = notes[fp].pop(0) if notes.get(fp) else ""
            entries.append(
                BaselineEntry(code=v.code, path=v.path, text=v.line_text, note=note)
            )
        return cls(entries)
