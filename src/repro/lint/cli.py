"""Command-line front end: ``repro lint`` and ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import apply_fixes, lint_paths
from repro.lint.project import Project, lint_project
from repro.lint.rules import make_project_rules, make_rules, rule_catalogue

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def configure_parser(p: argparse.ArgumentParser) -> argparse.ArgumentParser:
    p.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: [tool.remoslint] paths)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    p.add_argument(
        "--select", default="",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--ignore", default="",
        help="comma-separated rule codes to skip",
    )
    p.add_argument(
        "--project", action="store_true",
        help="also run the whole-program RML1xx rules (module graph + "
             "call graph over src, tests, benchmarks, examples)",
    )
    p.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered violations too",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from current violations and exit",
    )
    p.add_argument(
        "--check-baseline", action="store_true",
        help="also fail when baseline entries no longer match (stale debt)",
    )
    p.add_argument(
        "--fix", action="store_true",
        help="apply available autofixes, then report what remains",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p.add_argument(
        "--root", default=".",
        help="repo root holding pyproject.toml (default: cwd)",
    )
    return p


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code, rule in sorted(rule_catalogue().items()):
            fixable = " [autofixable]" if rule.autofixable else ""
            print(f"{code}  {rule.name}{fixable}")
            print(f"        {rule.rationale}")
        return EXIT_OK

    root = Path(args.root)
    config = load_config(root)
    select = [c for c in args.select.split(",") if c]
    ignore = [c for c in args.ignore.split(",") if c]
    rules = make_rules(select=select, ignore=ignore)
    project_rules = make_project_rules(select=select, ignore=ignore) if args.project else []
    if not rules and not project_rules:
        print("error: no rules selected", file=sys.stderr)
        return EXIT_USAGE
    paths = (
        [Path(p) for p in args.paths]
        if args.paths
        else [root / p for p in config.paths]
    )
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return EXIT_USAGE

    baseline_path = root / config.baseline

    def project_violations():
        if not project_rules:
            return []
        return lint_project(Project.build(root, config), project_rules)

    if args.write_baseline:
        report = lint_paths(
            paths, rules, config, baseline=None, extra=project_violations()
        )
        previous = Baseline.load(baseline_path)
        Baseline.from_violations(report.violations, previous).save(baseline_path)
        print(
            f"wrote {baseline_path} with {len(report.violations)} "
            f"grandfathered violation(s)"
        )
        return EXIT_OK

    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    report = lint_paths(
        paths, rules, config, baseline=baseline, extra=project_violations()
    )

    if args.fix and report.violations:
        applied = apply_fixes(report.violations, root)
        if applied:
            print(f"applied {applied} autofix(es); re-linting")
            report = lint_paths(
                paths, rules, config, baseline=baseline, extra=project_violations()
            )

    failed = bool(report.violations) or bool(report.errors)
    if args.check_baseline and report.stale_entries:
        failed = True

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return EXIT_VIOLATIONS if failed else EXIT_OK

    for path, err in sorted(report.errors.items()):
        print(f"{path}: {err}")
    for v in report.violations:
        print(v.render())
    if report.stale_entries:
        verb = "failing" if args.check_baseline else "note"
        print(
            f"{verb}: {len(report.stale_entries)} stale baseline entr"
            f"{'y' if len(report.stale_entries) == 1 else 'ies'} "
            "(debt paid down — run `repro lint --write-baseline`):"
        )
        for e in report.stale_entries:
            print(f"  {e.code} {e.path}: {e.text}")
    summary = (
        f"{report.files_checked} file(s) checked, "
        f"{len(report.violations)} new violation(s), "
        f"{len(report.baselined)} baselined"
    )
    print(summary)
    return EXIT_VIOLATIONS if failed else EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = configure_parser(
        argparse.ArgumentParser(
            prog="repro lint",
            description="remoslint: AST-based invariant linter for the Remos stack",
        )
    )
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
