"""Core vocabulary of the linter: violations, fixes, rules, file context.

A :class:`Rule` is a plugin: it declares a stable code (``RML001``…),
the path prefixes it patrols, and a ``check`` that yields
:class:`Violation` records from one file's AST.  Rules never read the
filesystem themselves — the engine hands them a parsed
:class:`FileContext` — so unit tests can lint inline source snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Iterator


@dataclass(frozen=True)
class Fix:
    """A cheap, single-line textual autofix.

    ``old`` must occur verbatim on ``line``; ``--fix`` replaces its
    first occurrence with ``new``.  Rules only attach a fix when the
    rewrite is unambiguous and behaviour-preserving enough to apply
    blindly.
    """

    line: int
    old: str
    new: str


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    code: str
    path: str  # repo-relative posix path ("" when linting a snippet)
    line: int  # 1-based
    col: int  # 0-based
    message: str
    #: the stripped source line, used for the line-number-independent
    #: baseline fingerprint
    line_text: str = ""
    fix: Fix | None = None
    #: extra lines where an inline pragma also suppresses this violation
    #: (for decorated defs: the decorator lines above the reported line)
    pragma_lines: tuple[int, ...] = ()

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity for baseline matching: survives pure line moves."""
        return (self.code, self.path, self.line_text)

    def render(self) -> str:
        loc = f"{self.path or '<source>'}:{self.line}:{self.col + 1}"
        return f"{loc}: {self.code} {self.message}"


class FileContext:
    """Everything a rule may look at for one file."""

    def __init__(self, source: str, path: str = "", tree: ast.Module | None = None) -> None:
        self.source = source
        self.path = path  # repo-relative posix
        self.tree = tree if tree is not None else ast.parse(source)
        self.lines = source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        fix: Fix | None = None,
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        # a decorated def reports at the `def` line, but a pragma on any
        # of its decorator lines must suppress it too — decorators are
        # part of the same statement as far as the author is concerned
        decorators = getattr(node, "decorator_list", None) or []
        pragma_lines: tuple[int, ...] = ()
        if decorators:
            first = min(d.lineno for d in decorators)
            pragma_lines = tuple(range(first, line))
        return Violation(
            code=rule.code,
            path=self.path,
            line=line,
            col=col,
            message=message,
            line_text=self.line_text(line),
            fix=fix,
            pragma_lines=pragma_lines,
        )


class Rule:
    """Base class every remoslint rule extends.

    Class attributes are the plugin contract:

    * ``code`` — stable ``RMLxxx`` identifier (pragma / baseline key).
    * ``name`` — short kebab-case label for listings.
    * ``rationale`` — one-line why, shown by ``--list-rules``.
    * ``scope`` — repo-relative path prefixes the rule patrols; empty
      means every linted file.
    * ``exempt`` — path prefixes always excluded (typically the module
      that *defines* the thing the rule bans elsewhere).
    * ``autofixable`` — whether any of the rule's violations may carry
      a :class:`Fix`.
    """

    code: ClassVar[str] = "RML000"
    name: ClassVar[str] = "abstract-rule"
    rationale: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...]] = ()
    exempt: ClassVar[tuple[str, ...]] = ()
    autofixable: ClassVar[bool] = False

    def applies_to(self, path: str) -> bool:
        """Whether this rule patrols ``path`` (repo-relative posix)."""
        if any(_prefix_match(path, ex) for ex in self.exempt):
            return False
        if not self.scope:
            return True
        return any(_prefix_match(path, sc) for sc in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.code}>"


def _prefix_match(path: str, prefix: str) -> bool:
    """True when ``path`` is ``prefix`` itself or lives under it."""
    if not path:
        return False
    return path == prefix or path.startswith(prefix.rstrip("/") + "/")


# -- attribute-chain helpers shared by several rules ---------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportMap:
    """Which local names refer to which modules / module attributes."""

    #: local alias -> module path ("t" -> "time" for ``import time as t``)
    modules: dict[str, str] = field(default_factory=dict)
    #: local name -> "module.attr" ("sleep" -> "time.sleep")
    members: dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        out = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.modules[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    out.members[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return out

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted path for a Name/Attribute, through aliases.

        ``t.sleep`` -> "time.sleep" (after ``import time as t``);
        ``sleep`` -> "time.sleep" (after ``from time import sleep``).
        Only names reached through an actual import resolve — a local
        variable that happens to be called ``random`` yields None, so
        rules keyed on module paths don't false-positive on it.
        """
        dn = dotted_name(node)
        if dn is None:
            return None
        head, _, rest = dn.partition(".")
        if head in self.members:
            base = self.members[head]
            return f"{base}.{rest}" if rest else base
        if head in self.modules:
            base = self.modules[head]
            return f"{base}.{rest}" if rest else base
        return None


