"""repro.faults — deterministic, seedable fault injection for the stack.

The paper sells Remos as a monitoring service that keeps answering
while the network it measures misbehaves: agents stop responding, WAN
probes fail, collectors restart (§6.2).  This module makes those
failures *reproducible experiments*: a :class:`FaultPlan` describes
which faults fire with what probability, a :class:`FaultInjector`
rolls the dice from one seeded generator, and :func:`install` arms a
deployment — both the faults and the survival policy (SNMP retries,
Master fragment timeouts) that PR 4 added to cope with them.

Design rules:

* **Deterministic.**  One ``numpy`` generator seeded from the plan
  drives every probabilistic decision, so two runs with the same seed
  inject the identical fault sequence.
* **Zero-overhead default.**  Nothing consults the injector unless one
  is installed (``net.faults`` is ``None`` otherwise), and a plan with
  all probabilities at zero injects nothing — results are identical to
  a run without the module.
* **Visible.**  Every injected fault increments
  ``faults.injected{kind=...}`` in :mod:`repro.obs`.

Probabilistic faults (rolled per operation):

=================  ====================================================
``snmp_drop``      an agent silently drops a PDU (client times out)
``snmp_delay``     an answered PDU suffers a delay spike
``counter_reset``  an octet counter rebases to zero (device reboot)
``counter_wrap``   32-bit octet counters wrap modulo 2**32
``probe_fail``     a WAN benchmark probe fails outright
=================  ====================================================

Scripted faults (invoked from test/experiment code at a chosen time):
:func:`crash_collector`, :func:`crash_agent`,
:func:`spike_link_latency`, :func:`degrade_link`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro import obs
from repro.common.rng import make_rng
from repro.netsim.topology import Link, Network

log = obs.get_logger(__name__)


def _record_fault(kind: str) -> None:
    """Count an injected fault and wake the flight recorder, if any."""
    obs.counter("faults.injected", kind=kind).inc()
    recorder = obs.get_registry().flight_recorder
    if recorder is not None:
        recorder.on_fault(kind)


@dataclass
class FaultPlan:
    """Declarative description of an injection campaign.

    The survival-policy fields (``snmp_retries`` …, ``fragment_*``,
    ``quarantine_s``) are not faults; they are the countermeasures
    :func:`install` arms on the deployment so the stack can absorb the
    faults.  They default to the values a chaos experiment wants; a
    plan is still zero-overhead when every probability is 0.
    """

    seed: int = 0
    # -- SNMP transport faults ----------------------------------------
    #: probability an agent silently drops one PDU
    snmp_drop_prob: float = 0.0
    #: probability an answered PDU suffers a delay spike
    snmp_delay_prob: float = 0.0
    snmp_delay_s: float = 0.25
    # -- counter pathologies ------------------------------------------
    #: probability (per counter read) the counter rebases to zero
    counter_reset_prob: float = 0.0
    #: serve octet counters modulo 2**32 (legacy 32-bit agents)
    counter_wrap32: bool = False
    # -- WAN probe faults ---------------------------------------------
    #: probability one benchmark probe fails outright
    probe_fail_prob: float = 0.0
    #: simulated time a failing probe burns before giving up
    probe_timeout_s: float = 5.0
    # -- service-plane faults (repro.service) -------------------------
    #: probability one service backend call raises a transient error
    #: (exercises the breaker / retry-budget / shed-to-STALE paths)
    service_error_prob: float = 0.0
    #: probability one service request suffers an artificial stall
    service_delay_prob: float = 0.0
    service_delay_s: float = 0.2
    # -- survival policy applied on install ---------------------------
    #: SNMP retry budget per request (exponential backoff below)
    snmp_retries: int = 2
    snmp_backoff_s: float = 0.25
    #: per-fragment deadline for Master delegation (0 = no deadline)
    fragment_timeout_s: float = 8.0
    fragment_retries: int = 1
    fragment_backoff_s: float = 0.1
    #: how long a dead collector stays quarantined before a re-probe
    quarantine_s: float = 30.0

    @property
    def injects_anything(self) -> bool:
        return (
            self.snmp_drop_prob > 0
            or self.snmp_delay_prob > 0
            or self.counter_reset_prob > 0
            or self.counter_wrap32
            or self.probe_fail_prob > 0
            or self.service_error_prob > 0
            or self.service_delay_prob > 0
        )


class FaultInjector:
    """Rolls the plan's dice, deterministically, and counts what fired."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = make_rng(plan.seed)
        #: total faults injected (mirror of the obs counter)
        self.injected = 0
        #: per-(agent, oid) rebase offsets from injected counter resets
        self._offsets: dict[tuple[str, str], float] = {}

    def _fire(self, kind: str, prob: float) -> bool:
        if prob <= 0.0:
            return False
        if float(self.rng.random()) >= prob:
            return False
        self._count(kind)
        return True

    def _count(self, kind: str) -> None:
        self.injected += 1
        _record_fault(kind)

    # -- hooks consulted by the stack ---------------------------------

    def drop_pdu(self, ip: object) -> bool:
        """Should this PDU be silently dropped (client times out)?"""
        return self._fire("snmp_drop", self.plan.snmp_drop_prob)

    def pdu_delay_s(self, ip: object) -> float:
        """Extra latency to charge on an answered PDU (usually 0)."""
        if self._fire("snmp_delay", self.plan.snmp_delay_prob):
            return self.plan.snmp_delay_s
        return 0.0

    def counter_read(self, ip: object, oid: object, value: float) -> float:
        """Mangle one octet-counter reading (reset rebase, 32-bit wrap)."""
        key = (str(ip), str(oid))
        if self._fire("counter_reset", self.plan.counter_reset_prob):
            # the device "rebooted": counters restart from zero and
            # grow again from this raw value onward
            self._offsets[key] = float(value)
        v = float(value) - self._offsets.get(key, 0.0)
        if self.plan.counter_wrap32:
            wrapped = v % 2.0**32
            if wrapped != v:
                self._count("counter_wrap")
            v = wrapped
        return v

    def probe_fails(self, src_site: str, dst_site: str) -> bool:
        """Should this WAN benchmark probe fail?"""
        return self._fire("probe_fail", self.plan.probe_fail_prob)

    def service_error(self) -> bool:
        """Should this service backend call raise a transient error?"""
        return self._fire("service_error", self.plan.service_error_prob)

    def service_delay(self) -> float:
        """Artificial stall to add to one service request (usually 0)."""
        if self._fire("service_delay", self.plan.service_delay_prob):
            return self.plan.service_delay_s
        return 0.0


def install(dep: Any, plan: FaultPlan) -> FaultInjector:
    """Arm a deployment: inject per ``plan`` and apply its survival policy.

    Sets ``dep.net.faults`` (consulted by the SNMP client and the
    benchmark collectors), configures retry/backoff on every
    collector's SNMP client, and the fragment timeout / retry /
    quarantine policy on the Master.  Returns the injector for
    inspection; :func:`uninstall` reverses everything.
    """
    injector = FaultInjector(plan)
    dep.net.faults = injector
    for client in _clients(dep):
        client.cost.retries = plan.snmp_retries
        client.cost.backoff_base_s = plan.snmp_backoff_s
    rpc = dep.master.rpc
    rpc.fragment_timeout_s = plan.fragment_timeout_s
    rpc.fragment_retries = plan.fragment_retries
    rpc.fragment_backoff_s = plan.fragment_backoff_s
    rpc.quarantine_s = plan.quarantine_s
    log.info("fault plan installed (seed=%d)", plan.seed)
    return injector


def uninstall(dep: Any) -> None:
    """Disarm: stop injecting and restore zero-overhead defaults."""
    dep.net.faults = None
    for client in _clients(dep):
        client.cost.retries = 0
    rpc = dep.master.rpc
    rpc.fragment_timeout_s = 0.0
    rpc.fragment_retries = 0
    rpc.quarantine_s = 0.0
    log.info("fault plan uninstalled")


def _clients(dep: Any) -> Iterator[Any]:
    groups = (
        dep.snmp_collectors.values(),
        dep.bridge_collectors.values(),
        dep.wireless_collectors.values(),
    )
    for group in groups:
        for coll in group:
            client = getattr(coll, "client", None)
            if client is not None:
                yield client


# -- scripted faults ---------------------------------------------------


def crash_collector(collector: Any, down_s: float) -> None:
    """Crash a collector for ``down_s`` simulated seconds.

    While crashed it refuses queries (:class:`CollectorUnavailableError`
    — the Master quarantines it and serves last-known-good fragments).
    On restart it comes back *cold*: discovery caches and counter
    history are flushed, like a real process restart.
    """
    engine = collector.net.engine
    collector.crashed_until = engine.now + down_s
    _record_fault("collector_crash")
    log.debug("%s crashed until t=%.1f", collector.name, collector.crashed_until)

    def _restart() -> None:
        collector.crashed_until = None
        flush = getattr(collector, "flush_caches", None)
        if callable(flush):
            flush()

    engine.after(down_s, _restart)


def crash_shard(master: Any, shard_index: int, down_s: float,
                include_replicas: bool = True) -> None:
    """Crash one shard of a :class:`~repro.collectors.sharding.ShardedMaster`.

    With ``include_replicas`` every replica in the shard's chain goes
    down together (the ShardedMaster must fall back to its shard-level
    last-known-good cache); otherwise only the primary crashes and the
    next query promotes a replica, which still answers *fresh* from the
    shared site collectors.
    """
    shard = master.shards[shard_index]
    targets = shard.masters if include_replicas else shard.masters[:1]
    engine = master.net.engine
    for m in targets:
        m.crashed_until = engine.now + down_s

        def _restart(mm: Any = m) -> None:
            mm.crashed_until = None

        engine.after(down_s, _restart)
    _record_fault("shard_crash")
    log.debug(
        "shard %d crashed (%d master(s)) until t=%.1f",
        shard_index, len(targets), engine.now + down_s,
    )


def crash_agent(world: Any, ip: object, down_s: float | None = None) -> None:
    """Take one SNMP agent down (optionally restoring after ``down_s``)."""
    agent = world.agent_at(ip)
    if agent is None:
        raise ValueError(f"no agent at {ip}")
    agent.reachable = False
    _record_fault("agent_crash")
    if down_s is not None:
        def _restore() -> None:
            agent.reachable = True

        world.net.engine.after(down_s, _restore)


def spike_link_latency(
    net: Network, link: Link, extra_s: float, duration_s: float | None = None
) -> None:
    """Add a delay spike to one link (optionally reverting later)."""
    link.latency_s += extra_s
    _record_fault("latency_spike")
    if duration_s is not None:
        def _revert() -> None:
            link.latency_s = max(0.0, link.latency_s - extra_s)

        net.engine.after(duration_s, _revert)


def degrade_link(
    net: Network, link: Link, factor: float, duration_s: float | None = None
) -> None:
    """Cut a link's usable capacity to ``factor`` of its current value.

    The fluid model has no packets, so sustained packet loss appears as
    goodput reduction: scale the link (and both channels) and
    re-balance all flows.  ``duration_s`` restores the original
    capacity afterwards.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError("factor must be in (0, 1]")
    original = link.capacity_bps
    _record_fault("link_degrade")

    def _scale(cap: float) -> None:
        now = net.now
        for ch in link.channels():
            ch.sync(now)
        link.capacity_bps = cap
        for ch in link.channels():
            ch.capacity_bps = cap
        net.flows._reallocate()

    _scale(original * factor)
    if duration_s is not None:
        net.engine.after(duration_s, lambda: _scale(original))
