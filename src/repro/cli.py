"""Command-line interface: poke at Remos on canned simulated worlds.

Because the network under observation is simulated, the CLI operates on
named scenarios rather than live devices::

    python -m repro scenarios
    python -m repro topology wan cmu-h0 eth-h0
    python -m repro flow wan cmu-h0 eth-h0 --predict
    python -m repro nodes lan h0 h1
    python -m repro models
    python -m repro forecast --spec "AR(16)" --horizon 10

Each command builds the world, deploys the collector stack, runs long
enough for measurements to exist, and prints what an application would
see through the Remos API.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import obs
from repro.common.errors import RemosError
from repro.common.units import MBPS, fmt_rate

#: scenario name -> description (builders resolved lazily; deployments
#: take a second or two each)
SCENARIOS = {
    "lan": "a 32-host switched LAN behind one router (hosts h0..h31)",
    "hub": "a shared-Ethernet LAN with a hub (hosts hub_h0.., sw_h0..)",
    "campus": "3 routed subnets, each a switched LAN (hosts c0h0..c2h3)",
    "wan": "3 sites joined by a WAN: cmu (10 Mbps), eth (60 Mbps), "
           "coimbra (0.3 Mbps) (hosts cmu-h0.. etc.)",
    "wireless": "3 basestations, 6 roaming hosts (wh0..), 2 wired (h0..)",
}


def _build(scenario: str):
    from repro import deploy
    from repro.netsim import builders

    if scenario.endswith(".json"):
        from pathlib import Path

        from repro.netsim.spec import network_from_json

        net = network_from_json(Path(scenario).read_text())
        return net, deploy.auto_deploy(net)
    if scenario == "lan":
        world = builders.build_switched_lan(32, fanout=8)
        return world.net, deploy.deploy_lan(world)
    if scenario == "hub":
        world = builders.build_hub_lan()
        return world.net, deploy.deploy_lan(world)
    if scenario == "campus":
        world = builders.build_campus(3, 4)
        return world.net, deploy.deploy_campus(world)
    if scenario == "wan":
        world = builders.build_multisite_wan(
            [
                builders.SiteSpec("cmu", access_bps=10 * MBPS, n_hosts=3),
                builders.SiteSpec("eth", access_bps=60 * MBPS, n_hosts=3),
                builders.SiteSpec("coimbra", access_bps=0.3 * MBPS, n_hosts=3),
            ]
        )
        return world.net, deploy.deploy_wan(world)
    if scenario == "wireless":
        wl = builders.build_wireless_lan()
        return wl.net, deploy.deploy_wireless(wl)
    raise SystemExit(f"unknown scenario {scenario!r} (see `scenarios`)")


def _host(net, name: str):
    from repro.netsim.topology import Host

    node = net.nodes.get(name)
    if not isinstance(node, Host):
        raise SystemExit(
            f"no host named {name!r}; hosts: "
            + ", ".join(sorted(n for n, d in net.nodes.items() if d.kind == "host"))
        )
    return node


def cmd_scenarios(args) -> int:
    for name, desc in SCENARIOS.items():
        print(f"{name:>9}  {desc}")
    return 0


def cmd_topology(args) -> int:
    net, dep = _build(args.scenario)
    hosts = [_host(net, h) for h in args.hosts]
    net.engine.run_until(net.now + 10.0)
    ans = dep.session().topology(
        hosts, detail="raw" if args.raw else "simplified"
    )
    graph = ans.graph
    print(f"# topology spanning {', '.join(args.hosts)}"
          f" ({'raw' if args.raw else 'simplified'})")
    if ans.degraded:
        print(f"# status: {ans.status} (data age {ans.data_age_s:.1f}s)")
        for site, st in sorted(ans.site_status.items()):
            if st.status is not None:
                print(f"#   {site}: {st.status} {st.detail}".rstrip())
    for n in graph.nodes():
        ips = f"  [{', '.join(n.ips)}]" if n.ips else ""
        print(f"node  {n.id:<28} {n.kind}{ips}")
    for e in graph.edges():
        print(
            f"edge  {e.a} -- {e.b}: {fmt_rate(e.capacity_bps)}"
            f", util {fmt_rate(e.util_ab_bps)}/{fmt_rate(e.util_ba_bps)}"
            f", {e.latency_s * 1000:.1f} ms"
        )
    return 0


def cmd_flow(args) -> int:
    net, dep = _build(args.scenario)
    session = dep.session()
    src, dst = _host(net, args.src), _host(net, args.dst)
    if args.predict:
        from repro.rps.service import RpsPredictionService

        dep.modeler.prediction_service = RpsPredictionService(args.spec)
        # build history first
        session.flow_info(src, dst)
        dep.start_monitoring()
        net.engine.run_until(net.now + 120.0)
    ans = session.flow_info(src, dst, predict=args.predict)
    print(f"flow {ans.src} -> {ans.dst}")
    if ans.degraded:
        print(f"  status    : {ans.status} (data age {ans.data_age_s:.1f}s)")
    print(f"  available : {fmt_rate(ans.available_bps)}")
    print(f"  capacity  : {fmt_rate(ans.capacity_bps)}")
    print(f"  latency   : {ans.latency_s * 1000:.1f} ms")
    print(f"  jitter    : {ans.jitter_s * 1000:.3f} ms")
    print(f"  path      : {' -> '.join(ans.path)}")
    if ans.predicted_bps is not None:
        sd = np.sqrt(max(ans.predicted_var or 0.0, 0.0))
        print(f"  forecast  : {fmt_rate(ans.predicted_bps)} (+-{fmt_rate(sd)})")
    return 0


def cmd_nodes(args) -> int:
    from repro.netsim.agents import attach_trace
    from repro.rps.hostload import host_load_trace

    net, dep = _build(args.scenario)
    hosts = [_host(net, h) for h in args.hosts]
    for i, h in enumerate(hosts):
        if h.load_source is None:
            attach_trace(h, host_load_trace(2000, seed=i), dt=1.0)
        dep.attach_host_sensor(h, args.spec)
    net.engine.run_until(net.now + 120.0)
    for ans in dep.session().node_info(hosts, predict=True):
        if ans.load is None:
            print(f"{ans.ip:>16}  no sensor ({ans.status})")
            continue
        pred = (
            f", forecast {ans.predicted_load:.2f}"
            if ans.predicted_load is not None
            else ""
        )
        print(f"{ans.ip:>16}  load {ans.load:.2f}{pred}")
    return 0


def cmd_models(args) -> int:
    import time

    from repro.rps.hostload import host_load_trace
    from repro.rps.models import parse_model

    trace = host_load_trace(1200, seed=0)
    specs = ["MEAN", "LAST", "BM(32)", "AR(16)", "MA(8)",
             "ARMA(4,4)", "ARIMA(2,1,2)", "ARFIMA(2,0)",
             "REFIT(AR(16),300)", "EXPERTS(AR(8)+BM(8)+LAST)"]
    print(f"{'spec':>26}  {'fit[us]':>9}  {'1-step forecast':>15}")
    for spec in specs:
        model = parse_model(spec)
        t0 = time.perf_counter()
        fitted = model.fit(trace[:600])
        fit_us = 1e6 * (time.perf_counter() - t0)
        fc = fitted.forecast(1)
        print(f"{spec:>26}  {fit_us:>9.0f}  {fc.values[0]:>10.3f} +-"
              f"{np.sqrt(fc.variances[0]):.3f}")
    return 0


def cmd_forecast(args) -> int:
    from repro.rps.hostload import host_load_trace
    from repro.rps.models import parse_model

    trace = host_load_trace(args.samples + args.horizon, seed=args.seed)
    fitted = parse_model(args.spec).fit(trace[: args.samples])
    fc = fitted.forecast(args.horizon)
    print(f"# {args.spec} fitted to {args.samples} synthetic load samples")
    print(f"{'h':>3}  {'forecast':>9}  {'sd':>7}  {'actual':>7}")
    for k in range(args.horizon):
        print(
            f"{k + 1:>3}  {fc.values[k]:>9.3f}  {np.sqrt(fc.variances[k]):>7.3f}"
            f"  {trace[args.samples + k]:>7.3f}"
        )
    return 0


def cmd_trace(args) -> int:
    """Render a recorded trace: waterfall, attribution, Chrome export.

    Reads any JSON file that carries spans — a flight-recorder dump, an
    ``obs.export.snapshot`` / ``to_json`` payload, or a ``BENCH_*.json``
    with an ``obs`` section.
    """
    import json
    from pathlib import Path

    from repro.obs import traceview

    try:
        data = json.loads(Path(args.file).read_text())
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.file} is not JSON: {exc}", file=sys.stderr)
        return 1
    try:
        spans = traceview.normalize_spans(data)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == args.trace_id]
        if not spans:
            print(f"error: no spans for trace {args.trace_id!r}", file=sys.stderr)
            return 1
    if args.chrome is not None:
        Path(args.chrome).write_text(
            json.dumps(traceview.to_chrome_trace(spans), indent=2) + "\n"
        )
        print(f"wrote {len(spans)} spans to {args.chrome} (chrome://tracing)")
        return 0
    if isinstance(data, dict) and data.get("reason"):
        print(f"# flight-recorder dump: {data['reason']}"
              + (f" (trace {data.get('trace_id')})" if data.get("trace_id") else ""))
    for line in traceview.waterfall_lines(spans, trace_id=args.trace_id):
        print(line)
    counters = data.get("counters", {}) if isinstance(data, dict) else {}
    if not counters and isinstance(data, dict):
        obs_part = data.get("obs")
        if isinstance(obs_part, dict):
            counters = obs_part.get("counters", {})
    print()
    print("time by layer (self time, registry clock):")
    for layer, t in traceview.time_by_layer(spans).items():
        print(f"  {layer:<24} {t * 1e3:10.3f} ms")
    by_site = traceview.time_by_site(spans)
    if by_site:
        print("time by site (fragment delegation):")
        for site, t in by_site.items():
            print(f"  {site:<24} {t * 1e3:10.3f} ms")
    counts = traceview.retry_timeout_counts(counters)
    if any(counts.values()):
        print("retries/timeouts:")
        for name, v in counts.items():
            if v:
                print(f"  {name:<32} {v:g}")
    if args.summary:
        events = data.get("events") if isinstance(data, dict) else None
        if events:
            print(f"log tail ({len(events)} events):")
            for ev in events[-args.summary_events:]:
                print(f"  [{ev.get('t_s', 0):10.3f}] {ev.get('level', '?'):<7}"
                      f" {ev.get('logger', '?')}: {ev.get('message', '')}")
    return 0


def cmd_serve(args) -> int:
    """Boot a scenario and serve the Remos query plane over HTTP."""
    import asyncio

    from repro.service import RemosService, ServiceConfig
    from repro.service.http import serve_forever

    # a live registry so GET /v1/metrics actually reports
    with obs.scoped_registry() as reg:
        net, dep = _build(args.scenario)
        reg.use_sim_clock(net.engine)
        # run the world long enough that collectors have measurements
        net.engine.run_until(net.now + args.warmup)
        config = ServiceConfig(
            rate=args.rate,
            burst=args.rate * 2,
            max_inflight=args.max_inflight,
        )
        service = RemosService.from_deployment(dep, config)
        print(
            f"# remos service: scenario={args.scenario} "
            f"http://{args.host}:{args.port}/v1 "
            f"(rate={args.rate:g}/s/tenant, max_inflight={args.max_inflight})"
        )
        try:
            asyncio.run(
                serve_forever(
                    service, args.host, args.port, tick_interval_s=args.tick
                )
            )
        except KeyboardInterrupt:
            print("# interrupted; shutting down")
    return 0


def cmd_lint(args) -> int:
    """Run remoslint (see docs/static-analysis.md)."""
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def cmd_stats(args) -> int:
    """Exercise every layer of a scenario and dump the obs registry."""
    from repro.netsim.agents import attach_trace
    from repro.rps.hostload import host_load_trace
    from repro.rps.service import RpsPredictionService

    with obs.scoped_registry() as reg:
        net, dep = _build(args.scenario)
        reg.use_sim_clock(net.engine)
        hosts = sorted(
            (h for h in net.hosts() if any(i.ip for i in h.interfaces)),
            key=lambda h: h.name,
        )
        if len(hosts) < 2:
            raise SystemExit("stats needs a scenario with at least two hosts")
        src, dst = hosts[0], hosts[1]
        for i, h in enumerate((src, dst)):
            if h.load_source is None:
                attach_trace(h, host_load_trace(2000, seed=i), dt=1.0)
            dep.attach_host_sensor(h, args.spec)
        dep.modeler.prediction_service = RpsPredictionService(args.spec)
        dep.modeler.query_cache_ttl_s = 5.0  # staleness window: one poll period
        dep.enable_streaming_prediction(args.spec)
        dep.start_monitoring()
        dep.start_benchmarks()
        net.engine.run_until(net.now + args.runtime)
        session = dep.session()
        session.topology([src, dst])
        session.topology([src, dst], detail="summary")
        session.flow_info(src, dst, predict=True)
        session.flow_info(src, dst)  # repeat inside the window: cache hit
        session.node_info([src, dst], predict=True)
        if args.format in ("json", "both"):
            print(obs.export.to_json(reg))
        if args.format in ("prom", "both"):
            print(obs.export.to_prometheus(reg))
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Remos (HPDC 2001) reproduction: query simulated worlds",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="enable debug logging on the repro logger",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list canned simulated worlds")

    tp = sub.add_parser("topology", help="virtual topology between hosts")
    tp.add_argument("scenario", help="scenario name or a topology .json spec")
    tp.add_argument("hosts", nargs="+")
    tp.add_argument("--raw", action="store_true", help="skip simplification")

    fp = sub.add_parser("flow", help="bandwidth a new flow can expect")
    fp.add_argument("scenario", help="scenario name or a topology .json spec")
    fp.add_argument("src")
    fp.add_argument("dst")
    fp.add_argument("--predict", action="store_true", help="add an RPS forecast")
    fp.add_argument("--spec", default="AR(16)", help="RPS model spec")

    np_ = sub.add_parser("nodes", help="host load (current + forecast)")
    np_.add_argument("scenario", help="scenario name or a topology .json spec")
    np_.add_argument("hosts", nargs="+")
    np_.add_argument("--spec", default="AR(16)")

    sub.add_parser("models", help="RPS model zoo with fit costs")

    fo = sub.add_parser("forecast", help="fit a model to a synthetic trace")
    fo.add_argument("--spec", default="AR(16)")
    fo.add_argument("--samples", type=int, default=600)
    fo.add_argument("--horizon", type=int, default=10)
    fo.add_argument("--seed", type=int, default=0)

    st = sub.add_parser(
        "stats", help="run a demo scenario and dump the metrics registry"
    )
    st.add_argument(
        "scenario", nargs="?", default="hub",
        help="scenario name or a topology .json spec (default: hub)",
    )
    st.add_argument(
        "--runtime", type=float, default=120.0,
        help="simulated seconds to run before dumping (default: 120)",
    )
    st.add_argument(
        "--format", choices=("json", "prom", "both"), default="both",
        help="output format (default: both)",
    )
    st.add_argument("--spec", default="AR(16)", help="RPS model spec")

    tr = sub.add_parser(
        "trace",
        help="render a recorded trace (flight-recorder dump, snapshot, "
             "or BENCH json): waterfall + latency attribution",
    )
    tr.add_argument("file", help="JSON file carrying spans")
    tr.add_argument(
        "--trace-id", default=None,
        help="restrict to one trace (e.g. t0003)",
    )
    tr.add_argument(
        "--chrome", metavar="OUT", default=None,
        help="write Chrome trace-event JSON to OUT instead of rendering",
    )
    tr.add_argument(
        "--summary", action="store_true",
        help="also print the dump's log-event tail",
    )
    tr.add_argument(
        "--summary-events", type=int, default=20,
        help="log events shown with --summary (default: 20)",
    )

    sv = sub.add_parser(
        "serve",
        help="serve the Remos query plane over HTTP (see docs/service.md)",
    )
    sv.add_argument(
        "scenario", nargs="?", default="wan",
        help="scenario name or a topology .json spec (default: wan)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8077)
    sv.add_argument(
        "--warmup", type=float, default=30.0,
        help="simulated seconds to run before serving (default: 30)",
    )
    sv.add_argument(
        "--rate", type=float, default=200.0,
        help="per-tenant request rate limit per second (default: 200)",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=64,
        help="concurrent backend calls before shedding to LKG (default: 64)",
    )
    sv.add_argument(
        "--tick", type=float, default=0.5,
        help="subscription poll interval in seconds, 0 disables (default: 0.5)",
    )

    from repro.lint.cli import configure_parser as configure_lint_parser

    configure_lint_parser(
        sub.add_parser(
            "lint",
            help="run remoslint, the repo's AST-based invariant linter",
        )
    )
    return p


COMMANDS = {
    "scenarios": cmd_scenarios,
    "topology": cmd_topology,
    "flow": cmd_flow,
    "nodes": cmd_nodes,
    "models": cmd_models,
    "forecast": cmd_forecast,
    "stats": cmd_stats,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "lint": cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.verbose:
        obs.log.configure(verbose=True)
    try:
        return COMMANDS[args.command](args)
    except RemosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
