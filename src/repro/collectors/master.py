"""Master Collector: query partitioning, delegation, and merging.

The Modeler submits one query; the Master identifies which networks —
and therefore which collectors — are involved, splits the query,
gathers the fragments, and returns a single merged topology "without
revealing that the response was obtained from multiple collectors"
(paper §2.1, §3.1.4).

* Every queried address is mapped to a registration in the
  :class:`~repro.collectors.directory.CollectorDirectory` (the SLP-like
  database).
* A site's fragment is requested from its topology collector with the
  site's border router as *anchor*, so the fragment reaches the site
  edge.
* Cross-site connectivity comes from Benchmark Collector measurements:
  each involved site pair contributes one logical edge between the two
  border routers whose capacity is the measured end-to-end throughput.
* Masters are themselves collectors, so they stack: a remote "Master"
  registered here answers for its whole site mesh (the paper's
  master-of-masters arrangement).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from typing import Any

from repro import obs
from repro.common.errors import (
    CollectorTimeoutError,
    QueryError,
    RemosError,
    UnknownHostError,
)
from repro.common.status import QueryStatus, SiteStatus, combine
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.topology import Network
from repro.collectors.base import (
    Collector,
    HistoryRequest,
    HistoryResponse,
    PairMeasurement,
    RpcCostModel,
    TopologyRequest,
    TopologyResponse,
)
from repro.collectors.directory import CollectorDirectory, Registration
from repro.modeler.graph import TopoEdge, TopoNode, TopologyGraph

log = obs.get_logger(__name__)

#: last-known-good fragment cache shapes (see MasterCollector._lkg)
LkgKey = tuple[int, tuple[str, ...]]
LkgEntry = tuple[TopologyGraph, float, dict[str, str], tuple[str, ...]]
#: (values, variances) series pair from a streaming predictor
ForecastSeries = tuple[Any, Any]


class MasterCollector(Collector):
    """See module docstring."""

    def __init__(
        self,
        name: str,
        net: Network,
        directory: CollectorDirectory,
        #: site border anchors: site -> border router address
        borders: dict[str, IPv4Address] | None = None,
        rpc_cost: RpcCostModel | None = None,
    ) -> None:
        super().__init__(name, net)
        self.directory = directory
        self.borders = {k: IPv4Address(v) for k, v in (borders or {}).items()}
        self.rpc = rpc_cost or RpcCostModel()
        #: anchor node id -> site, learned from past stitched queries,
        #: so history requests can recognise logical WAN edges
        self._anchor_sites: dict[str, str] = {}
        #: id(registration) -> sim time until which it is quarantined
        #: (delegation failed recently; skip it, re-probe after)
        self._quarantine: dict[int, float] = {}
        #: last-known-good fragments: (id(reg), requested ips) ->
        #: (graph copy, fetched_at, anchors, unresolved) — served,
        #: marked STALE, when a site stops answering
        self._lkg: dict[LkgKey, LkgEntry] = {}

    def covers(self, ip: IPv4Address) -> bool:
        try:
            self.directory.lookup(ip)
            return True
        except UnknownHostError:
            return False

    def topology(self, request: TopologyRequest) -> TopologyResponse:
        """Answer a query (partition / delegate / merge, as a span)."""
        self.check_alive()
        with obs.span("collectors.master.topology", collector=self.name):
            return self._topology(request)

    def iter_masters(self) -> Iterator[MasterCollector]:
        """This master plus any subordinate masters (sharded planes)."""
        yield self

    def invalidate_sites(self, sites: Iterable[str] | None = None) -> None:
        """Drop survival state (LKG fragments, quarantine marks) for the
        named sites — e.g. after a known topology change — or all state
        when ``sites`` is None.  The next query re-probes live."""
        if sites is None:
            dropped = len(self._lkg)
            self._lkg.clear()
            self._quarantine.clear()
        else:
            wanted = set(sites)
            doomed_regs = {
                id(reg)
                for reg in self.directory.registrations()
                if reg.site in wanted
            }
            doomed = [k for k in self._lkg if k[0] in doomed_regs]
            for key in doomed:
                del self._lkg[key]
            for rid in [r for r in self._quarantine if r in doomed_regs]:
                del self._quarantine[rid]
            dropped = len(doomed)
        if dropped:
            obs.counter("collectors.master.lkg_invalidated").inc(dropped)

    def health(self) -> dict[str, object]:
        """Backend-health snapshot for the service plane (``/v1/health``).

        Reports how much of the directory is currently answering: sites
        registered, registrations under quarantine right now, and
        last-known-good fragments held for sites that stopped
        answering.  The sharded plane extends this with per-shard
        detail.
        """
        now = float(self.net.engine.now)
        quarantined = sum(1 for until in self._quarantine.values() if until > now)
        return {
            "kind": "master",
            "name": self.name,
            "sites": len({reg.site for reg in self.directory.registrations()}),
            "quarantined": quarantined,
            "lkg_fragments": len(self._lkg),
        }

    def _topology(self, request: TopologyRequest) -> TopologyResponse:
        self.queries_served += 1
        # 1. Partition addresses by responsible registration.
        groups: dict[int, list[str]] = defaultdict(list)
        regs: dict[int, Registration] = {}
        unresolved: list[str] = []
        for ip_s in request.node_ips:
            try:
                reg = self.directory.lookup(ip_s)
            except UnknownHostError:
                unresolved.append(ip_s)
                continue
            groups[id(reg)].append(ip_s)
            regs[id(reg)] = reg

        obs.histogram("collectors.master.fanout").observe(len(groups))
        if unresolved:
            obs.counter("collectors.master.unresolved_ips").inc(len(unresolved))
        log.debug(
            "%s: partitioned %d addresses into %d site groups (%d unresolved)",
            self.name, len(request.node_ips), len(groups), len(unresolved),
        )

        merged = TopologyGraph()
        anchors: dict[str, str] = {}
        site_anchor_node: dict[str, str] = {}
        site_status: dict[str, SiteStatus] = {}
        pdu_cost = 0
        merge_wall_s = 0.0
        data_age_s = 0.0
        multi_site = len(groups) > 1 or request.anchor_sites

        # 2. Delegate each group to its collector.  Fragments go out
        # concurrently: the master pays a small serial dispatch cost per
        # fragment, then the makespan of the sub-queries on
        # ``rpc.max_parallel`` workers rather than their sum.  Each
        # delegation survives its collector: deadline, bounded retries,
        # quarantine of repeat offenders, and a None result instead of
        # an escaped exception (partial-merge semantics).
        order = sorted(groups, key=lambda k: regs[k].site)
        group_anchor: dict[int, str | None] = {}
        subs: dict[int, TopologyResponse | None] = {}
        # NB: the per-fragment dispatch cost is charged *after* the
        # fan-out (on the reply path), not before.  Charging it first
        # would shift every sub-collector's measurement instant by
        # ``dispatch_s * len(order)`` — a query-width-dependent skew
        # that makes counter windows (and thus utilization floats)
        # differ between delegation topologies serving the same query.
        # Totals are identical either way; measurement times are not.
        with self.net.engine.overlap(self.rpc.max_parallel) as ov:
            for key in order:
                reg = regs[key]
                anchor = None
                if multi_site and reg.site in self.borders:
                    anchor = str(self.borders[reg.site])
                group_anchor[key] = anchor
                with ov.task():
                    # one span per fragment delegation, labelled with
                    # the site so trace attribution can answer "which
                    # site consumed the budget"; parentage survives the
                    # overlap rewind because it is captured by span id,
                    # not reconstructed from timestamps
                    with obs.span("collectors.master.delegate", site=reg.site):
                        subs[key], site_status[reg.site] = self._delegate(
                            reg, groups[key], anchor, request
                        )
        self.net.engine.advance(self.rpc.dispatch_s * len(order))
        obs.histogram("collectors.master.overlap_saved_s").observe(ov.saved_s)

        for key in order:
            reg = regs[key]
            sub = subs[key]
            anchor = group_anchor[key]
            if sub is None:
                # delegation failed outright: the site's addresses drop
                # out of the answer, the rest of the query proceeds
                unresolved.extend(groups[key])
                continue
            t0 = obs.wall_now()
            merged.merge(sub.graph)
            merge_wall_s += obs.wall_now() - t0
            unresolved.extend(sub.unresolved)
            pdu_cost += sub.pdu_cost
            anchors.update(sub.anchors)
            data_age_s = max(data_age_s, sub.data_age_s)
            if anchor is not None and anchor in sub.anchors:
                site_anchor_node[reg.site] = sub.anchors[anchor]
                self._anchor_sites[sub.anchors[anchor]] = reg.site

        # 3. Stitch sites together with benchmark measurements (unless
        # a delegating master above claimed the stitching for itself).
        if multi_site and request.stitch:
            sites = sorted(site_anchor_node)
            for i in range(len(sites)):
                for j in range(i + 1, len(sites)):
                    a_site, b_site = sites[i], sites[j]
                    self._add_wan_edge(
                        merged,
                        a_site,
                        site_anchor_node[a_site],
                        b_site,
                        site_anchor_node[b_site],
                    )

        obs.histogram("collectors.master.merge_wall_s").observe(merge_wall_s)
        obs.histogram("collectors.master.query_pdus").observe(pdu_cost)
        unresolved_t = tuple(dict.fromkeys(unresolved))
        status = combine(s.status for s in site_status.values())
        missed = set(unresolved_t) & set(request.node_ips)
        if missed:
            if len(missed) == len(request.node_ips):
                status = QueryStatus.FAILED
            else:
                status = combine([status, QueryStatus.PARTIAL])
        return TopologyResponse(
            graph=merged,
            unresolved=unresolved_t,
            pdu_cost=pdu_cost,
            anchors=anchors,
            status=status,
            site_status=site_status,
            data_age_s=data_age_s,
        )

    # -- delegation survival -------------------------------------------

    def _survival_on(self) -> bool:
        """Is any survival machinery armed?  When not (the default),
        delegation must behave — and cost — exactly as it always has."""
        return (
            self.rpc.fragment_timeout_s > 0
            or self.rpc.fragment_retries > 0
            or self.rpc.quarantine_s > 0
            or getattr(self.net, "faults", None) is not None
        )

    def _delegate(
        self,
        reg: Registration,
        ips: list[str],
        anchor: str | None,
        request: TopologyRequest,
    ) -> tuple[TopologyResponse | None, SiteStatus]:
        """One fragment delegation, with deadline / retries / quarantine.

        Returns ``(response, site status)``; the response is None when
        the collector could not answer and no last-known-good fragment
        exists — the caller merges what it got (partial semantics)
        instead of aborting the whole query.
        """
        engine = self.net.engine
        sub_request = TopologyRequest(
            tuple(ips),
            include_dynamics=request.include_dynamics,
            anchor_ip=anchor,
        )
        survival = self._survival_on()
        until = self._quarantine.get(id(reg), 0.0)
        if survival and engine.now < until:
            # known-dead collector: fail fast without an RPC, re-probe
            # only once the quarantine lapses
            obs.counter("collectors.master.quarantine_skips").inc()
            stat = SiteStatus(
                reg.site, QueryStatus.FAILED, detail="quarantined", attempts=0
            )
            return self._serve_lkg(reg, ips, stat)

        deadline = self.rpc.fragment_timeout_s
        attempts = 1 + (self.rpc.fragment_retries if survival else 0)
        last_err: Exception | None = None
        for attempt in range(attempts):
            if attempt > 0:
                obs.counter("collectors.master.fragment_retries").inc()
                engine.advance(self.rpc.fragment_backoff_s)
            t0 = engine.now
            engine.advance(self.rpc.remote_s if reg.remote else self.rpc.local_s)
            try:
                sub = reg.collector.topology(sub_request)
            except RemosError as exc:
                if deadline > 0:
                    # the master stopped waiting at the deadline even
                    # if the collector burned longer before failing
                    engine.cap_since(t0, deadline)
                last_err = exc
                continue
            except Exception as exc:  # collector bug: contain, don't abort
                log.warning("%s: collector %s raised %r", self.name, reg.collector, exc)
                last_err = exc
                continue
            if deadline > 0 and engine.cap_since(t0, deadline):
                # answer arrived after the master gave up: discard it
                obs.counter("master.fragment_timeouts").inc()
                last_err = CollectorTimeoutError(
                    f"fragment for site {reg.site} exceeded {deadline}s deadline"
                )
                continue
            if survival:
                self._lkg[(id(reg), tuple(sorted(ips)))] = (
                    sub.graph.copy(),
                    engine.now,
                    dict(sub.anchors),
                    tuple(sub.unresolved),
                )
            self._quarantine.pop(id(reg), None)
            return sub, SiteStatus(
                reg.site, sub.status,
                data_age_s=sub.data_age_s, attempts=attempt + 1,
            )

        if survival and self.rpc.quarantine_s > 0:
            self._quarantine[id(reg)] = engine.now + self.rpc.quarantine_s
        if isinstance(last_err, RemosError):
            detail = str(last_err)
        else:
            detail = f"collector error: {last_err!r}"
        log.debug("%s: site %s failed after %d attempts: %s",
                  self.name, reg.site, attempts, detail)
        stat = SiteStatus(
            reg.site, QueryStatus.FAILED, detail=detail, attempts=attempts
        )
        return self._serve_lkg(reg, ips, stat)

    def _serve_lkg(
        self, reg: Registration, ips: list[str], stat: SiteStatus
    ) -> tuple[TopologyResponse | None, SiteStatus]:
        """Fall back to the site's last-known-good fragment, if any.

        The stored graph is copied on the way out so callers mutating
        the merged answer (own-flow crediting) cannot corrupt the
        cache; status becomes STALE with the fragment's true age.
        """
        entry = self._lkg.get((id(reg), tuple(sorted(ips))))
        if entry is None:
            return None, stat
        graph, fetched_at, lkg_anchors, lkg_unresolved = entry
        obs.counter("collectors.master.lkg_served").inc()
        age = self.net.now - fetched_at
        stat.status = QueryStatus.STALE
        stat.data_age_s = age
        return (
            TopologyResponse(
                graph=graph.copy(),
                unresolved=lkg_unresolved,
                pdu_cost=0,
                anchors=dict(lkg_anchors),
                status=QueryStatus.STALE,
                data_age_s=age,
            ),
            stat,
        )

    def _measure_direction(self, src_site: str, dst_site: str) -> PairMeasurement | None:
        """Benchmark measurement src -> dst, if a collector provides it."""
        bench = self.directory.benchmark_for(src_site)
        if bench is None or dst_site not in bench.peers:
            return None
        self.net.engine.advance(self.rpc.local_s)
        try:
            return bench.measurement(dst_site)
        except QueryError:
            return None

    def _add_wan_edge(
        self,
        graph: TopologyGraph,
        a_site: str,
        a_node: str,
        b_site: str,
        b_node: str,
    ) -> None:
        """One logical edge carrying the measured site-to-site bandwidth.

        Bandwidth is direction-specific (access links are loaded
        asymmetrically), so both directions are measured and encoded as
        directional utilization on the logical edge: the residual seen
        from each end equals that direction's measured throughput.
        """
        if not graph.has_node(a_node) or not graph.has_node(b_node):
            # Either anchor failed to materialise in the merged graph,
            # so no edge could be attached: skip the measurements (and
            # their RPC cost) outright instead of probing first.
            log.debug("anchor missing for %s--%s, skipping probe", a_site, b_site)
            return
        m_ab = self._measure_direction(a_site, b_site)
        m_ba = self._measure_direction(b_site, a_site)
        if m_ab is None and m_ba is None:
            log.debug("no benchmark data between %s and %s", a_site, b_site)
            return  # no measurement available: sites stay unstitched
        obs.counter("collectors.master.wan_edges").inc()
        ab = m_ab.throughput_bps if m_ab else m_ba.throughput_bps
        ba = m_ba.throughput_bps if m_ba else m_ab.throughput_bps
        rtts = [m.rtt_s for m in (m_ab, m_ba) if m is not None and m.rtt_s > 0]
        latency = max(rtts) / 2.0 if rtts else 0.05
        cap = max(ab, ba)
        graph.add_edge(
            TopoEdge(
                a_node,
                b_node,
                capacity_bps=cap,
                util_ab_bps=cap - ab,
                util_ba_bps=cap - ba,
                latency_s=latency,
            )
        )

    def history(self, request: HistoryRequest) -> HistoryResponse | None:
        """Measurement history for an edge: delegate to whichever
        collector monitors it, or serve benchmark history for logical
        WAN edges between site anchors."""
        with obs.span("collectors.master.history", collector=self.name):
            return self._history(request)

    def _history(self, request: HistoryRequest) -> HistoryResponse | None:
        # logical WAN edge between two known site anchors?
        a_site = self._anchor_sites.get(request.edge_a)
        b_site = self._anchor_sites.get(request.edge_b)
        if a_site and b_site and a_site != b_site:
            bench = self.directory.benchmark_for(a_site)
            if bench is not None and b_site in bench.peers:
                self.net.engine.advance(self.rpc.local_s)
                hist = bench.history.get(b_site)
                if hist:
                    n = min(request.max_samples, len(hist))
                    recent = list(hist)[-n:]
                    return HistoryResponse(
                        "available",
                        tuple(m.measured_at for m in recent),
                        tuple(m.throughput_bps for m in recent),
                    )
            return None
        # Fan the scan out: the probes are independent, so charge the
        # overlapped cost of the collectors asked, not their sum.
        found: HistoryResponse | None = None
        with self.net.engine.overlap(self.rpc.max_parallel) as ov:
            for reg in self.directory.registrations():
                with ov.task():
                    self.net.engine.advance(
                        self.rpc.remote_s if reg.remote else self.rpc.local_s
                    )
                    try:
                        found = reg.collector.history(request)
                    except RemosError:
                        found = None  # collector down: ask the others
                if found is not None:
                    break
        return found

    def supports_forecast(self) -> bool:
        """Cheap capability probe: can any downstream collector serve a
        streaming forecast right now?  Costs no simulated time — the
        master knows this from registration state."""
        for reg in self.directory.registrations():
            if getattr(reg.collector, "forecast_edge", None) is None:
                continue
            probe = getattr(reg.collector, "supports_forecast", None)
            if probe is None or probe():
                return True
        return False

    def forecast_edge(
        self, request: HistoryRequest, horizon: int
    ) -> ForecastSeries | None:
        """Streaming forecast from whichever collector predicts the
        edge (the §2.3 shared-prediction path); None when no streaming
        predictor covers it."""
        out: ForecastSeries | None = None
        with self.net.engine.overlap(self.rpc.max_parallel) as ov:
            for reg in self.directory.registrations():
                fn = getattr(reg.collector, "forecast_edge", None)
                if fn is None:
                    continue
                probe = getattr(reg.collector, "supports_forecast", None)
                if probe is not None and not probe():
                    # no streaming predictor behind this registration:
                    # there is no call to make, so charge no RPC
                    continue
                with ov.task():
                    self.net.engine.advance(
                        self.rpc.remote_s if reg.remote else self.rpc.local_s
                    )
                    try:
                        out = fn(request, horizon)
                    except RemosError:
                        out = None  # collector down: ask the others
                if out is not None:
                    break
        return out

    # -- site statistics (Table 1 support) ------------------------------

    def site_bandwidth_stats(self, from_site: str, to_site: str) -> tuple[float, float, int]:
        """(mean, stddev, n) of benchmark history between two sites."""
        bench = self.directory.benchmark_for(from_site)
        if bench is None:
            raise QueryError(f"no benchmark collector at {from_site}")
        return bench.statistics(to_site)
