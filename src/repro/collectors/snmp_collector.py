"""SNMP Collector: L3 topology discovery and utilization monitoring.

The basic collector the whole system relies on (paper §3.1.1).  On a
query it:

1. **Discovers routes** hop-by-hop: starting from each host's
   configured gateway, it walks router ``ipRouteTable`` s over SNMP and
   does its own longest-prefix matching, following ``ipRouteNextHop``
   until it reaches a directly attached destination.  Route tables are
   cached per router, so later queries only follow *new* routes.
2. **Expands L2 segments**: inside a subnet it asks the site's Bridge
   Collector for the switch-level path; shared segments and subnets
   without bridge data become *virtual switches*.
3. **Monitors utilization**: every discovered link joins the periodic
   polling set (default every 5 s) and keeps a counter history; a query
   that needs dynamics on an unmonitored link takes two samples one
   ``cold_sample_gap_s`` apart — part of the cold-query cost in Fig. 3.

All SNMP and CPU costs are charged to the simulation clock, so query
response time is measured the same way the paper measures it.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro import obs
from repro.common.errors import (
    AgentUnreachableError,
    AuthorizationError,
    QueryError,
    SnmpError,
    TopologyError,
    UnknownHostError,
)
from repro.common.status import QueryStatus
from repro.netsim.address import IPv4Address, IPv4Network, MacAddress
from repro.netsim.topology import Network
from repro.snmp import oid as O
from repro.snmp.agent import SnmpWorld
from repro.snmp.client import SnmpClient, SnmpCostModel
from repro.collectors.base import (
    Collector,
    HistoryRequest,
    HistoryResponse,
    TopologyRequest,
    TopologyResponse,
)
from repro.collectors.bridge_collector import BridgeCollector
from repro.collectors.monitor import LinkMonitor, MonitorKey
from repro.modeler.graph import (
    CLOUD,
    HOST,
    ROUTER,
    SWITCH,
    VSWITCH,
    TopoEdge,
    TopoNode,
    TopologyGraph,
)

#: bound on L3 hops followed per path (routing loop guard)
MAX_L3_HOPS = 32

log = obs.get_logger(__name__)


@dataclass
class SnmpCollectorConfig:
    """Static configuration handed to a collector at deployment."""

    #: address space this collector is responsible for
    domains: list[IPv4Network]
    #: (subnet, gateway router address) pairs — "the routers the nodes
    #: are configured to use"
    gateways: list[tuple[IPv4Network, IPv4Address]]
    poll_interval_s: float = 5.0
    #: gap between the two bootstrap samples of a cold link
    cold_sample_gap_s: float = 1.0
    #: local processing charged per node pair during topology assembly
    cpu_per_pair_s: float = 2e-6
    history_len: int = 720

    def gateway_for(self, ip: IPv4Address) -> tuple[IPv4Network, IPv4Address] | None:
        best: tuple[IPv4Network, IPv4Address] | None = None
        for subnet, gw in self.gateways:
            if ip in subnet and (best is None or subnet.prefixlen > best[0].prefixlen):
                best = (subnet, gw)
        return best


@dataclass
class _RouteEntry:
    prefix: IPv4Network
    next_hop: IPv4Address | None  # None = directly attached
    ifindex: int


@dataclass
class _EdgeRec:
    """One discovered link: endpoints plus where to poll its counters.

    ``owner_id`` is the endpoint whose device owns the monitored
    interface, so out-octets map to traffic *from* that endpoint.
    ``key`` is None for edges with nothing to poll (virtual elements).
    """

    a: str
    b: str
    key: MonitorKey | None
    owner_id: str
    capacity_bps: float
    latency_s: float = 0.0005


@dataclass
class _PathRec:
    """Cached discovery result for one host pair."""

    nodes: list[TopoNode]
    edges: list[_EdgeRec]


class SnmpCollector(Collector):
    """See module docstring."""

    def __init__(
        self,
        name: str,
        net: Network,
        world: SnmpWorld,
        source_ip: IPv4Address | str,
        config: SnmpCollectorConfig,
        bridge_collectors: dict[IPv4Network, BridgeCollector] | None = None,
        community: str = "public",
        snmp_cost: SnmpCostModel | None = None,
    ) -> None:
        super().__init__(name, net)
        self.world = world
        self.client = SnmpClient(world, source_ip, community, snmp_cost)
        self.config = config
        self.bridges = dict(bridge_collectors or {})
        # -- caches ----------------------------------------------------
        self._route_tables: dict[str, list[_RouteEntry]] = {}
        self._sys_names: dict[str, str] = {}
        self._if_speeds: dict[tuple[str, int], float] = {}
        self._if_macs: dict[tuple[str, int], MacAddress | None] = {}
        self._arp: dict[IPv4Network, dict[str, MacAddress | None]] = {}
        self._paths: dict[tuple[str, str], _PathRec] = {}
        self._unreachable_routers: set[str] = set()
        # -- monitoring ---------------------------------------------------
        self.monitors: dict[MonitorKey, LinkMonitor] = {}
        self._poll_timer = None
        self.polls_done = 0
        #: callbacks run after every polling sweep (streaming predictors)
        self.post_poll_hooks: list = []
        #: attached StreamingPredictionManager, if any
        self.streaming = None

    # ------------------------------------------------------------------
    # Collector interface
    # ------------------------------------------------------------------

    def covers(self, ip: IPv4Address) -> bool:
        return any(ip in d for d in self.config.domains)

    def topology(self, request: TopologyRequest) -> TopologyResponse:
        """Answer a topology query (latency recorded as a span)."""
        with obs.span("collectors.snmp.topology", collector=self.name):
            return self._topology(request)

    def _topology(self, request: TopologyRequest) -> TopologyResponse:
        """Discover (or replay from cache) the topology spanning the
        requested hosts and annotate it with current dynamics.

        Same-subnet pairs are answered by joining cached host-to-gateway
        paths at their meet point (the "path between a node and the edge
        router" service of §3.1.2) — the optimization the paper credits
        for taming the O(N²) cold-query cost at large N.  Monitors whose
        last sample is older than the polling interval are refreshed
        with one sample per link, so a warm query costs O(links) PDUs.
        """
        self.check_alive()
        self.queries_served += 1
        pdus_before = self.client.pdu_count
        ips = [IPv4Address(s) for s in request.node_ips]
        unresolved: list[str] = []
        anchors: dict[str, str] = {}
        graph = TopologyGraph()
        pairs: list[tuple[IPv4Address, IPv4Address, bool]] = [
            (ips[i], ips[j], False)
            for i in range(len(ips))
            for j in range(i + 1, len(ips))
        ]
        if request.anchor_ip is not None:
            a_ip = IPv4Address(request.anchor_ip)
            pairs.extend((ip, a_ip, True) for ip in ips if ip != a_ip)
            try:
                anchors[request.anchor_ip] = self._sys_name(request.anchor_ip)
            except SnmpError:
                pass
        if len(ips) == 1 and not pairs:
            # single-node query: still resolve the host itself
            try:
                self._add_host_only(graph, ips[0])
            except (SnmpError, TopologyError, QueryError):
                unresolved.append(str(ips[0]))

        recs: list[_PathRec] = []
        for src, dst, dst_is_router in pairs:
            self.net.engine.advance(self.config.cpu_per_pair_s)
            try:
                rec = self._route_pair(src, dst, dst_is_router)
            except (SnmpError, TopologyError, QueryError):
                # the anchor is the site gateway, not a requested node —
                # a failed anchor pair leaves only src uncovered
                failed = (src,) if dst_is_router else (src, dst)
                unresolved.extend(str(ip) for ip in failed)
                continue
            recs.append(rec)

        # Gather monitors: brand-new links need two bootstrap samples,
        # known-but-stale links one refresh sample.
        fresh_keys: set[MonitorKey] = set()
        stale_keys: set[MonitorKey] = set()
        if request.include_dynamics:
            seen_keys: set[MonitorKey] = set()
            for rec in recs:
                for er in rec.edges:
                    key = er.key
                    if key is None or key in seen_keys:
                        continue
                    seen_keys.add(key)
                    mon = self.monitors.get(key)
                    if mon is None:
                        self.monitors[key] = LinkMonitor(key, self.config.history_len)
                        fresh_keys.add(key)
                    elif (
                        not mon.samples
                        or self.net.now - mon.samples[-1][0]
                        > self.config.poll_interval_s
                    ):
                        stale_keys.add(key)
            if fresh_keys:
                self._bootstrap_monitors(fresh_keys)
            if stale_keys:
                self._sample_monitors(stale_keys)

        # Assemble the response graph, deduplicating shared node and
        # edge record objects (root paths are shared across pair joins,
        # so identity covers most repeats).
        seen_edges: set[int] = set()
        seen_nodes: set[int] = set()
        data_age_s = 0.0
        for rec in recs:
            for node in rec.nodes:
                if id(node) in seen_nodes:
                    continue
                seen_nodes.add(id(node))
                graph.add_node(node)
            for er in rec.edges:
                if id(er) in seen_edges:
                    continue
                seen_edges.add(id(er))
                util_ab = util_ba = jitter = 0.0
                if request.include_dynamics and er.key is not None:
                    mon = self.monitors.get(er.key)
                    if mon is not None and mon.ready:
                        in_bps, out_bps = mon.rates_bps()
                        # out-octets leave the owner's device
                        if er.owner_id == er.a:
                            util_ab, util_ba = out_bps, in_bps
                        else:
                            util_ab, util_ba = in_bps, out_bps
                        jitter = mon.jitter_estimate(er.capacity_bps, er.latency_s)
                        data_age_s = max(
                            data_age_s, self.net.now - mon.samples[-1][0]
                        )
                graph.add_edge(
                    TopoEdge(
                        er.a, er.b, er.capacity_bps, util_ab, util_ba,
                        er.latency_s, jitter,
                    )
                )
        # a host that failed one pair may have resolved through another
        unresolved = tuple(
            ip for ip in dict.fromkeys(unresolved) if not graph.has_node(ip)
        )
        return TopologyResponse(
            graph=graph,
            unresolved=unresolved,
            pdu_cost=self.client.pdu_count - pdus_before,
            anchors=anchors,
            status=self._status_of(request, unresolved, data_age_s),
            data_age_s=data_age_s,
        )

    def _status_of(
        self,
        request: TopologyRequest,
        unresolved: tuple[str, ...],
        data_age_s: float,
    ) -> QueryStatus:
        """Fragment quality: FAILED when nothing resolved, PARTIAL when
        some hosts dropped out, STALE when the served dynamics are
        meaningfully older than one polling interval."""
        missed = set(unresolved) & set(request.node_ips)
        if missed:
            if len(missed) == len(request.node_ips):
                return QueryStatus.FAILED
            return QueryStatus.PARTIAL
        if data_age_s > 1.5 * self.config.poll_interval_s:
            return QueryStatus.STALE
        return QueryStatus.OK

    def _route_pair(
        self, src: IPv4Address, dst: IPv4Address, dst_is_router: bool
    ) -> _PathRec:
        """Path record for one pair, via the cheapest applicable route."""
        if dst_is_router:
            return self._path_record(src, dst, dst_is_router=True)
        src_loc = self.config.gateway_for(src)
        dst_loc = self.config.gateway_for(dst)
        if (
            src_loc is not None
            and dst_loc is not None
            and src_loc[0] == dst_loc[0]
            and src_loc[1] == dst_loc[1]
        ):
            return self._join_same_subnet(src, dst, src_loc[1])
        return self._path_record(src, dst)

    def _join_same_subnet(
        self, src: IPv4Address, dst: IPv4Address, gateway: IPv4Address
    ) -> _PathRec:
        """Join two cached host-to-gateway paths at their meet point.

        Only the per-host root paths are cached (O(hosts) memory); the
        joined pair path is rebuilt per query, sharing the underlying
        edge records so monitors and graph assembly deduplicate.
        """
        rec_a = self._path_record(src, gateway, dst_is_router=True)
        rec_b = self._path_record(dst, gateway, dst_is_router=True)
        na, nb = rec_a.nodes, rec_b.nodes
        i, j = len(na) - 1, len(nb) - 1
        while i > 0 and j > 0 and na[i - 1].id == nb[j - 1].id:
            i -= 1
            j -= 1
        nodes = na[: i + 1] + nb[:j][::-1]
        edges = rec_a.edges[:i] + rec_b.edges[:j][::-1]
        return _PathRec(nodes, edges)

    def history(self, request: HistoryRequest) -> HistoryResponse | None:
        """Utilization history of a discovered edge.

        The series is the per-polling-interval counter rate in the
        requested direction — what the paper's planned XML protocol
        ships to the RPS subsystem for prediction.
        """
        with obs.span("collectors.snmp.history", collector=self.name):
            self.check_alive()
            return self._history(request)

    def _history(self, request: HistoryRequest) -> HistoryResponse | None:
        for rec in self._paths.values():
            for er in rec.edges:
                if er.key is None or {er.a, er.b} != {request.edge_a, request.edge_b}:
                    continue
                mon = self.monitors.get(er.key)
                if mon is None or not mon.ready:
                    continue
                direction = "out" if er.owner_id == request.edge_a else "in"
                times, rates = mon.rate_history(direction)
                if times.size == 0:
                    continue
                n = min(request.max_samples, times.size)
                return HistoryResponse(
                    "utilization",
                    tuple(float(t) for t in times[-n:]),
                    tuple(float(r) for r in rates[-n:]),
                )
        return None

    # ------------------------------------------------------------------
    # Cache control (experiment support)
    # ------------------------------------------------------------------

    def flush_caches(self, keep_fraction: float = 0.0) -> None:
        """Drop cached discovery state.

        ``keep_fraction`` keeps the first fraction of cached path
        records — the paper's "Mixed" scenario where the previous query
        left roughly 1/2 or 1/3 of the data cached.
        """
        obs.counter("collectors.snmp.cache_flush", collector=self.name).inc()
        log.debug(
            "%s: flushing caches (keep_fraction=%.2f, %d paths)",
            self.name, keep_fraction, len(self._paths),
        )
        if keep_fraction <= 0.0:
            self._paths.clear()
            self._route_tables.clear()
            self._arp.clear()
            self._if_speeds.clear()
            self._if_macs.clear()
            self._sys_names.clear()
            self.monitors.clear()
        else:
            items = sorted(self._paths.items())
            keep = int(len(items) * keep_fraction)
            self._paths = dict(items[:keep])
            kept_keys = {
                er.key for _, rec in items[:keep] for er in rec.edges if er.key
            }
            self.monitors = {
                k: m for k, m in self.monitors.items() if k in kept_keys
            }
            # Fine-grained caches follow the kept records, so the
            # dropped fraction genuinely pays rediscovery again.
            kept_srcs = {src for (src, _dst) in self._paths}
            self._arp = {
                subnet: {ip: mac for ip, mac in table.items() if ip in kept_srcs}
                for subnet, table in self._arp.items()
            }
            kept_pairs = {(k.agent_ip, k.ifindex) for k in kept_keys}
            self._if_speeds = {
                k: v for k, v in self._if_speeds.items() if k in kept_pairs
            }
            self._if_macs = {
                k: v for k, v in self._if_macs.items() if k in kept_pairs
            }

    def flush_dynamics(self) -> None:
        """Drop all counter history but keep discovered topology.

        The Fig. 3 "Warm-Bridge" scenario: static structure is cached
        (the bridge database did not change) but every link's dynamic
        data must be re-bootstrapped.
        """
        self.monitors.clear()

    # ------------------------------------------------------------------
    # Periodic polling
    # ------------------------------------------------------------------

    def start_monitoring(self) -> None:
        """Begin periodic polling of every monitored link."""
        if self._poll_timer is None:
            self._poll_timer = self.net.engine.every(
                self.config.poll_interval_s, self.poll_once
            )

    def stop_monitoring(self) -> None:
        if self._poll_timer is not None:
            self._poll_timer.cancel()
            self._poll_timer = None

    def poll_once(self) -> None:
        """Sample every monitor once (one polling sweep, batched)."""
        if self.crashed_until is not None and self.net.now < self.crashed_until:
            return  # a crashed collector's poller is down with it
        with obs.span("collectors.snmp.poll", collector=self.name):
            self._sample_monitors(self.monitors)
            self.polls_done += 1
            for hook in self.post_poll_hooks:
                hook()
        obs.counter("collectors.snmp.polls", collector=self.name).inc()
        obs.gauge("collectors.snmp.monitored_links", collector=self.name).set(
            len(self.monitors)
        )
        obs.gauge("collectors.snmp.poll.staleness_s", collector=self.name).set(
            self.staleness_s()
        )

    def staleness_s(self) -> float:
        """Age of the oldest monitor's newest sample (0 when idle).

        The paper's polling-staleness concern: how out-of-date is the
        most neglected link's dynamic data right now?
        """
        now = self.net.now
        ages = [
            now - mon.samples[-1][0]
            for mon in self.monitors.values()
            if mon.samples
        ]
        return max(ages) if ages else 0.0

    def supports_forecast(self) -> bool:
        """Whether :meth:`forecast_edge` could answer at all (lets the
        Master skip the RPC when there is no streaming predictor)."""
        return self.streaming is not None

    def forecast_edge(self, request: HistoryRequest, horizon: int):
        """Streaming forecast for an edge, if a prediction manager is
        attached and has seen enough samples (None otherwise)."""
        if self.streaming is None:
            return None
        return self.streaming.forecast_edge(request, horizon)

    def _sample_monitors(self, keys) -> None:
        """Sample the given monitors, one multi-varbind GET per agent.

        All links behind one agent coalesce into a single PDU per
        sweep (one round-trip for 2N counters) instead of one PDU per
        link.  A dead or refusing agent fails all of its monitors at
        the cost of one timeout; any other SNMP error (e.g. an
        interface that vanished after a MIB refresh) falls back to
        per-link sampling so one bad OID cannot starve its neighbours.
        """
        by_agent: dict[str, list[MonitorKey]] = defaultdict(list)
        for key in keys:
            by_agent[key.agent_ip].append(key)
        for agent_ip in sorted(by_agent):
            group = sorted(by_agent[agent_ip], key=lambda k: k.ifindex)
            obs.histogram("collectors.snmp.poll.batch_links").observe(len(group))
            oids = [
                oid
                for k in group
                for oid in (O.IF_IN_OCTETS + k.ifindex, O.IF_OUT_OCTETS + k.ifindex)
            ]
            try:
                values = self.client.get_many(agent_ip, oids)
            except (AgentUnreachableError, AuthorizationError):
                for k in group:
                    self.monitors[k].sample_failures += 1
                continue
            except SnmpError:
                for k in group:
                    self.monitors[k].sample(self.client, self.net.now)
                continue
            now = self.net.now
            for k, inb, outb in zip(group, values[0::2], values[1::2]):
                self.monitors[k].record(now, float(inb), float(outb))

    def _bootstrap_monitors(self, keys: set[MonitorKey]) -> None:
        """Cold links need two samples before they can report a rate."""
        obs.counter("collectors.snmp.monitors_bootstrapped").inc(len(keys))
        self._sample_monitors(keys)
        self.net.engine.advance(self.config.cold_sample_gap_s)
        self._sample_monitors(keys)

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------

    def _route_table(self, router_ip: str) -> list[_RouteEntry]:
        """The router's full table, walked once and cached.

        Prefers the RFC 2096 ipCidrRouteTable (its index carries the
        mask, so overlapping prefixes survive); falls back to the
        classic ipRouteTable for old agents that never implemented it —
        the §6.2 "non-standard SNMP implementations" reality.
        """
        if router_ip in self._route_tables:
            obs.counter("collectors.snmp.route_cache", result="hit").inc()
            return self._route_tables[router_ip]
        if router_ip in self._unreachable_routers:
            raise QueryError(f"router {router_ip} known unreachable")
        obs.counter("collectors.snmp.route_cache", result="miss").inc()
        try:
            entries = self._walk_cidr_routes(router_ip)
            if not entries:
                entries = self._walk_legacy_routes(router_ip)
        except SnmpError:
            self._unreachable_routers.add(router_ip)
            log.debug("router %s unreachable during route walk", router_ip)
            raise
        self._route_tables[router_ip] = entries
        return entries

    def _walk_cidr_routes(self, router_ip: str) -> list[_RouteEntry]:
        ifidx = self.client.table_column(router_ip, O.IP_CIDR_ROUTE_IF_INDEX)
        types = self.client.table_column(router_ip, O.IP_CIDR_ROUTE_TYPE)
        entries: list[_RouteEntry] = []
        for suffix, idx in ifidx.items():
            if len(suffix) != 13:
                continue  # malformed row on a buggy agent: skip
            dest = bytes_tuple_to_ip(suffix[0:4])
            mask = IPv4Address(bytes_tuple_to_ip(suffix[4:8]))
            hop = IPv4Address(bytes_tuple_to_ip(suffix[9:13]))
            prefixlen = bin(mask.value).count("1")
            prefix = IPv4Network(dest, prefixlen)
            local = types.get(suffix) == O.CIDR_TYPE_LOCAL
            entries.append(
                _RouteEntry(prefix, None if local else hop, int(idx))
            )
        return entries

    def _walk_legacy_routes(self, router_ip: str) -> list[_RouteEntry]:
        hops = self.client.table_column(router_ip, O.IP_ROUTE_NEXT_HOP)
        masks = self.client.table_column(router_ip, O.IP_ROUTE_MASK)
        ifidx = self.client.table_column(router_ip, O.IP_ROUTE_IF_INDEX)
        types = self.client.table_column(router_ip, O.IP_ROUTE_TYPE)
        entries: list[_RouteEntry] = []
        for suffix, hop in hops.items():
            mask = masks.get(suffix)
            idx = ifidx.get(suffix)
            rtype = types.get(suffix)
            if mask is None or idx is None:
                continue
            dest = IPv4Address(bytes_tuple_to_ip(suffix))
            prefixlen = bin(IPv4Address(mask).value).count("1")
            prefix = IPv4Network(str(dest), prefixlen)
            next_hop = None if rtype == O.ROUTE_TYPE_DIRECT else IPv4Address(hop)
            entries.append(_RouteEntry(prefix, next_hop, int(idx)))
        return entries

    def _lpm(self, router_ip: str, dst: IPv4Address) -> _RouteEntry:
        best: _RouteEntry | None = None
        for e in self._route_table(router_ip):
            if dst in e.prefix and (best is None or e.prefix.prefixlen > best.prefix.prefixlen):
                best = e
        if best is None:
            raise QueryError(f"router {router_ip} has no route to {dst}")
        return best

    def _sys_name(self, agent_ip: str) -> str:
        if agent_ip not in self._sys_names:
            self._sys_names[agent_ip] = str(self.client.get(agent_ip, O.SYS_NAME))
        return self._sys_names[agent_ip]

    def _if_speed(self, agent_ip: str, ifindex: int) -> float:
        key = (agent_ip, ifindex)
        if key not in self._if_speeds:
            self._if_speeds[key] = float(self.client.get(agent_ip, O.IF_SPEED + ifindex))
        return self._if_speeds[key]

    def _if_mac(self, agent_ip: str, ifindex: int) -> MacAddress | None:
        key = (agent_ip, ifindex)
        if key not in self._if_macs:
            try:
                self._if_macs[key] = MacAddress(
                    str(self.client.get(agent_ip, O.IF_PHYS_ADDRESS + ifindex))
                )
            except (SnmpError, ValueError):
                self._if_macs[key] = None
        return self._if_macs[key]

    def _station_mac_lookup(
        self, subnet: IPv4Network, gateway_ip: IPv4Address, ip: IPv4Address
    ) -> MacAddress | None:
        """One host's MAC from the gateway's ARP row (exact GET, cached).

        ipNetToMediaPhysAddress is indexed by (ifIndex, IP), and the
        collector already knows the gateway's interface on the subnet
        from its route table, so resolution is a single PDU per host.
        """
        cache = self._arp.setdefault(subnet, {})
        key = str(ip)
        if key not in cache:
            try:
                ifindex = self._iface_on_subnet(str(gateway_ip), subnet)
                mac_str = self.client.get(
                    str(gateway_ip),
                    O.IP_NET_TO_MEDIA_PHYS_ADDRESS + (ifindex,) + ip.octets(),
                )
                cache[key] = MacAddress(str(mac_str))
            except (SnmpError, ValueError, QueryError):
                cache[key] = None
        return cache[key]

    # ------------------------------------------------------------------
    # Path assembly
    # ------------------------------------------------------------------

    def _host_known(self, graph: TopologyGraph, ip: IPv4Address) -> bool:
        return graph.has_node(str(ip))

    def _add_host_only(self, graph: TopologyGraph, ip: IPv4Address) -> None:
        loc = self.config.gateway_for(ip)
        if loc is None:
            raise UnknownHostError(str(ip))
        graph.add_node(TopoNode(str(ip), HOST, (str(ip),)))

    def _path_record(
        self, src: IPv4Address, dst: IPv4Address, dst_is_router: bool = False
    ) -> _PathRec:
        cache_key = (str(src), str(dst))
        rev_key = (str(dst), str(src))
        if cache_key in self._paths:
            obs.counter("collectors.snmp.path_cache", result="hit").inc()
            return self._paths[cache_key]
        if not dst_is_router and rev_key in self._paths:
            obs.counter("collectors.snmp.path_cache", result="hit").inc()
            return self._paths[rev_key]
        obs.counter("collectors.snmp.path_cache", result="miss").inc()
        rec = self._discover(src, dst, dst_is_router)
        self._paths[cache_key] = rec
        return rec

    def _discover(
        self, src: IPv4Address, dst: IPv4Address, dst_is_router: bool = False
    ) -> _PathRec:
        """Hop-by-hop discovery of the src->dst path."""
        src_loc = self.config.gateway_for(src)
        if src_loc is None:
            raise UnknownHostError(f"{src} is outside this collector's networks")
        if dst_is_router:
            return self._discover_to_router(src, dst, src_loc)
        dst_loc = self.config.gateway_for(dst)
        if dst_loc is None:
            raise UnknownHostError(f"{dst} is outside this collector's networks")

        nodes: list[TopoNode] = [TopoNode(str(src), HOST, (str(src),))]
        edges: list[_EdgeRec] = []

        src_subnet, src_gw = src_loc
        dst_subnet, dst_gw = dst_loc

        if dst in src_subnet:
            # Same subnet: pure L2 path.
            self._expand_l2(
                nodes, edges, src_subnet, src_gw,
                a_id=str(src), a_mac=self._station_mac(src_subnet, src_gw, src),
                b_id=str(dst), b_mac=self._station_mac(src_subnet, src_gw, dst),
            )
            nodes.append(TopoNode(str(dst), HOST, (str(dst),)))
            return _PathRec(nodes, edges)

        # First hop: src -> its gateway across the source subnet.
        gw_ip = str(src_gw)
        gw_name = self._sys_name(gw_ip)
        gw_entry_iface = self._iface_on_subnet(gw_ip, src_subnet)
        self._expand_l2(
            nodes, edges, src_subnet, src_gw,
            a_id=str(src), a_mac=self._station_mac(src_subnet, src_gw, src),
            b_id=gw_name, b_mac=self._if_mac(gw_ip, gw_entry_iface),
            b_agent=gw_ip, b_ifindex=gw_entry_iface,
        )
        nodes.append(TopoNode(gw_name, ROUTER, (gw_ip,)))

        current_ip = gw_ip
        current_name = gw_name
        for _ in range(MAX_L3_HOPS):
            entry = self._lpm(current_ip, dst)
            out_idx = entry.ifindex
            cap = self._if_speed(current_ip, out_idx)
            if entry.next_hop is None:
                # Directly attached destination subnet: final L2 leg.
                self._expand_l2(
                    nodes, edges, entry.prefix, IPv4Address(current_ip),
                    a_id=current_name, a_mac=self._if_mac(current_ip, out_idx),
                    b_id=str(dst), b_mac=self._station_mac(entry.prefix, IPv4Address(current_ip), dst),
                    a_agent=current_ip, a_ifindex=out_idx,
                )
                nodes.append(TopoNode(str(dst), HOST, (str(dst),)))
                return _PathRec(nodes, edges)
            hop_ip = str(entry.next_hop)
            try:
                hop_name = self._sys_name(hop_ip)
            except SnmpError:
                # Inaccessible router: virtual switch stands in for
                # everything beyond, as the paper prescribes.
                vsw = f"vsw:{hop_ip}"
                nodes.append(TopoNode(vsw, VSWITCH))
                nodes.append(TopoNode(str(dst), HOST, (str(dst),)))
                edges.append(
                    _EdgeRec(current_name, vsw, MonitorKey(current_ip, out_idx),
                             current_name, cap)
                )
                edges.append(_EdgeRec(vsw, str(dst), None, vsw, math.inf))
                return _PathRec(nodes, edges)
            nodes.append(TopoNode(hop_name, ROUTER, (hop_ip,)))
            edges.append(
                _EdgeRec(current_name, hop_name, MonitorKey(current_ip, out_idx),
                         current_name, cap)
            )
            current_ip, current_name = hop_ip, hop_name
        raise QueryError(f"routing loop discovering {src} -> {dst}")

    def _discover_to_router(
        self,
        src: IPv4Address,
        router_addr: IPv4Address,
        src_loc: tuple[IPv4Network, IPv4Address],
    ) -> _PathRec:
        """Path from a host to a router address (anchor queries).

        The common case is the host's own gateway (one L2 leg); other
        routers are reached by the normal hop-by-hop walk terminating
        when the next hop *is* the target address.
        """
        src_subnet, src_gw = src_loc
        nodes: list[TopoNode] = [TopoNode(str(src), HOST, (str(src),))]
        edges: list[_EdgeRec] = []
        gw_ip = str(src_gw)
        gw_name = self._sys_name(gw_ip)
        gw_entry_iface = self._iface_on_subnet(gw_ip, src_subnet)
        self._expand_l2(
            nodes, edges, src_subnet, src_gw,
            a_id=str(src), a_mac=self._station_mac(src_subnet, src_gw, src),
            b_id=gw_name, b_mac=self._if_mac(gw_ip, gw_entry_iface),
            b_agent=gw_ip, b_ifindex=gw_entry_iface,
        )
        nodes.append(TopoNode(gw_name, ROUTER, (gw_ip,)))
        if router_addr == src_gw or self._sys_name(str(router_addr)) == gw_name:
            return _PathRec(nodes, edges)
        current_ip, current_name = gw_ip, gw_name
        target_name = self._sys_name(str(router_addr))
        for _ in range(MAX_L3_HOPS):
            entry = self._lpm(current_ip, router_addr)
            out_idx = entry.ifindex
            cap = self._if_speed(current_ip, out_idx)
            hop_ip = str(router_addr) if entry.next_hop is None else str(entry.next_hop)
            hop_name = self._sys_name(hop_ip)
            nodes.append(TopoNode(hop_name, ROUTER, (hop_ip,)))
            edges.append(
                _EdgeRec(current_name, hop_name, MonitorKey(current_ip, out_idx),
                         current_name, cap)
            )
            if hop_name == target_name:
                return _PathRec(nodes, edges)
            current_ip, current_name = hop_ip, hop_name
        raise QueryError(f"routing loop discovering {src} -> router {router_addr}")

    def _iface_on_subnet(self, router_ip: str, subnet: IPv4Network) -> int:
        """The router's ifIndex on a directly attached subnet."""
        for e in self._route_table(router_ip):
            if e.next_hop is None and e.prefix == subnet:
                return e.ifindex
        raise QueryError(f"router {router_ip} not attached to {subnet}")

    def _station_mac(
        self, subnet: IPv4Network, gateway: IPv4Address, ip: IPv4Address
    ) -> MacAddress | None:
        return self._station_mac_lookup(subnet, gateway, ip)

    # ------------------------------------------------------------------
    # L2 expansion
    # ------------------------------------------------------------------

    def _bridge_for(self, subnet: IPv4Network) -> BridgeCollector | None:
        best: tuple[int, BridgeCollector] | None = None
        for net_, bc in self.bridges.items():
            if net_.overlaps(subnet) and (best is None or net_.prefixlen > best[0]):
                best = (net_.prefixlen, bc)
        return best[1] if best else None

    def _expand_l2(
        self,
        nodes: list[TopoNode],
        edges: list[_EdgeRec],
        subnet: IPv4Network,
        gateway: IPv4Address,
        a_id: str,
        a_mac: MacAddress | None,
        b_id: str,
        b_mac: MacAddress | None,
        a_agent: str | None = None,
        a_ifindex: int | None = None,
        b_agent: str | None = None,
        b_ifindex: int | None = None,
    ) -> None:
        """Add the L2 path a--...--b across one subnet.

        Uses the subnet's Bridge Collector when available; otherwise a
        single virtual switch represents the segment (point-to-point
        transit prefixes collapse to a direct edge).
        """
        bridge = self._bridge_for(subnet)
        if bridge is not None and a_mac is not None and b_mac is not None:
            try:
                self._expand_via_bridge(nodes, edges, bridge, a_id, a_mac, b_id, b_mac,
                                        a_agent, a_ifindex)
                return
            except (TopologyError, SnmpError):
                pass  # fall through to virtual representation
        if subnet.prefixlen >= 30:
            # Point-to-point link: direct edge, polled at whichever
            # router side we can.
            key = None
            owner = a_id
            cap = math.inf
            if a_agent is not None and a_ifindex is not None:
                key = MonitorKey(a_agent, a_ifindex)
                cap = self._if_speed(a_agent, a_ifindex)
            elif b_agent is not None and b_ifindex is not None:
                key = MonitorKey(b_agent, b_ifindex)
                owner = b_id
                cap = self._if_speed(b_agent, b_ifindex)
            edges.append(_EdgeRec(a_id, b_id, key, owner, cap))
            return
        # Opaque multi-access subnet: one virtual switch.
        vsw = f"vsw:{subnet}"
        nodes.append(TopoNode(vsw, VSWITCH))
        key_a = MonitorKey(a_agent, a_ifindex) if a_agent and a_ifindex else None
        cap_a = self._if_speed(a_agent, a_ifindex) if key_a else math.inf
        key_b = MonitorKey(b_agent, b_ifindex) if b_agent and b_ifindex else None
        cap_b = self._if_speed(b_agent, b_ifindex) if key_b else math.inf
        edges.append(_EdgeRec(a_id, vsw, key_a, a_id, cap_a))
        edges.append(_EdgeRec(vsw, b_id, key_b, b_id, cap_b))

    def _expand_via_bridge(
        self,
        nodes: list[TopoNode],
        edges: list[_EdgeRec],
        bridge: BridgeCollector,
        a_id: str,
        a_mac: MacAddress,
        b_id: str,
        b_mac: MacAddress,
        a_agent: str | None,
        a_ifindex: int | None,
    ) -> None:
        """Translate a Bridge Collector path into nodes/edges.

        Plain inter-switch wire segments collapse into direct
        switch-to-switch edges; shared segments become virtual
        switches.  Each edge adjacent to a managed switch is polled at
        that switch's port.
        """
        db = bridge.db if bridge.db is not None else bridge.startup()
        path = bridge.path(a_mac, b_mac)
        # path: ('mac', a) [('sw'|'seg', ...)]* ('mac', b)
        items: list[tuple[str, str, int]] = []  # (node id, kind, index in path)
        for idx, node in enumerate(path):
            if node[0] == "mac":
                items.append((a_id if idx == 0 else b_id, HOST, idx))
            elif node[0] == "sw":
                items.append((node[1], SWITCH, idx))
            else:
                seg = db.segments[node[1]]
                if seg.is_plain_link:
                    continue  # collapse: the two switches join directly
                items.append((f"vsw:{bridge.name}:{node[1]}", VSWITCH, idx))
        for node_id, kind, _ in items:
            if kind != HOST:
                nodes.append(TopoNode(node_id, kind))
        for (xid, xk, xi), (yid, yk, yi) in zip(items, items[1:]):
            info: tuple[str, int, str] | None = None  # (agent ip, port, owner id)
            if xk == SWITCH:
                port = self._port_toward(db, xid, path[xi + 1])
                ip = db.switch_ips.get(xid)
                if port is not None and ip is not None:
                    info = (str(ip), port, xid)
            if info is None and yk == SWITCH:
                port = self._port_toward(db, yid, path[yi - 1])
                ip = db.switch_ips.get(yid)
                if port is not None and ip is not None:
                    info = (str(ip), port, yid)
            if info is not None:
                agent_ip, port, owner = info
                key = MonitorKey(agent_ip, port)
                cap = self._if_speed(agent_ip, port)
                edges.append(_EdgeRec(xid, yid, key, owner, cap))
            else:
                edges.append(_EdgeRec(xid, yid, None, xid, math.inf))

    @staticmethod
    def _port_toward(db, switch_name: str, neighbor: tuple) -> int | None:
        """The switch's ifIndex on its graph edge toward ``neighbor``."""
        try:
            return db.graph.edges[("sw", switch_name), neighbor].get("port")
        except KeyError:
            return None


def bytes_tuple_to_ip(suffix: tuple[int, ...]) -> str:
    """(a, b, c, d) -> 'a.b.c.d'."""
    return ".".join(str(x) for x in suffix)
